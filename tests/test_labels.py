"""Tests for the distance-label data structure and the decoder."""

import math

import pytest

from repro.errors import LabelingError
from repro.labeling.labels import DistanceLabel, DistanceLabeling, decode_distance


class TestDistanceLabel:
    def test_entries_and_sizes(self):
        lab = DistanceLabel("u")
        lab.set_entry("a", 3.0, 4.0)
        lab.set_entry("b", 1.0, math.inf)
        assert lab.num_entries() == 2
        assert set(lab.hubs()) == {"a", "b"}
        assert lab.size_bits(n=16) == 2 * (4 + 2 * 4)

    def test_restrict(self):
        lab = DistanceLabel("u", {"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0})
        restricted = lab.restrict(["a"])
        assert restricted.num_entries() == 1
        assert "b" not in restricted.to_dist
        assert lab.num_entries() == 2  # original unchanged

    def test_copy_independent(self):
        lab = DistanceLabel("u", {"a": 1.0}, {"a": 1.0})
        cp = lab.copy()
        cp.set_entry("b", 2.0, 2.0)
        assert lab.num_entries() == 1


class TestDecoder:
    def test_same_vertex_distance_zero(self):
        lab = DistanceLabel("u", {"s": 5.0}, {"s": 5.0})
        assert decode_distance(lab, lab) == 0.0

    def test_decode_through_common_hub(self):
        lab_u = DistanceLabel("u", {"s": 2.0, "t": 9.0}, {"s": 7.0, "t": 1.0})
        lab_v = DistanceLabel("v", {"s": 8.0, "t": 3.0}, {"s": 4.0, "t": 5.0})
        # d(u, v) = min(2 + 4, 9 + 5) = 6 ; d(v, u) = min(8 + 7, 3 + 1) = 4
        assert decode_distance(lab_u, lab_v) == 6.0
        assert decode_distance(lab_v, lab_u) == 4.0

    def test_no_common_hub_gives_infinity(self):
        lab_u = DistanceLabel("u", {"a": 1.0}, {"a": 1.0})
        lab_v = DistanceLabel("v", {"b": 1.0}, {"b": 1.0})
        assert math.isinf(decode_distance(lab_u, lab_v))

    def test_asymmetric_hub_sets(self):
        lab_u = DistanceLabel("u", {"s": 2.0}, {"s": 2.0})
        hubs = {f"h{i}": float(i) for i in range(10)}
        lab_v = DistanceLabel("v", dict(hubs, s=3.0), dict(hubs, s=4.0))
        assert decode_distance(lab_u, lab_v) == 6.0


class TestDistanceLabeling:
    def _labeling(self):
        return DistanceLabeling(
            {
                "u": DistanceLabel("u", {"s": 1.0}, {"s": 2.0}),
                "v": DistanceLabel("v", {"s": 3.0, "t": 0.0}, {"s": 4.0, "t": 0.0}),
            }
        )

    def test_distance_and_membership(self):
        labeling = self._labeling()
        assert labeling.distance("u", "v") == 5.0
        assert "u" in labeling
        assert len(labeling) == 2

    def test_missing_label_raises(self):
        labeling = self._labeling()
        with pytest.raises(LabelingError):
            labeling.label("w")

    def test_size_statistics(self):
        labeling = self._labeling()
        assert labeling.max_entries() == 2
        assert labeling.total_entries() == 3
        assert labeling.max_size_bits() > 0
