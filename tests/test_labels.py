"""Tests for the distance-label data structure and the decoder."""

import math

import pytest

from repro.errors import LabelingError
from repro.labeling.labels import DistanceLabel, DistanceLabeling, decode_distance


class TestDistanceLabel:
    def test_entries_and_sizes(self):
        lab = DistanceLabel("u")
        lab.set_entry("a", 3.0, 4.0)
        lab.set_entry("b", 1.0, math.inf)
        assert lab.num_entries() == 2
        assert set(lab.hubs()) == {"a", "b"}
        assert lab.size_bits(n=16) == 2 * (4 + 2 * 4)

    def test_restrict(self):
        lab = DistanceLabel("u", {"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0})
        restricted = lab.restrict(["a"])
        assert restricted.num_entries() == 1
        assert "b" not in restricted.to_dist
        assert lab.num_entries() == 2  # original unchanged

    def test_copy_independent(self):
        lab = DistanceLabel("u", {"a": 1.0}, {"a": 1.0})
        cp = lab.copy()
        cp.set_entry("b", 2.0, 2.0)
        assert lab.num_entries() == 1


class TestDecoder:
    def test_same_vertex_distance_zero(self):
        lab = DistanceLabel("u", {"s": 5.0}, {"s": 5.0})
        assert decode_distance(lab, lab) == 0.0

    def test_decode_through_common_hub(self):
        lab_u = DistanceLabel("u", {"s": 2.0, "t": 9.0}, {"s": 7.0, "t": 1.0})
        lab_v = DistanceLabel("v", {"s": 8.0, "t": 3.0}, {"s": 4.0, "t": 5.0})
        # d(u, v) = min(2 + 4, 9 + 5) = 6 ; d(v, u) = min(8 + 7, 3 + 1) = 4
        assert decode_distance(lab_u, lab_v) == 6.0
        assert decode_distance(lab_v, lab_u) == 4.0

    def test_no_common_hub_gives_infinity(self):
        lab_u = DistanceLabel("u", {"a": 1.0}, {"a": 1.0})
        lab_v = DistanceLabel("v", {"b": 1.0}, {"b": 1.0})
        assert math.isinf(decode_distance(lab_u, lab_v))

    def test_asymmetric_hub_sets(self):
        lab_u = DistanceLabel("u", {"s": 2.0}, {"s": 2.0})
        hubs = {f"h{i}": float(i) for i in range(10)}
        lab_v = DistanceLabel("v", dict(hubs, s=3.0), dict(hubs, s=4.0))
        assert decode_distance(lab_u, lab_v) == 6.0


class TestDistanceLabeling:
    def _labeling(self):
        return DistanceLabeling(
            {
                "u": DistanceLabel("u", {"s": 1.0}, {"s": 2.0}),
                "v": DistanceLabel("v", {"s": 3.0, "t": 0.0}, {"s": 4.0, "t": 0.0}),
            }
        )

    def test_distance_and_membership(self):
        labeling = self._labeling()
        assert labeling.distance("u", "v") == 5.0
        assert "u" in labeling
        assert len(labeling) == 2

    def test_missing_label_raises(self):
        labeling = self._labeling()
        with pytest.raises(LabelingError):
            labeling.label("w")

    def test_size_statistics(self):
        labeling = self._labeling()
        assert labeling.max_entries() == 2
        assert labeling.total_entries() == 3
        assert labeling.max_size_bits() > 0

    def test_size_statistics_cached_and_invalidated_by_set_entry(self):
        labeling = self._labeling()
        assert labeling.total_entries() == 3
        assert labeling._total_entries_cache == 3  # cache is warm
        labeling.set_entry("u", "t", 7.0, 8.0)
        assert labeling._total_entries_cache is None  # invalidated
        assert labeling.total_entries() == 4
        assert labeling.max_entries() == 2
        # Overwriting an existing entry also goes through the invalidation
        # (the counts happen not to change, but the cache contract is
        # "any set_entry resets").
        labeling.set_entry("u", "t", 9.0, 9.0)
        assert labeling.total_entries() == 4
        assert labeling.label("u").to_dist["t"] == 9.0

    def test_size_statistics_invalidated_by_edge_update(self, master_seed):
        from repro.graphs import generators
        from repro.labeling.construction import build_distance_labeling

        graph = generators.partial_k_tree(10, 2, seed=master_seed)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation="asymmetric",
            seed=master_seed,
        )
        labeling = build_distance_labeling(instance).labeling
        labeling.attach_instance(instance)
        total = labeling.total_entries()
        assert labeling._total_entries_cache == total
        edge = next(e for e in instance.edges() if e.tail != e.head)
        labeling.apply_edge_update(edge.tail, edge.head, 20.0)
        assert labeling._total_entries_cache is None
        # Weight updates rewrite values, never entry counts.
        assert labeling.total_entries() == total


class TestSortedHubsCache:
    def test_union_order_and_caching(self):
        lab = DistanceLabel("u", {"b": 1.0, "a": 2.0}, {"a": 3.0, "c": 4.0})
        assert lab.sorted_hubs() == ("a", "b", "c")  # union, str order
        assert lab.sorted_hubs() is lab.sorted_hubs()  # cached tuple

    def test_set_entry_invalidates_only_on_new_hubs(self):
        lab = DistanceLabel("u", {"a": 1.0}, {"a": 1.0})
        first = lab.sorted_hubs()
        lab.set_entry("a", 9.0, 9.0)  # existing hub: cache survives
        assert lab.sorted_hubs() is first
        lab.set_entry("b", 2.0, 2.0)  # new hub: cache rebuilt
        assert lab.sorted_hubs() == ("a", "b")

    def test_decoder_matches_brute_force(self):
        import random

        rng = random.Random(99)
        hubs = [f"h{i}" for i in range(12)]
        labels = {}
        for v in range(8):
            lab = DistanceLabel(v)
            for s in hubs:
                r = rng.random()
                if r < 0.4:
                    lab.set_entry(s, float(rng.randint(0, 30)), float(rng.randint(0, 30)))
                elif r < 0.55:
                    lab.to_dist[s] = float(rng.randint(0, 30))
                elif r < 0.7:
                    lab.from_dist[s] = float(rng.randint(0, 30))
            labels[v] = lab

        def brute(lu, lv):
            if lu.vertex == lv.vertex:
                return 0.0
            common = set(lu.to_dist) & set(lv.from_dist)
            return min(
                (lu.to_dist[s] + lv.from_dist[s] for s in common),
                default=math.inf,
            )

        for u in labels:
            for v in labels:
                assert decode_distance(labels[u], labels[v]) == brute(
                    labels[u], labels[v]
                )
