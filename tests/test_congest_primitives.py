"""Tests for the message-level CONGEST primitives (BFS, broadcast, convergecast, leader election)."""

import pytest

from repro.congest.network import CongestNetwork
from repro.congest import primitives
from repro.errors import GraphError
from repro.graphs import generators, properties


def test_broadcast_none_payload_terminates():
    """Regression: broadcasting ``None`` over a cyclic graph must not livelock
    (duplicate deliveries used to look like a first receipt)."""
    for engine in ("fast", "legacy"):
        net = CongestNetwork(generators.cycle_graph(6))
        values, result = primitives.broadcast(net, 0, None, max_rounds=100, engine=engine)
        assert result.halted
        assert set(values) == set(range(6))
        assert all(v is None for v in values.values())


class TestBFSTree:
    def test_bfs_depths_match_bfs_layers(self):
        g = generators.partial_k_tree(40, 3, seed=1)
        net = CongestNetwork(g)
        parent, depth, result = primitives.build_bfs_tree(net, 0)
        layers = g.bfs_layers(0)
        assert depth == layers
        assert parent[0] is None
        # Rounds ≈ eccentricity of the root (plus the delivery round).
        ecc = max(layers.values())
        assert ecc <= result.rounds <= ecc + 2

    def test_bfs_parent_edges_exist(self):
        g = generators.grid_graph(4, 5)
        net = CongestNetwork(g)
        parent, _, _ = primitives.build_bfs_tree(net, (0, 0))
        for child, par in parent.items():
            if par is not None:
                assert g.has_edge(child, par)

    def test_bfs_missing_root_raises(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(GraphError):
            primitives.build_bfs_tree(net, 99)


class TestBroadcast:
    def test_everyone_receives_value(self):
        g = generators.cycle_graph(12)
        net = CongestNetwork(g)
        values, result = primitives.broadcast(net, 0, ("hello", 7))
        assert all(v == ("hello", 7) for v in values.values())
        assert result.rounds <= properties.diameter(g) + 2

    def test_broadcast_rounds_scale_with_diameter(self):
        short = CongestNetwork(generators.star_graph(20))
        long = CongestNetwork(generators.path_graph(20))
        _, r_short = primitives.broadcast(short, 0, 1)
        _, r_long = primitives.broadcast(long, 0, 1)
        assert r_long.rounds > r_short.rounds


class TestConvergecast:
    def test_sum_over_tree(self):
        g = generators.random_tree(25, seed=2)
        net = CongestNetwork(g)
        parent = g.spanning_tree(root=0)
        values = {u: 1 for u in g.nodes()}
        total, result = primitives.convergecast_sum(net, parent, values)
        assert total == 25
        assert result.rounds <= 25

    def test_custom_combine_max(self):
        g = generators.path_graph(6)
        net = CongestNetwork(g)
        parent = g.spanning_tree(root=0)
        values = {u: u * 10 for u in g.nodes()}
        best, _ = primitives.convergecast_sum(net, parent, values, combine=max)
        assert best == 50

    def test_missing_root_raises(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(GraphError):
            primitives.convergecast_sum(net, {0: 1, 1: 0}, {})


class TestLeaderElection:
    def test_minimum_id_wins(self):
        g = generators.partial_k_tree(30, 2, seed=3)
        net = CongestNetwork(g)
        leader, result = primitives.elect_leader(net)
        assert leader == 0
        assert result.rounds <= properties.diameter(g) + 3

    def test_disconnected_rejected(self):
        from repro.graphs.graph import Graph

        g = Graph(edges=[(1, 2), (3, 4)])
        net = CongestNetwork(g)
        with pytest.raises(GraphError):
            primitives.elect_leader(net)
