"""Tests for the exact centralized girth baselines."""

import math

import pytest

from repro.girth.baselines import (
    exact_girth_directed,
    exact_girth_undirected,
    unweighted_girth_undirected,
)
from repro.graphs import generators
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph


class TestUndirectedBaseline:
    def test_tree_has_infinite_girth(self):
        assert math.isinf(exact_girth_undirected(generators.random_tree(20, seed=1)))

    def test_unit_cycle(self):
        assert exact_girth_undirected(generators.cycle_graph(7)) == 7

    def test_weighted_cycle(self):
        g = Graph()
        for i in range(5):
            g.add_edge(i, (i + 1) % 5, weight=2)
        assert exact_girth_undirected(g) == 10

    def test_chord_shortens_girth(self):
        g = generators.cycle_graph(10)
        g.add_edge(0, 3)
        assert exact_girth_undirected(g) == 4

    def test_weighted_chord_choice(self):
        # Two triangles sharing an edge, with different weights.
        g = Graph()
        g.add_edge("a", "b", weight=1)
        g.add_edge("b", "c", weight=1)
        g.add_edge("a", "c", weight=1)
        g.add_edge("c", "d", weight=10)
        g.add_edge("d", "a", weight=10)
        assert exact_girth_undirected(g) == 3

    def test_unweighted_helper_ignores_weights(self):
        g = Graph()
        for i in range(4):
            g.add_edge(i, (i + 1) % 4, weight=100)
        assert unweighted_girth_undirected(g) == 4

    def test_empty_graph(self):
        assert math.isinf(exact_girth_undirected(Graph()))


class TestDirectedBaseline:
    def test_acyclic_dag_is_infinite(self):
        g = WeightedDiGraph()
        g.add_edge(1, 2, weight=1)
        g.add_edge(2, 3, weight=1)
        g.add_edge(1, 3, weight=1)
        assert math.isinf(exact_girth_directed(g))

    def test_directed_two_cycle(self):
        g = WeightedDiGraph()
        g.add_edge("a", "b", weight=3)
        g.add_edge("b", "a", weight=4)
        assert exact_girth_directed(g) == 7

    def test_self_loop_counts(self):
        g = WeightedDiGraph()
        g.add_edge("a", "a", weight=2)
        g.add_edge("a", "b", weight=1)
        assert exact_girth_directed(g) == 2

    def test_directed_cycle_weighted(self):
        g = WeightedDiGraph()
        weights = [2, 3, 4, 5]
        for i, w in enumerate(weights):
            g.add_edge(i, (i + 1) % 4, weight=w)
        assert exact_girth_directed(g) == sum(weights)

    def test_random_orientation_consistent_with_bidirected(self):
        base = generators.cycle_with_chords(16, 3, seed=2)
        inst = generators.to_directed_instance(base, orientation="both")
        # With antiparallel unit edges, the directed girth is 2 (u→v→u).
        assert exact_girth_directed(inst) == 2
