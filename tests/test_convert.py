"""Tests for networkx conversions."""

import networkx as nx

from repro.graphs import convert, generators
from repro.graphs.digraph import WeightedDiGraph


class TestUndirectedConversions:
    def test_round_trip_preserves_structure(self):
        g = generators.with_random_weights(generators.partial_k_tree(25, 3, seed=1), 1, 9, seed=2)
        nxg = convert.graph_to_networkx(g)
        back = convert.graph_from_networkx(nxg)
        assert set(back.nodes()) == set(g.nodes())
        assert set(back.edges()) == set(g.edges())
        for u, v, w in g.weighted_edges():
            assert back.weight(u, v) == w

    def test_self_loops_dropped_on_import(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 1)
        nxg.add_edge(1, 2)
        g = convert.graph_from_networkx(nxg)
        assert g.num_edges() == 1


class TestDirectedConversions:
    def test_multidigraph_round_trip(self):
        g = WeightedDiGraph()
        g.add_edge("a", "b", weight=2, label="x")
        g.add_edge("a", "b", weight=5)
        g.add_edge("b", "a", weight=1)
        nxg = convert.digraph_to_networkx(g)
        assert nxg.number_of_edges() == 3
        back = convert.digraph_from_networkx(nxg)
        assert back.num_edges() == 3
        assert back.max_multiplicity() == 2

    def test_simple_digraph_keeps_min_parallel_weight(self):
        g = WeightedDiGraph()
        g.add_edge(1, 2, weight=7)
        g.add_edge(1, 2, weight=3)
        simple = convert.digraph_to_simple_networkx(g)
        assert simple[1][2]["weight"] == 3

    def test_undirected_networkx_becomes_antiparallel_pairs(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 2, weight=4)
        g = convert.digraph_from_networkx(nxg)
        assert g.num_edges() == 2
        weights = sorted(e.weight for e in g.edges())
        assert weights == [4, 4]
