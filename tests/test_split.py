"""Tests for the Split tree-splitting procedure (paper §3.3 step 2)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.decomposition.split import (
    split_graph,
    split_spanning_tree,
    split_tree_roots,
    verify_split_invariants,
)
from repro.errors import DecompositionError, GraphError
from repro.graphs import generators


class TestSplitSpanningTree:
    def test_single_node_tree(self):
        trees = split_spanning_tree({0: None}, {0: 1}, chunk_size=1)
        assert len(trees) == 1
        assert trees[0].vertices == frozenset({0})

    def test_path_tree_splits_into_chunks(self):
        n = 30
        parent = {i: (i - 1 if i else None) for i in range(n)}
        mu = {i: 1 for i in range(n)}
        trees = split_spanning_tree(parent, mu, chunk_size=5)
        assert len(trees) >= 3
        # Coverage and bounded sizes.
        covered = set()
        for t in trees:
            covered |= t.vertices
            assert t.mu_size <= 3 * 5 + 1
        assert covered == set(range(n))

    def test_star_tree_high_degree_chunking(self):
        n = 40
        parent = {0: None}
        parent.update({i: 0 for i in range(1, n)})
        mu = {i: 1 for i in range(n)}
        trees = split_spanning_tree(parent, mu, chunk_size=6)
        roots = split_tree_roots(trees)
        # All chunks share the hub as root.
        assert roots == {0}
        for t in trees:
            assert t.mu_size <= 3 * 6 + 1

    def test_zero_chunk_rejected(self):
        with pytest.raises(DecompositionError):
            split_spanning_tree({0: None}, {0: 1}, chunk_size=0)

    def test_multi_root_rejected(self):
        with pytest.raises(DecompositionError):
            split_spanning_tree({0: None, 1: None}, {0: 1, 1: 1}, chunk_size=1)


class TestSplitGraph:
    def test_invariants_on_partial_k_tree(self):
        g = generators.partial_k_tree(80, 3, seed=1)
        trees = split_graph(g, None, t=3, lower_divisor=6)
        chunk = max(1, math.ceil(g.num_nodes() / (6 * 3)))
        assert verify_split_invariants(g, trees, chunk_size=chunk) == []
        assert len(trees) >= 3

    def test_focus_weights_respected(self):
        g = generators.grid_graph(6, 6)
        focus = {(r, c) for r in range(6) for c in range(3)}  # half the grid
        trees = split_graph(g, focus, t=2, lower_divisor=6)
        total_mu = sum(t.mu_size for t in trees)
        # Roots may be double counted across trees, so the sum is >= |focus|.
        assert total_mu >= len(focus)
        assert verify_split_invariants(g, trees) == []

    def test_disconnected_graph_rejected(self):
        from repro.graphs.graph import Graph

        g = Graph(edges=[(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            split_graph(g, None, t=1)

    def test_invalid_t_rejected(self):
        g = generators.path_graph(5)
        with pytest.raises(DecompositionError):
            split_graph(g, None, t=0)

    def test_empty_graph_gives_no_trees(self):
        from repro.graphs.graph import Graph

        assert split_graph(Graph(), None, t=2) == []

    def test_deterministic_given_root(self):
        g = generators.partial_k_tree(40, 2, seed=3)
        a = split_graph(g, None, t=2, root=0)
        b = split_graph(g, None, t=2, root=0)
        assert [t.vertices for t in a] == [t.vertices for t in b]


@given(
    st.integers(min_value=10, max_value=60),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=400),
)
@settings(max_examples=30, deadline=None)
def test_split_invariants_random_graphs(n, t, seed):
    """Property: Split always covers the graph with near-disjoint connected subtrees."""
    g = generators.partial_k_tree(n, min(3, max(1, t)), seed=seed)
    trees = split_graph(g, None, t=t, lower_divisor=6)
    assert verify_split_invariants(g, trees) == []
    # Roots are a small set: at most the number of trees.
    assert len(split_tree_roots(trees)) <= len(trees)
