"""Tests for treewidth heuristics and elimination-order decompositions."""

import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.errors import GraphError
from repro.graphs import generators
from repro.graphs.convert import graph_to_networkx
from repro.graphs import treewidth as tw


class TestEliminationOrders:
    def test_orders_are_permutations(self, small_partial_k_tree):
        g = small_partial_k_tree
        for order in (tw.min_degree_order(g), tw.min_fill_order(g)):
            assert sorted(map(str, order)) == sorted(map(str, g.nodes()))

    def test_width_of_order_on_tree_is_one(self):
        g = generators.random_tree(30, seed=3)
        order = tw.min_degree_order(g)
        assert tw.width_of_elimination_order(g, order) == 1

    def test_width_of_bad_order_raises(self):
        g = generators.path_graph(4)
        with pytest.raises(GraphError):
            tw.width_of_elimination_order(g, [0, 1])

    def test_decomposition_from_order_is_valid(self):
        from repro.decomposition.centralized import centralized_tree_decomposition
        from repro.decomposition.validation import tree_decomposition_violations

        g = generators.partial_k_tree(35, 3, seed=2)
        td = centralized_tree_decomposition(g)
        assert tree_decomposition_violations(g, td) == []


class TestBounds:
    def test_exact_values_for_canonical_graphs(self):
        assert tw.treewidth_upper_bound(generators.random_tree(15, seed=1)) == 1
        assert tw.treewidth_upper_bound(generators.cycle_graph(10)) == 2
        assert tw.treewidth_upper_bound(generators.complete_graph(6)) == 5

    def test_lower_bound_not_above_upper_bound(self):
        for seed in range(5):
            g = generators.partial_k_tree(30, 3, seed=seed)
            assert tw.treewidth_lower_bound(g) <= tw.treewidth_upper_bound(g)

    def test_degeneracy_of_complete_graph(self):
        assert tw.degeneracy(generators.complete_graph(5)) == 4

    def test_heuristics_match_networkx_reference(self):
        g = generators.partial_k_tree(40, 3, seed=8)
        nxg = graph_to_networkx(g)
        nx_width, _ = nx.algorithms.approximation.treewidth_min_fill_in(nxg)
        # Both are heuristics; ours should be at least as good as min(ours) vs
        # within a small factor of the networkx result.
        ours = tw.treewidth_upper_bound(g)
        assert ours <= max(3, 2 * nx_width)
        assert nx_width <= 2 * max(1, ours)

    def test_empty_graph(self):
        from repro.graphs.graph import Graph

        assert tw.treewidth_upper_bound(Graph()) == 0


class TestExactSmall:
    def test_exact_on_small_graphs(self):
        assert tw.treewidth_exact_small(generators.cycle_graph(6)) == 2
        assert tw.treewidth_exact_small(generators.complete_graph(5)) == 4
        assert tw.treewidth_exact_small(generators.path_graph(6)) == 1
        assert tw.treewidth_exact_small(generators.grid_graph(3, 3)) == 3

    def test_exact_rejects_large_graphs(self):
        with pytest.raises(GraphError):
            tw.treewidth_exact_small(generators.path_graph(30))

    def test_exact_matches_heuristic_on_k_trees(self):
        for k in (1, 2, 3):
            g = generators.k_tree(k + 5, k, seed=k)
            assert tw.treewidth_exact_small(g) == k


@given(st.integers(min_value=4, max_value=11), st.integers(min_value=0, max_value=200))
@settings(max_examples=20, deadline=None)
def test_heuristic_upper_bounds_exact(n, seed):
    """Property: the heuristic width never undershoots the exact treewidth."""
    g = generators.partial_k_tree(n, 2, seed=seed)
    exact = tw.treewidth_exact_small(g)
    assert tw.treewidth_upper_bound(g) >= exact
    assert tw.treewidth_lower_bound(g) <= exact
