"""Tests for the round-cost model and the ledger."""

import pytest

from repro.core.rounds import CostModel, RoundLedger


class TestCostModel:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostModel(n=0, diameter=3)
        with pytest.raises(ValueError):
            CostModel(n=5, diameter=-1)

    def test_pa_scales_linearly_in_width_and_diameter(self):
        cm = CostModel(n=1000, diameter=10)
        assert cm.partwise_aggregation(4) == 2 * cm.partwise_aggregation(2)
        cm2 = CostModel(n=1000, diameter=20)
        assert cm2.partwise_aggregation(2) == 2 * cm.partwise_aggregation(2)

    def test_bct_has_additive_h_term(self):
        cm = CostModel(n=256, diameter=8)
        base = cm.broadcast_multi(3, 1)
        bigger = cm.broadcast_multi(3, 100)
        assert bigger > base
        # For h large the cost grows linearly in h.
        assert cm.broadcast_multi(3, 200) - cm.broadcast_multi(3, 100) == pytest.approx(
            100 * 3 * cm.polylog * cm.constant, rel=0.01
        )

    def test_mvc_scales_in_t(self):
        cm = CostModel(n=256, diameter=8)
        assert cm.min_vertex_cut_multi(3, 10, 4) > cm.min_vertex_cut_multi(3, 10, 2)
        assert cm.min_vertex_cut(3, 5) == 5 * cm.partwise_aggregation(3)

    def test_scheduled_is_dilation_plus_congestion(self):
        cm = CostModel(n=64, diameter=4, log_factor_exponent=0)
        assert cm.scheduled(10, 7) == 17

    def test_log_factor_exponent_zero_removes_polylog(self):
        cm = CostModel(n=10_000, diameter=5, log_factor_exponent=0)
        assert cm.polylog == 1.0
        assert cm.partwise_aggregation(2) == 10

    def test_snc_is_one_round(self):
        assert CostModel(n=10, diameter=3).snc() == 1

    def test_zero_diameter_still_positive(self):
        cm = CostModel(n=1, diameter=0)
        assert cm.partwise_aggregation(1) >= 1

    def test_constant_scales_everything(self):
        a = CostModel(n=100, diameter=5, constant=1.0)
        b = CostModel(n=100, diameter=5, constant=2.0)
        assert b.partwise_aggregation(3) == 2 * a.partwise_aggregation(3)


class TestRoundLedger:
    def test_charge_and_total(self):
        ledger = RoundLedger()
        ledger.charge("a", 5)
        ledger.charge("b", 7)
        ledger.charge("a", 3)
        assert ledger.total() == 15
        assert ledger["a"] == 8
        assert ledger["missing"] == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            RoundLedger().charge("x", -1)

    def test_phase_scoping(self):
        ledger = RoundLedger()
        with ledger.phase("outer"):
            ledger.charge("inner", 2)
            with ledger.phase("nested"):
                ledger.charge("deep", 3)
        assert ledger["outer/inner"] == 2
        assert ledger["outer/nested/deep"] == 3

    def test_breakdown_by_depth(self):
        ledger = RoundLedger()
        ledger.charge("a/x", 1)
        ledger.charge("a/y", 2)
        ledger.charge("b/z", 4)
        assert ledger.breakdown(1) == {"a": 3, "b": 4}
        assert ledger.breakdown() == {"a/x": 1, "a/y": 2, "b/z": 4}

    def test_merge_with_prefix(self):
        a = RoundLedger()
        a.charge("x", 1)
        b = RoundLedger()
        b.charge("y", 2)
        a.merge(b, prefix="sub")
        assert a["sub/y"] == 2
        assert a.total() == 3

    def test_as_table_renders(self):
        ledger = RoundLedger()
        assert "no rounds" in ledger.as_table()
        ledger.charge("phase/a", 10)
        text = ledger.as_table()
        assert "TOTAL" in text and "10" in text
