"""Tests for the distributed Bellman-Ford SSSP baseline."""

import math

import pytest

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.errors import GraphError
from repro.graphs import generators
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.properties import dijkstra


class TestCorrectness:
    def test_matches_dijkstra_on_partial_k_tree(self):
        g = generators.partial_k_tree(50, 3, seed=5)
        inst = generators.to_directed_instance(g, weight_range=(1, 9), orientation="both", seed=6)
        result = distributed_bellman_ford(inst, 0)
        expected = dijkstra(inst, 0)
        for v in inst.nodes():
            assert abs(result.distances[v] - expected.get(v, math.inf)) < 1e-9

    def test_directed_unreachable_nodes_are_infinite(self):
        inst = WeightedDiGraph()
        inst.add_edge("a", "b", weight=1)
        inst.add_edge("c", "b", weight=1)  # c unreachable from a
        result = distributed_bellman_ford(inst, "a")
        assert result.distances["b"] == 1
        assert math.isinf(result.distances["c"])

    def test_asymmetric_weights_respected(self):
        g = generators.cycle_graph(8)
        inst = generators.to_directed_instance(g, weight_range=(1, 9), orientation="asymmetric", seed=3)
        result = distributed_bellman_ford(inst, 0)
        expected = dijkstra(inst, 0)
        assert all(abs(result.distances[v] - expected[v]) < 1e-9 for v in inst.nodes())

    def test_missing_source_raises(self):
        with pytest.raises(GraphError):
            distributed_bellman_ford(WeightedDiGraph(["a"]), "b")


class TestRoundBehaviour:
    def test_rounds_grow_with_hop_depth(self):
        """The baseline's rounds track the shortest-path hop depth (≈ n on paths)."""
        short = generators.to_directed_instance(generators.star_graph(40), orientation="both")
        long = generators.to_directed_instance(generators.path_graph(40), orientation="both")
        r_short = distributed_bellman_ford(short, 0).rounds
        r_long = distributed_bellman_ford(long, 0).rounds
        assert r_long >= 35
        assert r_short <= 5
        assert r_long > 4 * r_short

    def test_parents_form_shortest_path_tree(self):
        g = generators.partial_k_tree(30, 2, seed=9)
        inst = generators.to_directed_instance(g, weight_range=(1, 5), orientation="both", seed=10)
        result = distributed_bellman_ford(inst, 0)
        for v, parent in result.parents.items():
            if parent is None:
                continue
            # The parent relation must be consistent with the distances.
            edge_w = min(
                (e.weight for e in inst.out_edges(parent) if e.head == v), default=math.inf
            )
            assert abs(result.distances[parent] + edge_w - result.distances[v]) < 1e-9
