"""Regression tests for the hardened ``BENCH_*.json`` merge-writer.

The three bugs this suite pins down (each was real in the pre-fix
writer):

* a crash mid-``json.dump`` truncated the trajectory file (the write
  went straight to the target) — now the dump goes to a temp file that
  is ``os.replace``d over the target, so a killed writer leaves the old
  file intact;
* an unparsable trajectory was silently reset to ``{}``, destroying the
  cross-PR history on the next write — now the corrupt file is backed
  up aside (``.corrupt-<n>``) with a warning naming the backup;
* concurrent merges raced the read-modify-write and lost each other's
  cases — now the merge holds an ``fcntl`` lock (no-op degrade on
  platforms without fcntl).
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.experiments import trajectory
from repro.experiments.trajectory import (
    TrajectoryCorruptWarning,
    load_trajectory,
    merge_trajectory_record,
)

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _read(path):
    with open(path) as fh:
        return json.load(fh)


class TestMergeBasics:
    def test_round_trip_and_merge_preserves_other_cases(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        merge_trajectory_record(path, "case_a", "tiny", {"fast": {"seconds": 1.0}})
        merge_trajectory_record(
            path, "case_b", "full", {"fast": {"seconds": 2.0}}, extra={"n": 7}
        )
        record = _read(path)
        assert set(record) == {"case_a", "case_b"}
        assert record["case_b"] == {
            "scale": "full", "tiers": {"fast": {"seconds": 2.0}}, "n": 7,
        }
        # Re-merging one case updates it and leaves the rest alone.
        merge_trajectory_record(path, "case_a", "tiny", {"fast": {"seconds": 9.0}})
        record = _read(path)
        assert record["case_a"]["tiers"]["fast"]["seconds"] == 9.0
        assert record["case_b"]["n"] == 7

    def test_trailing_newline_and_sorted_keys(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        merge_trajectory_record(path, "zz", "tiny", {})
        merge_trajectory_record(path, "aa", "tiny", {})
        with open(path) as fh:
            text = fh.read()
        assert text.endswith("\n")
        assert text.index('"aa"') < text.index('"zz"')

    def test_lock_degrades_to_noop_without_fcntl(self, tmp_path, monkeypatch):
        monkeypatch.setattr(trajectory, "fcntl", None)
        path = str(tmp_path / "BENCH_x.json")
        merge_trajectory_record(path, "case", "tiny", {"fast": {"seconds": 1.0}})
        assert _read(path)["case"]["scale"] == "tiny"


class TestCrashMidWrite:
    """A writer dying anywhere during the merge must not hurt the target."""

    def _crash_subprocess(self, json_path, crash_stage):
        """Run a merge in a child that SIGKILLs itself at ``crash_stage``."""
        script = textwrap.dedent(
            f"""
            import os, signal, sys
            sys.path.insert(0, {REPO_SRC!r})
            from repro.experiments import trajectory

            stage = {crash_stage!r}
            if stage == "during_dump":
                real_dump = trajectory.json.dump
                def killing_dump(record, fh, **kw):
                    fh.write('{{"half": ')   # torn payload hits the temp file
                    fh.flush()
                    os.kill(os.getpid(), signal.SIGKILL)
                trajectory.json.dump = killing_dump
            elif stage == "before_replace":
                def killing_fsync(fd):
                    os.kill(os.getpid(), signal.SIGKILL)
                trajectory.os.fsync = killing_fsync
            trajectory.merge_trajectory_record(
                {json_path!r}, "new_case", "tiny", {{"fast": {{"seconds": 1.0}}}}
            )
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

    @pytest.mark.parametrize("crash_stage", ["during_dump", "before_replace"])
    def test_killed_writer_leaves_trajectory_intact(self, tmp_path, crash_stage):
        path = str(tmp_path / "BENCH_x.json")
        merge_trajectory_record(path, "old_case", "full", {"fast": {"seconds": 3.0}})
        before = open(path, "rb").read()

        self._crash_subprocess(path, crash_stage)

        # The committed trajectory is byte-identical: no truncation, no
        # partial merge, still parseable.
        assert open(path, "rb").read() == before
        assert _read(path) == {
            "old_case": {"scale": "full", "tiers": {"fast": {"seconds": 3.0}}}
        }

    def test_failed_serialization_leaves_target_and_no_litter(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        merge_trajectory_record(path, "old_case", "full", {"fast": {"seconds": 3.0}})
        before = open(path, "rb").read()
        with pytest.raises(TypeError):
            merge_trajectory_record(path, "bad", "tiny", {"obj": object()})
        assert open(path, "rb").read() == before
        # The half-written temp file was cleaned up, not left behind.
        leftovers = [
            name for name in os.listdir(tmp_path) if name not in
            ("BENCH_x.json", "BENCH_x.json.lock")
        ]
        assert leftovers == []


class TestCorruptTrajectory:
    def test_corrupt_file_backed_up_not_discarded(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        with open(path, "w") as fh:
            fh.write('{"case": {"scale": "full"')  # truncated JSON
        with pytest.warns(TrajectoryCorruptWarning, match=r"\.corrupt-0"):
            merge_trajectory_record(path, "fresh", "tiny", {"fast": {"seconds": 1.0}})
        # History preserved aside, fresh record started.
        backup = path + ".corrupt-0"
        assert os.path.exists(backup)
        assert open(backup).read() == '{"case": {"scale": "full"'
        assert set(_read(path)) == {"fresh"}

    def test_backup_names_do_not_collide(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        for n in range(2):
            with open(path, "w") as fh:
                fh.write(f"garbage-{n}")
            with pytest.warns(TrajectoryCorruptWarning, match=rf"\.corrupt-{n}"):
                merge_trajectory_record(path, f"c{n}", "tiny", {})
        assert open(path + ".corrupt-0").read() == "garbage-0"
        assert open(path + ".corrupt-1").read() == "garbage-1"

    def test_non_object_json_also_backed_up(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        with open(path, "w") as fh:
            fh.write("[1, 2, 3]\n")
        with pytest.warns(TrajectoryCorruptWarning, match="JSON object"):
            assert load_trajectory(path) == {}
        assert os.path.exists(path + ".corrupt-0")

    def test_unreadable_path_raises_instead_of_overwriting(self, tmp_path):
        # A directory in place of the file: reading raises OSError, and the
        # writer must propagate it rather than blow away what it never read.
        path = str(tmp_path / "BENCH_dir.json")
        os.mkdir(path)
        with pytest.raises(OSError):
            merge_trajectory_record(path, "case", "tiny", {})
        assert os.path.isdir(path)


def _merge_worker(json_path, worker_id, cases_per_worker):
    for i in range(cases_per_worker):
        merge_trajectory_record(
            json_path,
            f"w{worker_id}_case{i}",
            "tiny",
            {"fast": {"seconds": 0.001 * (i + 1)}},
            extra={"worker": worker_id},
        )


class TestConcurrentMerge:
    @pytest.mark.parametrize("workers,cases", [(2, 25), (4, 10)])
    def test_concurrent_merges_lose_no_cases(self, tmp_path, workers, cases):
        """The satellite bug: racing read-modify-writes dropped cases."""
        path = str(tmp_path / "BENCH_x.json")
        merge_trajectory_record(path, "preexisting", "tiny", {})
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_merge_worker, args=(path, w, cases))
            for w in range(workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0
        record = _read(path)
        expected = {"preexisting"} | {
            f"w{w}_case{i}" for w in range(workers) for i in range(cases)
        }
        assert set(record) == expected
        for w in range(workers):
            assert record[f"w{w}_case{cases - 1}"]["worker"] == w


class TestBenchmarksShim:
    def test_bench_modules_import_the_hardened_writer(self):
        benchmarks_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks",
        )
        if benchmarks_dir not in sys.path:
            sys.path.insert(0, benchmarks_dir)
        import _bench_trajectory

        assert _bench_trajectory.merge_trajectory_record is merge_trajectory_record
