"""End-to-end integration tests exercising the whole pipeline on one instance."""

import math

import pytest

from repro import LowTreewidthSolver
from repro.analysis.complexity import growth_ratio
from repro.congest.bellman_ford import distributed_bellman_ford
from repro.core.config import FrameworkConfig, SeparatorParams
from repro.decomposition.validation import is_valid_tree_decomposition
from repro.girth.baselines import exact_girth_directed
from repro.girth.girth import directed_girth
from repro.graphs import generators, properties
from repro.graphs.treewidth import treewidth_upper_bound
from repro.labeling.construction import build_distance_labeling
from repro.matching.bipartite import maximum_bipartite_matching
from repro.matching.hopcroft_karp import hopcroft_karp_matching


class TestFullPipeline:
    def test_decomposition_labeling_girth_share_artifacts(self):
        """One instance, every stage: decomposition → labeling → SSSP → girth."""
        g = generators.partial_k_tree(70, 3, seed=42)
        inst = generators.to_directed_instance(g, weight_range=(1, 9), orientation="asymmetric", seed=43)
        solver = LowTreewidthSolver(inst, seed=42)

        decomposition = solver.tree_decomposition()
        assert is_valid_tree_decomposition(g, decomposition.decomposition)

        labeling = solver.distance_labeling()
        source = inst.nodes()[0]
        sssp = solver.single_source_shortest_paths(source)
        reference = properties.dijkstra(inst, source)
        for v in inst.nodes():
            want = reference.get(v, math.inf)
            got = sssp.distances[v]
            assert (math.isinf(got) and math.isinf(want)) or abs(got - want) < 1e-9

        girth = directed_girth(inst, labeling=labeling, config=solver.config, cost_model=solver.cost_model)
        assert abs(girth.girth - exact_girth_directed(inst)) < 1e-9

        # Round accounting is hierarchical and self-consistent.
        assert labeling.rounds >= decomposition.rounds
        assert girth.rounds >= labeling.rounds

    def test_bipartite_pipeline_on_subdivided_instance(self):
        base = generators.partial_k_tree(30, 3, seed=11)
        bip = generators.subdivided_graph(base)
        result = maximum_bipartite_matching(bip, config=FrameworkConfig(seed=11))
        assert result.size == len(hopcroft_karp_matching(bip))

    def test_paper_constants_still_produce_correct_results(self):
        """Using the paper's literal constants degrades width but never correctness."""
        g = generators.partial_k_tree(60, 3, seed=5)
        config = FrameworkConfig(seed=5, separator=SeparatorParams.paper())
        inst = generators.to_directed_instance(g, weight_range=(1, 5), orientation="both", seed=6)
        labeling = build_distance_labeling(inst, config=config)
        reference = properties.dijkstra(inst, inst.nodes()[0])
        for v in inst.nodes():
            assert abs(labeling.labeling.distance(inst.nodes()[0], v) - reference[v]) < 1e-9


class TestScalingClaims:
    def test_framework_rounds_scale_sublinearly_in_n(self):
        """The 'fully polynomial' claim: at fixed τ, rounds grow far slower than n."""
        ns = [50, 100, 200, 400]
        rounds = []
        for n in ns:
            g = generators.partial_k_tree(n, 3, seed=n)
            inst = generators.to_directed_instance(g, weight_range=(1, 5), orientation="both", seed=n + 1)
            result = build_distance_labeling(inst, config=FrameworkConfig(seed=1))
            rounds.append(result.rounds)
        # The diameter grows with n in this family, so rounds grow — but far
        # slower than the 8× growth of n (Bellman-Ford-style baselines track n).
        ratio = growth_ratio(ns, rounds)
        assert ratio < 1.5

    def test_bellman_ford_baseline_scales_linearly_on_paths(self):
        ns = [40, 160]
        rounds = []
        for n in ns:
            inst = generators.to_directed_instance(generators.path_graph(n), orientation="both")
            rounds.append(distributed_bellman_ford(inst, 0).rounds)
        assert rounds[1] >= 3.5 * rounds[0]

    def test_width_tracks_treewidth_not_n(self):
        widths = {}
        for n in (60, 240):
            g = generators.partial_k_tree(n, 3, seed=n)
            from repro.decomposition.tree_decomposition import build_tree_decomposition

            widths[n] = build_tree_decomposition(g, config=FrameworkConfig(seed=1)).decomposition.width()
        assert widths[240] <= 3 * max(1, widths[60])
        assert widths[240] < 240 // 2
