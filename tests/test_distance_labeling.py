"""Tests for the distance-labeling construction (Theorem 2): exactness is the headline claim."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FrameworkConfig
from repro.decomposition.tree_decomposition import build_tree_decomposition
from repro.errors import GraphError
from repro.graphs import generators
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.properties import dijkstra
from repro.labeling.construction import build_distance_labeling


def _assert_exact(instance, labeling, sources=None, tol=1e-9):
    nodes = instance.nodes()
    sources = sources if sources is not None else nodes
    for u in sources:
        expected = dijkstra(instance, u)
        for v in nodes:
            got = labeling.distance(u, v)
            want = expected.get(v, math.inf)
            assert (math.isinf(got) and math.isinf(want)) or abs(got - want) < tol, (
                f"d({u!r},{v!r}) = {got}, expected {want}"
            )


class TestExactness:
    def test_directed_asymmetric_partial_k_tree(self, config):
        g = generators.partial_k_tree(50, 3, seed=3)
        inst = generators.to_directed_instance(g, weight_range=(1, 9), orientation="asymmetric", seed=4)
        result = build_distance_labeling(inst, config=config)
        _assert_exact(inst, result.labeling, sources=inst.nodes()[:12])

    def test_randomly_oriented_instance_with_unreachable_pairs(self, config):
        g = generators.partial_k_tree(40, 2, seed=5)
        inst = generators.to_directed_instance(g, weight_range=(1, 5), orientation="random", seed=6)
        result = build_distance_labeling(inst, config=config)
        _assert_exact(inst, result.labeling, sources=inst.nodes()[:12])

    def test_undirected_grid(self, config):
        g = generators.with_random_weights(generators.grid_graph(5, 8), 1, 7, seed=7)
        inst = WeightedDiGraph.from_undirected(g)
        result = build_distance_labeling(inst, config=config)
        _assert_exact(inst, result.labeling, sources=inst.nodes()[:10])

    def test_unit_weight_cycle(self, config):
        inst = generators.to_directed_instance(generators.cycle_graph(20), orientation="both")
        result = build_distance_labeling(inst, config=config)
        _assert_exact(inst, result.labeling)

    def test_tree_instance(self, config):
        g = generators.with_random_weights(generators.random_tree(35, seed=8), 1, 4, seed=9)
        inst = WeightedDiGraph.from_undirected(g)
        result = build_distance_labeling(inst, config=config)
        _assert_exact(inst, result.labeling, sources=inst.nodes()[:10])

    def test_multigraph_parallel_edges(self, config):
        inst = generators.to_directed_instance(generators.cycle_graph(12), orientation="both")
        # Add heavier parallel edges that must never shorten any distance.
        for e in list(inst.edges())[:6]:
            inst.add_edge(e.tail, e.head, weight=e.weight + 10)
        result = build_distance_labeling(inst, config=config)
        _assert_exact(inst, result.labeling)


class TestLabelSizeAndRounds:
    def test_label_entries_grow_with_width_not_n(self, config):
        small = generators.partial_k_tree(60, 3, seed=1)
        large = generators.partial_k_tree(240, 3, seed=2)
        inst_small = generators.to_directed_instance(small, orientation="both", weight_range=(1, 5), seed=3)
        inst_large = generators.to_directed_instance(large, orientation="both", weight_range=(1, 5), seed=4)
        res_small = build_distance_labeling(inst_small, config=FrameworkConfig(seed=1))
        res_large = build_distance_labeling(inst_large, config=FrameworkConfig(seed=1))
        # Õ(τ² log n) entries: quadrupling n must not quadruple the label size.
        assert res_large.labeling.max_entries() <= 4 * res_small.labeling.max_entries()
        assert res_large.labeling.max_entries() < large.num_nodes()

    def test_rounds_reported_and_ledger_totals(self, weighted_instance, config):
        result = build_distance_labeling(weighted_instance, config=config)
        assert result.rounds == result.ledger.total()
        assert result.rounds >= result.decomposition_rounds > 0

    def test_reuses_supplied_decomposition(self, weighted_instance, config):
        comm = weighted_instance.underlying_graph()
        decomposition = build_tree_decomposition(comm, config=config)
        result = build_distance_labeling(weighted_instance, decomposition=decomposition, config=config)
        assert result.decomposition is decomposition.decomposition
        _assert_exact(weighted_instance, result.labeling, sources=weighted_instance.nodes()[:8])


class TestErrors:
    def test_empty_instance_rejected(self, config):
        with pytest.raises(GraphError):
            build_distance_labeling(WeightedDiGraph(), config=config)

    def test_disconnected_communication_graph_rejected(self, config):
        inst = WeightedDiGraph()
        inst.add_edge(1, 2)
        inst.add_node(99)
        with pytest.raises(GraphError):
            build_distance_labeling(inst, config=config)


@given(
    st.integers(min_value=8, max_value=40),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=12, deadline=None)
def test_labeling_exact_on_random_instances(n, k, seed):
    """Property: decoded distances equal Dijkstra distances on random instances."""
    g = generators.partial_k_tree(max(n, k + 2), k, seed=seed)
    inst = generators.to_directed_instance(g, weight_range=(1, 8), orientation="asymmetric", seed=seed + 1)
    result = build_distance_labeling(inst, config=FrameworkConfig(seed=seed))
    nodes = inst.nodes()
    sample = nodes[:: max(1, len(nodes) // 5)]
    _assert_exact(inst, result.labeling, sources=sample)
