"""Tests for graph properties: diameters, Dijkstra, tree helpers."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graphs import generators, properties
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph


class TestDiameter:
    def test_path_diameter(self):
        assert properties.diameter(generators.path_graph(10)) == 9

    def test_cycle_diameter(self):
        assert properties.diameter(generators.cycle_graph(10)) == 5

    def test_grid_diameter(self):
        assert properties.diameter(generators.grid_graph(3, 5)) == 2 + 4

    def test_disconnected_raises(self):
        g = Graph(nodes=[1, 2])
        with pytest.raises(GraphError):
            properties.diameter(g)

    def test_estimate_is_lower_bound_within_factor_two(self):
        g = generators.partial_k_tree(80, 3, seed=4)
        exact = properties.diameter(g, exact=True)
        estimate = properties.diameter(g, exact=False)
        assert estimate <= exact <= 2 * estimate

    def test_radius_center(self):
        g = generators.path_graph(7)
        assert properties.radius(g) == 3
        assert set(properties.center(g)) == {3}

    def test_largest_component(self):
        g = Graph(edges=[(1, 2), (2, 3), (10, 11)])
        assert properties.largest_component(g) == {1, 2, 3}


class TestDijkstra:
    def test_simple_directed_distances(self):
        g = WeightedDiGraph()
        g.add_edge("a", "b", weight=2)
        g.add_edge("b", "c", weight=3)
        g.add_edge("a", "c", weight=10)
        dist = properties.dijkstra(g, "a")
        assert dist["c"] == 5
        assert "a" not in properties.dijkstra(g, "c")  # unreachable backwards

    def test_parallel_edges_use_min_weight(self):
        g = WeightedDiGraph()
        g.add_edge(1, 2, weight=10)
        g.add_edge(1, 2, weight=4)
        assert properties.dijkstra(g, 1)[2] == 4

    def test_missing_source_raises(self):
        with pytest.raises(GraphError):
            properties.dijkstra(WeightedDiGraph(), "x")

    def test_dijkstra_with_paths_reconstructs_shortest_path(self):
        g = generators.to_directed_instance(
            generators.grid_graph(4, 4), weight_range=(1, 5), orientation="both", seed=2
        )
        dist, pred = properties.dijkstra_with_paths(g, (0, 0))
        # Walk back from the far corner and check the length telescopes.
        node = (3, 3)
        total = 0.0
        while pred[node] is not None:
            prev = pred[node]
            step = min(e.weight for e in g.out_edges(prev) if e.head == node)
            total += step
            node = prev
        assert abs(total - dist[(3, 3)]) < 1e-9

    def test_undirected_dijkstra_matches_directed_encoding(self):
        base = generators.with_random_weights(generators.cycle_with_chords(20, 3, seed=1), 1, 7, seed=2)
        inst = WeightedDiGraph.from_undirected(base)
        for src in list(base.nodes())[:5]:
            d1 = properties.undirected_dijkstra(base, src)
            d2 = properties.dijkstra(inst, src)
            assert d1 == d2

    def test_all_pairs_and_weighted_diameter(self):
        g = generators.to_directed_instance(generators.cycle_graph(6), orientation="both")
        apsp = properties.all_pairs_shortest_paths(g)
        assert apsp[0][3] == 3
        assert properties.weighted_diameter(g) == 3


class TestTreeHelpers:
    def _path_tree(self, n):
        return {i: (i - 1 if i > 0 else None) for i in range(n)}

    def test_subtree_sizes_path(self):
        parent = self._path_tree(5)
        sizes = properties.tree_subtree_sizes(parent)
        assert sizes[0] == 5
        assert sizes[4] == 1

    def test_subtree_sizes_weighted(self):
        parent = self._path_tree(4)
        weights = {0: 0, 1: 1, 2: 0, 3: 1}
        sizes = properties.tree_subtree_sizes(parent, weights)
        assert sizes[0] == 2

    def test_children_map(self):
        parent = {0: None, 1: 0, 2: 0, 3: 1}
        children = properties.tree_children(parent)
        assert sorted(children[0]) == [1, 2]
        assert children[3] == []

    def test_centroid_of_path_is_middle(self):
        parent = self._path_tree(7)
        c = properties.tree_centroid(parent)
        assert c == 3

    def test_centroid_of_star_is_hub(self):
        parent = {0: None}
        parent.update({i: 0 for i in range(1, 8)})
        assert properties.tree_centroid(parent) == 0

    def test_centroid_empty_raises(self):
        with pytest.raises(GraphError):
            properties.tree_centroid({})

    def test_reroot_tree(self):
        parent = self._path_tree(5)
        rerooted = properties.reroot_tree(parent, 4)
        assert rerooted[4] is None
        assert rerooted[0] == 1
        assert len(rerooted) == 5

    def test_reroot_missing_node_raises(self):
        with pytest.raises(GraphError):
            properties.reroot_tree({0: None}, 1)


@given(st.integers(min_value=5, max_value=35), st.integers(min_value=0, max_value=300))
@settings(max_examples=20, deadline=None)
def test_dijkstra_triangle_inequality(n, seed):
    """Property: Dijkstra distances satisfy the triangle inequality."""
    g = generators.to_directed_instance(
        generators.partial_k_tree(n, 2, seed=seed),
        weight_range=(1, 9),
        orientation="asymmetric",
        seed=seed + 1,
    )
    nodes = g.nodes()[:6]
    dist = {u: properties.dijkstra(g, u) for u in nodes}
    for u in nodes:
        for v in nodes:
            for w in nodes:
                duv = dist[u].get(v, math.inf)
                duw = dist[u].get(w, math.inf)
                dwv = dist[w].get(v, math.inf)
                assert duv <= duw + dwv + 1e-9
