"""Fault-injection layer tests (``repro.congest.faults`` + the async tier).

The layer's contract, asserted here:

* **Determinism** — identical (graph, seed, FaultSchedule, DelayModel)
  inputs produce bit-for-bit identical results, ledgers and fault
  :class:`~repro.congest.scheduler.EventRecord` streams; and a *fault-free*
  ``FaultSchedule()`` leaves the async tier bit-for-bit identical to a run
  without the argument.
* **Reconvergence** — after every seeded mass-failure / churn / link-flap
  sweep whose faults are all transient, Bellman-Ford, BFS-tree and flooding
  outputs match the centralized oracle on the (restored) graph; permanent
  faults in raw schedules are honestly reported in the
  :class:`~repro.congest.faults.FaultVerdict` and the protocol converges to
  the *post-fault* graph's oracle instead.
* **Incremental labels** — ``DistanceLabeling.apply_edge_update`` answers
  every pairwise query identically to a from-scratch rebuild after each
  update of a churn sequence (decreases, increases, removals, re-inserts).

The heavy multi-family sweeps are marked ``faults`` (deselected by default;
CI runs them in a dedicated step via ``-m faults``), with every schedule
seeded from the session ``--seed`` through the :class:`ScheduleFuzzer`.
"""

from __future__ import annotations

import math
import random

import pytest

from test_engine_equivalence import _assert_identical

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.congest.engine import SimulationTrace
from repro.congest.faults import (
    Churn,
    FaultEvent,
    FaultSchedule,
    FaultVerdict,
    LinkFlap,
    MassFailure,
    resolve_fault_schedule,
)
from repro.congest.network import CongestNetwork
from repro.congest.node import BroadcastAll
from repro.congest.primitives import broadcast, build_bfs_tree, elect_leader
from repro.congest.scheduler import UniformDelay
from repro.errors import FaultInjectionError, LabelingError, SimulationError
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.graphs.properties import dijkstra
from repro.labeling.construction import build_distance_labeling

INF = math.inf


def _mesh(seed: int, n: int = 24) -> Graph:
    return generators.partial_k_tree(n, 3, seed=seed)


def _instance(graph: Graph, seed: int):
    return generators.to_directed_instance(
        graph, weight_range=(1, 9), orientation="asymmetric", seed=seed
    )


# --------------------------------------------------------------------------- #
# Schedule construction and validation
# --------------------------------------------------------------------------- #
class TestScheduleValidation:
    def test_unknown_kind_and_bad_times_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            FaultSchedule([FaultEvent(3, "node_explodes", 0)])
        with pytest.raises(FaultInjectionError, match="integers >= 1"):
            FaultSchedule([FaultEvent(0, "node_down", 0)])
        with pytest.raises(FaultInjectionError, match="integers >= 1"):
            FaultSchedule([FaultEvent(2.5, "node_down", 0)])

    def test_edge_targets_are_endpoint_pairs(self):
        with pytest.raises(FaultInjectionError, match="endpoint pairs"):
            FaultSchedule([FaultEvent(2, "edge_down", 7)])
        with pytest.raises(FaultInjectionError, match="endpoint pairs"):
            FaultSchedule([FaultEvent(2, "edge_down", (3, 3))])

    def test_overlapping_transitions_rejected(self):
        # Crashing an already-crashed node…
        with pytest.raises(FaultInjectionError):
            FaultSchedule([
                FaultEvent(2, "node_down", 0),
                FaultEvent(4, "node_down", 0),
            ])
        # …recovering a healthy edge, in either endpoint order.
        with pytest.raises(FaultInjectionError):
            FaultSchedule([
                FaultEvent(2, "edge_down", (0, 1)),
                FaultEvent(3, "edge_up", (1, 0)),
                FaultEvent(4, "edge_up", (0, 1)),
            ])

    def test_unknown_targets_rejected_at_bind(self):
        net = CongestNetwork(generators.path_graph(4))
        with pytest.raises(FaultInjectionError, match="not in the network"):
            FaultSchedule([FaultEvent(2, "node_down", 99)]).bind(net)
        with pytest.raises(FaultInjectionError, match="not an edge of the network"):
            FaultSchedule([FaultEvent(2, "edge_down", (0, 3))]).bind(net)

    def test_permanently_dead_source_rejected_up_front(self):
        instance = _instance(_mesh(3), 4)
        src = min(instance.nodes())
        dead_src = FaultSchedule([FaultEvent(4, "node_down", src)])
        with pytest.raises(FaultInjectionError, match="no recovery"):
            distributed_bellman_ford(instance, src, fault_schedule=dead_src)

    def test_sync_tiers_reject_fault_schedules(self):
        net = CongestNetwork(generators.path_graph(5))
        schedule = FaultSchedule([
            FaultEvent(2, "node_down", 2), FaultEvent(4, "node_up", 2),
        ])
        for engine in ("fast", "legacy"):
            with pytest.raises(SimulationError, match="async"):
                net.run(lambda u: BroadcastAll(value=u), engine=engine,
                        fault_schedule=schedule)

    def test_generators_expand_deterministically(self):
        net = CongestNetwork(_mesh(5))
        for model in (
            MassFailure(fraction=0.4, at=5, outage=6, kind="node", seed=9),
            MassFailure(fraction=0.4, at=5, outage=6, kind="edge", seed=9),
            Churn(cycles=3, period=5, outage=2, start=3, seed=9),
            LinkFlap(fraction=0.3, cycles=2, period=7, outage=2, seed=9),
        ):
            a = resolve_fault_schedule(model, net.indexed)
            b = resolve_fault_schedule(model, net.indexed)
            assert a.events == b.events
            assert a.events  # non-trivial on this mesh
            # Every generator is transient: down/up transitions pair off.
            downs = sum(1 for e in a.events if e.kind.endswith("_down"))
            ups = sum(1 for e in a.events if e.kind.endswith("_up"))
            assert downs == ups

    def test_linkflap_overlapping_flaps_rejected(self):
        with pytest.raises(FaultInjectionError, match="outage < period"):
            LinkFlap(fraction=0.2, cycles=2, period=4, outage=4)


# --------------------------------------------------------------------------- #
# Determinism and the fault-free fast path
# --------------------------------------------------------------------------- #
class TestDeterminism:
    def test_empty_schedule_is_bit_for_bit_the_plain_async_run(self, master_seed):
        net = CongestNetwork(_mesh(master_seed % 100))
        plain = net.run(lambda u: BroadcastAll(value=u), engine="async")
        empty = net.run(lambda u: BroadcastAll(value=u), engine="async",
                        fault_schedule=FaultSchedule())
        _assert_identical(plain, empty)
        assert plain.fault_verdict is None
        verdict = empty.fault_verdict
        assert isinstance(verdict, FaultVerdict)
        assert verdict.faults_injected == 0
        assert verdict.reconverged

    def test_identical_inputs_reproduce_bit_for_bit(self, master_seed):
        instance = _instance(_mesh(7), 8)
        src = min(instance.nodes())
        model = Churn(cycles=4, period=5, outage=3, start=3, seed=master_seed)
        delay = UniformDelay(1, 3, seed=master_seed)

        def run(scheduler="bucketed"):
            trace = SimulationTrace(record_events=True)
            bf = distributed_bellman_ford(
                instance, src, fault_schedule=model, delay_model=delay,
                trace=trace, scheduler=scheduler,
            )
            return bf, trace

        a, trace_a = run()
        b, trace_b = run()
        assert a.distances == b.distances
        assert a.parents == b.parents
        _assert_identical(a.simulation, b.simulation)
        assert a.simulation.fault_verdict == b.simulation.fault_verdict
        fault_events_a = [e for e in trace_a.events
                          if e.kind in ("node_down", "node_up",
                                        "edge_down", "edge_up", "drop")]
        fault_events_b = [e for e in trace_b.events
                          if e.kind in ("node_down", "node_up",
                                        "edge_down", "edge_up", "drop")]
        assert fault_events_a == fault_events_b
        assert fault_events_a  # churn actually fired
        # The reference heap queue replays the exact same faulty execution —
        # _EV_FAULT ordering against deliveries/ticks is scheduler-invariant.
        c, trace_c = run(scheduler="heap")
        assert c.distances == a.distances
        _assert_identical(a.simulation, c.simulation)
        assert c.simulation.fault_verdict == a.simulation.fault_verdict
        assert trace_c.events == trace_a.events

    def test_verdict_reports_the_injection(self):
        net = CongestNetwork(_mesh(11))
        model = MassFailure(fraction=0.3, at=6, outage=5, kind="node", seed=2)
        schedule = resolve_fault_schedule(model, net.indexed)
        _, res = broadcast(net, min(net.graph.nodes()), "payload",
                           fault_schedule=model)
        verdict = res.fault_verdict
        assert verdict.faults_injected == len(schedule.events)
        assert verdict.reconverged
        assert verdict.down_nodes_at_end == ()
        assert verdict.down_edges_at_end == ()
        assert verdict.last_fault_round == schedule.horizon
        assert verdict.rounds_to_reconverge >= 1
        assert res.rounds >= schedule.horizon


# --------------------------------------------------------------------------- #
# Reconvergence to the centralized oracle
# --------------------------------------------------------------------------- #
class TestReconvergence:
    @pytest.mark.parametrize("model", [
        MassFailure(fraction=0.3, at=6, outage=6, kind="node", seed=5),
        MassFailure(fraction=0.3, at=6, outage=6, kind="edge", seed=5),
        Churn(cycles=4, period=5, outage=3, start=4, seed=5),
        LinkFlap(fraction=0.25, cycles=2, period=7, outage=3, seed=5),
    ], ids=["mass_node", "mass_edge", "churn", "flap"])
    def test_bellman_ford_reconverges_to_dijkstra(self, model):
        instance = _instance(_mesh(13), 14)
        src = min(instance.nodes())
        oracle = dijkstra(instance, src)
        bf = distributed_bellman_ford(instance, src, fault_schedule=model)
        assert bf.simulation.fault_verdict.reconverged
        for v in instance.nodes():
            assert bf.distances.get(v, INF) == oracle.get(v, INF)

    def test_bfs_tree_reconverges_after_node_crashes(self):
        graph = _mesh(17)
        net = CongestNetwork(graph)
        root = min(graph.nodes())
        layers = graph.bfs_layers(root)
        model = Churn(cycles=4, period=5, outage=3, start=3, seed=6)
        parent, depth, res = build_bfs_tree(net, root, fault_schedule=model)
        assert res.fault_verdict.reconverged
        assert depth == layers
        for v, p in parent.items():
            if v != root:
                assert depth[v] == depth[p] + 1

    def test_broadcast_and_leader_reconverge(self):
        graph = _mesh(19)
        net = CongestNetwork(graph)
        root = min(graph.nodes())
        model = MassFailure(fraction=0.4, at=5, outage=6, kind="edge", seed=3)
        values, res = broadcast(net, root, ("cfg", 7), fault_schedule=model)
        assert res.fault_verdict.reconverged
        assert values == {u: ("cfg", 7) for u in graph.nodes()}
        leader, res = elect_leader(net, fault_schedule=model)
        assert leader == min(graph.nodes())
        assert res.fault_verdict.reconverged

    def test_root_reboot_mid_broadcast(self):
        graph = _mesh(23)
        net = CongestNetwork(graph)
        root = min(graph.nodes())
        reboot = FaultSchedule([
            FaultEvent(3, "node_down", root),
            FaultEvent(7, "node_up", root),
        ])
        values, res = broadcast(net, root, "v", fault_schedule=reboot)
        assert values == {u: "v" for u in graph.nodes()}
        assert res.fault_verdict.reconverged

    def test_permanent_edge_fault_reported_and_converges_to_post_fault_graph(self):
        # A raw schedule may leave faults standing; the verdict must say so.
        # The edge dies at t=1, before any payload crosses it (pulse-0 sends
        # arrive at t=1, after the fault applies), so the monotone
        # Bellman-Ford converges to the pruned graph's exact distances —
        # with a later crash the already-propagated shorter route would
        # survive, which is exactly why the verdict reports the fault.
        graph = Graph()
        for u, v in [(0, 1), (1, 2), (2, 3), (0, 3)]:
            graph.add_edge(u, v)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 5), orientation="both", seed=2
        )
        dead = FaultSchedule([FaultEvent(1, "edge_down", (0, 1))])
        bf = distributed_bellman_ford(instance, 0, fault_schedule=dead)
        verdict = bf.simulation.fault_verdict
        assert not verdict.reconverged
        assert verdict.down_edges_at_end == ((0, 1),)
        pruned = instance.copy()
        for e in list(pruned.edges()):
            if {e.tail, e.head} == {0, 1}:
                pruned.remove_edge(e.eid)
        oracle = dijkstra(pruned, 0)
        for v in instance.nodes():
            assert bf.distances.get(v, INF) == oracle.get(v, INF)


# --------------------------------------------------------------------------- #
# Incremental label maintenance
# --------------------------------------------------------------------------- #
class TestIncrementalLabeling:
    def _all_pairs_match(self, labeling, instance):
        rebuilt = build_distance_labeling(instance).labeling
        for u in instance.nodes():
            for v in instance.nodes():
                assert labeling.distance(u, v) == rebuilt.distance(u, v)

    def test_apply_edge_update_matches_rebuild_under_churn(self, master_seed):
        graph = _mesh(29, n=18)
        instance = _instance(graph, 30)
        labeling = build_distance_labeling(instance).labeling
        labeling.attach_instance(instance)
        shadow = instance.copy()
        rng = random.Random(master_seed)
        arcs = [(e.tail, e.head) for e in instance.edges() if e.tail != e.head]
        removed = set()
        for step in range(12):
            tail, head = arcs[rng.randrange(len(arcs))]
            if (tail, head) in removed:
                weight = float(rng.randint(1, 9))
            else:
                weight = rng.choice([0.5, 2.0, 7.0, 20.0, INF])
            stats = labeling.apply_edge_update(tail, head, weight)
            assert stats.old_weight != weight or stats.entries_rewritten == 0
            for e in [x for x in shadow.out_edges(tail) if x.head == head]:
                shadow.remove_edge(e.eid)
            if weight == INF:
                removed.add((tail, head))
            else:
                removed.discard((tail, head))
                shadow.add_edge(tail, head, weight)
            # Full-rebuild equivalence needs the communication graph intact
            # (the decomposition is rebuilt from it); compare against the
            # exact Dijkstra oracle instead, which is the same guarantee.
            for s in shadow.nodes():
                d = dijkstra(shadow, s)
                for t in shadow.nodes():
                    assert labeling.distance(s, t) == d.get(t, INF)

    def test_rebuild_equivalence_on_weight_only_churn(self):
        instance = _instance(_mesh(31, n=16), 32)
        labeling = build_distance_labeling(instance).labeling
        labeling.attach_instance(instance)
        shadow = instance.copy()
        arcs = [(e.tail, e.head) for e in instance.edges() if e.tail != e.head]
        for k, (tail, head) in enumerate(arcs[::3]):
            weight = float(1 + (k * 5) % 11)
            labeling.apply_edge_update(tail, head, weight)
            for e in [x for x in shadow.out_edges(tail) if x.head == head]:
                shadow.remove_edge(e.eid)
            shadow.add_edge(tail, head, weight)
        self._all_pairs_match(labeling, shadow)

    def test_misuse_raises_labeling_error(self):
        instance = _instance(_mesh(37, n=12), 38)
        labeling = build_distance_labeling(instance).labeling
        with pytest.raises(LabelingError, match="attach_instance"):
            labeling.apply_edge_update(0, 1, 2.0)
        labeling.attach_instance(instance)
        with pytest.raises(LabelingError, match="self-loop"):
            labeling.apply_edge_update(0, 0, 2.0)
        with pytest.raises(LabelingError, match="not.*vert"):
            labeling.apply_edge_update(0, 999, 2.0)
        with pytest.raises(LabelingError, match="non-negative"):
            arc = next(e for e in instance.edges() if e.tail != e.head)
            labeling.apply_edge_update(arc.tail, arc.head, -1.0)
        non_edge = None
        nodes = instance.nodes()
        for a in nodes:
            heads = {e.head for e in instance.out_edges(a)}
            for b in nodes:
                if b != a and b not in heads:
                    non_edge = (a, b)
                    break
            if non_edge:
                break
        with pytest.raises(LabelingError, match="grow the topology"):
            labeling.apply_edge_update(*non_edge, 2.0)

    def test_update_stats_accounting(self):
        instance = _instance(_mesh(41, n=14), 42)
        labeling = build_distance_labeling(instance).labeling
        labeling.attach_instance(instance)
        arc = next(e for e in instance.edges() if e.tail != e.head)
        stats = labeling.apply_edge_update(arc.tail, arc.head, 0.25)
        assert stats.old_weight == arc.weight
        assert stats.new_weight == 0.25
        assert stats.candidate_hubs > 0
        assert stats.from_hubs_recomputed + stats.to_hubs_recomputed > 0
        assert stats.entries_rewritten > 0
        # Re-applying the same weight is a no-op.
        again = labeling.apply_edge_update(arc.tail, arc.head, 0.25)
        assert again.entries_rewritten == 0
        assert again.candidate_hubs == 0


# --------------------------------------------------------------------------- #
# Seeded multi-family sweep (CI: -m faults)
# --------------------------------------------------------------------------- #
@pytest.mark.faults
class TestSeededFaultSweep:
    """Every fault family × several seeded schedules × delay models: exact
    reconvergence to the Dijkstra oracle and bit-for-bit reproducibility,
    all schedules derived from ``--seed``."""

    @pytest.mark.parametrize("kind", ["mass_node", "mass_edge", "churn", "flap"])
    def test_bellman_ford_sweep(self, kind, schedule_fuzzer, master_seed):
        instance = _instance(_mesh(43), 44)
        src = min(instance.nodes())
        oracle = dijkstra(instance, src)
        case = f"bf_{kind}"
        for index, model in enumerate(
            schedule_fuzzer.fault_models(kind, case, 4)
        ):
            delay = schedule_fuzzer.model(
                ("unit", "uniform", "adversarial")[index % 3], case, index
            )
            bf = distributed_bellman_ford(
                instance, src, fault_schedule=model, delay_model=delay
            )
            assert bf.simulation.fault_verdict.reconverged, (kind, index)
            for v in instance.nodes():
                assert bf.distances.get(v, INF) == oracle.get(v, INF), (
                    kind, index, v,
                )
            # Rerun on the reference heap queue: reproducibility and
            # scheduler-equivalence under faults in one check.
            rerun = distributed_bellman_ford(
                instance, src, fault_schedule=model, delay_model=delay,
                scheduler="heap",
            )
            assert rerun.distances == bf.distances
            _assert_identical(bf.simulation, rerun.simulation)
            assert (rerun.simulation.fault_verdict
                    == bf.simulation.fault_verdict)

    @pytest.mark.parametrize("kind", ["mass_node", "mass_edge", "churn", "flap"])
    def test_primitive_sweep(self, kind, schedule_fuzzer):
        graph = _mesh(47)
        net = CongestNetwork(graph)
        root = min(graph.nodes())
        layers = graph.bfs_layers(root)
        for index, model in enumerate(
            schedule_fuzzer.fault_models(kind, f"prim_{kind}", 3)
        ):
            values, res = broadcast(net, root, ("blob", index),
                                    fault_schedule=model)
            assert res.fault_verdict.reconverged, (kind, index)
            assert values == {u: ("blob", index) for u in graph.nodes()}
            _, depth, res = build_bfs_tree(net, root, fault_schedule=model)
            assert res.fault_verdict.reconverged, (kind, index)
            assert depth == layers, (kind, index)
