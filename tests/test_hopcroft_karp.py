"""Tests for the centralized Hopcroft-Karp baseline."""

import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.errors import NotBipartiteError
from repro.graphs import generators
from repro.graphs.convert import graph_to_networkx
from repro.graphs.graph import Graph
from repro.matching.augmenting import verify_matching
from repro.matching.hopcroft_karp import hopcroft_karp_matching, maximum_matching_size


class TestBasics:
    def test_empty_graph(self):
        assert hopcroft_karp_matching(Graph()) == set()

    def test_single_edge(self):
        g = Graph(edges=[(1, 2)])
        assert hopcroft_karp_matching(g) == {frozenset({1, 2})}

    def test_even_path_perfect_matching(self):
        g = generators.path_graph(6)
        m = hopcroft_karp_matching(g)
        assert len(m) == 3
        assert verify_matching(g, m)

    def test_odd_cycle_rejected(self):
        with pytest.raises(NotBipartiteError):
            hopcroft_karp_matching(generators.cycle_graph(5))

    def test_star_matches_one(self):
        assert maximum_matching_size(generators.star_graph(8)) == 1

    def test_grid_has_perfect_matching_when_even(self):
        g = generators.grid_graph(4, 6)
        assert maximum_matching_size(g) == 12

    def test_explicit_partition(self):
        g = Graph(edges=[("L0", "R0"), ("L1", "R0")])
        m = hopcroft_karp_matching(g, partition=({"L0", "L1"}, {"R0"}))
        assert len(m) == 1

    def test_partition_must_cover_vertices(self):
        from repro.errors import GraphError

        g = Graph(edges=[(1, 2)])
        g.add_node(3)
        with pytest.raises(GraphError):
            hopcroft_karp_matching(g, partition=({1}, {2}))


@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_matches_networkx_on_random_bipartite(n_left, n_right, seed):
    """Property: our Hopcroft-Karp matches networkx's matching size."""
    g = generators.random_banded_bipartite(n_left, n_right, band=3, seed=seed)
    ours = hopcroft_karp_matching(g)
    assert verify_matching(g, ours)
    nxg = graph_to_networkx(g)
    left, _ = g.bipartition()
    theirs = nx.bipartite.maximum_matching(nxg, top_nodes=left)
    assert len(ours) == len(theirs) // 2
