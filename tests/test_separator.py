"""Tests for the Sep balanced-separator algorithm (Lemma 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SeparatorParams
from repro.core.rounds import CostModel
from repro.decomposition.separator import (
    BalancedSeparator,
    find_balanced_separator,
    is_mu_balanced,
)
from repro.decomposition.validation import is_balanced_separator, separator_quality
from repro.errors import GraphError
from repro.graphs import generators, properties
from repro.graphs.treewidth import treewidth_upper_bound


class TestBalanceChecks:
    def test_empty_separator_of_clique_is_balanced_only_trivially(self):
        g = generators.complete_graph(6)
        assert not is_mu_balanced(g, set(), None, 0.75)
        assert is_mu_balanced(g, set(range(6)), None, 0.75)

    def test_path_middle_vertex_is_balanced(self):
        g = generators.path_graph(9)
        assert is_mu_balanced(g, {4}, None, 0.5)
        assert not is_mu_balanced(g, {1}, None, 0.5)

    def test_focus_weights(self):
        g = generators.path_graph(10)
        focus = {0, 1, 2, 3}
        # Separating at 5 leaves all focus on one side: not balanced for alpha=0.6.
        assert not is_mu_balanced(g, {5}, focus, 0.6)
        assert is_mu_balanced(g, {2}, focus, 0.6)


class TestSepAlgorithm:
    def test_balanced_and_size_bounded_on_partial_k_trees(self):
        for seed in range(4):
            g = generators.partial_k_tree(120, 3, seed=seed)
            result = find_balanced_separator(g, seed=seed)
            tau = treewidth_upper_bound(g)
            assert is_balanced_separator(
                g, result.separator, SeparatorParams.practical().balance_fraction
            )
            assert result.size() <= 400 * (tau + 1) ** 2
            assert result.balance <= SeparatorParams.practical().balance_fraction + 1e-9

    def test_grid_separator(self):
        g = generators.grid_graph(8, 8)
        result = find_balanced_separator(g, seed=1)
        assert is_balanced_separator(g, result.separator, 0.75)
        quality = separator_quality(g, result.separator)
        assert quality["balance"] <= 0.75
        assert quality["size"] == result.size()

    def test_small_graph_uses_trivial_exit(self):
        g = generators.cycle_graph(10)
        result = find_balanced_separator(g, seed=0)
        assert result.method == "trivial"
        assert result.separator == set(g.nodes())

    def test_focus_set_restricts_balance_target(self):
        g = generators.partial_k_tree(100, 2, seed=5)
        focus = set(list(g.nodes())[:40])
        result = find_balanced_separator(g, focus=focus, seed=2)
        assert is_balanced_separator(g, result.separator, 0.75 + 1e-9, focus=focus)

    def test_rounds_charged_with_cost_model(self):
        g = generators.partial_k_tree(150, 3, seed=7)
        cm = CostModel(n=g.num_nodes(), diameter=properties.diameter(g))
        with_cm = find_balanced_separator(g, seed=3, cost_model=cm)
        without_cm = find_balanced_separator(g, seed=3)
        assert with_cm.rounds > 0
        assert without_cm.rounds == 0
        assert with_cm.separator == without_cm.separator  # same randomness, same output

    def test_disconnected_graph_rejected(self):
        from repro.graphs.graph import Graph

        g = Graph(edges=[(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            find_balanced_separator(g)

    def test_empty_graph_gives_empty_separator(self):
        from repro.graphs.graph import Graph

        sep = BalancedSeparator()
        result = sep.find(Graph())
        assert result.separator == set()

    def test_paper_params_fall_back_to_trivial_on_small_instances(self):
        g = generators.partial_k_tree(150, 3, seed=1)
        result = find_balanced_separator(g, params=SeparatorParams.paper(), seed=1)
        # With the paper's constants, 150 <= 200·t² already at t=2.
        assert result.method == "trivial"
        assert is_balanced_separator(
            g, result.separator, SeparatorParams.paper().balance_fraction
        )

    def test_known_width_skips_doubling(self):
        g = generators.partial_k_tree(200, 3, seed=2)
        result = find_balanced_separator(g, seed=2, known_width=4)
        assert result.width_guess >= 4
        assert is_balanced_separator(g, result.separator, 0.75 + 1e-9)


@given(st.integers(min_value=30, max_value=150), st.integers(min_value=0, max_value=300))
@settings(max_examples=15, deadline=None)
def test_separator_always_balanced(n, seed):
    """Property: whatever exit Sep takes, the output is a valid balanced separator."""
    g = generators.partial_k_tree(n, 3, seed=seed)
    result = find_balanced_separator(g, seed=seed)
    assert is_balanced_separator(
        g, result.separator, SeparatorParams.practical().balance_fraction + 1e-9
    )
