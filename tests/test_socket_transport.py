"""Tests for the pluggable shard-transport layer (``repro.congest.transport``).

The sharded tier's boundary exchange is pluggable: the default
:class:`SharedMemoryTransport` (one arena + pool barrier) and the
:class:`SocketTransport` (localhost TCP, length-prefixed frames, workers hold
no shared memory) must be bit-for-bit interchangeable.  This file covers:

* the socket transport against the fast reference and the shm-sharded run at
  every shard count in ``{1, 2, 4, 7}`` — results, ledger and traces — plus
  the socket-only ``shard_stats`` fields (``arena_bytes == 0``, per-peer
  bytes on the wire);
* transport mixing on one persistent :class:`ShardPool`;
* the run-header ingest fix: per-worker header payload bytes shrink as
  ~1/num_shards for Bellman-Ford (``RoundKernel.slice_for_shard``);
* failure paths — a worker hard-killed mid-round over sockets raises a clean
  :class:`SimulationError` and the pool recovers; an unbindable listener
  degrades to shared memory with a single :class:`EngineFallbackWarning`
  naming both tiers; unknown transport names and ``transport=`` on a
  non-sharded engine are rejected;
* ``ConvergenceError`` keeps the pool warm over sockets, same as shm.

The full randomized cross-tier harness additionally re-runs its sharded
equivalence suite under ``--shard-transport socket`` in CI.
"""

from __future__ import annotations

import warnings

import pytest

from repro.congest.engine import (
    EngineFallbackWarning,
    ShardPool,
    SimulationTrace,
    run_sharded,
    sharded_available,
)
from repro.congest.network import CongestNetwork
from repro.congest.transport import (
    SharedMemoryTransport,
    SocketTransport,
    Transport,
    resolve_transport,
)
from repro.errors import SimulationError
from repro.graphs import generators

needs_sharded = pytest.mark.skipif(
    not sharded_available(), reason="numpy/shared-memory unavailable"
)

SHARD_COUNTS = (1, 2, 4, 7)


class SocketSuicidalKernel:
    """Hard-kills the shard-1 worker mid-round (module-level so it ships to
    pool workers by pickle).  Defined lazily as a real kernel subclass below
    because :mod:`repro.congest.kernels` needs numpy at class-build time."""


if sharded_available():
    from repro.congest.kernels import FloodingKernel

    class SocketSuicidalKernel(FloodingKernel):  # noqa: F811
        def round(self, state, inbox, inbox_senders, csr, shard):
            if shard.index == 1:
                import os
                import signal

                os.kill(os.getpid(), signal.SIGKILL)
            return super().round(state, inbox, inbox_senders, csr, shard)


def _bf_instance(master_seed, n=48):
    graph = generators.partial_k_tree(n, 3, seed=master_seed)
    return generators.to_directed_instance(
        graph, weight_range=(1, 9), orientation="asymmetric", seed=master_seed
    )


def _assert_same_run(ref, run):
    assert run.rounds == ref.rounds
    assert run.outputs == ref.outputs
    assert run.messages_sent == ref.messages_sent
    assert run.words_sent == ref.words_sent
    assert run.max_words_per_edge_round == ref.max_words_per_edge_round
    assert run.max_message_words == ref.max_message_words
    assert run.halted == ref.halted


class TestTransportResolution:
    """Argument plumbing that must work with or without numpy installed."""

    def test_resolve_names_and_instances(self):
        assert isinstance(resolve_transport(None), SharedMemoryTransport)
        assert isinstance(resolve_transport("shm"), SharedMemoryTransport)
        assert isinstance(resolve_transport("shared_memory"), SharedMemoryTransport)
        assert isinstance(resolve_transport("socket"), SocketTransport)
        assert isinstance(resolve_transport("tcp"), SocketTransport)
        custom = SocketTransport(host="127.0.0.1")
        assert resolve_transport(custom) is custom
        assert isinstance(custom, Transport)
        assert SharedMemoryTransport.name == "shm"
        assert SocketTransport.name == "socket"

    def test_unknown_transport_rejected(self):
        with pytest.raises(SimulationError, match="unknown shard transport"):
            resolve_transport("carrier_pigeon")

    def test_transport_requires_sharded_engine(self):
        from repro.congest.node import BroadcastAll

        net = CongestNetwork(generators.cycle_graph(6))
        with pytest.raises(SimulationError, match="engine='sharded'"):
            net.run(lambda u: BroadcastAll(value=u), engine="fast",
                    transport="socket")


class TestPeerDialRetry:
    """The peer-mesh dial retries refused connections with backoff.

    A freshly announced listener port can refuse dials for a beat while the
    OS installs the backlog; ``_dial_peer`` must absorb that transient and
    still fail fast on timeouts and other socket errors.  The accept side is
    a stub so the refused-then-up sequence is deterministic.
    """

    def _patched(self, monkeypatch, outcomes):
        """Route ``create_connection`` through ``outcomes`` (exception
        instances are raised, anything else returned) and capture sleeps."""
        from repro.congest import transport as transport_mod

        calls = {"dials": 0, "sleeps": []}
        seq = list(outcomes)

        def fake_create_connection(addr, timeout=None):
            calls["dials"] += 1
            out = seq.pop(0)
            if isinstance(out, BaseException):
                raise out
            return out

        monkeypatch.setattr(
            transport_mod.socket_mod, "create_connection",
            fake_create_connection,
        )
        monkeypatch.setattr(
            transport_mod.time, "sleep", lambda s: calls["sleeps"].append(s)
        )
        return calls

    def test_refused_then_accepting_listener_connects(self, monkeypatch):
        from repro.congest.transport import _dial_peer

        sentinel = object()
        calls = self._patched(
            monkeypatch,
            [ConnectionRefusedError(111, "refused"),
             ConnectionRefusedError(111, "refused"),
             sentinel],
        )
        conn = _dial_peer("127.0.0.1", 40001, timeout=1.0, what="peer shard 1")
        assert conn is sentinel
        assert calls["dials"] == 3
        # Exponential backoff: each wait doubles the previous one.
        assert len(calls["sleeps"]) == 2
        assert calls["sleeps"][1] == 2 * calls["sleeps"][0]

    def test_persistently_refused_dial_breaks_after_bounded_attempts(
        self, monkeypatch
    ):
        from repro.congest.transport import (
            TransportBrokenError, _DIAL_ATTEMPTS, _dial_peer,
        )

        calls = self._patched(
            monkeypatch,
            [ConnectionRefusedError(111, "refused")] * _DIAL_ATTEMPTS,
        )
        with pytest.raises(TransportBrokenError, match="peer shard 2"):
            _dial_peer("127.0.0.1", 40002, timeout=1.0, what="peer shard 2")
        assert calls["dials"] == _DIAL_ATTEMPTS
        assert len(calls["sleeps"]) == _DIAL_ATTEMPTS - 1

    def test_non_refusal_errors_fail_fast(self, monkeypatch):
        from repro.congest.transport import TransportBrokenError, _dial_peer

        calls = self._patched(monkeypatch, [OSError("no route to host")])
        with pytest.raises(TransportBrokenError, match="no route to host"):
            _dial_peer("127.0.0.1", 40003, timeout=1.0, what="peer shard 3")
        assert calls["dials"] == 1
        assert calls["sleeps"] == []


@needs_sharded
class TestSocketEquivalence:
    """The socket transport is bit-for-bit the shm transport is bit-for-bit
    the fast tier, at every shard count — and reports its wire traffic."""

    def test_bellman_ford_socket_matches_fast_and_shm(self, master_seed):
        from repro.congest.bellman_ford import distributed_bellman_ford

        instance = _bf_instance(master_seed)
        source = min(instance.nodes(), key=str)
        ref_trace = SimulationTrace()
        ref = distributed_bellman_ford(instance, source, engine="fast",
                                       trace=ref_trace)
        for shards in SHARD_COUNTS:
            shm = distributed_bellman_ford(
                instance, source, engine="sharded", num_shards=shards,
                transport="shm",
            )
            trace = SimulationTrace()
            sock = distributed_bellman_ford(
                instance, source, engine="sharded", num_shards=shards,
                transport="socket", trace=trace,
            )
            assert sock.simulation.engine == "sharded", shards
            _assert_same_run(ref.simulation, sock.simulation)
            assert sock.distances == ref.distances == shm.distances, shards
            assert sock.parents == ref.parents == shm.parents, shards
            assert trace.as_dicts() == ref_trace.as_dicts(), shards

            stats = sock.simulation.shard_stats
            shm_stats = shm.simulation.shard_stats
            assert stats["transport"] == "socket"
            assert shm_stats["transport"] == "shm"
            # No arena on the wire flavour; the declared-state footprint is
            # the same shard-local tiling either way.
            assert stats["arena_bytes"] == 0
            assert shm_stats["arena_bytes"] > 0
            assert stats["declared_state_bytes"] == shm_stats["declared_state_bytes"]
            # The published-boundary accounting is transport-independent.
            assert (
                stats["boundary_words_published"]
                == shm_stats["boundary_words_published"]
            )
            # Wire accounting: the control plane always moves bytes; peer
            # frames only exist once there are boundaries to cross.
            assert stats["wire_control_bytes"] > 0
            assert stats["wire_bytes_total"] >= stats["wire_control_bytes"]
            peer_bytes = stats["wire_bytes_by_peer"]
            assert stats["wire_bytes_total"] == (
                stats["wire_control_bytes"] + sum(peer_bytes.values())
            )
            if shards == 1:
                assert peer_bytes == {}
            else:
                assert sum(peer_bytes.values()) > 0
            assert shm_stats["wire_bytes_total"] == 0

    def test_transports_mix_on_one_pool(self, master_seed):
        """One persistent pool serves shm and socket runs back to back with
        the same parked workers — the pool is transport-agnostic."""
        from repro.congest.bellman_ford import distributed_bellman_ford

        instance = _bf_instance(master_seed, n=30)
        source = min(instance.nodes(), key=str)
        ref = distributed_bellman_ford(instance, source, engine="fast")
        with ShardPool(num_shards=2) as pool:
            runs = []
            for transport in ("shm", "socket", "shm", "socket"):
                run = distributed_bellman_ford(
                    instance, source, engine="sharded", shard_pool=pool,
                    transport=transport,
                )
                assert run.simulation.shard_stats["transport"] == transport
                runs.append(run)
            assert pool.workers_started == 2  # no respawn between transports
            pids = {tuple(r.simulation.shard_stats["worker_pids"]) for r in runs}
            assert len(pids) == 1
            for run in runs:
                assert run.distances == ref.distances
                _assert_same_run(ref.simulation, run.simulation)


@needs_sharded
class TestRunHeaderIngest:
    """The O(m/num_shards) ingest fix: ``RoundKernel.slice_for_shard`` ships
    each Bellman-Ford worker only its owned adjacency, so the per-shard
    header suffix shrinks as ~1/num_shards instead of replicating the whole
    edge payload to every worker."""

    # Fixed pickle framing overhead per suffix (class path, tuple shells,
    # shard index) that does not scale with the graph.
    SLACK = 600

    def _header(self, instance, source, shards, transport):
        from repro.congest.bellman_ford import distributed_bellman_ford

        run = distributed_bellman_ford(
            instance, source, engine="sharded", num_shards=shards,
            transport=transport,
        )
        stats = run.simulation.shard_stats
        assert stats["num_shards"] == shards
        return run, stats["run_header_bytes"]

    @pytest.mark.parametrize("transport", ["shm", "socket"])
    def test_per_shard_header_bytes_shrink(self, master_seed, transport):
        from repro.congest.bellman_ford import distributed_bellman_ford

        instance = _bf_instance(master_seed, n=120)
        source = min(instance.nodes(), key=str)
        ref = distributed_bellman_ford(instance, source, engine="fast")
        _, single = self._header(instance, source, 1, transport)
        whole = single["per_shard"][0]
        assert len(single["per_shard"]) == 1
        prev_max = whole + 1
        for shards in (2, 4):
            run, header = self._header(instance, source, shards, transport)
            per_shard = header["per_shard"]
            assert len(per_shard) == shards
            # The regression the fix exists for: each worker's suffix is a
            # ~1/num_shards slice of the whole-kernel payload, not a copy.
            assert max(per_shard) <= whole / shards + self.SLACK, (
                transport, shards, whole, per_shard,
            )
            assert max(per_shard) < prev_max
            prev_max = max(per_shard)
            # The common blob is pickled once, not per worker, and the
            # sliced kernels still produce the exact fast-tier answer.
            assert header["common"] > 0
            assert run.distances == ref.distances

    def test_slice_for_shard_defaults_to_identity(self, master_seed):
        """Kernels that don't override the hook ship unchanged."""
        from repro.congest.kernels import FloodingKernel, RoundKernel
        from repro.graphs.sharding import Shard, ShardPlan

        csr = generators.grid_graph(5, 5).to_indexed().to_arrays()
        plan = ShardPlan.balanced(csr, 3)
        kernel = FloodingKernel(root=(0, 0), chunks=[("c", 1)])
        for shard in plan:
            assert kernel.slice_for_shard(shard, csr) is kernel
        assert RoundKernel.slice_for_shard is not None

    def test_bellman_ford_slice_owns_only_shard_nodes(self, master_seed):
        from repro.congest.bellman_ford import BellmanFordKernel
        from repro.graphs.sharding import ShardPlan

        instance = _bf_instance(master_seed, n=60)
        comm = instance.underlying_graph()
        csr = comm.to_indexed().to_arrays()
        source = min(instance.nodes(), key=str)
        local_inputs = {
            u: [(e.head, e.weight) for e in instance.out_edges(u)]
            for u in instance.nodes()
        }
        kernel = BellmanFordKernel(source, local_inputs)
        plan = ShardPlan.balanced(csr, 4)
        index_of = csr.index_of
        seen = set()
        for shard in plan:
            sliced = kernel.slice_for_shard(shard, csr)
            assert type(sliced) is BellmanFordKernel
            assert sliced.source == source
            for u in sliced.local_inputs:
                assert shard.owns_node(index_of[u])
                assert sliced.local_inputs[u] == local_inputs[u]
                seen.add(u)
        # The slices tile the original inputs (restricted to graph nodes).
        assert seen == {u for u in local_inputs if u in index_of}
        # A whole-graph shard keeps the original instance (no copy churn).
        single = ShardPlan.single(csr)
        assert kernel.slice_for_shard(single.shard(0), csr) is kernel


@needs_sharded
class TestSocketFailurePaths:
    def test_killed_worker_over_socket_raises_and_pool_recovers(
        self, master_seed
    ):
        """SIGKILL of a shard worker mid-round over TCP: the parent sees the
        broken connection as a clean SimulationError (no hang on a recv),
        and the same pool restarts workers for the next run."""
        from repro.congest.bellman_ford import distributed_bellman_ford

        network = CongestNetwork(generators.cycle_graph(12))
        with ShardPool(num_shards=2) as pool:
            with pytest.raises(SimulationError, match="failed or timed out"):
                run_sharded(
                    network,
                    SocketSuicidalKernel(0, [("c", 1)]),
                    pool=pool,
                    barrier_timeout=5.0,
                    transport="socket",
                )
            assert pool.num_workers == 0  # generation discarded
            instance = generators.to_directed_instance(
                generators.cycle_graph(12), weight_range=(1, 5),
                orientation="both", seed=master_seed,
            )
            result = distributed_bellman_ford(
                instance, 0, engine="sharded", shard_pool=pool,
                transport="socket",
            )
            ref = distributed_bellman_ford(instance, 0, engine="fast")
            assert result.distances == ref.distances
            assert result.simulation.words_sent == ref.simulation.words_sent

    def test_unbindable_listener_falls_back_to_shm(self, master_seed):
        """A listener that cannot bind degrades to the shared-memory
        transport with exactly one EngineFallbackWarning naming both the
        requested and the selected flavour; the run still executes sharded
        and matches the fast tier."""
        from repro.congest.bellman_ford import distributed_bellman_ford

        instance = _bf_instance(master_seed, n=24)
        source = min(instance.nodes(), key=str)
        ref = distributed_bellman_ford(instance, source, engine="fast")
        # TEST-NET-3 (RFC 5737): never assigned to a local interface, so the
        # bind fails with EADDRNOTAVAIL without touching any real network.
        bad = SocketTransport(host="203.0.113.1")
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            run = distributed_bellman_ford(
                instance, source, engine="sharded", num_shards=2,
                transport=bad,
            )
        if run.simulation.shard_stats["transport"] == "socket":
            pytest.skip("host unexpectedly bindable on this platform")
        fallbacks = [
            w for w in rec if issubclass(w.category, EngineFallbackWarning)
        ]
        assert len(fallbacks) == 1
        message = str(fallbacks[0].message)
        assert "sharded[socket]" in message
        assert "sharded[shm]" in message
        assert "cannot listen" in message
        assert run.simulation.engine == "sharded"
        assert run.simulation.shard_stats["transport"] == "shm"
        assert run.distances == ref.distances
        _assert_same_run(ref.simulation, run.simulation)

    def test_convergence_error_keeps_pool_warm_over_socket(self, master_seed):
        """max_rounds exhaustion over TCP still ends with the clean STOP
        handshake and the fin drain, so the workers survive for reuse."""
        from repro.congest.bellman_ford import distributed_bellman_ford
        from repro.errors import ConvergenceError

        graph = generators.path_graph(20)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 5), orientation="both", seed=master_seed
        )
        with ShardPool(num_shards=2) as pool:
            with pytest.raises(ConvergenceError):
                distributed_bellman_ford(
                    instance, 0, engine="sharded", max_rounds=3,
                    shard_pool=pool, transport="socket",
                )
            assert pool.num_workers == 2  # workers parked, not discarded
            pids = pool.worker_pids()
            ref = distributed_bellman_ford(instance, 0, engine="fast")
            run = distributed_bellman_ford(
                instance, 0, engine="sharded", shard_pool=pool,
                transport="socket",
            )
            assert run.distances == ref.distances
            assert pool.worker_pids() == pids
            assert pool.workers_started == 2
