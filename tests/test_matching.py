"""Tests for the exact bipartite maximum matching algorithm (Theorem 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FrameworkConfig
from repro.errors import NotBipartiteError
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.matching.augmenting import verify_matching
from repro.matching.bipartite import maximum_bipartite_matching
from repro.matching.hopcroft_karp import hopcroft_karp_matching


BIPARTITE_FAMILIES = [
    ("grid_4x8", lambda: generators.grid_graph(4, 8)),
    ("grid_5x9", lambda: generators.grid_graph(5, 9)),
    ("even_cycle", lambda: generators.cycle_graph(24)),
    ("tree", lambda: generators.random_tree(45, seed=3)),
    ("banded", lambda: generators.random_banded_bipartite(20, 24, band=3, seed=4)),
    ("subdivided_pkt", lambda: generators.subdivided_graph(generators.partial_k_tree(25, 3, seed=5))),
    ("caterpillar", lambda: generators.caterpillar_graph(15, 2)),
]


class TestExactness:
    @pytest.mark.parametrize("name,factory", BIPARTITE_FAMILIES, ids=[f[0] for f in BIPARTITE_FAMILIES])
    def test_matches_hopcroft_karp(self, name, factory):
        graph = factory()
        result = maximum_bipartite_matching(graph, config=FrameworkConfig(seed=13))
        optimum = len(hopcroft_karp_matching(graph))
        assert result.size == optimum
        assert verify_matching(graph, result.matching)

    def test_empty_graph(self):
        result = maximum_bipartite_matching(Graph())
        assert result.size == 0

    def test_disconnected_graph(self):
        g = Graph(edges=[(1, 2), (3, 4), (5, 6)])
        g.add_node(7)
        result = maximum_bipartite_matching(g, config=FrameworkConfig(seed=1))
        assert result.size == 3

    def test_non_bipartite_rejected(self):
        with pytest.raises(NotBipartiteError):
            maximum_bipartite_matching(generators.cycle_graph(7))

    def test_deterministic_given_seed(self):
        g = generators.grid_graph(4, 7)
        a = maximum_bipartite_matching(g, config=FrameworkConfig(seed=5))
        b = maximum_bipartite_matching(g, config=FrameworkConfig(seed=5))
        assert a.matching == b.matching


class TestStatistics:
    def test_rounds_and_ledger_consistent(self):
        g = generators.grid_graph(5, 8)
        result = maximum_bipartite_matching(g, config=FrameworkConfig(seed=2))
        assert result.rounds == result.ledger.total()
        assert result.rounds > 0
        assert result.recursion_depth >= 1
        assert result.separator_vertices > 0

    def test_augmentations_bounded_by_matching_size(self):
        g = generators.random_banded_bipartite(15, 15, band=2, seed=9)
        result = maximum_bipartite_matching(g, config=FrameworkConfig(seed=9))
        assert result.augmentations <= result.size

    def test_small_graphs_solved_locally_without_separators(self):
        g = generators.path_graph(6)
        result = maximum_bipartite_matching(g, config=FrameworkConfig(seed=1))
        assert result.separator_vertices == 0
        assert result.size == 3

    def test_leaf_size_parameter(self):
        g = generators.grid_graph(4, 10)
        local = maximum_bipartite_matching(g, config=FrameworkConfig(seed=1), leaf_size=100)
        recursive = maximum_bipartite_matching(g, config=FrameworkConfig(seed=1), leaf_size=8)
        assert local.size == recursive.size
        assert local.separator_vertices == 0
        assert recursive.separator_vertices > 0


@given(
    st.integers(min_value=4, max_value=14),
    st.integers(min_value=4, max_value=14),
    st.integers(min_value=0, max_value=400),
)
@settings(max_examples=15, deadline=None)
def test_matching_exact_on_random_banded_bipartite(n_left, n_right, seed):
    """Property: the divide-and-conquer matching is always maximum."""
    g = generators.random_banded_bipartite(n_left, n_right, band=2, seed=seed)
    result = maximum_bipartite_matching(g, config=FrameworkConfig(seed=seed), leaf_size=6)
    assert result.size == len(hopcroft_karp_matching(g))
    assert verify_matching(g, result.matching)
