"""Tests for part-wise aggregation and the Lemma-8 subgraph operations."""

import pytest

from repro.core.rounds import CostModel, RoundLedger
from repro.errors import GraphError
from repro.graphs import generators
from repro.shortcuts.operations import SubgraphOperations
from repro.shortcuts.partition import SubgraphCollection
from repro.shortcuts.partwise import partwise_aggregate, partwise_minimum, partwise_sum


@pytest.fixture
def grid_collection():
    g = generators.grid_graph(4, 9)
    left = [(r, c) for r in range(4) for c in range(4)]
    right = [(r, c) for r in range(4) for c in range(5, 9)]
    return g, SubgraphCollection(g, [left, right])


class TestSubgraphCollection:
    def test_classification_disjoint(self, grid_collection):
        _, coll = grid_collection
        assert coll.is_vertex_disjoint()
        assert coll.classification() == "disjoint"
        assert coll.all_parts_connected()

    def test_near_disjoint_split_trees(self):
        g = generators.path_graph(9)
        # Two subpaths sharing only vertex 4 (their common root).
        coll = SubgraphCollection(g, [[0, 1, 2, 3, 4], [4, 5, 6, 7, 8]])
        assert not coll.is_vertex_disjoint()
        assert coll.is_near_disjoint()
        assert coll.classification() == "near_disjoint"
        assert coll.shared_vertices() == {4}
        assert coll.private_vertices(0) == {0, 1, 2, 3}

    def test_overlapping_collection_detected(self):
        g = generators.path_graph(6)
        coll = SubgraphCollection(g, [[0, 1, 2, 3], [2, 3, 4, 5]])
        assert coll.classification() == "overlapping"

    def test_empty_part_rejected(self):
        g = generators.path_graph(3)
        with pytest.raises(GraphError):
            SubgraphCollection(g, [[]])

    def test_foreign_vertices_rejected(self):
        g = generators.path_graph(3)
        with pytest.raises(GraphError):
            SubgraphCollection(g, [[0, 99]])

    def test_parts_of_and_subgraph(self, grid_collection):
        _, coll = grid_collection
        assert coll.parts_of((0, 0)) == [0]
        assert coll.subgraph(1).num_nodes() == 16
        assert coll.max_part_diameter() >= 3


class TestPartwiseAggregation:
    def test_sum_per_part(self, grid_collection):
        g, coll = grid_collection
        values = {v: 1 for v in g.nodes()}
        result = partwise_sum(coll, values)
        assert result == {0: 16, 1: 16}

    def test_minimum_per_part(self, grid_collection):
        _, coll = grid_collection
        values = {(r, c): r * 10 + c for r, c in coll.part(0) | coll.part(1)}
        result = partwise_minimum(coll, values)
        assert result[0] == 0
        assert result[1] == 5

    def test_missing_values_use_identity(self, grid_collection):
        _, coll = grid_collection
        result = partwise_aggregate(coll, {}, lambda a, b: a + b, identity=0)
        assert result == {0: 0, 1: 0}

    def test_overlapping_collection_rejected(self):
        g = generators.path_graph(6)
        coll = SubgraphCollection(g, [[0, 1, 2, 3], [2, 3, 4, 5]])
        with pytest.raises(GraphError):
            partwise_sum(coll, {v: 1 for v in g.nodes()})

    def test_rounds_charged(self, grid_collection):
        g, coll = grid_collection
        cm = CostModel(n=g.num_nodes(), diameter=11)
        ledger = RoundLedger()
        partwise_sum(coll, {v: 1 for v in g.nodes()}, width=4, cost_model=cm, ledger=ledger)
        assert ledger.total() == cm.partwise_aggregation(4)

    def test_near_disjoint_overhead_charged(self):
        g = generators.path_graph(9)
        coll = SubgraphCollection(g, [[0, 1, 2, 3, 4], [4, 5, 6, 7, 8]])
        cm = CostModel(n=9, diameter=8)
        ledger = RoundLedger()
        partwise_sum(coll, {v: 1 for v in g.nodes()}, width=1, cost_model=cm, ledger=ledger)
        assert ledger.total() == cm.partwise_aggregation(1) + 2


class TestSubgraphOperations:
    def test_rooted_spanning_trees(self, grid_collection):
        g, coll = grid_collection
        ops = SubgraphOperations(coll, width=4, cost_model=CostModel(n=36, diameter=11))
        trees = ops.rooted_spanning_trees({0: (0, 0), 1: (0, 5)})
        assert len(trees[0]) == 16
        assert trees[0][(0, 0)] is None
        assert ops.ledger.total() > 0

    def test_subtree_aggregate(self, grid_collection):
        g, coll = grid_collection
        ops = SubgraphOperations(coll, width=4)
        trees = ops.rooted_spanning_trees({0: (0, 0), 1: (0, 5)})
        sizes = ops.subtree_aggregate(trees, {v: 1 for v in g.nodes()})
        assert sizes[0][(0, 0)] == 16

    def test_elect_leaders(self, grid_collection):
        _, coll = grid_collection
        ops = SubgraphOperations(coll, width=4)
        leaders = ops.elect_leaders()
        assert leaders[0] in coll.part(0)
        with pytest.raises(GraphError):
            ops.elect_leaders(candidates={})

    def test_connected_components_after_removal(self, grid_collection):
        _, coll = grid_collection
        ops = SubgraphOperations(coll, width=4)
        removed = {(r, 1) for r in range(4)}
        comps = ops.connected_components(removed=removed)
        assert len(comps[0]) == 2
        assert len(comps[1]) == 1

    def test_broadcast_and_cost(self, grid_collection):
        g, coll = grid_collection
        cm = CostModel(n=36, diameter=11)
        ops = SubgraphOperations(coll, width=4, cost_model=cm)
        out = ops.broadcast({0: ["a", "b"], 1: ["c"]})
        assert out[0] == ["a", "b"]
        assert ops.ledger["bct"] == cm.broadcast_multi(4, 2)

    def test_minimum_vertex_cuts_in_parts(self, grid_collection):
        _, coll = grid_collection
        ops = SubgraphOperations(coll, width=4, cost_model=CostModel(n=36, diameter=11))
        left_col = {(r, 0) for r in range(4)}
        right_col = {(r, 3) for r in range(4)}
        cuts = ops.minimum_vertex_cuts([(0, left_col, right_col)], limit=4)
        assert cuts[0] is not None and len(cuts[0]) == 4
        # Requests with vertices outside the part yield None.
        cuts2 = ops.minimum_vertex_cuts([(1, left_col, right_col)], limit=4)
        assert cuts2[0] is None
