"""Negative tests: the validators must actually detect broken decompositions/separators."""

import pytest

from repro.core.config import FrameworkConfig
from repro.decomposition.centralized import centralized_tree_decomposition
from repro.decomposition.tree_decomposition import DecompositionNode, TreeDecomposition
from repro.decomposition.validation import (
    is_balanced_separator,
    separator_quality,
    tree_decomposition_violations,
)
from repro.graphs import generators
from repro.graphs.graph import Graph


def _single_bag_decomposition(vertices) -> TreeDecomposition:
    td = TreeDecomposition()
    td._add_node(
        DecompositionNode(
            label=(),
            bag=frozenset(vertices),
            graph_vertices=frozenset(vertices),
            free_vertices=frozenset(vertices),
            separator=frozenset(),
            parent=None,
            is_leaf=True,
        )
    )
    td._finalize()
    return td


class TestDecompositionViolations:
    def test_single_bag_is_always_valid(self):
        g = generators.complete_graph(5)
        td = _single_bag_decomposition(g.nodes())
        assert tree_decomposition_violations(g, td) == []

    def test_missing_vertex_detected(self):
        g = generators.path_graph(4)
        td = _single_bag_decomposition([0, 1, 2])  # vertex 3 missing
        problems = tree_decomposition_violations(g, td)
        assert any("not covered" in p for p in problems)

    def test_uncovered_edge_detected(self):
        g = generators.path_graph(4)
        td = TreeDecomposition()
        td._add_node(
            DecompositionNode((), frozenset({0, 1}), frozenset(g.nodes()), frozenset(), frozenset(), None)
        )
        td._add_node(
            DecompositionNode((0,), frozenset({2, 3}), frozenset(g.nodes()), frozenset(), frozenset(), ())
        )
        td._finalize()
        problems = tree_decomposition_violations(g, td)
        assert any("edges not covered" in p for p in problems)

    def test_disconnected_occurrence_detected(self):
        g = generators.path_graph(3)
        td = TreeDecomposition()
        # Vertex 0 appears in the root bag and a grandchild bag but not in between.
        td._add_node(
            DecompositionNode((), frozenset({0, 1}), frozenset(g.nodes()), frozenset(), frozenset(), None)
        )
        td._add_node(
            DecompositionNode((0,), frozenset({1, 2}), frozenset(g.nodes()), frozenset(), frozenset(), ())
        )
        td._add_node(
            DecompositionNode((0, 0), frozenset({0, 2}), frozenset(g.nodes()), frozenset(), frozenset(), (0,))
        )
        td._finalize()
        problems = tree_decomposition_violations(g, td)
        assert any("connected subtree" in p for p in problems)

    def test_orphan_node_detected(self):
        g = generators.path_graph(2)
        td = TreeDecomposition()
        td._add_node(
            DecompositionNode((), frozenset({0, 1}), frozenset(g.nodes()), frozenset(), frozenset(), None)
        )
        # Insert a node whose parent label does not exist.
        td.nodes[(5,)] = DecompositionNode(
            (5,), frozenset({0}), frozenset(g.nodes()), frozenset(), frozenset(), (9,)
        )
        problems = tree_decomposition_violations(g, td)
        assert any("no parent" in p or "missing from" in p for p in problems)

    def test_empty_decomposition_reported(self):
        g = generators.path_graph(2)
        assert tree_decomposition_violations(g, TreeDecomposition()) == ["decomposition has no bags"]


class TestCentralizedDecomposition:
    def test_valid_and_width_close_to_tau(self):
        g = generators.k_tree(40, 3, seed=1)
        td = centralized_tree_decomposition(g)
        assert tree_decomposition_violations(g, td) == []
        assert td.width() == 3

    def test_min_degree_heuristic(self):
        g = generators.partial_k_tree(30, 2, seed=2)
        td = centralized_tree_decomposition(g, heuristic="min_degree")
        assert tree_decomposition_violations(g, td) == []

    def test_unknown_heuristic_rejected(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            centralized_tree_decomposition(generators.path_graph(4), heuristic="bogus")

    def test_distributed_vs_centralized_width_overhead(self):
        """E2 companion: the distributed width pays at most the τ·log n blow-up."""
        from repro.decomposition.tree_decomposition import build_tree_decomposition
        import math

        g = generators.partial_k_tree(120, 3, seed=4)
        central = centralized_tree_decomposition(g).width()
        distributed = build_tree_decomposition(g, config=FrameworkConfig(seed=1)).decomposition.width()
        log_n = math.ceil(math.log2(g.num_nodes()))
        assert distributed <= 400 * (central + 1) ** 2 * log_n


class TestSeparatorValidation:
    def test_balanced_separator_checks_focus(self):
        g = generators.path_graph(10)
        focus = {6, 7, 8, 9}
        assert is_balanced_separator(g, {7}, 0.6, focus=focus)
        assert not is_balanced_separator(g, {2}, 0.6, focus=focus)

    def test_quality_metrics(self):
        g = generators.cycle_graph(8)
        q = separator_quality(g, {0, 4})
        assert q["size"] == 2
        assert q["components"] == 2
        assert q["balance"] == pytest.approx(3 / 8)

    def test_empty_focus_trivially_balanced(self):
        g = generators.path_graph(4)
        assert is_balanced_separator(g, set(), 0.5, focus=set())
