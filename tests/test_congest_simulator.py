"""Tests for the CONGEST network simulator: rounds, bandwidth, protocol rules."""

import pytest

from repro.congest.engine import SimulationTrace
from repro.congest.message import Message, payload_size_words, DEFAULT_WORDS_PER_MESSAGE
from repro.congest.network import CongestNetwork
from repro.congest.node import BroadcastAll, NodeAlgorithm, NodeContext
from repro.errors import BandwidthExceededError, ConvergenceError, GraphError, SimulationError
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestMessageAccounting:
    def test_scalar_payload_is_one_word(self):
        assert payload_size_words(7) == 1
        assert payload_size_words(3.14) == 1
        assert payload_size_words(None) == 1
        assert payload_size_words("id") == 1

    def test_tuple_payload_counts_elements(self):
        assert payload_size_words((1, 2, 3)) == 4

    def test_dict_payload(self):
        assert payload_size_words({"a": 1}) == 3

    def test_message_size(self):
        assert Message(1, 2, (1, 2)).size_words() == 3


class _Silent(NodeAlgorithm):
    def initialize(self, ctx):
        self.halt()
        self.output = ctx.node
        return {}

    def on_round(self, ctx, inbox):
        return {}


class _Oversized(NodeAlgorithm):
    def initialize(self, ctx):
        return {v: tuple(range(100)) for v in ctx.neighbors}

    def on_round(self, ctx, inbox):
        self.halt()
        return {}


class _MessagesStranger(NodeAlgorithm):
    def initialize(self, ctx):
        return {"not-a-neighbor": 1}

    def on_round(self, ctx, inbox):
        return {}


class _NeverHalts(NodeAlgorithm):
    def initialize(self, ctx):
        return {v: 0 for v in ctx.neighbors}

    def on_round(self, ctx, inbox):
        return {v: ctx.round_number for v in ctx.neighbors}


class TestNetwork:
    def test_empty_network_rejected(self):
        with pytest.raises(GraphError):
            CongestNetwork(Graph())

    def test_silent_protocol_zero_rounds(self):
        net = CongestNetwork(generators.path_graph(5))
        result = net.run(lambda u: _Silent())
        assert result.rounds == 0
        assert result.halted
        assert result.outputs[3] == 3

    def test_oversized_message_raises(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(BandwidthExceededError):
            net.run(lambda u: _Oversized())

    def test_oversized_allowed_when_not_strict(self):
        net = CongestNetwork(generators.path_graph(3), strict_bandwidth=False)
        result = net.run(lambda u: _Oversized())
        assert result.max_words_per_edge_round > DEFAULT_WORDS_PER_MESSAGE

    def test_message_to_non_neighbor_raises(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(SimulationError):
            net.run(lambda u: _MessagesStranger())

    def test_round_limit_enforced(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(ConvergenceError):
            net.run(lambda u: _NeverHalts(), max_rounds=5, stop_when_quiet=False)

    def test_factory_must_return_node_algorithm(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(SimulationError):
            net.run(lambda u: object())  # type: ignore[arg-type]

    def test_broadcast_all_terminates_in_diameter_ish_rounds(self):
        g = generators.path_graph(8)
        net = CongestNetwork(g)
        result = net.run(lambda u: BroadcastAll(value=u))
        # Flooding one item per round: the far ends need at least D rounds.
        assert result.rounds >= 7
        assert result.messages_sent > 0

    def test_local_inputs_are_visible(self):
        class ReadInput(NodeAlgorithm):
            def initialize(self, ctx):
                self.output = ctx.local_edges
                self.halt()
                return {}

            def on_round(self, ctx, inbox):
                return {}

        net = CongestNetwork(generators.path_graph(3))
        result = net.run(lambda u: ReadInput(), local_inputs={0: "zero", 1: "one"})
        assert result.outputs[0] == "zero"
        assert result.outputs[2] is None


class _HalfBudgetPingPong(NodeAlgorithm):
    """Both endpoints of an edge send a half-budget message in the same round."""

    def __init__(self, payload):
        super().__init__()
        self.payload = payload

    def initialize(self, ctx):
        return {v: self.payload for v in ctx.neighbors}

    def on_round(self, ctx, inbox):
        self.halt()
        return {}


class TestPerEdgeBandwidthAccounting:
    """Regression: words are accounted per edge per round, not per message."""

    @pytest.mark.parametrize("engine", ["fast", "legacy"])
    def test_two_half_budget_messages_on_one_edge_sum(self, engine):
        # Budget 8; payload (a, b, c) is 4 words.  Both endpoints of the single
        # edge send simultaneously: the edge carries 8 words in round 1, which
        # is legal (4 per direction) and must be reported as 8, not 4.
        payload = (1, 2, 3)
        assert payload_size_words(payload) == 4
        net = CongestNetwork(generators.path_graph(2), words_per_message=8)
        result = net.run(lambda u: _HalfBudgetPingPong(payload), engine=engine)
        assert result.max_words_per_edge_round == 8
        assert result.max_message_words == 4
        assert result.messages_sent == 2
        assert result.words_sent == 8

    @pytest.mark.parametrize("engine", ["fast", "legacy"])
    def test_single_oversized_message_still_raises(self, engine):
        net = CongestNetwork(generators.path_graph(2), words_per_message=3)
        with pytest.raises(BandwidthExceededError):
            net.run(lambda u: _HalfBudgetPingPong((1, 2, 3)), engine=engine)

    def test_edge_peak_is_per_round_not_cumulative(self):
        # BroadcastAll keeps edges busy over many rounds; the per-edge peak
        # must stay bounded by one round's worth of traffic (2 messages of
        # (node, value) = 3 words each), not accumulate across rounds.
        net = CongestNetwork(generators.path_graph(6))
        result = net.run(lambda u: BroadcastAll(value=u))
        assert result.rounds > 2
        assert result.max_words_per_edge_round <= 6


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(SimulationError):
            net.run(lambda u: _Silent(), engine="warp")
        with pytest.raises(SimulationError):
            CongestNetwork(generators.path_graph(3), engine="warp")

    def test_result_records_engine(self):
        net = CongestNetwork(generators.path_graph(3))
        assert net.run(lambda u: _Silent()).engine == "fast"
        assert net.run(lambda u: _Silent(), engine="legacy").engine == "legacy"

    @pytest.mark.parametrize("engine", ["fast", "legacy"])
    def test_trace_records_round_stats(self, engine):
        net = CongestNetwork(generators.path_graph(8))
        trace = SimulationTrace()
        result = net.run(lambda u: BroadcastAll(value=u), engine=engine, trace=trace)
        assert result.trace is trace
        assert len(trace) == result.rounds
        assert trace.total_messages() == result.messages_sent
        assert trace.total_words() == result.words_sent
        assert trace.peak_edge_words() == result.max_words_per_edge_round
        rounds_seen = [r.round_number for r in trace]
        assert rounds_seen == list(range(1, result.rounds + 1))
        assert trace.rounds[-1].halted_nodes == 8

    def test_trace_callback_streams(self):
        seen = []
        trace = SimulationTrace(callback=seen.append)
        net = CongestNetwork(generators.path_graph(5))
        result = net.run(lambda u: BroadcastAll(value=u), trace=trace)
        assert len(seen) == result.rounds


class TestIndexedView:
    def test_csr_structure_matches_graph(self):
        g = generators.grid_graph(3, 4)
        idx = g.to_indexed()
        assert idx.num_nodes == g.num_nodes()
        assert idx.num_edges == g.num_edges()
        for i, u in enumerate(idx.node_ids):
            assert idx.id_of(u) == i
            nbrs = {idx.original(j) for j in idx.neighbors(i)}
            assert nbrs == set(g.neighbors(u))
            assert idx.degree(i) == g.degree(u)

    def test_edge_ids_dense_and_consistent(self):
        g = generators.partial_k_tree(25, 3, seed=3)
        idx = g.to_indexed()
        seen = set()
        for i in range(idx.num_nodes):
            for j in idx.neighbors(i):
                eid = idx.edge_id(i, j)
                assert eid == idx.edge_id(j, i)
                assert 0 <= eid < idx.num_edges
                seen.add(eid)
        assert len(seen) == idx.num_edges

    def test_edge_weight_roundtrip(self):
        g = Graph(edges=[(0, 1, 2.5), (1, 2, 7.0)])
        idx = g.to_indexed()
        eid = idx.edge_id(idx.id_of(0), idx.id_of(1))
        assert idx.edge_weight(eid) == 2.5

    def test_cache_invalidated_on_mutation(self):
        g = generators.path_graph(4)
        first = g.to_indexed()
        assert g.to_indexed() is first  # cached
        g.add_edge(0, 3)
        second = g.to_indexed()
        assert second is not first
        assert second.num_edges == first.num_edges + 1

    def test_missing_edge_raises(self):
        g = generators.path_graph(3)
        idx = g.to_indexed()
        with pytest.raises(GraphError):
            idx.edge_id(idx.id_of(0), idx.id_of(2))
        with pytest.raises(GraphError):
            idx.id_of("nope")

    def test_partially_ordered_node_ids(self):
        # frozensets compare by subset relation (a partial order): the edge
        # key must still be canonical regardless of argument order.
        a, b = frozenset({1}), frozenset({2})
        g = Graph()
        g.add_edge(a, b, weight=5.0)
        assert g.weight(b, a) == 5.0
        g.add_edge(b, a, weight=2.0)  # multi-edge collapses to min weight
        assert g.num_edges() == 1
        assert g.weight(a, b) == 2.0
        idx = g.to_indexed()
        assert idx.num_edges == 1
