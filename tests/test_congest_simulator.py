"""Tests for the CONGEST network simulator: rounds, bandwidth, protocol rules."""

import pytest

from repro.congest.message import Message, payload_size_words, DEFAULT_WORDS_PER_MESSAGE
from repro.congest.network import CongestNetwork
from repro.congest.node import BroadcastAll, NodeAlgorithm, NodeContext
from repro.errors import BandwidthExceededError, ConvergenceError, GraphError, SimulationError
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestMessageAccounting:
    def test_scalar_payload_is_one_word(self):
        assert payload_size_words(7) == 1
        assert payload_size_words(3.14) == 1
        assert payload_size_words(None) == 1
        assert payload_size_words("id") == 1

    def test_tuple_payload_counts_elements(self):
        assert payload_size_words((1, 2, 3)) == 4

    def test_dict_payload(self):
        assert payload_size_words({"a": 1}) == 3

    def test_message_size(self):
        assert Message(1, 2, (1, 2)).size_words() == 3


class _Silent(NodeAlgorithm):
    def initialize(self, ctx):
        self.halt()
        self.output = ctx.node
        return {}

    def on_round(self, ctx, inbox):
        return {}


class _Oversized(NodeAlgorithm):
    def initialize(self, ctx):
        return {v: tuple(range(100)) for v in ctx.neighbors}

    def on_round(self, ctx, inbox):
        self.halt()
        return {}


class _MessagesStranger(NodeAlgorithm):
    def initialize(self, ctx):
        return {"not-a-neighbor": 1}

    def on_round(self, ctx, inbox):
        return {}


class _NeverHalts(NodeAlgorithm):
    def initialize(self, ctx):
        return {v: 0 for v in ctx.neighbors}

    def on_round(self, ctx, inbox):
        return {v: ctx.round_number for v in ctx.neighbors}


class TestNetwork:
    def test_empty_network_rejected(self):
        with pytest.raises(GraphError):
            CongestNetwork(Graph())

    def test_silent_protocol_zero_rounds(self):
        net = CongestNetwork(generators.path_graph(5))
        result = net.run(lambda u: _Silent())
        assert result.rounds == 0
        assert result.halted
        assert result.outputs[3] == 3

    def test_oversized_message_raises(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(BandwidthExceededError):
            net.run(lambda u: _Oversized())

    def test_oversized_allowed_when_not_strict(self):
        net = CongestNetwork(generators.path_graph(3), strict_bandwidth=False)
        result = net.run(lambda u: _Oversized())
        assert result.max_words_per_edge_round > DEFAULT_WORDS_PER_MESSAGE

    def test_message_to_non_neighbor_raises(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(SimulationError):
            net.run(lambda u: _MessagesStranger())

    def test_round_limit_enforced(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(ConvergenceError):
            net.run(lambda u: _NeverHalts(), max_rounds=5, stop_when_quiet=False)

    def test_factory_must_return_node_algorithm(self):
        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(SimulationError):
            net.run(lambda u: object())  # type: ignore[arg-type]

    def test_broadcast_all_terminates_in_diameter_ish_rounds(self):
        g = generators.path_graph(8)
        net = CongestNetwork(g)
        result = net.run(lambda u: BroadcastAll(value=u))
        # Flooding one item per round: the far ends need at least D rounds.
        assert result.rounds >= 7
        assert result.messages_sent > 0

    def test_local_inputs_are_visible(self):
        class ReadInput(NodeAlgorithm):
            def initialize(self, ctx):
                self.output = ctx.local_edges
                self.halt()
                return {}

            def on_round(self, ctx, inbox):
                return {}

        net = CongestNetwork(generators.path_graph(3))
        result = net.run(lambda u: ReadInput(), local_inputs={0: "zero", 1: "one"})
        assert result.outputs[0] == "zero"
        assert result.outputs[2] is None
