"""Tests for minimum U1-U2 vertex cuts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.decomposition.vertex_cut import is_vertex_cut, minimum_vertex_cut
from repro.errors import GraphError
from repro.graphs import generators
from repro.graphs.graph import Graph


class TestBasicCuts:
    def test_path_cut_is_single_middle_vertex(self):
        g = generators.path_graph(5)
        cut = minimum_vertex_cut(g, {0}, {4})
        assert cut is not None
        assert len(cut) == 1
        assert is_vertex_cut(g, {0}, {4}, cut)

    def test_cycle_requires_two_vertices(self):
        g = generators.cycle_graph(8)
        cut = minimum_vertex_cut(g, {0}, {4})
        assert cut is not None and len(cut) == 2
        assert is_vertex_cut(g, {0}, {4}, cut)

    def test_adjacent_terminals_have_infinite_cut(self):
        g = generators.path_graph(3)
        assert minimum_vertex_cut(g, {0}, {1}) is None

    def test_overlapping_terminals_have_infinite_cut(self):
        g = generators.cycle_graph(5)
        assert minimum_vertex_cut(g, {0, 1}, {1, 3}) is None

    def test_limit_respected(self):
        g = generators.complete_graph(6)
        # Separating two vertices of K6 needs 4 vertices; a limit of 2 fails.
        assert minimum_vertex_cut(g, {0}, {1}) is None  # adjacent
        g.remove_edge(0, 1)
        assert minimum_vertex_cut(g, {0}, {1}, limit=2) is None
        cut = minimum_vertex_cut(g, {0}, {1}, limit=4)
        assert cut is not None and len(cut) == 4

    def test_set_terminals(self):
        g = generators.grid_graph(3, 7)
        left = {(r, 0) for r in range(3)}
        right = {(r, 6) for r in range(3)}
        cut = minimum_vertex_cut(g, left, right)
        assert cut is not None
        assert len(cut) == 3  # a full column
        assert is_vertex_cut(g, left, right, cut)

    def test_empty_terminals_raise(self):
        g = generators.path_graph(3)
        with pytest.raises(GraphError):
            minimum_vertex_cut(g, set(), {2})

    def test_unknown_terminal_raises(self):
        g = generators.path_graph(3)
        with pytest.raises(GraphError):
            minimum_vertex_cut(g, {99}, {2})

    def test_disconnected_sides_have_empty_cut(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        cut = minimum_vertex_cut(g, {0}, {3})
        assert cut == set()


class TestCutValidity:
    def test_is_vertex_cut_rejects_cut_containing_terminals(self):
        g = generators.path_graph(4)
        assert not is_vertex_cut(g, {0}, {3}, {0})

    def test_is_vertex_cut_rejects_non_separating_set(self):
        g = generators.cycle_graph(6)
        assert not is_vertex_cut(g, {0}, {3}, {1})


@given(
    st.integers(min_value=8, max_value=30),
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25, deadline=None)
def test_cut_size_bounded_by_treewidth_structure(n, k, seed):
    """Property: in a partial k-tree, any returned cut separates its terminals."""
    g = generators.partial_k_tree(n, k, seed=seed)
    nodes = sorted(g.nodes())
    a, b = {nodes[0]}, {nodes[-1]}
    cut = minimum_vertex_cut(g, a, b, limit=n)
    if cut is not None:
        assert is_vertex_cut(g, a, b, cut)
        # Minimality sanity: removing any single cut vertex keeps it a cut? Not
        # necessarily unique, but the cut must not contain terminal vertices.
        assert not (cut & (a | b))
