"""Property-style cross-validation of simulator outputs against centralized oracles.

Every check runs a *distributed* (or framework) computation on a seeded random
instance and compares against the corresponding centralized reference from
:mod:`repro.baselines.reference` — so protocol bugs surface on fresh random
instances without hand-built fixtures.  All randomness derives from the
session ``--seed``.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines.reference import (
    reference_girth_directed,
    reference_girth_undirected,
    reference_matching_size,
    reference_sssp,
)
from repro.congest.bellman_ford import distributed_bellman_ford
from repro.congest.network import CongestNetwork
from repro.congest.primitives import build_bfs_tree
from repro.core.config import FrameworkConfig
from repro.girth.girth import directed_girth, undirected_girth
from repro.graphs import generators
from repro.graphs.properties import diameter
from repro.labeling.construction import build_distance_labeling
from repro.labeling.sssp import measured_label_broadcast, single_source_shortest_paths
from repro.matching.bipartite import maximum_bipartite_matching


def _instances(rng, count, n_range=(16, 42), k_range=(2, 3)):
    """Yield ``count`` seeded (graph, instance) pairs of low-treewidth families."""
    for _ in range(count):
        n = rng.randint(*n_range)
        k = rng.randint(*k_range)
        graph = generators.partial_k_tree(n, k, seed=rng.randrange(1 << 30))
        instance = generators.to_directed_instance(
            graph,
            weight_range=(1, 9),
            orientation=rng.choice(["both", "asymmetric"]),
            seed=rng.randrange(1 << 30),
        )
        yield graph, instance


class TestSSSPCrossValidation:
    def test_bellman_ford_matches_dijkstra(self, rng):
        for graph, instance in _instances(rng, 8):
            source = min(graph.nodes(), key=str)
            bf = distributed_bellman_ford(instance, source)
            ref = reference_sssp(instance, source)
            for v in graph.nodes():
                assert bf.distances[v] == pytest.approx(ref.get(v, math.inf)), (
                    f"BF mismatch at {v!r} (n={graph.num_nodes()})"
                )

    def test_labeling_sssp_matches_dijkstra(self, rng, config):
        for graph, instance in _instances(rng, 4, n_range=(14, 30)):
            labeling = build_distance_labeling(instance, config=config)
            source = min(graph.nodes(), key=str)
            sssp = single_source_shortest_paths(labeling.labeling, source)
            ref = reference_sssp(instance, source)
            for v in graph.nodes():
                assert sssp.distances[v] == pytest.approx(ref.get(v, math.inf))

    def test_simulated_label_broadcast_matches_dijkstra(self, rng, config):
        """The engine-executed la(s) broadcast decodes the exact distances."""
        for graph, instance in _instances(rng, 3, n_range=(14, 26)):
            labeling = build_distance_labeling(instance, config=config)
            source = min(graph.nodes(), key=str)
            network = CongestNetwork(instance.underlying_graph())
            sim = measured_label_broadcast(network, labeling.labeling, source)
            assert sim.halted
            ref = reference_sssp(instance, source)
            for v in graph.nodes():
                assert sim.outputs[v] == pytest.approx(ref.get(v, math.inf))
            # Pipelined flooding: D + #chunks rounds, up to queueing slack.
            d = diameter(graph, exact=True)
            entries = labeling.labeling.label(source).num_entries()
            assert sim.rounds <= d * (entries + 2) + entries + 2


class TestBFSCrossValidation:
    def test_bfs_depths_match_hop_distances(self, rng):
        for _ in range(6):
            n = rng.randint(12, 40)
            graph = generators.partial_k_tree(n, 3, seed=rng.randrange(1 << 30))
            network = CongestNetwork(graph)
            root = min(graph.nodes(), key=str)
            _, depth, result = build_bfs_tree(network, root)
            assert depth == graph.bfs_layers(root)
            assert result.rounds <= max(depth.values()) + 1


class TestMatchingCrossValidation:
    def test_matching_size_matches_hopcroft_karp(self, rng, config):
        builders = [
            lambda: generators.grid_graph(rng.randint(2, 4), rng.randint(3, 6)),
            lambda: generators.random_banded_bipartite(
                rng.randint(6, 12), rng.randint(6, 12), band=2, seed=rng.randrange(1 << 30)
            ),
            lambda: generators.subdivided_graph(
                generators.partial_k_tree(rng.randint(8, 14), 2, seed=rng.randrange(1 << 30))
            ),
        ]
        for _ in range(6):
            graph = rng.choice(builders)()
            result = maximum_bipartite_matching(graph, config=config)
            assert result.size == reference_matching_size(graph)


class TestGirthCrossValidation:
    def test_directed_girth_matches_exact(self, rng, config):
        for _ in range(3):
            n = rng.randint(10, 18)
            graph = generators.cycle_with_chords(n, rng.randint(1, 3), seed=rng.randrange(1 << 30))
            instance = generators.to_directed_instance(
                graph, weight_range=(1, 6), orientation="random", seed=rng.randrange(1 << 30)
            )
            result = directed_girth(instance, config=config)
            exact = reference_girth_directed(instance)
            if math.isinf(exact):
                assert math.isinf(result.girth)
            else:
                assert result.girth == pytest.approx(exact)

    def test_undirected_girth_matches_exact(self, rng, config):
        for _ in range(3):
            n = rng.randint(8, 14)
            graph = generators.with_random_weights(
                generators.cycle_with_chords(n, 2, seed=rng.randrange(1 << 30)),
                1,
                6,
                seed=rng.randrange(1 << 30),
            )
            result = undirected_girth(graph, config=config)
            exact = reference_girth_undirected(graph)
            assert result.girth == pytest.approx(exact)
