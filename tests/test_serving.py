"""Tests for the serving subsystem (:mod:`repro.serving`).

Covers the :class:`LabelStore` corpus lifecycle (build → persist → reopen
memory-mapped, residency accounting), the :class:`QueryServer` protocol
round trips and the per-tick micro-batching contract (driven tick by tick
so the coalescing is deterministic), the fault-containment paths
mirroring ``test_socket_transport.py`` — an unbindable listener raises a
clean :class:`~repro.congest.transport.TransportSetupError`, clients that
disconnect mid-frame or announce oversized frames are dropped and counted
while the server keeps serving, malformed payloads answer ``("err", …)``
without killing the connection — and the multi-process
:class:`ServerPool` zero-copy contract.  Everything here must pass with
and without numpy (the pure-python packed fallback serves the same
floats).
"""

from __future__ import annotations

import pickle
import random
import socket
import threading

import pytest

from repro.congest.kernels import vectorized_available
from repro.congest.transport import (
    _LEN,
    TransportSetupError,
    _recv_frame,
    _send_frame,
)
from repro.errors import LabelingError
from repro.graphs import generators
from repro.labeling.labels import DistanceLabel, DistanceLabeling
from repro.labeling.packed import PackedLabeling
from repro.serving import (
    LabelStore,
    QueryClient,
    QueryRejectedError,
    QueryServer,
    ServerPool,
    seeded_corpus,
)
from repro.serving.store import STORE_SUFFIX

N = 14  # corpus graph size: small enough that every test is tier-1 fast


def _instance(master_seed, n=N):
    graph = generators.partial_k_tree(n, 3, 0.6, seed=master_seed)
    return generators.to_directed_instance(
        graph, weight_range=(1, 9), orientation="asymmetric", seed=master_seed
    )


@pytest.fixture()
def store(tmp_path, master_seed):
    return LabelStore.build(
        {"ktree": _instance(master_seed)}, tmp_path / "store"
    )


def _send_request(sock, request) -> None:
    _send_frame(sock, pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL))


def _read_reply(sock):
    return pickle.loads(_recv_frame(sock))


def _connected(server, count=1):
    """Raw client sockets, accepted by the server (one tick)."""
    socks = [socket.create_connection(server.address, timeout=5.0) for _ in range(count)]
    for s in socks:
        s.settimeout(5.0)
    server.tick(timeout=0.2)  # accept them
    assert server.stats()["counters"]["accepted_clients"] >= count
    return socks if count > 1 else socks[0]


# --------------------------------------------------------------------------- #
# LabelStore
# --------------------------------------------------------------------------- #
class TestLabelStore:
    def test_build_persists_and_reopens(self, store, tmp_path):
        assert store.graphs() == ("ktree",)
        assert store.path("ktree").endswith("ktree" + STORE_SUFFIX)
        packed = store.get("ktree")
        assert store.get("ktree") is packed  # cached
        labeling = store.labeling("ktree")
        assert store.labeling("ktree") is labeling
        for u in list(packed.vertices())[:5]:
            for v in packed.vertices():
                assert packed.distance(u, v) == labeling.distance(u, v)
        # A fresh handle on the same directory serves identical answers.
        reopened = LabelStore(tmp_path / "store")
        assert reopened.graphs() == ("ktree",)
        u, v = list(packed.vertices())[:2]
        assert reopened.get("ktree").distance(u, v) == packed.distance(u, v)

    def test_unknown_graph_names_available(self, store):
        with pytest.raises(LabelingError, match="ktree"):
            store.path("nope")
        with pytest.raises(LabelingError, match="unknown graph"):
            store.get("nope")

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(LabelingError, match="not found"):
            LabelStore(tmp_path / "absent")

    def test_invalid_names_rejected(self, tmp_path, master_seed):
        instance = _instance(master_seed, n=6)
        for bad in ("../escape", "a/b", "", ".hidden", 7):
            with pytest.raises(LabelingError, match="name"):
                LabelStore.build({bad: instance}, tmp_path / "bad")

    def test_corpus_value_types(self, tmp_path, master_seed):
        rng = random.Random(master_seed)
        lab = DistanceLabel("x")
        lab.set_entry("x", 0.0, 0.0)
        labeling = DistanceLabeling({"x": lab})
        corpus = {
            "packed": PackedLabeling.from_labeling(labeling),
            "dictform": labeling,
            "digraph": _instance(master_seed, n=6),
            "undirected": generators.cycle_graph(5),
        }
        built = LabelStore.build(corpus, tmp_path / "mixed")
        assert built.graphs() == tuple(sorted(corpus))
        for name in corpus:
            assert len(built.get(name)) > 0
        with pytest.raises(LabelingError, match="unsupported type"):
            LabelStore.build({"bogus": rng}, tmp_path / "mixed")

    def test_stats_accounting(self, store):
        before = store.stats()
        assert before["graphs"] == 1 and before["opened"] == 0
        packed = store.get("ktree")
        after = store.stats()
        assert after["opened"] == 1
        per = after["per_graph"]["ktree"]
        assert per["file_bytes"] > per["array_bytes"] > 0
        if vectorized_available():
            assert packed.is_memory_mapped
            assert after["copied_label_bytes"] == 0
            assert after["mapped_bytes"] == packed.array_bytes
        else:
            assert after["mapped_bytes"] == 0

    def test_unmapped_store_copies(self, tmp_path, store):
        if not vectorized_available():
            pytest.skip("heap-vs-mapped accounting needs numpy")
        heap_store = LabelStore(store.directory, mmap=False)
        heap_store.get("ktree")
        stats = heap_store.stats()
        assert stats["mapped_bytes"] == 0
        assert stats["copied_label_bytes"] > 0

    def test_seeded_corpus_shape(self, master_seed):
        corpus = seeded_corpus(master_seed, 12)
        assert len(corpus) == 3
        assert any(name.startswith("ktree") for name in corpus)
        # Deterministic: the same seed rebuilds the same instances.
        again = seeded_corpus(master_seed, 12)
        for name in corpus:
            assert sorted(
                (e.tail, e.head, e.weight) for e in corpus[name].edges()
            ) == sorted((e.tail, e.head, e.weight) for e in again[name].edges())


# --------------------------------------------------------------------------- #
# Protocol round trips (server on a thread)
# --------------------------------------------------------------------------- #
class TestQueryServerProtocol:
    @pytest.fixture(params=["packed", "scalar"])
    def running(self, request, store):
        with QueryServer(store, decode=request.param) as server:
            stop = threading.Event()
            thread = threading.Thread(
                target=server.serve_forever,
                kwargs={"stop": stop, "tick_timeout": 0.01},
                daemon=True,
            )
            thread.start()
            try:
                yield server
            finally:
                stop.set()
                thread.join(timeout=5.0)
                assert not thread.is_alive()

    def test_round_trips(self, running, store):
        packed = store.get("ktree")
        vertices = list(packed.vertices())
        us = vertices[:6] * 2
        vs = vertices[-6:] * 2
        expected = [packed.distance(u, v) for u, v in zip(us, vs)]
        with QueryClient(running.address) as client:
            assert client.ping() == "pong"
            assert client.graphs() == ["ktree"]
            assert client.query("ktree", us, vs) == expected
            for u, v, want in list(zip(us, vs, expected))[:4]:
                assert client.point("ktree", u, v) == want
            stats = client.server_stats()
        assert stats["decode"] == running.decode
        assert stats["counters"]["batched_queries"] == len(us)
        assert stats["counters"]["point_queries"] == 4
        assert stats["pid"] != 0

    def test_application_refusals_keep_connection(self, running, store):
        vertices = list(store.get("ktree").vertices())
        u = vertices[0]
        with QueryClient(running.address) as client:
            with pytest.raises(QueryRejectedError, match="unknown graph"):
                client.query("nope", [u], [u])
            with pytest.raises(QueryRejectedError, match="unknown graph"):
                client.point("nope", u, u)
            with pytest.raises(QueryRejectedError, match="no label"):
                client.query("ktree", [u] * 6, ["ghost"] * 6)
            with pytest.raises(QueryRejectedError, match="no label"):
                client.point("ktree", u, "ghost")
            with pytest.raises(QueryRejectedError, match="pairs"):
                client.query("ktree", [u, u], [u])
            with pytest.raises(QueryRejectedError, match="unknown request"):
                client._call(("warp", 9))
            # The connection survived every refusal.
            assert client.ping() == "pong"
            counters = client.server_stats()["counters"]
        assert counters["malformed_requests"] == 1
        assert counters["dropped_clients"] == 0

    def test_mixed_good_and_bad_points_in_one_tick(self, running, store):
        """An unknown vertex poisons the coalesced batch; the flush falls
        back to per-pair answers so the good queries still succeed."""
        vertices = list(store.get("ktree").vertices())
        u, v = vertices[0], vertices[-1]
        want = store.get("ktree").distance(u, v)
        with QueryClient(running.address) as good, QueryClient(
            running.address
        ) as bad:
            results = {}

            def ask_bad():
                with pytest.raises(QueryRejectedError, match="no label"):
                    bad.point("ktree", u, "ghost")
                results["bad"] = True

            t = threading.Thread(target=ask_bad, daemon=True)
            t.start()
            assert good.point("ktree", u, v) == want
            t.join(timeout=5.0)
            assert results.get("bad")

    def test_scalar_and_packed_servers_agree(self, store):
        packed = store.get("ktree")
        vertices = list(packed.vertices())
        us = [vertices[i % len(vertices)] for i in range(10)]
        vs = [vertices[(3 * i) % len(vertices)] for i in range(10)]
        answers = {}
        for decode in ("packed", "scalar"):
            with QueryServer(store, decode=decode) as server:
                sock = _connected(server)
                _send_request(sock, ("query", "ktree", us, vs))
                server.tick(timeout=0.2)
                status, answers[decode] = _read_reply(sock)
                assert status == "ok"
                sock.close()
        assert answers["packed"] == answers["scalar"]

    def test_unknown_decode_mode_rejected(self, store):
        with pytest.raises(LabelingError, match="decode"):
            QueryServer(store, decode="quantum")


# --------------------------------------------------------------------------- #
# Micro-batching (driven tick by tick, so the flush is deterministic)
# --------------------------------------------------------------------------- #
class TestMicroBatching:
    def test_concurrent_points_coalesce_into_one_kernel_call(self, store):
        packed = store.get("ktree")
        vertices = list(packed.vertices())
        pairs = [(vertices[i], vertices[-1 - i]) for i in range(4)]
        with QueryServer(store) as server:
            socks = _connected(server, count=4)
            before = server.stats()["counters"]
            for sock, (u, v) in zip(socks, pairs):
                _send_request(sock, ("point", "ktree", u, v))
            server.tick(timeout=0.5)
            after = server.stats()["counters"]
            # All four points arrived in the tick → exactly one batch call.
            assert after["batch_calls"] - before["batch_calls"] == 1
            assert after["max_batch"] == 4
            assert after["point_queries"] - before["point_queries"] == 4
            for sock, (u, v) in zip(socks, pairs):
                assert _read_reply(sock) == ("ok", packed.distance(u, v))
            for sock in socks:
                sock.close()

    def test_sequential_points_batch_alone(self, store):
        packed = store.get("ktree")
        u, v = list(packed.vertices())[:2]
        with QueryServer(store) as server:
            sock = _connected(server)
            for _ in range(3):
                _send_request(sock, ("point", "ktree", u, v))
                server.tick(timeout=0.2)
                assert _read_reply(sock) == ("ok", packed.distance(u, v))
            counters = server.stats()["counters"]
            assert counters["batch_calls"] == 3
            assert counters["max_batch"] == 1
            sock.close()


# --------------------------------------------------------------------------- #
# Fault containment (mirrors test_socket_transport.py)
# --------------------------------------------------------------------------- #
class TestFaultPaths:
    def test_unbindable_listener_raises_transport_setup_error(self, store):
        # TEST-NET-3 (RFC 5737): never assigned to a local interface, so the
        # bind fails with EADDRNOTAVAIL without touching any real network.
        try:
            server = QueryServer(store, host="203.0.113.1")
        except TransportSetupError as exc:
            assert "cannot listen" in str(exc)
        else:  # pragma: no cover - platform quirk
            server.close()
            pytest.skip("host unexpectedly bindable on this platform")

    def test_client_disconnect_mid_frame_is_dropped_not_fatal(self, store):
        packed = store.get("ktree")
        u, v = list(packed.vertices())[:2]
        with QueryServer(store, client_timeout=1.0) as server:
            bad, good = _connected(server, count=2)
            # Announce a 100-byte frame, deliver 10 bytes, vanish.
            bad.sendall(_LEN.pack(100) + b"\x00" * 10)
            bad.close()
            _send_request(good, ("point", "ktree", u, v))
            server.tick(timeout=0.5)
            server.tick(timeout=0.2)  # in case bad/good landed in one tick
            counters = server.stats()["counters"]
            assert counters["dropped_clients"] == 1
            # The survivor still got its answer.
            assert _read_reply(good) == ("ok", packed.distance(u, v))
            good.close()

    def test_truncated_header_is_dropped(self, store):
        with QueryServer(store, client_timeout=1.0) as server:
            sock = _connected(server)
            sock.sendall(b"\x00\x01")  # half a length prefix, then EOF
            sock.close()
            server.tick(timeout=0.5)
            assert server.stats()["counters"]["dropped_clients"] == 1

    def test_oversized_frame_dropped_without_reading_body(self, store):
        packed = store.get("ktree")
        u, v = list(packed.vertices())[:2]
        with QueryServer(store, max_frame_bytes=1024) as server:
            sock = _connected(server)
            # The body never needs to exist: the declared length alone
            # condemns the frame.
            sock.sendall(_LEN.pack(50_000_000))
            server.tick(timeout=0.5)
            counters = server.stats()["counters"]
            assert counters["oversized_frames"] == 1
            assert counters["dropped_clients"] == 1
            # The server dropped the connection (EOF on our side)…
            assert sock.recv(1) == b""
            sock.close()
            # …and keeps serving new clients.
            fresh = _connected(server)
            _send_request(fresh, ("point", "ktree", u, v))
            server.tick(timeout=0.5)
            assert _read_reply(fresh) == ("ok", packed.distance(u, v))
            fresh.close()

    def test_malformed_payloads_answer_err_and_survive(self, store):
        with QueryServer(store) as server:
            sock = _connected(server)
            # Undecodable bytes.
            _send_frame(sock, b"\x80\x05this is not a pickle")
            server.tick(timeout=0.5)
            status, message = _read_reply(sock)
            assert status == "err" and "undecodable" in message
            # Decodable but not a request tuple.
            _send_request(sock, {"verb": "ping"})
            server.tick(timeout=0.5)
            status, message = _read_reply(sock)
            assert status == "err" and "malformed" in message
            # The connection is still healthy.
            _send_request(sock, ("ping",))
            server.tick(timeout=0.5)
            assert _read_reply(sock) == ("ok", "pong")
            counters = server.stats()["counters"]
            assert counters["malformed_requests"] == 2
            assert counters["dropped_clients"] == 0
            sock.close()


# --------------------------------------------------------------------------- #
# Multi-process pool
# --------------------------------------------------------------------------- #
class TestServerPool:
    def test_two_workers_share_one_mapped_store(self, store, tmp_path):
        packed = store.get("ktree")
        vertices = list(packed.vertices())
        us, vs = vertices[:6], vertices[-6:]
        expected = [packed.distance(u, v) for u, v in zip(us, vs)]
        with ServerPool(store.directory, num_workers=2) as pool:
            assert len(pool.addresses) == 2
            assert len({addr for addr in pool.addresses}) == 2
            pids = set()
            for address in pool.addresses:
                with QueryClient(address) as client:
                    assert client.query("ktree", us, vs) == expected
                    stats = client.server_stats()
                pids.add(stats["pid"])
                if vectorized_available():
                    # The zero-copy contract: every worker maps the same
                    # file; no label bytes are copied into worker heaps.
                    assert stats["store"]["copied_label_bytes"] == 0
                    assert stats["store"]["mapped_bytes"] == packed.array_bytes
            assert len(pids) == 2  # genuinely separate processes
            procs = list(pool.processes)
        for proc in procs:  # close() shut every worker down
            assert not proc.is_alive()

    def test_pool_shutdown_is_idempotent(self, store):
        pool = ServerPool(store.directory, num_workers=1)
        pool.close()
        pool.close()
        assert pool.addresses == [] and pool.processes == []
