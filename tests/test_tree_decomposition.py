"""Tests for the distributed tree decomposition (Theorem 1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FrameworkConfig
from repro.decomposition.tree_decomposition import build_tree_decomposition
from repro.decomposition.validation import (
    is_valid_tree_decomposition,
    tree_decomposition_violations,
    validate_tree_decomposition,
)
from repro.errors import DecompositionError, GraphError
from repro.graphs import generators, properties
from repro.graphs.treewidth import treewidth_upper_bound


FAMILIES = [
    ("partial_k_tree", lambda: generators.partial_k_tree(90, 3, seed=2)),
    ("k_tree", lambda: generators.k_tree(50, 3, seed=3)),
    ("grid", lambda: generators.grid_graph(6, 12)),
    ("series_parallel", lambda: generators.series_parallel_graph(70, seed=4)),
    ("cycle_chords", lambda: generators.cycle_with_chords(60, 5, seed=5)),
    ("tree", lambda: generators.random_tree(60, seed=6)),
    ("caterpillar", lambda: generators.caterpillar_graph(25, 2)),
]


class TestValidityAcrossFamilies:
    @pytest.mark.parametrize("name,factory", FAMILIES, ids=[f[0] for f in FAMILIES])
    def test_decomposition_is_valid(self, name, factory):
        graph = factory()
        result = build_tree_decomposition(graph, config=FrameworkConfig(seed=1))
        assert tree_decomposition_violations(graph, result.decomposition) == []

    @pytest.mark.parametrize("name,factory", FAMILIES[:4], ids=[f[0] for f in FAMILIES[:4]])
    def test_width_within_theorem_bound(self, name, factory):
        graph = factory()
        result = build_tree_decomposition(graph, config=FrameworkConfig(seed=1))
        tau = max(1, treewidth_upper_bound(graph))
        log_n = math.ceil(math.log2(graph.num_nodes()))
        # Theorem 1: width O(τ² log n); the practical constants keep it well
        # under the paper's worst-case 400(τ+1)²·log n.
        assert result.decomposition.width() <= 400 * (tau + 1) ** 2 * log_n

    def test_depth_logarithmic(self):
        graph = generators.partial_k_tree(300, 3, seed=9)
        result = build_tree_decomposition(graph, config=FrameworkConfig(seed=1))
        assert result.decomposition.depth() <= 4 * math.ceil(math.log2(300))


class TestStructureQueries:
    def test_canonical_labels_and_upward_unions(self, small_partial_k_tree, config):
        graph = small_partial_k_tree
        td = build_tree_decomposition(graph, config=config).decomposition
        for v in graph.nodes():
            label = td.canonical_label(v)
            assert v in td.bag(label)
            # No strictly shorter label contains v.
            for anc in td.ancestors(label, include_self=False):
                assert v not in td.bag(anc)
            upward = td.upward_bag_union(v)
            assert v in upward
            assert td.bag(()) <= upward

    def test_levels_and_children_consistent(self, small_partial_k_tree, config):
        td = build_tree_decomposition(small_partial_k_tree, config=config).decomposition
        total = 0
        for depth in range(td.depth() + 1):
            level = td.level(depth)
            total += len(level)
            for label in level:
                for child in td.children(label):
                    assert td.parent(child) == label
                    assert len(child) == len(label) + 1
        assert total == td.num_bags()

    def test_unknown_vertex_raises(self, small_partial_k_tree, config):
        td = build_tree_decomposition(small_partial_k_tree, config=config).decomposition
        with pytest.raises(DecompositionError):
            td.canonical_label("not-a-node")

    def test_covered_vertices_equals_node_set(self, small_partial_k_tree, config):
        td = build_tree_decomposition(small_partial_k_tree, config=config).decomposition
        assert td.covered_vertices() == set(small_partial_k_tree.nodes())


class TestRoundsAndErrors:
    def test_rounds_positive_and_ledger_consistent(self, small_partial_k_tree, config):
        result = build_tree_decomposition(small_partial_k_tree, config=config)
        assert result.rounds == result.ledger.total()
        assert result.rounds > 0

    def test_rounds_scale_with_diameter(self):
        cfg = FrameworkConfig(seed=1)
        short = generators.partial_k_tree(120, 2, seed=1)
        long = generators.caterpillar_graph(120, 0)
        r_short = build_tree_decomposition(short, config=cfg)
        r_long = build_tree_decomposition(long, config=cfg)
        d_short = properties.diameter(short)
        d_long = properties.diameter(long)
        assert d_long > d_short
        # Rounds should grow with the diameter (roughly linearly per Theorem 1).
        assert r_long.rounds > r_short.rounds

    def test_empty_graph_rejected(self):
        from repro.graphs.graph import Graph

        with pytest.raises(GraphError):
            build_tree_decomposition(Graph())

    def test_disconnected_graph_rejected(self):
        from repro.graphs.graph import Graph

        with pytest.raises(GraphError):
            build_tree_decomposition(Graph(edges=[(0, 1), (2, 3)]))

    def test_validate_raises_on_tampered_decomposition(self, small_partial_k_tree, config):
        result = build_tree_decomposition(small_partial_k_tree, config=config)
        td = result.decomposition
        # Remove a vertex from every bag: coverage must now fail.
        victim = next(iter(small_partial_k_tree.nodes()))
        for node in td.nodes.values():
            node.bag = frozenset(node.bag - {victim})
        with pytest.raises(DecompositionError):
            validate_tree_decomposition(small_partial_k_tree, td)


@given(st.integers(min_value=20, max_value=120), st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=200))
@settings(max_examples=15, deadline=None)
def test_decomposition_valid_on_random_partial_k_trees(n, k, seed):
    """Property: the construction always yields a valid tree decomposition."""
    graph = generators.partial_k_tree(max(n, k + 2), k, seed=seed)
    result = build_tree_decomposition(graph, config=FrameworkConfig(seed=seed))
    assert is_valid_tree_decomposition(graph, result.decomposition)
