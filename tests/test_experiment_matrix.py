"""Tests for the resumable experiment-matrix runner (``repro-bench``).

Covers the tentpole guarantees:

* cell specs hash stably and every axis (plus the schema version) feeds
  the hash, so a spec change never aliases an old record;
* an interrupted sweep, re-invoked, skips finished cells and produces a
  store byte-identical to an uninterrupted sweep (deterministic timer);
* the gate subcommand passes against the committed ``BENCH_*.json``
  files and fails when a tier record is artificially slowed past
  tolerance;
* export folds store records into the trajectories through the hardened
  merge-writer.
"""

import copy
import json
import os
import subprocess
import sys

import pytest

from repro.experiments import (
    REGISTRY,
    CellSpec,
    ResultStore,
    check_store,
    check_trajectory,
    execute_cell,
    export_store,
    load_trajectory,
    make_matrix,
    register_protocol,
    run_matrix,
)
from repro.experiments.matrix import SCHEMA_VERSION, STRUCTURAL_ENGINE, family_size

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# --------------------------------------------------------------------------- #
# cell hashing
# --------------------------------------------------------------------------- #
class TestCellHash:
    def test_hash_is_stable_across_instances(self):
        a = CellSpec("bellman_ford", "fast", "path", "smoke", 1)
        b = CellSpec("bellman_ford", "fast", "path", "smoke", 1)
        assert a.cell_hash() == b.cell_hash()
        assert len(a.cell_hash()) == 16

    def test_every_axis_feeds_the_hash(self):
        base = CellSpec("bellman_ford", "fast", "path", "smoke", 1)
        variants = [
            CellSpec("bfs_tree", "fast", "path", "smoke", 1),
            CellSpec("bellman_ford", "vectorized", "path", "smoke", 1),
            CellSpec("bellman_ford", "fast", "dense", "smoke", 1),
            CellSpec("bellman_ford", "fast", "path", "small", 1),
            CellSpec("bellman_ford", "fast", "path", "smoke", 2),
        ]
        hashes = {base.cell_hash()} | {v.cell_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_schema_version_feeds_the_hash(self):
        cell = CellSpec("bellman_ford", "fast", "path", "smoke", 1)
        assert cell.to_dict()["schema"] == SCHEMA_VERSION
        doc = dict(cell.to_dict(), schema=SCHEMA_VERSION + 1)
        import hashlib

        other = hashlib.sha256(
            json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()[:16]
        assert other != cell.cell_hash()


# --------------------------------------------------------------------------- #
# matrix expansion
# --------------------------------------------------------------------------- #
class TestMatrix:
    def test_congest_matrix_is_full_cross_product(self):
        matrix = make_matrix(
            protocols=("bellman_ford",),
            engines=("fast", "vectorized"),
            families=("path", "dense"),
            scale="smoke",
            seeds=(1, 2),
        )
        cells = matrix.cells()
        assert len(cells) == 2 * 2 * 2
        assert {c.engine for c in cells} == {"fast", "vectorized"}

    def test_serving_protocol_filters_engine_axis(self):
        matrix = make_matrix(
            protocols=("serving_query",),
            engines=("fast", "scalar", "packed", "vectorized"),
            families=("ktree", "path"),
            scale="smoke",
            seeds=(1,),
        )
        cells = matrix.cells()
        # Only the serving tiers and families survive the filter.
        assert {c.engine for c in cells} == {"scalar", "packed"}
        assert {c.family for c in cells} == {"ktree"}

    def test_structural_protocol_pins_engine(self):
        matrix = make_matrix(
            protocols=("separator",),
            engines=("fast", "vectorized"),
            families=("ktree",),
            scale="smoke",
            seeds=(1,),
        )
        cells = matrix.cells()
        assert len(cells) == 1
        assert cells[0].engine == STRUCTURAL_ENGINE

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            make_matrix(
                protocols=("no_such_protocol",),
                engines=("fast",),
                families=("path",),
                scale="smoke",
                seeds=(1,),
            ).cells()

    def test_family_sizes_grow_with_scale(self):
        for family in ("path", "dense", "ktree"):
            assert (
                family_size(family, "smoke")
                < family_size(family, "small")
                < family_size(family, "full")
            )

    def test_bench_modules_expose_valid_matrix_cells(self):
        benchmarks_dir = os.path.join(REPO_ROOT, "benchmarks")
        if benchmarks_dir not in sys.path:
            sys.path.insert(0, benchmarks_dir)
        import importlib

        modules = [
            name[: -len(".py")]
            for name in os.listdir(benchmarks_dir)
            if name.startswith("bench_") and name.endswith(".py")
        ]
        assert len(modules) >= 11
        seen = 0
        for name in sorted(modules):
            mod = importlib.import_module(name)
            cells = mod.matrix_cells(scale="smoke", seed=7)
            assert cells, name
            for cell in cells:
                seen += 1
                adapter = REGISTRY[cell.protocol]
                assert cell.family in adapter.families, (name, cell)
                if adapter.engines == (STRUCTURAL_ENGINE,):
                    assert cell.engine == STRUCTURAL_ENGINE, (name, cell)
                else:
                    assert cell.engine in adapter.engines, (name, cell)
                assert cell.scale == "smoke"
                assert cell.seed == 7
        assert seen >= 15


# --------------------------------------------------------------------------- #
# stub protocols for runner tests (cheap, deterministic, countable)
# --------------------------------------------------------------------------- #
CALLS = {"n": 0}


@pytest.fixture
def stub_protocol():
    """Register a counting stub protocol; deregister on teardown."""
    name = "stub_proto"

    @register_protocol(name, engines=("fast", "vectorized"), families=("path",))
    def _run(cell):
        CALLS["n"] += 1
        return {
            "output_digest": f"digest-{cell.family}-{cell.seed}",
            "value": cell.seed * 10,
        }

    CALLS["n"] = 0
    yield name
    REGISTRY.pop(name, None)


def fake_timer():
    """Deterministic clock: each call advances 0.5s, so every cell takes
    exactly 0.5s regardless of when (or in which invocation) it runs."""
    state = {"t": 0.0}

    def timer():
        state["t"] += 0.5
        return state["t"]

    return timer


def store_bytes(store):
    return {
        name: open(os.path.join(store.cell_dir, name), "rb").read()
        for name in os.listdir(store.cell_dir)
    }


# --------------------------------------------------------------------------- #
# runner: resume semantics
# --------------------------------------------------------------------------- #
class TestRunnerResume:
    def _cells(self, stub_protocol):
        return make_matrix(
            protocols=(stub_protocol,),
            engines=("fast", "vectorized"),
            families=("path",),
            scale="smoke",
            seeds=(1, 2, 3),
        ).cells()

    def test_interrupted_sweep_resumes_to_identical_store(
        self, tmp_path, stub_protocol
    ):
        cells = self._cells(stub_protocol)
        assert len(cells) == 6

        # Reference: uninterrupted sweep.
        ref = ResultStore(tmp_path / "ref")
        summary = run_matrix(cells, ref, timer=fake_timer())
        assert summary.executed == 6 and not summary.interrupted
        assert CALLS["n"] == 6

        # Interrupt after 3 executed cells, then re-invoke.
        CALLS["n"] = 0
        resumed = ResultStore(tmp_path / "resumed")
        first = run_matrix(cells, resumed, max_cells=3, timer=fake_timer())
        assert first.executed == 3 and first.interrupted
        assert len(resumed) == 3

        second = run_matrix(cells, resumed, timer=fake_timer())
        assert second.executed == 3 and second.cached == 3
        assert not second.interrupted
        # Finished cells were NOT re-run: 3 + 3 executions total.
        assert CALLS["n"] == 6

        # The resumed store is byte-identical to the uninterrupted one.
        assert store_bytes(resumed) == store_bytes(ref)

    def test_fully_cached_sweep_executes_nothing(self, tmp_path, stub_protocol):
        cells = self._cells(stub_protocol)
        store = ResultStore(tmp_path / "s")
        run_matrix(cells, store, timer=fake_timer())
        CALLS["n"] = 0
        summary = run_matrix(cells, store, timer=fake_timer())
        assert summary.executed == 0 and summary.cached == 6
        assert CALLS["n"] == 0

    def test_rerun_forces_execution(self, tmp_path, stub_protocol):
        cells = self._cells(stub_protocol)
        store = ResultStore(tmp_path / "s")
        run_matrix(cells, store, timer=fake_timer())
        CALLS["n"] = 0
        summary = run_matrix(cells, store, rerun=True, timer=fake_timer())
        assert summary.executed == 6 and summary.cached == 0
        assert CALLS["n"] == 6

    def test_failure_recorded_and_keep_going_continues(self, tmp_path):
        name = "stub_flaky"

        @register_protocol(name, engines=("fast",), families=("path",))
        def _run(cell):
            if cell.seed == 2:
                raise RuntimeError("boom")
            return {"output_digest": "d"}

        try:
            cells = make_matrix(
                protocols=(name,), engines=("fast",), families=("path",),
                scale="smoke", seeds=(1, 2, 3),
            ).cells()
            store = ResultStore(tmp_path / "s")
            with pytest.raises(RuntimeError):
                run_matrix(cells, store, timer=fake_timer())
            summary = run_matrix(
                cells, store, keep_going=True, timer=fake_timer()
            )
            assert summary.failed == 1
            assert "boom" in summary.failures[0]
            assert len(store) == 2  # seeds 1 and 3 persisted, 2 never lands
        finally:
            REGISTRY.pop(name, None)

    def test_record_shape(self, stub_protocol):
        cell = CellSpec(stub_protocol, "fast", "path", "smoke", 5)
        record = execute_cell(cell, timer=fake_timer())
        assert record["schema"] == SCHEMA_VERSION
        assert record["hash"] == cell.cell_hash()
        assert record["spec"] == cell.to_dict()
        assert record["timing"]["seconds"] == 0.5
        assert record["result"]["value"] == 50


# --------------------------------------------------------------------------- #
# store
# --------------------------------------------------------------------------- #
class TestResultStore:
    def test_put_get_discard_and_jsonl_consolidate(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put("aaaa", {"spec": {"protocol": "p"}, "x": 1})
        store.put("bbbb", {"spec": {"protocol": "q"}, "x": 2})
        assert store.has("aaaa") and not store.has("cccc")
        assert store.get("aaaa")["x"] == 1
        assert store.keys() == ["aaaa", "bbbb"]

        out = store.consolidate(str(tmp_path / "all.jsonl"), fmt="jsonl")
        lines = open(out).read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["x"] == 1

        store.discard("aaaa")
        assert not store.has("aaaa") and len(store) == 1


# --------------------------------------------------------------------------- #
# gates
# --------------------------------------------------------------------------- #
#: A healthy engine-trajectory record satisfying the full-scale ratio gates
#: (vectorized 10x and sharded[2] 2x over fast on the dense case).  Used
#: instead of the real BENCH_engine.json, which is generated by the bench
#: suite and absent in a fresh checkout.
GOOD_ENGINE_RECORD = {
    "bellman_ford_dense": {
        "scale": "full",
        "tiers": {
            "fast": {"seconds": 10.0},
            "vectorized": {"seconds": 1.0},
        },
    },
    "bellman_ford_dense_sharded": {
        "scale": "full",
        "tiers": {
            "fast": {"seconds": 10.0},
            "sharded[2]": {"seconds": 5.0},
        },
    },
}


class TestGates:
    def test_committed_trajectories_pass(self):
        # BENCH_serving.json is committed; BENCH_engine.json is generated
        # by the bench suite and may be absent in a fresh checkout.
        checked = 0
        for fname, kind in (
            ("BENCH_engine.json", "engine"),
            ("BENCH_serving.json", "serving"),
        ):
            path = os.path.join(REPO_ROOT, fname)
            if not os.path.exists(path):
                continue
            report = check_trajectory(path, kind)
            assert report.ok, report.render()
            assert report.checks > 0
            checked += 1
        assert checked >= 1  # the serving trajectory is always committed

    def test_healthy_record_passes(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(GOOD_ENGINE_RECORD))
        report = check_trajectory(str(path), "engine")
        assert report.ok, report.render()

    def test_slowed_tier_fails_the_gate(self, tmp_path):
        slowed = copy.deepcopy(GOOD_ENGINE_RECORD)
        slowed["bellman_ford_dense"]["tiers"]["vectorized"]["seconds"] *= 100
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(slowed))
        report = check_trajectory(str(path), "engine")
        assert not report.ok
        assert any("vectorized" in v for v in report.violations)

    def test_missing_tier_in_present_case_is_violation(self, tmp_path):
        broken = copy.deepcopy(GOOD_ENGINE_RECORD)
        del broken["bellman_ford_dense"]["tiers"]["vectorized"]
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(broken))
        report = check_trajectory(str(path), "engine")
        assert any("missing" in v for v in report.violations)

    def test_missing_case_is_note_not_violation(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("{}")
        report = check_trajectory(str(path), "engine")
        assert report.ok
        assert any("not recorded yet" in n for n in report.notes)

    def test_invalid_json_is_violation(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("{nope")
        assert not check_trajectory(str(path), "engine").ok
        assert not check_trajectory(str(tmp_path / "absent.json"), "engine").ok

    def test_store_digest_disagreement_is_violation(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for engine, digest in (("fast", "aaaa"), ("vectorized", "bbbb")):
            cell = CellSpec("bellman_ford", engine, "path", "smoke", 1)
            store.put(
                cell.cell_hash(),
                {
                    "spec": cell.to_dict(),
                    "result": {"output_digest": digest},
                    "timing": {"seconds": 0.5},
                },
            )
        report = check_store(store)
        assert any("disagree" in v for v in report.violations)

    def test_store_fallback_tier_is_exempt_from_floor(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        specs = {
            "fast": ("fast", 0.1),
            # Vectorized fell back to fast and is "slow": floor must be
            # skipped (with a note), not violated.  Scale "small" because
            # smoke cells carry no speedup floors at all.
            "vectorized": ("fast", 0.4),
        }
        for engine, (selected, seconds) in specs.items():
            cell = CellSpec("bellman_ford", engine, "dense", "small", 1)
            store.put(
                cell.cell_hash(),
                {
                    "spec": cell.to_dict(),
                    "result": {"output_digest": "d", "engine_selected": selected},
                    "timing": {"seconds": seconds},
                },
            )
        report = check_store(store)
        assert report.ok, report.render()
        assert any("fell back" in n for n in report.notes)

    def test_store_slow_native_tier_violates_floor(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for engine, seconds in (("fast", 0.1), ("vectorized", 0.4)):
            cell = CellSpec("bellman_ford", engine, "dense", "small", 1)
            store.put(
                cell.cell_hash(),
                {
                    "spec": cell.to_dict(),
                    "result": {"output_digest": "d", "engine_selected": engine},
                    "timing": {"seconds": seconds},
                },
            )
        report = check_store(store)
        assert any("only 0.25x over fast" in v for v in report.violations)

    def test_store_smoke_cells_carry_no_speedup_floor(self, tmp_path):
        # Smoke instances are too small for meaningful ratios: an arbitrarily
        # slow (but honest, non-fallback) vectorized cell must still pass.
        store = ResultStore(tmp_path / "s")
        for engine, seconds in (("fast", 0.001), ("vectorized", 5.0)):
            cell = CellSpec("bellman_ford", engine, "dense", "smoke", 1)
            store.put(
                cell.cell_hash(),
                {
                    "spec": cell.to_dict(),
                    "result": {"output_digest": "d", "engine_selected": engine},
                    "timing": {"seconds": seconds},
                },
            )
        report = check_store(store)
        assert report.ok, report.render()


# --------------------------------------------------------------------------- #
# export
# --------------------------------------------------------------------------- #
class TestExport:
    def test_export_groups_engines_into_one_case(self, tmp_path, stub_protocol):
        cells = make_matrix(
            protocols=(stub_protocol,),
            engines=("fast", "vectorized"),
            families=("path",),
            scale="smoke",
            seeds=(1,),
        ).cells()
        store = ResultStore(tmp_path / "s")
        run_matrix(cells, store, timer=fake_timer())

        engine_out = str(tmp_path / "BENCH_engine.json")
        serving_out = str(tmp_path / "BENCH_serving.json")
        written = export_store(store, engine_out=engine_out, serving_out=serving_out)
        assert written == {"engine": 1, "serving": 0}

        record = load_trajectory(engine_out)
        case = record[f"matrix_{stub_protocol}_path_smoke"]
        assert set(case["tiers"]) == {"fast", "vectorized"}
        assert case["tiers"]["fast"]["seconds"] == 0.5
        assert case["source"] == "repro-bench"
        # Cell hashes are recorded so a case can be traced to its records.
        assert set(case["cells"]) == {"fast", "vectorized"}

    def test_export_merges_without_clobbering(self, tmp_path, stub_protocol):
        engine_out = str(tmp_path / "BENCH_engine.json")
        from repro.experiments import merge_trajectory_record

        merge_trajectory_record(
            engine_out, "handwritten_case", "full", {"fast": {"seconds": 1.0}}
        )
        cells = make_matrix(
            protocols=(stub_protocol,), engines=("fast",), families=("path",),
            scale="smoke", seeds=(1,),
        ).cells()
        store = ResultStore(tmp_path / "s")
        run_matrix(cells, store, timer=fake_timer())
        export_store(
            store, engine_out=engine_out, serving_out=str(tmp_path / "sv.json")
        )
        record = load_trajectory(engine_out)
        assert "handwritten_case" in record
        assert f"matrix_{stub_protocol}_path_smoke" in record


# --------------------------------------------------------------------------- #
# CLI end-to-end (subprocess)
# --------------------------------------------------------------------------- #
def _cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments"] + args,
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
    )


class TestCLI:
    RUN_ARGS = [
        "run", "-p", "bellman_ford", "-e", "fast", "-e", "vectorized",
        "-f", "path", "--scale", "smoke", "--seed", "1",
    ]

    def test_run_interrupt_resume_and_gate(self, tmp_path):
        store = str(tmp_path / "store")

        first = _cli(self.RUN_ARGS + ["--store", store, "--max-cells", "1"],
                     cwd=str(tmp_path))
        assert first.returncode == 0, first.stderr
        assert "executed=1" in first.stdout
        assert "interrupted" in first.stdout

        second = _cli(self.RUN_ARGS + ["--store", store], cwd=str(tmp_path))
        assert second.returncode == 0, second.stderr
        assert "cached=1" in second.stdout
        assert "executed=1" in second.stdout

        gate = _cli(
            ["gate", "--skip-engine", "--skip-serving", "--store", store],
            cwd=str(tmp_path),
        )
        assert gate.returncode == 0, gate.stdout + gate.stderr
        assert "PASS" in gate.stdout

    def test_gate_exit_codes_against_trajectories(self, tmp_path):
        (tmp_path / "good.json").write_text(json.dumps(GOOD_ENGINE_RECORD))
        good = _cli(
            ["gate", "--engine-trajectory", str(tmp_path / "good.json"),
             "--serving-trajectory",
             os.path.join(REPO_ROOT, "BENCH_serving.json")],
            cwd=REPO_ROOT,
        )
        assert good.returncode == 0, good.stdout + good.stderr
        assert "PASS" in good.stdout

        slowed = copy.deepcopy(GOOD_ENGINE_RECORD)
        slowed["bellman_ford_dense"]["tiers"]["vectorized"]["seconds"] *= 100
        (tmp_path / "slowed.json").write_text(json.dumps(slowed))
        bad = _cli(
            ["gate", "--engine-trajectory", str(tmp_path / "slowed.json"),
             "--skip-serving"],
            cwd=REPO_ROOT,
        )
        assert bad.returncode == 1
        assert "FAIL" in bad.stdout

        # A missing trajectory file is a violation, not a silent skip.
        absent = _cli(
            ["gate", "--engine-trajectory", str(tmp_path / "absent.json"),
             "--skip-serving"],
            cwd=REPO_ROOT,
        )
        assert absent.returncode == 1
