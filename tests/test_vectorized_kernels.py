"""Unit tests for the vectorized-tier plumbing.

The randomized three-tier equivalence harness lives in
``test_engine_equivalence.py``; this file covers the building blocks in
isolation — :class:`PayloadSchema` packing, the numpy CSR arc-slot view,
the graceful capability fallback, the pipelined chunk-flood primitive, and
the engine-measured BCT broadcast of the labeling construction.
"""

from __future__ import annotations

import math

import pytest

from repro.congest.message import PayloadSchema, payload_size_words
from repro.congest.network import CongestNetwork
from repro.congest.node import BroadcastAll
from repro.congest.primitives import flood_chunks
from repro.errors import SimulationError
from repro.graphs import generators
from repro.labeling.construction import build_distance_labeling


class TestPayloadSchema:
    def test_pack_unpack_roundtrip_with_tag(self):
        schema = PayloadSchema(fields=(("dist", "f8"),), tag="dist")
        payload = schema.pack(3.5)
        assert payload == ("dist", 3.5)
        assert schema.unpack(payload) == (3.5,)

    def test_size_words_matches_freeform_accounting(self):
        schema = PayloadSchema(fields=(("dist", "f8"),), tag="dist")
        assert schema.size_words == payload_size_words(("dist", 3.5))
        untagged = PayloadSchema(fields=(("a", "i8"), ("b", "f8")))
        assert untagged.size_words == payload_size_words((1, 2.0))

    def test_alloc_shapes_and_dtypes(self):
        np = pytest.importorskip("numpy")
        schema = PayloadSchema(fields=(("a", "i8"), ("b", "f8")))
        arrays = schema.alloc(7)
        assert set(arrays) == {"a", "b"}
        assert arrays["a"].dtype == np.int64 and arrays["a"].shape == (7,)
        assert arrays["b"].dtype == np.float64

    def test_mismatched_values_rejected(self):
        schema = PayloadSchema(fields=(("dist", "f8"),), tag="dist")
        with pytest.raises(ValueError):
            schema.pack(1.0, 2.0)
        with pytest.raises(ValueError):
            schema.unpack(("other", 1.0))


class TestCsrArrays:
    def test_rev_is_involution_and_edge_ids_symmetric(self, master_seed):
        np = pytest.importorskip("numpy")
        graph = generators.partial_k_tree(30, 3, seed=master_seed)
        csr = graph.to_indexed().to_arrays()
        assert np.array_equal(csr.rev[csr.rev], np.arange(csr.num_arcs))
        # The reverse arc crosses the same undirected edge...
        assert np.array_equal(csr.arc_edge_ids[csr.rev], csr.arc_edge_ids)
        # ...and goes back to the arc's owner.
        assert np.array_equal(csr.indices[csr.rev], csr.arc_owner)
        # Each undirected edge id is carried by exactly two arcs.
        assert np.array_equal(
            np.bincount(csr.arc_edge_ids, minlength=csr.num_edges),
            np.full(csr.num_edges, 2),
        )

    def test_arrays_cached_per_snapshot(self):
        pytest.importorskip("numpy")
        graph = generators.grid_graph(4, 4)
        idx = graph.to_indexed()
        assert idx.to_arrays() is idx.to_arrays()


class TestGracefulFallback:
    def test_vectorized_without_kernel_runs_fast(self, master_seed):
        graph = generators.cycle_graph(9)
        net = CongestNetwork(graph, engine="vectorized")
        result = net.run(lambda u: BroadcastAll(value=u))
        assert result.engine == "fast"
        assert result.halted

    def test_unknown_engine_rejected(self):
        graph = generators.cycle_graph(5)
        with pytest.raises(SimulationError):
            CongestNetwork(graph, engine="warp")
        net = CongestNetwork(graph)
        with pytest.raises(SimulationError):
            net.run(lambda u: BroadcastAll(value=u), engine="warp")


class TestChunkFlood:
    def test_all_nodes_reassemble_in_pipelined_rounds(self, master_seed):
        graph = generators.grid_graph(5, 6)
        root = (0, 0)
        chunks = [("row", i, i * 1.5) for i in range(12)]
        net = CongestNetwork(graph, words_per_message=8)
        received, sim = flood_chunks(net, root, chunks)
        assert sim.halted
        assert set(received) == set(graph.nodes())
        assert all(out == tuple(chunks) for out in received.values())
        # Pipelining: O(D + C), far below the naive D * C sequential bound.
        d = 5 + 6 - 2
        assert sim.rounds <= d * 2 + len(chunks) + 2

    def test_single_node_root_halts_immediately(self):
        graph = generators.path_graph(1)
        net = CongestNetwork(graph)
        received, sim = flood_chunks(net, 0, [("only", 1)])
        assert sim.halted
        assert received[0] == (("only", 1),)
        assert sim.messages_sent == 0


class TestMeasuredBctBroadcast:
    def test_measured_construction_same_labels_engine_rounds(self, rng, config):
        graph = generators.partial_k_tree(24, 2, seed=rng.randrange(1 << 30))
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation="both", seed=rng.randrange(1 << 30)
        )
        modeled = build_distance_labeling(instance, config=config)
        measured = build_distance_labeling(
            instance, config=config, measured_broadcast=True
        )
        assert modeled.measured_broadcast_rounds is None
        assert measured.measured_broadcast_rounds
        # The engine-measured broadcasts are charged to the ledger per level.
        for depth, rounds in measured.measured_broadcast_rounds.items():
            key = f"distance_labeling/level_{depth}/broadcast[measured]"
            assert measured.ledger[key] == rounds
        # Labels are identical either way (accounting only differs).
        for u in instance.nodes():
            for v in instance.nodes():
                assert measured.labeling.distance(u, v) == modeled.labeling.distance(u, v)

    def test_measured_engines_agree(self, rng, config):
        from repro.congest.engine import sharded_available
        from repro.congest.kernels import vectorized_available

        graph = generators.partial_k_tree(18, 2, seed=rng.randrange(1 << 30))
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 5), orientation="asymmetric", seed=rng.randrange(1 << 30)
        )
        engines = ["fast", "legacy"]
        if vectorized_available():
            engines.append("vectorized")  # runs the FloodingKernel per level
        if sharded_available():
            engines.append("sharded")  # same kernel across worker processes
        by_engine = {
            engine: build_distance_labeling(
                instance, config=config, measured_broadcast=True, broadcast_engine=engine
            ).measured_broadcast_rounds
            for engine in engines
        }
        for engine in engines[1:]:
            assert by_engine[engine] == by_engine["fast"], engine
