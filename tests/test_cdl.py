"""Tests for constrained distance labeling CDL(C) (Theorem 3)."""

import math
import random

import pytest

from repro.core.config import FrameworkConfig
from repro.decomposition.tree_decomposition import build_tree_decomposition
from repro.errors import ConstraintError
from repro.graphs import generators
from repro.walks.cdl import build_constrained_labeling, shortest_constrained_walk_length
from repro.walks.constraints import (
    REJECT_STATE,
    ColoredWalkConstraint,
    CountWalkConstraint,
)
from repro.walks.product import build_product_graph, shortest_constrained_walk


def _instance_with_labels(n=24, seed=0, colors=("r", "b")):
    g = generators.partial_k_tree(n, 2, seed=seed)
    inst = generators.to_directed_instance(g, weight_range=(1, 6), orientation="both", seed=seed + 1)
    rng = random.Random(seed + 2)
    for e in inst.edges():
        inst.set_label(e.eid, rng.choice(colors))
    return inst


class TestConstrainedLabeling:
    def test_distances_match_product_graph_search(self, config):
        inst = _instance_with_labels(seed=4)
        constraint = ColoredWalkConstraint(["r", "b"])
        result = build_constrained_labeling(inst, constraint, config=config)
        product = build_product_graph(inst, constraint)
        nodes = inst.nodes()
        rng = random.Random(0)
        for _ in range(25):
            u, v = rng.choice(nodes), rng.choice(nodes)
            for color in ("r", "b"):
                state = ("color", color)
                direct = shortest_constrained_walk(product, u, v, state)
                decoded = result.labeling.distance(u, v, state)
                if direct is None:
                    assert math.isinf(decoded)
                else:
                    assert abs(decoded - direct[0]) < 1e-9

    def test_constrained_distance_takes_min_over_states(self, config):
        inst = _instance_with_labels(seed=6)
        constraint = ColoredWalkConstraint(["r", "b"])
        result = build_constrained_labeling(inst, constraint, config=config)
        nodes = inst.nodes()
        u, v = nodes[0], nodes[3]
        per_state = [
            result.labeling.distance(u, v, ("color", c)) for c in ("r", "b")
        ]
        assert result.labeling.constrained_distance(u, v) == min(per_state)

    def test_reject_state_query_rejected(self, config):
        inst = _instance_with_labels(seed=7, n=12)
        result = build_constrained_labeling(inst, ColoredWalkConstraint(["r", "b"]), config=config)
        with pytest.raises(ConstraintError):
            result.labeling.distance(inst.nodes()[0], inst.nodes()[1], REJECT_STATE)

    def test_rounds_include_simulation_overhead(self, config):
        inst = _instance_with_labels(seed=8, n=16)
        constraint = ColoredWalkConstraint(["r", "b"])
        result = build_constrained_labeling(inst, constraint, config=config)
        assert result.simulation_overhead == constraint.state_count() * inst.max_multiplicity()
        assert result.rounds >= result.product_label_rounds

    def test_reuses_base_decomposition(self, config):
        inst = _instance_with_labels(seed=9, n=16, colors=(0, 1))
        comm = inst.underlying_graph()
        decomposition = build_tree_decomposition(comm, config=config)
        result = build_constrained_labeling(
            inst, CountWalkConstraint(1), config=config, decomposition=decomposition
        )
        # Base decomposition rounds are carried into the CDL ledger.
        assert result.ledger.breakdown(1).get("base_decomposition", 0) == decomposition.ledger.total()

    def test_label_entry_counts_cover_all_states(self, config):
        inst = _instance_with_labels(seed=10, n=14, colors=(0, 1))
        constraint = CountWalkConstraint(1)
        result = build_constrained_labeling(inst, constraint, config=config)
        u = inst.nodes()[0]
        assert result.labeling.label_entries(u) > 0
        assert result.labeling.max_label_entries() >= result.labeling.label_entries(u)


class TestOneShotHelper:
    def test_shortest_constrained_walk_length(self):
        inst = _instance_with_labels(seed=11, n=12)
        constraint = ColoredWalkConstraint(["r", "b"])
        nodes = inst.nodes()
        length = shortest_constrained_walk_length(
            inst, constraint, nodes[0], nodes[-1], ("color", "b"), config=FrameworkConfig(seed=1)
        )
        product = build_product_graph(inst, constraint)
        direct = shortest_constrained_walk(product, nodes[0], nodes[-1], ("color", "b"))
        if direct is None:
            assert math.isinf(length)
        else:
            assert abs(length - direct[0]) < 1e-9
