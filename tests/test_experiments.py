"""Smoke tests for the experiment runners (small configurations of E1-E9)."""

import math

import pytest

from repro.analysis import experiments
from repro.analysis.workloads import bipartite_workloads, sweep_k, sweep_n, workload


SMALL = [
    workload("pkt(40,2)", "partial_k_tree", seed=1, n=40, k=2),
    workload("pkt(50,3)", "partial_k_tree", seed=2, n=50, k=3),
]


class TestStructuralExperiments:
    def test_e1_separator_experiment(self):
        table = experiments.run_separator_experiment(SMALL, seed=1)
        assert len(table) == len(SMALL)
        for row in table:
            assert row["sep_size"] <= row["size_bound"]
            assert row["valid"]

    def test_e2_decomposition_experiment(self):
        table = experiments.run_decomposition_experiment(SMALL, seed=1)
        for row in table:
            assert row["valid"]
            assert row["width"] <= row["width_bound"]
            assert row["depth"] <= row["depth_bound"]

    def test_e8_partwise_experiment(self):
        table = experiments.run_partwise_experiment([30, 60], k=2, seed=1)
        assert len(table) == 2
        for row in table:
            # Measured BFS/broadcast rounds are within a small factor of D.
            assert row["bfs_rounds_measured"] <= 2 * row["D"] + 2
            assert row["pa_rounds_model"] >= row["D"]


class TestProblemExperiments:
    def test_e3_labeling_experiment_has_zero_errors(self):
        table = experiments.run_labeling_experiment(SMALL[:1], seed=1, check_pairs=60)
        assert all(row["errors"] == 0 for row in table)

    def test_e4_sssp_scaling(self):
        table = experiments.run_sssp_scaling_experiment([30, 60], k=2, seed=1)
        assert len(table) == 2
        rows = list(table)
        assert rows[1]["n"] == 60
        assert rows[0]["bellman_ford_rounds"] > 0

    def test_e5_stateful_walks(self):
        table = experiments.run_stateful_walk_experiment(n=24, k=2, palettes=(2,), seed=1)
        assert len(table) == 3  # colored(2) + count(1) + count(2)
        for row in table:
            assert row["rounds"] > 0
            assert row["states"] >= 4

    def test_e6_matching(self):
        table = experiments.run_matching_experiment(bipartite_workloads("small")[:2], seed=1)
        assert all(row["exact"] for row in table)

    def test_e7_girth(self):
        directed = [workload("chords(20,3)", "cycle_chords", seed=4, n=20, chords=3)]
        undirected = [workload("chords(14,2)", "cycle_chords", seed=5, n=14, chords=2)]
        table = experiments.run_girth_experiment(directed, undirected, seed=1, trials_per_scale=6)
        for row in table:
            if row["mode"] == "directed":
                assert row["match"]
            else:
                assert row["girth"] >= row["exact_girth"] - 1e-9

    def test_e9_crossover(self):
        table = experiments.run_crossover_experiment([40, 80], k=2, seed=1)
        assert len(table) == 2
        for row in table:
            assert row["framework_rounds"] > 0
            assert row["general_exact_sssp"] > 0
