"""Randomized equivalence harness: fast indexed engine vs legacy loop.

Runs real protocols (flooding, BFS tree, broadcast, convergecast, leader
election, Bellman-Ford) on ~30 seeded random graph families and asserts the
two execution engines of :class:`CongestNetwork` produce *identical*
``rounds``, ``outputs``, ``messages_sent``, ``words_sent`` and
``max_words_per_edge_round``.  All instances derive from the session
``--seed``, so any failure is reproducible from the command line.
"""

from __future__ import annotations

import random

import pytest

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.congest.network import CongestNetwork
from repro.congest.node import BroadcastAll
from repro.congest.primitives import (
    broadcast,
    build_bfs_tree,
    convergecast_sum,
    elect_leader,
)
from repro.graphs import generators

# --------------------------------------------------------------------------- #
# ~30 seeded graph families: (name, builder(rng) -> Graph)
# --------------------------------------------------------------------------- #


def _families():
    fams = [
        ("path_12", lambda r: generators.path_graph(12)),
        ("path_40", lambda r: generators.path_graph(40)),
        ("cycle_9", lambda r: generators.cycle_graph(9)),
        ("cycle_30", lambda r: generators.cycle_graph(30)),
        ("star_15", lambda r: generators.star_graph(15)),
        ("grid_4x5", lambda r: generators.grid_graph(4, 5)),
        ("grid_6x7", lambda r: generators.grid_graph(6, 7)),
        ("grid_diag_5x5", lambda r: generators.grid_graph(5, 5, diagonal=True)),
        ("cylinder_4x6", lambda r: generators.cylinder_graph(4, 6)),
        ("caterpillar_8x2", lambda r: generators.caterpillar_graph(8, 2)),
        ("complete_7", lambda r: generators.complete_graph(7)),
    ]
    for i in range(4):
        fams.append(
            (f"random_tree_{i}", lambda r, i=i: generators.random_tree(20 + 7 * i, seed=r))
        )
    for i, (n, k) in enumerate([(20, 2), (30, 3), (40, 3), (50, 4)]):
        fams.append(
            (
                f"partial_k_tree_{i}",
                lambda r, n=n, k=k: generators.partial_k_tree(n, k, seed=r),
            )
        )
    for i, (n, k) in enumerate([(15, 2), (25, 3)]):
        fams.append((f"k_tree_{i}", lambda r, n=n, k=k: generators.k_tree(n, k, seed=r)))
    for i in range(3):
        fams.append(
            (
                f"series_parallel_{i}",
                lambda r, i=i: generators.series_parallel_graph(15 + 10 * i, seed=r),
            )
        )
    for i in range(3):
        fams.append(
            (
                f"cycle_chords_{i}",
                lambda r, i=i: generators.cycle_with_chords(18 + 8 * i, 3 + i, seed=r),
            )
        )
    for i in range(2):
        fams.append(
            (
                f"banded_bipartite_{i}",
                lambda r, i=i: generators.random_banded_bipartite(
                    10 + 5 * i, 12 + 5 * i, band=2 + i, seed=r
                ),
            )
        )
    # Low-treewidth gluings: two partial k-trees sharing a small cut.
    def glued(r, n=18, k=2):
        from repro.graphs.graph import Graph

        rng = random.Random(r)
        a = generators.partial_k_tree(n, k, seed=rng.randrange(1 << 30))
        b = generators.partial_k_tree(n, k, seed=rng.randrange(1 << 30))
        g = Graph()
        for u, v, w in a.weighted_edges():
            g.add_edge(("a", u), ("a", v), weight=w)
        for u, v, w in b.weighted_edges():
            g.add_edge(("b", u), ("b", v), weight=w)
        for i in range(k + 1):
            g.add_edge(("a", i), ("b", i))
        return g

    for i in range(3):
        fams.append((f"glued_{i}", lambda r, i=i: glued(r + i)))
    return fams


FAMILIES = _families()


def _assert_identical(fast, legacy):
    assert fast.rounds == legacy.rounds
    assert fast.outputs == legacy.outputs
    assert fast.messages_sent == legacy.messages_sent
    assert fast.words_sent == legacy.words_sent
    assert fast.max_words_per_edge_round == legacy.max_words_per_edge_round
    assert fast.max_message_words == legacy.max_message_words
    assert fast.halted == legacy.halted


@pytest.fixture(params=[name for name, _ in FAMILIES])
def family_graph(request, master_seed):
    name = request.param
    builder = dict(FAMILIES)[name]
    graph = builder(master_seed + len(name))
    assert graph.num_nodes() > 0
    return graph


class TestEngineEquivalence:
    def test_flooding_broadcast_all(self, family_graph):
        net = CongestNetwork(family_graph)
        fast = net.run(lambda u: BroadcastAll(value=u), engine="fast")
        legacy = net.run(lambda u: BroadcastAll(value=u), engine="legacy")
        _assert_identical(fast, legacy)

    def test_bfs_tree(self, family_graph):
        net = CongestNetwork(family_graph)
        root = min(family_graph.nodes(), key=str)
        p_fast, d_fast, fast = build_bfs_tree(net, root, engine="fast")
        p_leg, d_leg, legacy = build_bfs_tree(net, root, engine="legacy")
        _assert_identical(fast, legacy)
        assert p_fast == p_leg
        assert d_fast == d_leg
        # BFS depths must equal the graph's hop distances.
        assert d_fast == family_graph.bfs_layers(root)

    def test_broadcast_and_convergecast(self, family_graph):
        net = CongestNetwork(family_graph)
        root = min(family_graph.nodes(), key=str)
        vals_fast, fast = broadcast(net, root, ("payload", 1), engine="fast")
        vals_leg, legacy = broadcast(net, root, ("payload", 1), engine="legacy")
        _assert_identical(fast, legacy)
        assert vals_fast == vals_leg

        parent = family_graph.spanning_tree(root)
        values = {u: 1 for u in parent}
        total_fast, cfast = convergecast_sum(net, parent, values, engine="fast")
        total_leg, cleg = convergecast_sum(net, parent, values, engine="legacy")
        _assert_identical(cfast, cleg)
        assert total_fast == total_leg == len(parent)

    def test_leader_election(self, family_graph):
        if not family_graph.is_connected():
            pytest.skip("leader election requires a connected graph")
        net = CongestNetwork(family_graph)
        leader_fast, fast = elect_leader(net, engine="fast")
        leader_leg, legacy = elect_leader(net, engine="legacy")
        _assert_identical(fast, legacy)
        assert leader_fast == leader_leg

    def test_bellman_ford(self, family_graph, master_seed):
        instance = generators.to_directed_instance(
            family_graph,
            weight_range=(1, 9),
            orientation="asymmetric",
            seed=master_seed,
        )
        source = min(family_graph.nodes(), key=str)
        fast = distributed_bellman_ford(instance, source, engine="fast")
        legacy = distributed_bellman_ford(instance, source, engine="legacy")
        _assert_identical(fast.simulation, legacy.simulation)
        assert fast.rounds == legacy.rounds
        assert fast.distances == legacy.distances
        assert fast.parents == legacy.parents
