"""Randomized equivalence harness across all four execution tiers.

Runs real protocols (flooding, BFS tree, broadcast, convergecast, leader
election, Bellman-Ford, pipelined chunk flood / label broadcast) on ~30
seeded random graph families and asserts the four execution tiers of
:class:`CongestNetwork` (``legacy`` ≡ ``fast`` ≡ ``vectorized`` ≡
``sharded``) produce *identical* ``rounds``, ``outputs``, ``messages_sent``,
``words_sent``, ``max_words_per_edge_round``, ``max_message_words`` and
round traces — i.e. full bandwidth-accounting parity.  Protocols with a
:class:`~repro.congest.kernels.RoundKernel` (Bellman-Ford, BFS tree, chunk
flood, label broadcast) genuinely execute on the vectorized and sharded
tiers (asserted via the result's ``engine`` field) — the sharded tier at
every shard count in ``{1, 2, 4, 7}``, including repeat runs on a
persistent :class:`~repro.congest.engine.ShardPool` (worker reuse +
shard-local init) — while the rest exercise the graceful fallback.  All
instances derive from the session ``--seed``, so any failure is
reproducible from the command line.
"""

from __future__ import annotations

import random

import pytest

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.congest.engine import SimulationTrace, sharded_available
from repro.congest.kernels import vectorized_available
from repro.congest.network import CongestNetwork
from repro.congest.node import BroadcastAll
from repro.congest.primitives import (
    broadcast,
    build_bfs_tree,
    convergecast_sum,
    elect_leader,
    flood_chunks,
)
from repro.errors import BandwidthExceededError
from repro.graphs import generators
from repro.labeling.labels import DistanceLabel, DistanceLabeling
from repro.labeling.sssp import measured_label_broadcast

#: Shard counts every kernel protocol must be invariant under.
SHARD_COUNTS = (1, 2, 4, 7)

# --------------------------------------------------------------------------- #
# ~30 seeded graph families: (name, builder(rng) -> Graph)
# --------------------------------------------------------------------------- #


def _families():
    fams = [
        ("path_12", lambda r: generators.path_graph(12)),
        ("path_40", lambda r: generators.path_graph(40)),
        ("cycle_9", lambda r: generators.cycle_graph(9)),
        ("cycle_30", lambda r: generators.cycle_graph(30)),
        ("star_15", lambda r: generators.star_graph(15)),
        ("grid_4x5", lambda r: generators.grid_graph(4, 5)),
        ("grid_6x7", lambda r: generators.grid_graph(6, 7)),
        ("grid_diag_5x5", lambda r: generators.grid_graph(5, 5, diagonal=True)),
        ("cylinder_4x6", lambda r: generators.cylinder_graph(4, 6)),
        ("caterpillar_8x2", lambda r: generators.caterpillar_graph(8, 2)),
        ("complete_7", lambda r: generators.complete_graph(7)),
    ]
    for i in range(4):
        fams.append(
            (f"random_tree_{i}", lambda r, i=i: generators.random_tree(20 + 7 * i, seed=r))
        )
    for i, (n, k) in enumerate([(20, 2), (30, 3), (40, 3), (50, 4)]):
        fams.append(
            (
                f"partial_k_tree_{i}",
                lambda r, n=n, k=k: generators.partial_k_tree(n, k, seed=r),
            )
        )
    for i, (n, k) in enumerate([(15, 2), (25, 3)]):
        fams.append((f"k_tree_{i}", lambda r, n=n, k=k: generators.k_tree(n, k, seed=r)))
    for i in range(3):
        fams.append(
            (
                f"series_parallel_{i}",
                lambda r, i=i: generators.series_parallel_graph(15 + 10 * i, seed=r),
            )
        )
    for i in range(3):
        fams.append(
            (
                f"cycle_chords_{i}",
                lambda r, i=i: generators.cycle_with_chords(18 + 8 * i, 3 + i, seed=r),
            )
        )
    for i in range(2):
        fams.append(
            (
                f"banded_bipartite_{i}",
                lambda r, i=i: generators.random_banded_bipartite(
                    10 + 5 * i, 12 + 5 * i, band=2 + i, seed=r
                ),
            )
        )
    # Low-treewidth gluings: two partial k-trees sharing a small cut.
    def glued(r, n=18, k=2):
        from repro.graphs.graph import Graph

        rng = random.Random(r)
        a = generators.partial_k_tree(n, k, seed=rng.randrange(1 << 30))
        b = generators.partial_k_tree(n, k, seed=rng.randrange(1 << 30))
        g = Graph()
        for u, v, w in a.weighted_edges():
            g.add_edge(("a", u), ("a", v), weight=w)
        for u, v, w in b.weighted_edges():
            g.add_edge(("b", u), ("b", v), weight=w)
        for i in range(k + 1):
            g.add_edge(("a", i), ("b", i))
        return g

    for i in range(3):
        fams.append((f"glued_{i}", lambda r, i=i: glued(r + i)))
    return fams


FAMILIES = _families()


def _assert_identical(*results):
    """Assert full result + bandwidth-accounting parity across tiers."""
    ref = results[0]
    for other in results[1:]:
        assert ref.rounds == other.rounds
        assert ref.outputs == other.outputs
        assert ref.messages_sent == other.messages_sent
        assert ref.words_sent == other.words_sent
        assert ref.max_words_per_edge_round == other.max_words_per_edge_round
        assert ref.max_message_words == other.max_message_words
        assert ref.halted == other.halted


def _pseudo_labeling(graph, rng) -> DistanceLabeling:
    """A seeded synthetic labeling: the broadcast transport doesn't care
    whether the distances are real, so equivalence can be exercised on every
    family without building a tree decomposition."""
    nodes = graph.nodes()
    hubs = rng.sample(nodes, min(len(nodes), rng.randint(2, 6)))
    labels = {}
    for u in nodes:
        lab = DistanceLabel(u)
        for s in hubs:
            if rng.random() < 0.8:
                lab.set_entry(s, float(rng.randint(0, 40)), float(rng.randint(0, 40)))
        labels[u] = lab
    return DistanceLabeling(labels)


@pytest.fixture(params=[name for name, _ in FAMILIES])
def family_graph(request, master_seed):
    name = request.param
    builder = dict(FAMILIES)[name]
    graph = builder(master_seed + len(name))
    assert graph.num_nodes() > 0
    return graph


class TestEngineEquivalence:
    """legacy ≡ fast on every family; ``vectorized`` requests on protocols
    without a kernel must gracefully fall back to fast with identical
    results."""

    def test_flooding_broadcast_all(self, family_graph):
        net = CongestNetwork(family_graph)
        fast = net.run(lambda u: BroadcastAll(value=u), engine="fast")
        legacy = net.run(lambda u: BroadcastAll(value=u), engine="legacy")
        fallback = net.run(lambda u: BroadcastAll(value=u), engine="vectorized")
        assert fallback.engine == "fast"  # no kernel: graceful fallback
        _assert_identical(fast, legacy, fallback)

    def test_bfs_tree(self, family_graph):
        net = CongestNetwork(family_graph)
        root = min(family_graph.nodes(), key=str)
        p_fast, d_fast, fast = build_bfs_tree(net, root, engine="fast")
        p_leg, d_leg, legacy = build_bfs_tree(net, root, engine="legacy")
        _assert_identical(fast, legacy)
        assert p_fast == p_leg
        assert d_fast == d_leg
        # BFS depths must equal the graph's hop distances.
        assert d_fast == family_graph.bfs_layers(root)

    def test_broadcast_and_convergecast(self, family_graph):
        net = CongestNetwork(family_graph)
        root = min(family_graph.nodes(), key=str)
        vals_fast, fast = broadcast(net, root, ("payload", 1), engine="fast")
        vals_leg, legacy = broadcast(net, root, ("payload", 1), engine="legacy")
        _assert_identical(fast, legacy)
        assert vals_fast == vals_leg

        parent = family_graph.spanning_tree(root)
        values = {u: 1 for u in parent}
        total_fast, cfast = convergecast_sum(net, parent, values, engine="fast")
        total_leg, cleg = convergecast_sum(net, parent, values, engine="legacy")
        _assert_identical(cfast, cleg)
        assert total_fast == total_leg == len(parent)

    def test_leader_election(self, family_graph):
        if not family_graph.is_connected():
            pytest.skip("leader election requires a connected graph")
        net = CongestNetwork(family_graph)
        leader_fast, fast = elect_leader(net, engine="fast")
        leader_leg, legacy = elect_leader(net, engine="legacy")
        _assert_identical(fast, legacy)
        assert leader_fast == leader_leg

    def test_bellman_ford(self, family_graph, master_seed):
        instance = generators.to_directed_instance(
            family_graph,
            weight_range=(1, 9),
            orientation="asymmetric",
            seed=master_seed,
        )
        source = min(family_graph.nodes(), key=str)
        fast = distributed_bellman_ford(instance, source, engine="fast")
        legacy = distributed_bellman_ford(instance, source, engine="legacy")
        _assert_identical(fast.simulation, legacy.simulation)
        assert fast.rounds == legacy.rounds
        assert fast.distances == legacy.distances
        assert fast.parents == legacy.parents


@pytest.mark.skipif(not vectorized_available(), reason="numpy unavailable")
class TestVectorizedKernelEquivalence:
    """Protocols with a RoundKernel: the vectorized tier genuinely runs
    (``engine == "vectorized"``) and is bit-for-bit identical to both scalar
    tiers, round traces included."""

    def test_bellman_ford_three_tiers(self, family_graph, master_seed):
        instance = generators.to_directed_instance(
            family_graph,
            weight_range=(1, 9),
            orientation="asymmetric",
            seed=master_seed,
        )
        source = min(family_graph.nodes(), key=str)
        traces = {e: SimulationTrace() for e in ("fast", "legacy", "vectorized")}
        runs = {
            e: distributed_bellman_ford(instance, source, engine=e, trace=traces[e])
            for e in traces
        }
        assert runs["vectorized"].simulation.engine == "vectorized"
        _assert_identical(*(r.simulation for r in runs.values()))
        assert runs["fast"].distances == runs["vectorized"].distances
        assert runs["fast"].parents == runs["vectorized"].parents
        assert traces["fast"].as_dicts() == traces["legacy"].as_dicts()
        assert traces["fast"].as_dicts() == traces["vectorized"].as_dicts()

    def test_bfs_tree_three_tiers(self, family_graph, master_seed):
        """The BFSTreeKernel genuinely runs vectorized and matches both
        scalar tiers bit-for-bit — parents/depths, accounting and traces."""
        net = CongestNetwork(family_graph)
        root = min(family_graph.nodes(), key=str)
        traces = {e: SimulationTrace() for e in ("fast", "legacy", "vectorized")}
        runs = {
            e: build_bfs_tree(net, root, engine=e, trace=traces[e]) for e in traces
        }
        assert runs["vectorized"][2].engine == "vectorized"
        _assert_identical(*(r[2] for r in runs.values()))
        assert runs["fast"][0] == runs["legacy"][0] == runs["vectorized"][0]
        assert runs["fast"][1] == runs["legacy"][1] == runs["vectorized"][1]
        assert runs["fast"][1] == family_graph.bfs_layers(root)
        assert traces["fast"].as_dicts() == traces["legacy"].as_dicts()
        assert traces["fast"].as_dicts() == traces["vectorized"].as_dicts()

    def test_label_broadcast_three_tiers(self, family_graph, master_seed):
        rng = random.Random(master_seed + family_graph.num_nodes())
        labeling = _pseudo_labeling(family_graph, rng)
        source = min(family_graph.nodes(), key=str)
        net = CongestNetwork(family_graph, words_per_message=16)
        traces = {e: SimulationTrace() for e in ("fast", "legacy", "vectorized")}
        runs = {
            e: measured_label_broadcast(
                net, labeling, source, engine=e, trace=traces[e]
            )
            for e in traces
        }
        assert runs["vectorized"].engine == "vectorized"
        _assert_identical(*runs.values())
        assert traces["fast"].as_dicts() == traces["legacy"].as_dicts()
        assert traces["fast"].as_dicts() == traces["vectorized"].as_dicts()

    def test_leader_election_four_tiers(self, family_graph, master_seed):
        """The LeaderElectionKernel genuinely runs vectorized and matches the
        scalar tiers and the async tier bit-for-bit — leader, outputs,
        accounting and traces."""
        if not family_graph.is_connected():
            pytest.skip("leader election requires a connected graph")
        net = CongestNetwork(family_graph)
        traces = {e: SimulationTrace() for e in ("fast", "legacy", "vectorized")}
        runs = {e: elect_leader(net, engine=e, trace=traces[e]) for e in traces}
        leader_async, run_async = elect_leader(net, engine="async")
        assert runs["vectorized"][1].engine == "vectorized"
        _assert_identical(*(r[1] for r in runs.values()), run_async)
        assert (
            runs["fast"][0]
            == runs["legacy"][0]
            == runs["vectorized"][0]
            == leader_async
        )
        assert traces["fast"].as_dicts() == traces["legacy"].as_dicts()
        assert traces["fast"].as_dicts() == traces["vectorized"].as_dicts()

    def test_convergecast_four_tiers(self, family_graph, master_seed):
        """The ConvergecastKernel genuinely runs vectorized and matches the
        scalar tiers and the async tier bit-for-bit, for int and for float
        values (the kernel's ``np.add.at`` fold must associate exactly like
        the scalar left-to-right inbox scan)."""
        rng = random.Random(master_seed + family_graph.num_nodes())
        net = CongestNetwork(family_graph)
        root = min(family_graph.nodes(), key=str)
        parent = family_graph.spanning_tree(root)
        for values in (
            {u: rng.randint(-50, 50) for u in parent},
            {u: rng.uniform(-1.0, 1.0) for u in parent},
            {u: rng.choice([7, -0.25, 3.5, 2]) for u in parent},
        ):
            traces = {e: SimulationTrace() for e in ("fast", "legacy", "vectorized")}
            runs = {
                e: convergecast_sum(net, parent, values, engine=e, trace=traces[e])
                for e in traces
            }
            total_async, run_async = convergecast_sum(
                net, parent, values, engine="async"
            )
            assert runs["vectorized"][1].engine == "vectorized"
            _assert_identical(*(r[1] for r in runs.values()), run_async)
            assert (
                runs["fast"][0]
                == runs["legacy"][0]
                == runs["vectorized"][0]
                == total_async
            )
            assert traces["fast"].as_dicts() == traces["legacy"].as_dicts()
            assert traces["fast"].as_dicts() == traces["vectorized"].as_dicts()

    def test_strict_bandwidth_error_on_packed_payloads(self, family_graph, master_seed):
        """A packed 3-word Bellman-Ford message must trip a 2-word budget on
        every tier (and not trip it when strict accounting is off)."""
        if family_graph.num_edges() == 0:
            pytest.skip("needs at least one edge to send a message")
        instance = generators.to_directed_instance(
            family_graph, weight_range=(1, 9), orientation="both", seed=master_seed
        )
        # A source with a neighbour, so at least one message is attempted.
        source = min(
            (u for u in family_graph.nodes() if family_graph.neighbors(u)), key=str
        )
        engines = ["fast", "legacy", "vectorized"]
        if sharded_available():
            engines.append("sharded")
        for engine in engines:
            with pytest.raises(BandwidthExceededError):
                distributed_bellman_ford(
                    instance, source, engine=engine, words_per_message=2, num_shards=2
                )
        # With strict accounting off the oversized messages are delivered on
        # every tier and only show up in the statistics.
        from repro.congest.bellman_ford import BellmanFordKernel, BellmanFordNode

        comm = instance.underlying_graph()
        local_inputs = {
            u: [(e.head, e.weight) for e in instance.out_edges(u)]
            for u in instance.nodes()
        }
        net = CongestNetwork(comm, words_per_message=2, strict_bandwidth=False)
        lenient = {}
        for engine in engines:
            kernel = (
                BellmanFordKernel(source, local_inputs)
                if engine in ("vectorized", "sharded")
                else None
            )
            lenient[engine] = net.run(
                lambda u: BellmanFordNode(u, source),
                max_rounds=4 * comm.num_nodes() + 16,
                local_inputs=local_inputs,
                engine=engine,
                kernel=kernel,
                num_shards=2,
            )
        assert lenient["vectorized"].engine == "vectorized"
        if "sharded" in lenient:
            assert lenient["sharded"].engine == "sharded"
        _assert_identical(*lenient.values())
        assert lenient["fast"].max_message_words == 3 > net.words_per_message


@pytest.mark.skipif(not sharded_available(), reason="numpy/shared-memory unavailable")
class TestShardedEquivalence:
    """The multiprocess sharded tier: genuinely runs (``engine ==
    "sharded"``), and for every shard count in ``SHARD_COUNTS`` is
    bit-for-bit identical to the fast/legacy/vectorized tiers — outputs,
    rounds, messages, words, ``max_words_per_edge_round``,
    ``max_message_words`` and the full round trace.

    Every method takes the session ``shard_transport`` fixture
    (``--shard-transport shm|socket``), so CI certifies both boundary
    transports against the same references bit-for-bit."""

    def test_bellman_ford_shard_count_invariance(
        self, family_graph, master_seed, shard_transport
    ):
        """Every shard count matches the scalar/vectorized tiers bit-for-bit,
        and at every count a *second* run on the same persistent ShardPool
        (reused workers, shard-local init re-seeded from the run header) is
        equally identical."""
        from repro.congest.engine import ShardPool

        instance = generators.to_directed_instance(
            family_graph,
            weight_range=(1, 9),
            orientation="asymmetric",
            seed=master_seed,
        )
        source = min(family_graph.nodes(), key=str)
        ref_trace = SimulationTrace()
        ref = distributed_bellman_ford(
            instance, source, engine="fast", trace=ref_trace
        )
        vec = distributed_bellman_ford(instance, source, engine="vectorized")
        _assert_identical(ref.simulation, vec.simulation)
        for shards in SHARD_COUNTS:
            with ShardPool(num_shards=shards) as pool:
                for repeat in range(2):
                    trace = SimulationTrace()
                    run = distributed_bellman_ford(
                        instance, source, engine="sharded", shard_pool=pool,
                        trace=trace, transport=shard_transport,
                    )
                    assert run.simulation.engine == "sharded", (shards, repeat)
                    _assert_identical(ref.simulation, run.simulation)
                    assert run.distances == ref.distances, (shards, repeat)
                    assert run.parents == ref.parents, (shards, repeat)
                    assert trace.as_dicts() == ref_trace.as_dicts(), (shards, repeat)
                assert pool.workers_started == min(shards, len(instance.nodes()))

    def test_chunk_flood_shard_count_invariance(
        self, family_graph, master_seed, shard_transport
    ):
        rng = random.Random(master_seed + family_graph.num_edges())
        root = min(family_graph.nodes(), key=str)
        chunks = [("chunk", k, rng.randint(0, 99)) for k in range(rng.randint(1, 7))]
        net = CongestNetwork(family_graph, words_per_message=8)
        ref_trace = SimulationTrace()
        ref_received, ref = flood_chunks(
            net, root, chunks, engine="fast", trace=ref_trace
        )
        legacy_received, legacy = flood_chunks(net, root, chunks, engine="legacy")
        vec_received, vec = flood_chunks(net, root, chunks, engine="vectorized")
        assert vec.engine == "vectorized"
        _assert_identical(ref, legacy, vec)
        assert ref_received == legacy_received == vec_received
        for shards in SHARD_COUNTS:
            trace = SimulationTrace()
            received, run = flood_chunks(
                net, root, chunks, engine="sharded", num_shards=shards, trace=trace,
                transport=shard_transport,
            )
            assert run.engine == "sharded", shards
            _assert_identical(ref, run)
            assert received == ref_received, shards
            assert trace.as_dicts() == ref_trace.as_dicts(), shards

    def test_bfs_tree_shard_count_invariance(
        self, family_graph, master_seed, shard_transport
    ):
        net = CongestNetwork(family_graph)
        root = min(family_graph.nodes(), key=str)
        ref_trace = SimulationTrace()
        p_ref, d_ref, ref = build_bfs_tree(net, root, engine="fast", trace=ref_trace)
        for shards in SHARD_COUNTS:
            trace = SimulationTrace()
            p_run, d_run, run = build_bfs_tree(
                net, root, engine="sharded", num_shards=shards, trace=trace,
                transport=shard_transport,
            )
            assert run.engine == "sharded", shards
            _assert_identical(ref, run)
            assert p_run == p_ref, shards
            assert d_run == d_ref, shards
            assert trace.as_dicts() == ref_trace.as_dicts(), shards

    def test_leader_election_shard_count_invariance(
        self, family_graph, master_seed, shard_transport
    ):
        if not family_graph.is_connected():
            pytest.skip("leader election requires a connected graph")
        net = CongestNetwork(family_graph)
        ref_trace = SimulationTrace()
        leader_ref, ref = elect_leader(net, engine="fast", trace=ref_trace)
        for shards in SHARD_COUNTS:
            trace = SimulationTrace()
            leader, run = elect_leader(
                net, engine="sharded", num_shards=shards, trace=trace,
                transport=shard_transport,
            )
            assert run.engine == "sharded", shards
            _assert_identical(ref, run)
            assert leader == leader_ref, shards
            assert trace.as_dicts() == ref_trace.as_dicts(), shards

    def test_convergecast_shard_count_invariance(
        self, family_graph, master_seed, shard_transport
    ):
        rng = random.Random(master_seed + family_graph.num_edges())
        net = CongestNetwork(family_graph)
        root = min(family_graph.nodes(), key=str)
        parent = family_graph.spanning_tree(root)
        values = {u: rng.choice([rng.randint(-9, 9), rng.uniform(-2.0, 2.0)]) for u in parent}
        ref_trace = SimulationTrace()
        total_ref, ref = convergecast_sum(
            net, parent, values, engine="fast", trace=ref_trace
        )
        for shards in SHARD_COUNTS:
            trace = SimulationTrace()
            total, run = convergecast_sum(
                net, parent, values, engine="sharded", num_shards=shards,
                trace=trace, transport=shard_transport,
            )
            assert run.engine == "sharded", shards
            _assert_identical(ref, run)
            assert total == total_ref, shards
            assert trace.as_dicts() == ref_trace.as_dicts(), shards

    def test_label_broadcast_shard_count_invariance(
        self, family_graph, master_seed, shard_transport
    ):
        rng = random.Random(master_seed + family_graph.num_nodes())
        labeling = _pseudo_labeling(family_graph, rng)
        source = min(family_graph.nodes(), key=str)
        net = CongestNetwork(family_graph, words_per_message=16)
        ref_trace = SimulationTrace()
        ref = measured_label_broadcast(
            net, labeling, source, engine="fast", trace=ref_trace
        )
        for shards in SHARD_COUNTS:
            trace = SimulationTrace()
            run = measured_label_broadcast(
                net, labeling, source, engine="sharded", num_shards=shards, trace=trace,
                transport=shard_transport,
            )
            assert run.engine == "sharded", shards
            _assert_identical(ref, run)
            assert trace.as_dicts() == ref_trace.as_dicts(), shards
