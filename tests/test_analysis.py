"""Tests for the analysis layer: result tables, workloads, scaling fits, baselines."""

import math

import pytest

from repro.analysis.complexity import fit_linear, fit_power_law, growth_ratio
from repro.analysis.records import ResultTable
from repro.analysis.workloads import (
    bipartite_workloads,
    standard_workloads,
    sweep_diameter,
    sweep_k,
    sweep_n,
    workload,
)
from repro.baselines.congest_bounds import (
    bellman_ford_rounds_estimate,
    diameter_lower_bound_rounds,
    general_graph_exact_sssp_rounds,
    general_graph_sssp_rounds,
    girth_baseline_rounds,
    matching_baseline_rounds,
)


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable("demo", ["a", "b"])
        table.add(a=1, b=2.5)
        table.add(a=3, b=math.inf, c="x")
        assert len(table) == 2
        assert "c" in table.columns
        text = table.to_text()
        assert "demo" in text and "inf" in text
        md = table.to_markdown()
        assert md.count("|") > 6
        csv_text = table.to_csv()
        assert csv_text.splitlines()[0] == "a,b,c"

    def test_column_and_summary(self):
        table = ResultTable("t", ["x"])
        for v in (1, 2, 3):
            table.add(x=v)
        assert table.column("x") == [1, 2, 3]
        stats = table.summary("x")
        assert stats == {"min": 1.0, "max": 3.0, "mean": 2.0}

    def test_summary_of_empty_column_is_nan(self):
        table = ResultTable("t", ["x"])
        assert math.isnan(table.summary("x")["mean"])


class TestComplexityFits:
    def test_power_law_recovers_exponent(self):
        xs = [10, 20, 40, 80]
        ys = [3 * x ** 2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - 2.0) < 1e-6
        assert abs(fit.coefficient - 3.0) < 1e-6
        assert fit.r_squared > 0.999

    def test_linear_fit(self):
        xs = [1, 2, 3, 4]
        ys = [5 + 2 * x for x in xs]
        fit = fit_linear(xs, ys)
        assert abs(fit.exponent - 2.0) < 1e-9
        assert abs(fit.coefficient - 5.0) < 1e-9

    def test_insufficient_data_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_linear([2, 2], [1, 1])

    def test_growth_ratio_detects_sublinear_growth(self):
        xs = [100, 200, 400, 800]
        ys = [10, 11, 12, 13]  # barely growing
        assert growth_ratio(xs, ys) < 0.5


class TestWorkloads:
    def test_standard_workloads_materialise(self):
        specs = standard_workloads("small")
        assert len(specs) >= 5
        for spec in specs[:3]:
            g = spec.build_graph()
            assert g.is_connected()
            desc = spec.describe()
            assert desc["n"] == g.num_nodes()

    def test_unknown_scale_and_family_rejected(self):
        with pytest.raises(ValueError):
            standard_workloads("gigantic")
        with pytest.raises(ValueError):
            workload("w", "nonsense", n=5).build_graph()

    def test_sweeps(self):
        assert [s.params["n"] for s in sweep_n(3, [10, 20])] == [10, 20]
        assert [s.params["k"] for s in sweep_k(30, [2, 4])] == [2, 4]
        assert len(sweep_diameter(1, [5, 10, 20])) == 3

    def test_bipartite_workloads_are_bipartite(self):
        for spec in bipartite_workloads("small"):
            assert spec.build_graph().is_bipartite()

    def test_build_instance_orientations(self):
        spec = workload("w", "partial_k_tree", n=20, k=2)
        inst = spec.build_instance(orientation="both")
        assert inst.num_edges() == 2 * spec.build_graph().num_edges()


class TestBaselineCurves:
    def test_monotonicity_in_n(self):
        assert general_graph_sssp_rounds(10_000, 10) > general_graph_sssp_rounds(100, 10)
        assert general_graph_exact_sssp_rounds(10_000, 10) > general_graph_exact_sssp_rounds(100, 10)
        assert diameter_lower_bound_rounds(10_000) > diameter_lower_bound_rounds(100)

    def test_bellman_ford_estimate_capped_at_n(self):
        assert bellman_ford_rounds_estimate(50, 1000) == 50

    def test_matching_baseline_grows_with_matching_size(self):
        assert matching_baseline_rounds(100) > matching_baseline_rounds(10)

    def test_girth_baseline_handles_infinite_girth(self):
        assert girth_baseline_rounds(100, math.inf) == 100
        assert girth_baseline_rounds(100, 3) > 0
