"""Oracle-exactness and round-trip suite for :mod:`repro.labeling.packed`.

The packed form is only allowed to exist because it is *bit-for-bit* the
dict decoder: every test here pins some packed query path (scalar merge,
batched kernel, pure-python fallback, memory-mapped reload) against
:func:`~repro.labeling.labels.decode_distance` on the same labels.  The
label corpus is deliberately hostile — the ~30 seeded graph families of
the engine-equivalence harness with synthetic labels whose to/from key
sets *disagree* (one-sided hubs pack as ``inf``), explicit ``inf``
entries, real built labelings including directed-unreachable (``inf``)
pairs, and labels repacked after ``apply_edge_update`` churn.
"""

from __future__ import annotations

import math
import random
import struct

import pytest

from repro.errors import LabelingError
from repro.graphs import generators
from repro.labeling.construction import build_distance_labeling
from repro.labeling.labels import DistanceLabel, DistanceLabeling, decode_distance
from repro.labeling.packed import (
    _SMALL_BATCH_CUTOVER,
    FORMAT_VERSION,
    MAGIC,
    PackedLabeling,
    numpy_or_none,
)
from test_engine_equivalence import FAMILIES, _pseudo_labeling

INF = math.inf
HAS_NUMPY = numpy_or_none() is not None


# --------------------------------------------------------------------------- #
# Corpus helpers
# --------------------------------------------------------------------------- #
def _asymmetric_labeling(graph, rng) -> DistanceLabeling:
    """A synthetic labeling whose to/from key sets disagree.

    The construction never produces one-sided entries, but the packed form
    promises exactness for *any* labeling, so the suite manufactures every
    shape the union-packing must absorb: to-only hubs, from-only hubs, and
    explicit ``inf`` distances (unreachable hubs).
    """
    nodes = graph.nodes()
    hubs = rng.sample(nodes, min(len(nodes), rng.randint(2, 6)))
    labels = {}
    for u in nodes:
        lab = DistanceLabel(u)
        for s in hubs:
            r = rng.random()
            if r < 0.50:
                lab.set_entry(s, float(rng.randint(0, 40)), float(rng.randint(0, 40)))
            elif r < 0.65:
                lab.to_dist[s] = float(rng.randint(0, 40))
            elif r < 0.80:
                lab.from_dist[s] = float(rng.randint(0, 40))
            elif r < 0.90:
                lab.set_entry(s, INF, float(rng.randint(0, 40)))
        labels[u] = lab
    return DistanceLabeling(labels)


def _sample_pairs(vertices, count, rng):
    """Seeded query pairs, always including identity pairs (the 0.0 path)."""
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(count)]
    pairs.extend((v, v) for v in vertices[: min(5, len(vertices))])
    return pairs


def _assert_oracle_exact(packed: PackedLabeling, labeling: DistanceLabeling, pairs):
    """Every packed query path equals ``decode_distance`` on these pairs."""
    expected = [
        decode_distance(labeling.label(u), labeling.label(v)) for u, v in pairs
    ]
    us = [u for u, _ in pairs]
    vs = [v for _, v in pairs]
    # Batched (kernel on numpy, merge loop on pure) — the whole batch is
    # above the small-batch cutover, so numpy genuinely hits the kernel.
    assert len(pairs) > _SMALL_BATCH_CUTOVER
    assert list(packed.query(us, vs)) == expected
    # Small batch: the adaptive scalar path on the python backend.
    cut = _SMALL_BATCH_CUTOVER
    assert list(packed.query(us[:cut], vs[:cut])) == expected[:cut]
    # Scalar two-pointer merge.
    for (u, v), want in list(zip(pairs, expected))[:40]:
        assert packed.distance(u, v) == want


@pytest.fixture(params=[name for name, _ in FAMILIES])
def family_graph(request, master_seed):
    name = request.param
    builder = dict(FAMILIES)[name]
    graph = builder(master_seed + len(name))
    assert graph.num_nodes() > 0
    return graph


# --------------------------------------------------------------------------- #
# Oracle exactness across the graph families
# --------------------------------------------------------------------------- #
class TestOracleExactness:
    def test_pseudo_labeling_exact(self, family_graph, master_seed):
        labeling = _pseudo_labeling(family_graph, random.Random(master_seed + 1))
        packed = PackedLabeling.from_labeling(labeling)
        pairs = _sample_pairs(
            list(packed.vertices()), 120, random.Random(master_seed + 2)
        )
        _assert_oracle_exact(packed, labeling, pairs)

    def test_asymmetric_labels_exact_and_backend_parity(
        self, family_graph, master_seed
    ):
        labeling = _asymmetric_labeling(family_graph, random.Random(master_seed + 3))
        packed = PackedLabeling.from_labeling(labeling)
        pairs = _sample_pairs(
            list(packed.vertices()), 120, random.Random(master_seed + 4)
        )
        _assert_oracle_exact(packed, labeling, pairs)
        # The pure-python backend answers the identical floats.
        pure = PackedLabeling.from_labeling(labeling, backend="pure")
        us = [u for u, _ in pairs]
        vs = [v for _, v in pairs]
        assert pure.query(us, vs) == list(packed.query(us, vs))

    def test_round_trip_through_to_labeling(self, family_graph, master_seed):
        labeling = _pseudo_labeling(family_graph, random.Random(master_seed + 5))
        packed = PackedLabeling.from_labeling(labeling)
        back = packed.to_labeling()
        # The pseudo labeling stores matching key sets, so the round trip is
        # exact label-for-label (DistanceLabel equality ignores the hub-order
        # cache).
        assert set(back.vertices()) == set(labeling.vertices())
        for v in labeling.vertices():
            assert back.label(v) == labeling.label(v)

    def test_asymmetric_round_trip_is_decode_equivalent(self, master_seed):
        graph = generators.partial_k_tree(20, 2, seed=master_seed)
        labeling = _asymmetric_labeling(graph, random.Random(master_seed + 6))
        back = PackedLabeling.from_labeling(labeling).to_labeling()
        # One-sided hubs come back as explicit inf on the missing side: the
        # key sets grow to the union, but every decoded distance is equal.
        for v in labeling.vertices():
            orig, rt = labeling.label(v), back.label(v)
            assert set(rt.to_dist) == set(orig.to_dist) | set(orig.from_dist)
            assert set(rt.to_dist) == set(rt.from_dist)
        for u in labeling.vertices():
            for v in labeling.vertices():
                assert back.distance(u, v) == labeling.distance(u, v)


# --------------------------------------------------------------------------- #
# Real built labelings, inf pairs, and post-update repacks
# --------------------------------------------------------------------------- #
class TestBuiltLabelings:
    def _instance(self, master_seed, orientation="asymmetric", n=24):
        graph = generators.partial_k_tree(n, 3, 0.6, seed=master_seed)
        return generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation=orientation,
            seed=master_seed + 1,
        )

    def test_built_labeling_all_pairs_exact(self, master_seed):
        instance = self._instance(master_seed)
        labeling = build_distance_labeling(instance).labeling
        packed = PackedLabeling.from_labeling(labeling)
        vertices = list(packed.vertices())
        pairs = [(u, v) for u in vertices for v in vertices]
        _assert_oracle_exact(packed, labeling, pairs)

    def test_directed_unreachable_pairs_pack_as_inf(self, master_seed):
        # Random orientation keeps the underlying topology connected (so the
        # decomposition build succeeds) but leaves directed-unreachable
        # pairs; the packed form must answer inf exactly where the dict
        # decoder does.
        instance = self._instance(master_seed, orientation="random")
        labeling = build_distance_labeling(instance).labeling
        packed = PackedLabeling.from_labeling(labeling)
        vertices = list(packed.vertices())
        inf_pairs = 0
        for u in vertices:
            for v in vertices:
                want = labeling.distance(u, v)
                assert packed.distance(u, v) == want
                inf_pairs += want == INF
        assert inf_pairs > 0, "random orientation produced no unreachable pair"
        pairs = [(u, v) for u in vertices[:8] for v in vertices]
        _assert_oracle_exact(packed, labeling, pairs)

    def test_repack_after_edge_update(self, master_seed):
        instance = self._instance(master_seed, n=18)
        labeling = build_distance_labeling(instance).labeling
        labeling.attach_instance(instance)
        rng = random.Random(master_seed + 7)
        arcs = [(e.tail, e.head) for e in instance.edges() if e.tail != e.head]
        for weight in (0.5, 17.0, INF):
            tail, head = rng.choice(arcs)
            labeling.apply_edge_update(tail, head, weight)
            packed = PackedLabeling.from_labeling(labeling)
            vertices = list(packed.vertices())
            pairs = _sample_pairs(vertices, 150, random.Random(master_seed + 8))
            _assert_oracle_exact(packed, labeling, pairs)


# --------------------------------------------------------------------------- #
# Persistence: save/load parity and format validation
# --------------------------------------------------------------------------- #
class TestPersistence:
    def _packed(self, master_seed):
        graph = generators.grid_graph(4, 5)
        labeling = _asymmetric_labeling(graph, random.Random(master_seed + 9))
        return PackedLabeling.from_labeling(labeling), labeling

    def test_save_load_parity_across_backends(self, tmp_path, master_seed):
        packed, labeling = self._packed(master_seed)
        path = tmp_path / "labels.rplb"
        written = packed.save(path)
        assert written == path.stat().st_size

        loaded = [PackedLabeling.load(path, backend="pure")]
        assert not loaded[0].is_memory_mapped
        if HAS_NUMPY:
            mapped = PackedLabeling.load(path)
            heap = PackedLabeling.load(path, mmap=False)
            assert mapped.is_memory_mapped and not heap.is_memory_mapped
            assert mapped.stats()["copied_label_bytes"] == 0
            assert mapped.stats()["mapped_bytes"] == mapped.array_bytes
            assert heap.stats()["mapped_bytes"] == 0
            loaded += [mapped, heap]

        pairs = _sample_pairs(
            list(packed.vertices()), 60, random.Random(master_seed + 10)
        )
        for reopened in loaded:
            assert reopened.vertices() == packed.vertices()
            assert reopened.total_entries == packed.total_entries
            assert reopened.max_entries == packed.max_entries
            _assert_oracle_exact(reopened, labeling, pairs)

    def test_pure_save_reloads_identically(self, tmp_path, master_seed):
        graph = generators.cycle_graph(9)
        labeling = _pseudo_labeling(graph, random.Random(master_seed + 11))
        pure = PackedLabeling.from_labeling(labeling, backend="pure")
        path = tmp_path / "pure.rplb"
        pure.save(path)
        back = PackedLabeling.load(path, backend="pure")
        for v in labeling.vertices():
            assert back.to_labeling().label(v) == pure.to_labeling().label(v)

    def test_bad_magic_rejected(self, tmp_path, master_seed):
        packed, _ = self._packed(master_seed)
        path = tmp_path / "bad.rplb"
        packed.save(path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        with pytest.raises(LabelingError, match="magic"):
            PackedLabeling.load(path)

    def test_unsupported_version_rejected(self, tmp_path, master_seed):
        packed, _ = self._packed(master_seed)
        path = tmp_path / "vnext.rplb"
        packed.save(path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<I", raw, 4, FORMAT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(LabelingError, match="version"):
            PackedLabeling.load(path)

    def test_truncated_file_rejected(self, tmp_path, master_seed):
        packed, _ = self._packed(master_seed)
        path = tmp_path / "trunc.rplb"
        packed.save(path)
        raw = path.read_bytes()
        assert raw[:4] == MAGIC
        for cut in (3, len(raw) // 2, len(raw) - 1):
            path.write_bytes(raw[:cut])
            with pytest.raises(LabelingError, match="truncated"):
                PackedLabeling.load(path)

    def test_unknown_backend_rejected(self, master_seed):
        _, labeling = self._packed(master_seed)
        with pytest.raises(LabelingError, match="backend"):
            PackedLabeling.from_labeling(labeling, backend="fortran")


# --------------------------------------------------------------------------- #
# API edges
# --------------------------------------------------------------------------- #
class TestApiEdges:
    def test_unknown_vertex_raises(self, master_seed):
        graph = generators.path_graph(6)
        labeling = _pseudo_labeling(graph, random.Random(master_seed + 12))
        packed = PackedLabeling.from_labeling(labeling)
        v = next(iter(packed.vertices()))
        with pytest.raises(LabelingError, match="no label"):
            packed.distance(v, "missing")
        with pytest.raises(LabelingError, match="no label"):
            packed.query([v] * 6, ["missing"] * 6)

    def test_mismatched_batch_lengths_raise(self, master_seed):
        graph = generators.path_graph(4)
        packed = PackedLabeling.from_labeling(
            _pseudo_labeling(graph, random.Random(master_seed + 13))
        )
        v = next(iter(packed.vertices()))
        with pytest.raises(LabelingError, match="pairs"):
            packed.query([v, v], [v])

    def test_non_vertex_hubs_extend_the_table(self):
        lab = DistanceLabel("b")
        lab.set_entry("hub-only", 3.0, 4.0)
        labeling = DistanceLabeling({"a": DistanceLabel("a"), "b": lab})
        labeling.set_entry("a", "hub-only", 1.0, 2.0)
        packed = PackedLabeling.from_labeling(labeling)
        assert packed.num_nodes == 2
        assert len(packed.ids) == 3
        assert "hub-only" in packed.ids
        assert "hub-only" not in packed  # hubs are not queryable vertices
        assert packed.distance("a", "b") == 1.0 + 4.0
        assert decode_distance(labeling.label("a"), labeling.label("b")) == 5.0

    def test_empty_labeling(self, tmp_path):
        packed = PackedLabeling.from_labeling(DistanceLabeling({}))
        assert len(packed) == 0
        assert packed.max_entries == 0 and packed.total_entries == 0
        assert list(packed.query([], [])) == []
        path = tmp_path / "empty.rplb"
        packed.save(path)
        assert len(PackedLabeling.load(path)) == 0
