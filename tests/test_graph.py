"""Unit tests for the undirected Graph structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs import generators


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes() == 0
        assert g.num_edges() == 0
        assert g.is_connected()  # vacuously

    def test_add_nodes_and_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3, weight=5.0)
        assert g.num_nodes() == 3
        assert g.num_edges() == 2
        assert g.has_edge(1, 2)
        assert g.has_edge(3, 2)
        assert g.weight(2, 3) == 5.0

    def test_constructor_with_edges(self):
        g = Graph(nodes=[0, 1, 2, 9], edges=[(0, 1), (1, 2, 3.5)])
        assert g.num_nodes() == 4
        assert g.weight(1, 2) == 3.5
        assert g.degree(9) == 0

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_duplicate_edge_keeps_min_weight(self):
        g = Graph()
        g.add_edge(1, 2, weight=7)
        g.add_edge(2, 1, weight=3)
        assert g.num_edges() == 1
        assert g.weight(1, 2) == 3

    def test_remove_node_removes_incident_edges(self):
        g = generators.complete_graph(4)
        g.remove_node(0)
        assert g.num_nodes() == 3
        assert g.num_edges() == 3
        assert not g.has_node(0)

    def test_remove_missing_node_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.remove_node("missing")

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_node(1)
        with pytest.raises(GraphError):
            g.remove_edge(1, 2)

    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert g.num_nodes() == 2
        assert h.num_nodes() == 3


class TestQueries:
    def test_neighbors_and_degree(self):
        g = generators.star_graph(5)
        assert g.degree(0) == 4
        assert g.neighbors(1) == {0}
        with pytest.raises(GraphError):
            g.neighbors(99)

    def test_weight_of_missing_edge_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(GraphError):
            g.weight(1, 3)

    def test_contains_iter_len(self):
        g = generators.path_graph(4)
        assert 2 in g
        assert 7 not in g
        assert len(g) == 4
        assert sorted(iter(g)) == [0, 1, 2, 3]

    def test_weighted_edges(self):
        g = Graph(edges=[(1, 2, 4.0)])
        assert g.weighted_edges() == [(1, 2, 4.0)]


class TestSubgraphs:
    def test_subgraph_induces_edges(self):
        g = generators.complete_graph(5)
        sub = g.subgraph([0, 1, 2])
        assert sub.num_nodes() == 3
        assert sub.num_edges() == 3

    def test_subgraph_missing_nodes_raises(self):
        g = generators.path_graph(3)
        with pytest.raises(GraphError):
            g.subgraph([0, 99])

    def test_without_nodes(self):
        g = generators.path_graph(5)
        h = g.without_nodes([2])
        assert h.num_nodes() == 4
        assert not h.is_connected()


class TestTraversal:
    def test_bfs_layers_on_path(self):
        g = generators.path_graph(6)
        layers = g.bfs_layers(0)
        assert layers[5] == 5
        assert layers[0] == 0

    def test_bfs_order_covers_component(self):
        g = generators.grid_graph(3, 3)
        assert len(g.bfs_order((0, 0))) == 9

    def test_connected_components(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        g.add_node(5)
        comps = g.connected_components()
        assert sorted(len(c) for c in comps) == [1, 2, 2]

    def test_is_connected(self):
        assert generators.cycle_graph(5).is_connected()
        g = Graph(nodes=[1, 2])
        assert not g.is_connected()

    def test_spanning_tree_covers_all_nodes(self):
        g = generators.grid_graph(4, 4)
        parent = g.spanning_tree(root=(0, 0))
        assert len(parent) == 16
        assert parent[(0, 0)] is None
        roots = [u for u, p in parent.items() if p is None]
        assert roots == [(0, 0)]

    def test_spanning_tree_edges_exist(self):
        g = generators.partial_k_tree(30, 3, seed=1)
        parent = g.spanning_tree(root=0)
        for child, par in parent.items():
            if par is not None:
                assert g.has_edge(child, par)


class TestBipartiteness:
    def test_even_cycle_bipartite(self):
        assert generators.cycle_graph(6).is_bipartite()

    def test_odd_cycle_not_bipartite(self):
        assert not generators.cycle_graph(5).is_bipartite()

    def test_grid_bipartite_partition_valid(self):
        g = generators.grid_graph(3, 4)
        left, right = g.bipartition()
        assert left | right == set(g.nodes())
        for u, v in g.edges():
            assert (u in left) != (v in left)


@given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_random_tree_always_connected_acyclic(n, seed):
    """Property: random trees have n-1 edges and are connected."""
    g = generators.random_tree(n, seed=seed)
    assert g.num_nodes() == n
    assert g.num_edges() == n - 1
    assert g.is_connected()


@given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=20))
@settings(max_examples=25, deadline=None)
def test_grid_edge_count(rows, cols):
    """Property: an r×c grid has r(c-1) + c(r-1) edges."""
    g = generators.grid_graph(rows, cols)
    assert g.num_nodes() == rows * cols
    assert g.num_edges() == rows * (cols - 1) + cols * (rows - 1)
