"""Unit tests for the sharded-execution plumbing.

The randomized four-tier equivalence harness lives in
``test_engine_equivalence.py``; this file covers the building blocks in
isolation — :class:`ShardPlan` geometry (contiguous ranges, boundary
classification, packed exchange tables), the :class:`StateSchema`
shard-local allocation mode and per-shard arena segments, the persistent
:class:`ShardPool` (reuse, resize, crash recovery, lifecycle), shared-memory
hygiene under hard worker kills, the single-warning graceful fallback
ladder (including the shard-aware-init requirement and num_shards
clamping), custom shard plans, and worker failure propagation.
"""

from __future__ import annotations

import warnings

import pytest

from repro.congest.engine import (
    EngineFallbackWarning,
    default_num_shards,
    run_sharded,
    sharded_available,
)
from repro.congest.kernels import (
    FloodingKernel,
    PackedInbox,
    StateSchema,
    StateVector,
    vectorized_available,
)
from repro.congest.network import CongestNetwork
from repro.congest.node import BroadcastAll
from repro.errors import GraphError, SimulationError
from repro.graphs import generators
from repro.graphs.sharding import Shard, ShardPlan

needs_numpy = pytest.mark.skipif(not vectorized_available(), reason="numpy unavailable")
needs_sharded = pytest.mark.skipif(
    not sharded_available(), reason="numpy/shared-memory unavailable"
)


class ExplodingKernel(FloodingKernel):
    """Raises inside a worker round (module-level: sharded kernels ship to
    the pool workers by pickle, so they must not be test-local classes)."""

    def round(self, state, inbox, inbox_senders, csr, shard):
        raise RuntimeError("boom in shard worker")


class SuicidalKernel(FloodingKernel):
    """Hard-kills the shard-1 worker mid-round (simulates a crash with no
    cleanup path at all — not even an exception handler runs)."""

    def round(self, state, inbox, inbox_senders, csr, shard):
        if shard.index == 1:
            import os
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        return super().round(state, inbox, inbox_senders, csr, shard)


@needs_numpy
class TestShardPlanGeometry:
    def _csr(self, master_seed, n=40, k=3):
        graph = generators.partial_k_tree(n, k, seed=master_seed)
        return graph.to_indexed().to_arrays()

    def test_balanced_partition_covers_and_is_contiguous(self, master_seed):
        import numpy as np

        csr = self._csr(master_seed)
        for num_shards in (1, 2, 3, 5, 8):
            plan = ShardPlan.balanced(csr, num_shards)
            assert plan.num_shards == num_shards
            assert plan.node_starts[0] == 0 and plan.node_starts[-1] == csr.num_nodes
            # Every node in exactly one shard; arc ranges are the CSR slices.
            seen_nodes = 0
            seen_arcs = 0
            for shard in plan:
                assert shard.num_nodes >= 1  # balanced() never makes empty shards
                assert shard.arc_lo == int(csr.indptr[shard.node_lo])
                assert shard.arc_hi == int(csr.indptr[shard.node_hi])
                seen_nodes += shard.num_nodes
                seen_arcs += shard.num_arcs
                assert np.all(plan.shard_of_node[shard.node_slice] == shard.index)
            assert seen_nodes == csr.num_nodes
            assert seen_arcs == csr.num_arcs

    def test_balanced_is_arc_balanced(self, master_seed):
        csr = self._csr(master_seed, n=120, k=3)
        plan = ShardPlan.balanced(csr, 4)
        sizes = [shard.num_arcs for shard in plan]
        # No shard more than ~2x the ideal quota (contiguity + degree
        # granularity allow some slack, but the cuts must track the quota).
        assert max(sizes) <= 2 * (csr.num_arcs / 4) + max(
            int(csr.indptr[i + 1] - csr.indptr[i]) for i in range(csr.num_nodes)
        )

    def test_num_shards_clamped_to_nodes(self, master_seed):
        csr = generators.path_graph(3).to_indexed().to_arrays()
        plan = ShardPlan.balanced(csr, 12)
        assert plan.num_shards == 3
        assert all(shard.num_nodes == 1 for shard in plan)

    def test_boundary_classification_matches_rev(self, master_seed):
        import numpy as np

        csr = self._csr(master_seed)
        plan = ShardPlan.balanced(csr, 4)
        mask = plan.boundary_arc_mask
        # Boundary is symmetric: an arc and its reverse cross together.
        assert np.array_equal(mask[csr.rev], mask)
        for shard in plan:
            out = plan.boundary_out(shard.index)
            # Published slots are exactly the owned arcs whose reverse arc
            # lies outside the shard's slot range.
            rev_out = csr.rev[out]
            assert np.all((out >= shard.arc_lo) & (out < shard.arc_hi))
            assert np.all((rev_out < shard.arc_lo) | (rev_out >= shard.arc_hi))
            # The rev-gather table is the rev slice of the owned slots, and
            # its interior flags complement the foreign sources.
            sources = plan.inbox_sources(shard.index)
            assert np.array_equal(sources, csr.rev[shard.arc_slice])
            interior = plan.interior_inbox(shard.index)
            foreign = sources[~interior]
            assert np.all((foreign < shard.arc_lo) | (foreign >= shard.arc_hi))
            assert np.all(
                (sources[interior] >= shard.arc_lo) & (sources[interior] < shard.arc_hi)
            )
        # Every foreign source of shard s is some other shard's boundary slot.
        published = np.concatenate(
            [plan.boundary_out(s) for s in range(plan.num_shards)]
        )
        gathered = np.concatenate(
            [
                plan.inbox_sources(s)[~plan.interior_inbox(s)]
                for s in range(plan.num_shards)
            ]
        )
        assert np.array_equal(np.sort(published), np.sort(gathered))

    def test_single_and_full_shard(self, master_seed):
        csr = self._csr(master_seed)
        plan = ShardPlan.single(csr)
        assert plan.num_shards == 1
        shard = plan.shard(0)
        full = Shard.full(csr)
        assert (shard.node_lo, shard.node_hi) == (full.node_lo, full.node_hi)
        assert (shard.arc_lo, shard.arc_hi) == (full.arc_lo, full.arc_hi)
        assert plan.num_boundary_arcs == 0
        assert plan.boundary_fraction == 0.0

    def test_describe_and_validation(self, master_seed):
        csr = self._csr(master_seed)
        plan = ShardPlan.balanced(csr, 3)
        desc = plan.describe()
        assert desc["num_shards"] == 3
        assert sum(desc["arcs_per_shard"]) == csr.num_arcs
        assert 0.0 <= desc["boundary_fraction"] <= 1.0
        with pytest.raises(GraphError):
            ShardPlan(csr, [0, csr.num_nodes + 1])
        with pytest.raises(GraphError):
            ShardPlan(csr, [0, 5, 3, csr.num_nodes])
        with pytest.raises(GraphError):
            # A zero-range shard (worker with no nodes) is refused outright.
            ShardPlan(csr, [0, 5, 5, csr.num_nodes])
        with pytest.raises(GraphError):
            plan.shard(3)

    def test_exchange_tables_cover_every_inbox_slot(self, master_seed):
        """The packed exchange tables partition each shard's inbox slots into
        interior + per-peer groups, and the peer lookups resolve to exactly
        the source arc's position inside the peer's packed boundary table."""
        import numpy as np

        csr = self._csr(master_seed)
        plan = ShardPlan.balanced(csr, 4)
        for shard in plan:
            ex = plan.exchange(shard.index)
            lo = shard.arc_lo
            sources = plan.inbox_sources(shard.index)
            covered = [ex.int_slots]
            # Interior entries point at shard-local source arcs.
            assert np.array_equal(sources[ex.int_slots] - lo, ex.int_src)
            for p in ex.peers:
                assert p.peer != shard.index
                covered.append(p.recv_slots)
                src_global = sources[p.recv_slots]
                t_lo = int(plan.arc_starts[p.peer])
                assert np.array_equal(src_global - t_lo, p.src_local)
                # Packed positions index the peer's boundary_out table.
                bout = plan.boundary_out(p.peer)
                assert np.array_equal(bout[p.src_packed], src_global)
            covered = np.sort(np.concatenate(covered))
            assert np.array_equal(covered, np.arange(shard.num_arcs))


@needs_numpy
class TestShardViews:
    def test_packed_inbox_shard_views_partition_global_inbox(self, master_seed):
        import numpy as np

        csr = generators.grid_graph(5, 5).to_indexed().to_arrays()
        plan = ShardPlan.balanced(csr, 3)
        arcs = np.arange(0, csr.num_arcs, 2, dtype=np.int64)  # every other slot
        inbox = PackedInbox(arcs, {"x": arcs.astype(np.float64)})
        pieces = [inbox.shard_view(shard) for shard in plan]
        assert np.array_equal(np.concatenate([p.arcs for p in pieces]), arcs)
        assert np.array_equal(
            np.concatenate([p["x"] for p in pieces]), inbox["x"]
        )
        # Each piece lies inside its shard's slot range.
        for shard, piece in zip(plan, pieces):
            if len(piece):
                assert piece.arcs.min() >= shard.arc_lo
                assert piece.arcs.max() < shard.arc_hi

    def test_packed_exchange_gather_matches_global_delivery(self, master_seed):
        """Simulate one round's sends with a random mask and payload, gather
        each shard's inbox through the packed exchange tables (the worker's
        per-round procedure), and check it equals the global rev-delivery —
        i.e. each shard's :meth:`PackedInbox.shard_view` of the full round."""
        import numpy as np
        import random

        csr = generators.grid_graph(6, 6, diagonal=True).to_indexed().to_arrays()
        plan = ShardPlan.balanced(csr, 3)
        rng = random.Random(master_seed)
        rng2 = np.random.default_rng(master_seed)
        mask = rng2.random(csr.num_arcs) < 0.4
        payload = rng2.integers(0, 1 << 30, csr.num_arcs)

        # Global reference delivery: message on arc p lands in slot rev[p].
        sent = np.flatnonzero(mask)
        slots = np.sort(csr.rev[sent])
        global_inbox = PackedInbox(slots, {"x": payload[csr.rev[slots]]})

        for shard in plan:
            ex = plan.exchange(shard.index)
            lo = shard.arc_lo
            hitbuf = np.zeros(shard.num_arcs, dtype=bool)
            gather = np.empty(shard.num_arcs, dtype=payload.dtype)
            # Interior: read from the shard's own (local) send buffers.
            my_mask = mask[shard.arc_slice]
            my_vals = payload[shard.arc_slice]
            got = my_mask[ex.int_src]
            hitbuf[ex.int_slots[got]] = True
            gather[ex.int_slots[got]] = my_vals[ex.int_src[got]]
            # Foreign: read from each peer's packed boundary arrays.
            for p in ex.peers:
                t = plan.shard(p.peer)
                peer_mask = mask[t.arc_slice]
                packed_vals = payload[plan.boundary_out(p.peer)]
                pg = peer_mask[p.src_local]
                hitbuf[p.recv_slots[pg]] = True
                gather[p.recv_slots[pg]] = packed_vals[p.src_packed[pg]]
            hit = np.flatnonzero(hitbuf)
            expected = global_inbox.shard_view(shard)
            assert np.array_equal(lo + hit, expected.arcs)
            assert np.array_equal(gather[hit], expected["x"])

    def test_state_schema_validation(self):
        with pytest.raises(ValueError):
            StateVector("x", "edge", "f8")
        with pytest.raises(ValueError):
            StateSchema(StateVector("x", "node", "f8"), StateVector("x", "arc", "f8"))
        schema = StateSchema(
            StateVector("a", "node", "f8"), StateVector("b", "arc", "i8", cols=2)
        )
        assert schema.names() == ("a", "b")
        assert len(schema) == 2

    def test_shard_local_allocation_mode(self, master_seed):
        """StateVector.allocate(shard) covers only the shard's rows; the
        per-shard allocations of a plan tile the whole-graph allocation."""
        import numpy as np

        csr = generators.grid_graph(5, 5).to_indexed().to_arrays()
        plan = ShardPlan.balanced(csr, 3)
        schema = StateSchema(
            StateVector("a", "node", "f8"),
            StateVector("b", "arc", "i8", cols=2),
            StateVector("c", "node", "?"),
        )
        full = Shard.full(csr)
        total = schema.local_nbytes(full)
        per_shard = [schema.local_nbytes(shard) for shard in plan]
        assert sum(per_shard) == total
        assert max(per_shard) < total
        for shard in plan:
            state = schema.allocate(shard)
            assert state["a"].shape == (shard.num_nodes,)
            assert state["b"].shape == (shard.num_arcs, 2)
            assert state["c"].dtype == np.bool_
        # Whole-graph shard: the legacy full-length allocation.
        state = schema.allocate(full)
        assert state["a"].shape == (csr.num_nodes,)
        assert state["b"].shape == (csr.num_arcs, 2)


class TestGracefulFallbackWarnings:
    """Engine-tier fallbacks emit exactly one EngineFallbackWarning naming
    the reason (and the silent-degradation path is gone)."""

    def _run(self, engine, graph=None, **kwargs):
        net = CongestNetwork(graph if graph is not None else generators.cycle_graph(9))
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            result = net.run(lambda u: BroadcastAll(value=u), engine=engine, **kwargs)
        return result, [w for w in rec if issubclass(w.category, EngineFallbackWarning)]

    def test_vectorized_without_kernel_warns_exactly_once(self):
        result, fallbacks = self._run("vectorized")
        assert result.engine == "fast"
        assert len(fallbacks) == 1
        assert "no RoundKernel" in str(fallbacks[0].message)
        assert "engine='fast'" in str(fallbacks[0].message)

    def test_sharded_without_kernel_warns_exactly_once(self):
        result, fallbacks = self._run("sharded", num_shards=2)
        assert result.engine == "fast"
        assert len(fallbacks) == 1
        assert "engine='sharded' unavailable" in str(fallbacks[0].message)
        assert "no RoundKernel" in str(fallbacks[0].message)

    @needs_sharded
    def test_sharded_with_legacy_init_falls_back_to_vectorized(self):
        """A kernel with the pre-shard whole-graph ``init(state, csr)``
        signature still runs on the vectorized tier through the compat shim,
        but a sharded request falls back (one warning naming the reason)."""
        from repro.congest.primitives import ChunkFloodNode

        class LegacyInitKernel(FloodingKernel):
            def init(self, state, csr):  # legacy 2-arg signature
                from repro.graphs.sharding import Shard

                return super().init(state, csr, Shard.full(csr))

        graph = generators.grid_graph(4, 4)
        net = CongestNetwork(graph)
        root = (0, 0)
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            result = net.run(
                lambda u: ChunkFloodNode(u, root, [("c", 0)]),
                engine="sharded",
                kernel=LegacyInitKernel(root, [("c", 0)]),
            )
        fallbacks = [w for w in rec if issubclass(w.category, EngineFallbackWarning)]
        assert result.engine == "vectorized"
        assert len(fallbacks) == 1
        assert "not shard-aware" in str(fallbacks[0].message)
        # The shim result is bit-for-bit the scalar run.
        ref = net.run(lambda u: ChunkFloodNode(u, root, [("c", 0)]), engine="fast")
        assert result.outputs == ref.outputs
        assert result.rounds == ref.rounds
        assert result.words_sent == ref.words_sent

    @needs_sharded
    def test_oversized_num_shards_clamped_with_warning(self):
        """num_shards beyond the node count is clamped (no empty shards) and
        announced by exactly one EngineFallbackWarning; the run still
        executes sharded and matches the fast tier."""
        from repro.congest.primitives import flood_chunks

        graph = generators.cycle_graph(9)
        net = CongestNetwork(graph)
        ref_received, ref = flood_chunks(net, 0, [("c", 1), ("c", 2)], engine="fast")
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            received, result = flood_chunks(
                net, 0, [("c", 1), ("c", 2)], engine="sharded", num_shards=50
            )
        fallbacks = [w for w in rec if issubclass(w.category, EngineFallbackWarning)]
        assert len(fallbacks) == 1
        assert "clamped" in str(fallbacks[0].message)
        # The message contract: the warning names the requested tier and the
        # tier that actually runs, not just the clamp reason.
        assert "engine='sharded'" in str(fallbacks[0].message)
        assert "still running engine='sharded'" in str(fallbacks[0].message)
        assert result.engine == "sharded"
        assert result.shard_stats["num_shards"] == 9
        assert received == ref_received
        assert result.rounds == ref.rounds
        assert result.words_sent == ref.words_sent

    @needs_sharded
    def test_sharded_without_schema_falls_back_to_vectorized(self):
        class SchemaLess(FloodingKernel):
            def state_schema(self, csr):
                return None

        graph = generators.grid_graph(4, 4)
        net = CongestNetwork(graph)
        root = (0, 0)
        kernel = SchemaLess(root, [("c", 0)])
        from repro.congest.primitives import ChunkFloodNode

        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            result = net.run(
                lambda u: ChunkFloodNode(u, root, [("c", 0)]),
                engine="sharded",
                kernel=kernel,
            )
        fallbacks = [w for w in rec if issubclass(w.category, EngineFallbackWarning)]
        assert result.engine == "vectorized"
        assert len(fallbacks) == 1
        assert "declares no StateSchema" in str(fallbacks[0].message)

    def test_fast_and_legacy_do_not_warn(self):
        for engine in ("fast", "legacy"):
            result, fallbacks = self._run(engine)
            assert result.engine == engine
            assert fallbacks == []

    @needs_sharded
    def test_network_default_engine_attaches_protocol_kernels(self):
        """A network whose *default* engine is a kernel tier must get the
        protocol kernel from the helper functions — no explicit ``engine=``
        argument, no spurious fallback warning."""
        from repro.congest.primitives import flood_chunks

        graph = generators.grid_graph(4, 4)
        for default in ("vectorized", "sharded"):
            net = CongestNetwork(graph, engine=default)
            with warnings.catch_warnings(record=True) as rec:
                warnings.simplefilter("always")
                _, result = flood_chunks(net, (0, 0), [("c", 1), ("c", 2)])
            fallbacks = [
                w for w in rec if issubclass(w.category, EngineFallbackWarning)
            ]
            assert result.engine == default
            assert fallbacks == []


@needs_sharded
class TestRunSharded:
    def test_custom_skewed_plan_matches_fast(self, master_seed):
        from repro.congest.bellman_ford import (
            BellmanFordKernel,
            BellmanFordNode,
            distributed_bellman_ford,
        )

        graph = generators.partial_k_tree(30, 3, seed=master_seed)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation="asymmetric", seed=master_seed
        )
        source = min(graph.nodes(), key=str)
        ref = distributed_bellman_ford(instance, source, engine="fast")

        comm = instance.underlying_graph()
        network = CongestNetwork(comm)
        local_inputs = {
            u: [(e.head, e.weight) for e in instance.out_edges(u)]
            for u in instance.nodes()
        }
        csr = network.indexed.to_arrays()
        n = csr.num_nodes
        plan = ShardPlan(csr, [0, 1, n - 1, n])  # deliberately unbalanced
        result = run_sharded(
            network,
            BellmanFordKernel(source, local_inputs),
            max_rounds=4 * n + 16,
            plan=plan,
        )
        assert result.engine == "sharded"
        assert result.rounds == ref.rounds
        assert result.outputs == ref.simulation.outputs
        assert result.words_sent == ref.simulation.words_sent
        assert result.max_words_per_edge_round == ref.simulation.max_words_per_edge_round

    def test_kernel_without_schema_rejected(self, master_seed):
        class SchemaLess(FloodingKernel):
            def state_schema(self, csr):
                return None

        network = CongestNetwork(generators.cycle_graph(9))
        with pytest.raises(SimulationError, match="StateSchema"):
            run_sharded(network, SchemaLess(0, [("c", 1)]), num_shards=2)

    def test_convergence_error_terminates_workers(self, master_seed):
        """max_rounds exhaustion must stop the workers cleanly (no deadlock
        on the stop barrier) and raise the same ConvergenceError as the
        single-process tiers."""
        from repro.congest.bellman_ford import distributed_bellman_ford
        from repro.errors import ConvergenceError

        graph = generators.path_graph(20)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 5), orientation="both", seed=master_seed
        )
        for engine in ("fast", "sharded"):
            with pytest.raises(ConvergenceError):
                distributed_bellman_ford(
                    instance, 0, engine=engine, max_rounds=3, num_shards=2
                )

    def test_worker_failure_propagates(self, master_seed):
        network = CongestNetwork(generators.cycle_graph(12))
        with pytest.raises(SimulationError, match="boom in shard worker"):
            run_sharded(network, ExplodingKernel(0, [("c", 1)]), num_shards=2)

    def test_default_num_shards_bounds(self):
        assert default_num_shards(1) == 1
        assert 1 <= default_num_shards(10_000) <= 8
        assert default_num_shards(3) <= 3


@needs_sharded
class TestShardLocalArena:
    """The memory contract of the refactored tier: declared state is owned by
    shards (per-worker O((n+m)/num_shards)), and only packed boundary words
    are exchanged."""

    def _run(self, master_seed, num_shards, n=48):
        from repro.congest.bellman_ford import distributed_bellman_ford

        graph = generators.partial_k_tree(n, 3, seed=master_seed)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation="asymmetric", seed=master_seed
        )
        source = min(graph.nodes(), key=str)
        return distributed_bellman_ford(
            instance, source, engine="sharded", num_shards=num_shards
        )

    def test_declared_state_is_shard_local(self, master_seed):
        """Per-shard declared-state arena segments tile the whole-graph
        allocation: they sum to the one-shard total and each is a fraction
        of it — the per-worker memory drop the refactor exists for."""
        single = self._run(master_seed, 1).simulation.shard_stats
        total = sum(single["declared_state_bytes"])
        for shards in (2, 4):
            stats = self._run(master_seed, shards).simulation.shard_stats
            per_shard = stats["declared_state_bytes"]
            assert len(per_shard) == shards
            assert sum(per_shard) == total  # exact tiling, no replication
            # Arc-balanced plan: no segment above ~2x the ideal quota.
            assert max(per_shard) <= 2 * total / shards

    def test_boundary_words_counter(self, master_seed):
        """boundary_words_published counts exactly the words whose arc
        crosses a shard boundary: zero for one shard, bounded by total words
        otherwise, and consistent with the plan's boundary fraction."""
        one = self._run(master_seed, 1)
        assert one.simulation.shard_stats["boundary_words_published"] == 0
        assert one.simulation.shard_stats["boundary_messages_published"] == 0
        for shards in (2, 4):
            run = self._run(master_seed, shards)
            stats = run.simulation.shard_stats
            words = run.simulation.words_sent
            msgs = run.simulation.messages_sent
            assert 0 < stats["boundary_words_published"] < words
            assert 0 < stats["boundary_messages_published"] < msgs

    def test_arena_specs_are_per_shard_segments(self, master_seed):
        """The arena layout itself holds one state segment per shard with
        shard-local shapes (not num_shards full-length copies)."""
        import numpy as np

        from repro.congest.bellman_ford import BellmanFordKernel
        from repro.congest.engine import _arena_layout, _sharded_specs

        graph = generators.partial_k_tree(30, 3, seed=master_seed)
        csr = graph.to_indexed().to_arrays()
        plan = ShardPlan.balanced(csr, 3)
        kernel = BellmanFordKernel(0, {})
        schema = kernel.state_schema(csr)
        specs, state_bytes, exchange_bytes = _sharded_specs(
            plan, kernel.schema, schema, csr
        )
        layout, total = _arena_layout(specs)
        for shard in plan:
            s = shard.index
            assert layout[f"state:{s}:dist"][1] == (shard.num_nodes,)
            assert layout[f"state:{s}:w_arc"][1] == (shard.num_arcs,)
            boundary = int(plan.boundary_out(s).shape[0])
            for bank in (0, 1):
                assert layout[f"bvalue:{s}:dist:{bank}"][1] == (boundary,)
        assert sum(state_bytes) == schema.local_nbytes(Shard.full(csr))


@needs_sharded
class TestShardPool:
    def _instance(self, master_seed, n=30):
        graph = generators.partial_k_tree(n, 3, seed=master_seed)
        return generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation="asymmetric", seed=master_seed
        )

    def test_pool_reuse_is_bit_for_bit(self, master_seed):
        """Two consecutive sharded runs on one pool reuse the same worker
        processes and match fresh-pool and single-process runs exactly
        (results, accounting, traces)."""
        from repro.congest.bellman_ford import distributed_bellman_ford
        from repro.congest.engine import ShardPool, SimulationTrace

        instance = self._instance(master_seed)
        source = min(instance.nodes(), key=str)
        ref_trace = SimulationTrace()
        ref = distributed_bellman_ford(instance, source, engine="fast", trace=ref_trace)
        fresh = distributed_bellman_ford(
            instance, source, engine="sharded", num_shards=2
        )
        with ShardPool(num_shards=2) as pool:
            runs = []
            traces = []
            for _ in range(2):
                trace = SimulationTrace()
                runs.append(
                    distributed_bellman_ford(
                        instance, source, engine="sharded", shard_pool=pool, trace=trace
                    )
                )
                traces.append(trace)
            # Same worker processes served both runs; no respawn happened,
            # and the second run hit the worker-side graph cache (the helper
            # reuses one underlying-graph snapshot per instance, so the
            # cache key is stable across calls).
            assert pool.workers_started == 2
            assert pool.runs_dispatched == 2
            pids = [r.simulation.shard_stats["worker_pids"] for r in runs]
            assert pids[0] == pids[1]
            assert instance.underlying_graph() is instance.underlying_graph()
            for run, trace in zip(runs, traces):
                assert run.simulation.engine == "sharded"
                assert run.distances == ref.distances == fresh.distances
                assert run.parents == ref.parents == fresh.parents
                assert run.simulation.rounds == ref.simulation.rounds
                assert run.simulation.messages_sent == ref.simulation.messages_sent
                assert run.simulation.words_sent == ref.simulation.words_sent
                assert (
                    run.simulation.max_words_per_edge_round
                    == ref.simulation.max_words_per_edge_round
                )
                assert (
                    run.simulation.max_message_words
                    == ref.simulation.max_message_words
                )
                assert trace.as_dicts() == ref_trace.as_dicts()
        assert pool.num_workers == 0  # context manager closed the pool

    def test_pool_reuse_across_protocols_and_graphs(self, master_seed):
        """One pool serves different kernels and graphs back to back; the
        worker-side graph cache re-ships the snapshot only when it changes."""
        from repro.congest.engine import ShardPool
        from repro.congest.primitives import build_bfs_tree, flood_chunks

        g1 = generators.grid_graph(5, 5)
        g2 = generators.cycle_graph(18)
        with ShardPool(num_shards=2) as pool:
            net1 = CongestNetwork(g1, words_per_message=8)
            net2 = CongestNetwork(g2, words_per_message=8)
            ref_flood, _ = flood_chunks(net1, (0, 0), [("c", 1)], engine="fast")
            got_flood, res = flood_chunks(
                net1, (0, 0), [("c", 1)], engine="sharded", shard_pool=pool
            )
            assert res.engine == "sharded" and got_flood == ref_flood
            p_ref, d_ref, _ = build_bfs_tree(net2, 0, engine="fast")
            p_got, d_got, res2 = build_bfs_tree(
                net2, 0, engine="sharded", shard_pool=pool
            )
            assert res2.engine == "sharded"
            assert (p_got, d_got) == (p_ref, d_ref)
            assert pool.workers_started == 2  # still the original workers

    def test_pool_resize_restarts_workers(self, master_seed):
        from repro.congest.bellman_ford import distributed_bellman_ford
        from repro.congest.engine import ShardPool

        instance = self._instance(master_seed)
        source = min(instance.nodes(), key=str)
        with ShardPool() as pool:
            a = distributed_bellman_ford(
                instance, source, engine="sharded", num_shards=2, shard_pool=pool
            )
            assert pool.workers_started == 2
            b = distributed_bellman_ford(
                instance, source, engine="sharded", num_shards=3, shard_pool=pool
            )
            assert pool.workers_started == 5  # resize restarted the pool
            assert a.distances == b.distances
            # An implicit-size run now follows the live worker count (3),
            # not the constructor hint — no restart thrash.
            c = distributed_bellman_ford(instance, source, engine="sharded",
                                         shard_pool=pool)
            assert c.simulation.shard_stats["num_shards"] == 3
            assert pool.workers_started == 5

    def test_pool_recovers_after_worker_failure(self, master_seed):
        """A failed run discards the worker generation; the same pool then
        transparently restarts workers and produces correct results."""
        from repro.congest.bellman_ford import distributed_bellman_ford
        from repro.congest.engine import ShardPool

        instance = self._instance(master_seed)
        source = min(instance.nodes(), key=str)
        network = CongestNetwork(generators.cycle_graph(12))
        with ShardPool(num_shards=2) as pool:
            with pytest.raises(SimulationError, match="boom in shard worker"):
                run_sharded(network, ExplodingKernel(0, [("c", 1)]), pool=pool)
            assert pool.num_workers == 0  # generation discarded
            result = distributed_bellman_ford(
                instance, source, engine="sharded", shard_pool=pool
            )
            ref = distributed_bellman_ford(instance, source, engine="fast")
            assert result.distances == ref.distances
            assert result.simulation.words_sent == ref.simulation.words_sent

    def test_convergence_error_keeps_pool_warm(self, master_seed):
        """max_rounds exhaustion ends with the clean STOP handshake, so the
        pool's workers survive and the next run reuses them."""
        from repro.congest.bellman_ford import distributed_bellman_ford
        from repro.congest.engine import ShardPool
        from repro.errors import ConvergenceError

        graph = generators.path_graph(20)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 5), orientation="both", seed=master_seed
        )
        with ShardPool(num_shards=2) as pool:
            with pytest.raises(ConvergenceError):
                distributed_bellman_ford(
                    instance, 0, engine="sharded", max_rounds=3, shard_pool=pool
                )
            assert pool.num_workers == 2  # workers parked, not discarded
            pids = pool.worker_pids()
            ref = distributed_bellman_ford(instance, 0, engine="fast")
            run = distributed_bellman_ford(
                instance, 0, engine="sharded", shard_pool=pool
            )
            assert run.distances == ref.distances
            assert pool.worker_pids() == pids
            assert pool.workers_started == 2

    def test_closed_pool_rejects_runs(self):
        from repro.congest.engine import ShardPool

        pool = ShardPool(num_shards=2)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(SimulationError, match="closed"):
            pool.ensure(2)

    def test_busy_pool_rejects_concurrent_runs(self):
        """A pool serves one sharded run at a time: a second entry while a
        run is in flight fails cleanly instead of corrupting the lockstep."""
        from repro.congest.engine import ShardPool

        pool = ShardPool(num_shards=2)
        pool._busy = True  # what a run in flight sets
        with pytest.raises(SimulationError, match="one sharded run at a time"):
            pool.ensure(2)
        pool._busy = False
        pool.close()

    def test_network_owns_pool_lifecycle(self, master_seed):
        """CongestNetwork(shard_pool=...) adopts the pool: sharded runs use
        it without a per-call argument and the network context closes it."""
        from repro.congest.engine import ShardPool
        from repro.congest.primitives import flood_chunks

        graph = generators.grid_graph(4, 4)
        pool = ShardPool(num_shards=2)
        with CongestNetwork(graph, words_per_message=8, shard_pool=pool) as net:
            ref, _ = flood_chunks(net, (0, 0), [("c", 1)], engine="fast")
            for _ in range(2):
                got, res = flood_chunks(net, (0, 0), [("c", 1)], engine="sharded")
                assert res.engine == "sharded"
                assert got == ref
            assert pool.runs_dispatched == 2
            assert pool.workers_started == 2
        assert pool._closed
        assert net.shard_pool is None


@needs_sharded
class TestShardedHygiene:
    """Shared-memory hygiene: a worker hard-killed mid-run must not leak the
    arena, and the pool must recover."""

    def test_killed_worker_cleans_arena_and_pool_recovers(self, master_seed):
        import os

        from repro.congest.bellman_ford import distributed_bellman_ford
        from repro.congest.engine import ShardPool

        shm_dir = "/dev/shm"
        if not os.path.isdir(shm_dir):
            pytest.skip("no /dev/shm on this platform")

        def _arenas():
            # Only multiprocessing.shared_memory segments: unrelated
            # processes may create other /dev/shm entries concurrently.
            return {n for n in os.listdir(shm_dir) if n.startswith("psm_")}

        before = _arenas()

        network = CongestNetwork(generators.cycle_graph(12))
        with ShardPool(num_shards=2) as pool:
            with pytest.raises(SimulationError, match="failed or timed out"):
                run_sharded(
                    network,
                    SuicidalKernel(0, [("c", 1)]),
                    pool=pool,
                    barrier_timeout=5.0,
                )
            # The arena was closed and unlinked despite the hard kill.
            assert _arenas() - before == set()
            # And the pool restarts cleanly on the next run.
            instance = generators.to_directed_instance(
                generators.cycle_graph(12), weight_range=(1, 5),
                orientation="both", seed=master_seed,
            )
            result = distributed_bellman_ford(
                instance, 0, engine="sharded", shard_pool=pool
            )
            ref = distributed_bellman_ford(instance, 0, engine="fast")
            assert result.distances == ref.distances
        assert _arenas() - before == set()
