"""Unit tests for the sharded-execution plumbing.

The randomized four-tier equivalence harness lives in
``test_engine_equivalence.py``; this file covers the building blocks in
isolation — :class:`ShardPlan` geometry (contiguous ranges, boundary
classification, rev-gather tables), the :class:`StateSchema` declarations,
shard-local views of :class:`PackedSends`/:class:`PackedInbox`, the
single-warning graceful fallback ladder, custom shard plans, and worker
failure propagation.
"""

from __future__ import annotations

import warnings

import pytest

from repro.congest.engine import (
    EngineFallbackWarning,
    default_num_shards,
    run_sharded,
    sharded_available,
)
from repro.congest.kernels import (
    FloodingKernel,
    PackedInbox,
    PackedSends,
    StateSchema,
    StateVector,
    vectorized_available,
)
from repro.congest.network import CongestNetwork
from repro.congest.node import BroadcastAll
from repro.errors import GraphError, SimulationError
from repro.graphs import generators
from repro.graphs.sharding import Shard, ShardPlan

needs_numpy = pytest.mark.skipif(not vectorized_available(), reason="numpy unavailable")
needs_sharded = pytest.mark.skipif(
    not sharded_available(), reason="numpy/shared-memory unavailable"
)


@needs_numpy
class TestShardPlanGeometry:
    def _csr(self, master_seed, n=40, k=3):
        graph = generators.partial_k_tree(n, k, seed=master_seed)
        return graph.to_indexed().to_arrays()

    def test_balanced_partition_covers_and_is_contiguous(self, master_seed):
        import numpy as np

        csr = self._csr(master_seed)
        for num_shards in (1, 2, 3, 5, 8):
            plan = ShardPlan.balanced(csr, num_shards)
            assert plan.num_shards == num_shards
            assert plan.node_starts[0] == 0 and plan.node_starts[-1] == csr.num_nodes
            # Every node in exactly one shard; arc ranges are the CSR slices.
            seen_nodes = 0
            seen_arcs = 0
            for shard in plan:
                assert shard.num_nodes >= 1  # balanced() never makes empty shards
                assert shard.arc_lo == int(csr.indptr[shard.node_lo])
                assert shard.arc_hi == int(csr.indptr[shard.node_hi])
                seen_nodes += shard.num_nodes
                seen_arcs += shard.num_arcs
                assert np.all(plan.shard_of_node[shard.node_slice] == shard.index)
            assert seen_nodes == csr.num_nodes
            assert seen_arcs == csr.num_arcs

    def test_balanced_is_arc_balanced(self, master_seed):
        csr = self._csr(master_seed, n=120, k=3)
        plan = ShardPlan.balanced(csr, 4)
        sizes = [shard.num_arcs for shard in plan]
        # No shard more than ~2x the ideal quota (contiguity + degree
        # granularity allow some slack, but the cuts must track the quota).
        assert max(sizes) <= 2 * (csr.num_arcs / 4) + max(
            int(csr.indptr[i + 1] - csr.indptr[i]) for i in range(csr.num_nodes)
        )

    def test_num_shards_clamped_to_nodes(self, master_seed):
        csr = generators.path_graph(3).to_indexed().to_arrays()
        plan = ShardPlan.balanced(csr, 12)
        assert plan.num_shards == 3
        assert all(shard.num_nodes == 1 for shard in plan)

    def test_boundary_classification_matches_rev(self, master_seed):
        import numpy as np

        csr = self._csr(master_seed)
        plan = ShardPlan.balanced(csr, 4)
        mask = plan.boundary_arc_mask
        # Boundary is symmetric: an arc and its reverse cross together.
        assert np.array_equal(mask[csr.rev], mask)
        for shard in plan:
            out = plan.boundary_out(shard.index)
            # Published slots are exactly the owned arcs whose reverse arc
            # lies outside the shard's slot range.
            rev_out = csr.rev[out]
            assert np.all((out >= shard.arc_lo) & (out < shard.arc_hi))
            assert np.all((rev_out < shard.arc_lo) | (rev_out >= shard.arc_hi))
            # The rev-gather table is the rev slice of the owned slots, and
            # its interior flags complement the foreign sources.
            sources = plan.inbox_sources(shard.index)
            assert np.array_equal(sources, csr.rev[shard.arc_slice])
            interior = plan.interior_inbox(shard.index)
            foreign = sources[~interior]
            assert np.all((foreign < shard.arc_lo) | (foreign >= shard.arc_hi))
            assert np.all(
                (sources[interior] >= shard.arc_lo) & (sources[interior] < shard.arc_hi)
            )
        # Every foreign source of shard s is some other shard's boundary slot.
        published = np.concatenate(
            [plan.boundary_out(s) for s in range(plan.num_shards)]
        )
        gathered = np.concatenate(
            [
                plan.inbox_sources(s)[~plan.interior_inbox(s)]
                for s in range(plan.num_shards)
            ]
        )
        assert np.array_equal(np.sort(published), np.sort(gathered))

    def test_single_and_full_shard(self, master_seed):
        csr = self._csr(master_seed)
        plan = ShardPlan.single(csr)
        assert plan.num_shards == 1
        shard = plan.shard(0)
        full = Shard.full(csr)
        assert (shard.node_lo, shard.node_hi) == (full.node_lo, full.node_hi)
        assert (shard.arc_lo, shard.arc_hi) == (full.arc_lo, full.arc_hi)
        assert plan.num_boundary_arcs == 0
        assert plan.boundary_fraction == 0.0

    def test_describe_and_validation(self, master_seed):
        csr = self._csr(master_seed)
        plan = ShardPlan.balanced(csr, 3)
        desc = plan.describe()
        assert desc["num_shards"] == 3
        assert sum(desc["arcs_per_shard"]) == csr.num_arcs
        assert 0.0 <= desc["boundary_fraction"] <= 1.0
        with pytest.raises(GraphError):
            ShardPlan(csr, [0, csr.num_nodes + 1])
        with pytest.raises(GraphError):
            ShardPlan(csr, [0, 5, 3, csr.num_nodes])
        with pytest.raises(GraphError):
            plan.shard(3)


@needs_numpy
class TestShardViews:
    def test_packed_inbox_shard_views_partition_global_inbox(self, master_seed):
        import numpy as np

        csr = generators.grid_graph(5, 5).to_indexed().to_arrays()
        plan = ShardPlan.balanced(csr, 3)
        arcs = np.arange(0, csr.num_arcs, 2, dtype=np.int64)  # every other slot
        inbox = PackedInbox(arcs, {"x": arcs.astype(np.float64)})
        pieces = [inbox.shard_view(shard) for shard in plan]
        assert np.array_equal(np.concatenate([p.arcs for p in pieces]), arcs)
        assert np.array_equal(
            np.concatenate([p["x"] for p in pieces]), inbox["x"]
        )
        # Each piece lies inside its shard's slot range.
        for shard, piece in zip(plan, pieces):
            if len(piece):
                assert piece.arcs.min() >= shard.arc_lo
                assert piece.arcs.max() < shard.arc_hi

    def test_packed_sends_shard_view_slices(self, master_seed):
        import numpy as np

        csr = generators.cycle_graph(9).to_indexed().to_arrays()
        shard = ShardPlan.balanced(csr, 2).shard(1)
        mask = np.zeros(csr.num_arcs, dtype=bool)
        mask[shard.arc_lo] = True
        values = {"v": np.arange(csr.num_arcs, dtype=np.int64)}
        words = np.full(csr.num_arcs, 3, dtype=np.int64)
        m, vals, w = PackedSends(mask, values, words=words).shard_view(shard)
        assert m.shape[0] == shard.num_arcs and bool(m[0])
        assert vals["v"][0] == shard.arc_lo
        assert w.shape[0] == shard.num_arcs
        m2, _, w2 = PackedSends(mask, values).shard_view(shard)
        assert w2 is None and m2.shape[0] == shard.num_arcs

    def test_state_schema_validation(self):
        with pytest.raises(ValueError):
            StateVector("x", "edge", "f8")
        with pytest.raises(ValueError):
            StateSchema(StateVector("x", "node", "f8"), StateVector("x", "arc", "f8"))
        schema = StateSchema(
            StateVector("a", "node", "f8"), StateVector("b", "arc", "i8", cols=2)
        )
        assert schema.names() == ("a", "b")
        assert len(schema) == 2


class TestGracefulFallbackWarnings:
    """Engine-tier fallbacks emit exactly one EngineFallbackWarning naming
    the reason (and the silent-degradation path is gone)."""

    def _run(self, engine, graph=None, **kwargs):
        net = CongestNetwork(graph if graph is not None else generators.cycle_graph(9))
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            result = net.run(lambda u: BroadcastAll(value=u), engine=engine, **kwargs)
        return result, [w for w in rec if issubclass(w.category, EngineFallbackWarning)]

    def test_vectorized_without_kernel_warns_exactly_once(self):
        result, fallbacks = self._run("vectorized")
        assert result.engine == "fast"
        assert len(fallbacks) == 1
        assert "no RoundKernel" in str(fallbacks[0].message)
        assert "engine='fast'" in str(fallbacks[0].message)

    def test_sharded_without_kernel_warns_exactly_once(self):
        result, fallbacks = self._run("sharded", num_shards=2)
        assert result.engine == "fast"
        assert len(fallbacks) == 1
        assert "engine='sharded' unavailable" in str(fallbacks[0].message)
        assert "no RoundKernel" in str(fallbacks[0].message)

    @needs_sharded
    def test_sharded_without_schema_falls_back_to_vectorized(self):
        class SchemaLess(FloodingKernel):
            def state_schema(self, csr):
                return None

        graph = generators.grid_graph(4, 4)
        net = CongestNetwork(graph)
        root = (0, 0)
        kernel = SchemaLess(root, [("c", 0)])
        from repro.congest.primitives import ChunkFloodNode

        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            result = net.run(
                lambda u: ChunkFloodNode(u, root, [("c", 0)]),
                engine="sharded",
                kernel=kernel,
            )
        fallbacks = [w for w in rec if issubclass(w.category, EngineFallbackWarning)]
        assert result.engine == "vectorized"
        assert len(fallbacks) == 1
        assert "declares no StateSchema" in str(fallbacks[0].message)

    def test_fast_and_legacy_do_not_warn(self):
        for engine in ("fast", "legacy"):
            result, fallbacks = self._run(engine)
            assert result.engine == engine
            assert fallbacks == []

    @needs_sharded
    def test_network_default_engine_attaches_protocol_kernels(self):
        """A network whose *default* engine is a kernel tier must get the
        protocol kernel from the helper functions — no explicit ``engine=``
        argument, no spurious fallback warning."""
        from repro.congest.primitives import flood_chunks

        graph = generators.grid_graph(4, 4)
        for default in ("vectorized", "sharded"):
            net = CongestNetwork(graph, engine=default)
            with warnings.catch_warnings(record=True) as rec:
                warnings.simplefilter("always")
                _, result = flood_chunks(net, (0, 0), [("c", 1), ("c", 2)])
            fallbacks = [
                w for w in rec if issubclass(w.category, EngineFallbackWarning)
            ]
            assert result.engine == default
            assert fallbacks == []


@needs_sharded
class TestRunSharded:
    def test_custom_skewed_plan_matches_fast(self, master_seed):
        from repro.congest.bellman_ford import (
            BellmanFordKernel,
            BellmanFordNode,
            distributed_bellman_ford,
        )

        graph = generators.partial_k_tree(30, 3, seed=master_seed)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation="asymmetric", seed=master_seed
        )
        source = min(graph.nodes(), key=str)
        ref = distributed_bellman_ford(instance, source, engine="fast")

        comm = instance.underlying_graph()
        network = CongestNetwork(comm)
        local_inputs = {
            u: [(e.head, e.weight) for e in instance.out_edges(u)]
            for u in instance.nodes()
        }
        csr = network.indexed.to_arrays()
        n = csr.num_nodes
        plan = ShardPlan(csr, [0, 1, n - 1, n])  # deliberately unbalanced
        result = run_sharded(
            network,
            BellmanFordKernel(source, local_inputs),
            max_rounds=4 * n + 16,
            plan=plan,
        )
        assert result.engine == "sharded"
        assert result.rounds == ref.rounds
        assert result.outputs == ref.simulation.outputs
        assert result.words_sent == ref.simulation.words_sent
        assert result.max_words_per_edge_round == ref.simulation.max_words_per_edge_round

    def test_kernel_without_schema_rejected(self, master_seed):
        class SchemaLess(FloodingKernel):
            def state_schema(self, csr):
                return None

        network = CongestNetwork(generators.cycle_graph(9))
        with pytest.raises(SimulationError, match="StateSchema"):
            run_sharded(network, SchemaLess(0, [("c", 1)]), num_shards=2)

    def test_convergence_error_terminates_workers(self, master_seed):
        """max_rounds exhaustion must stop the workers cleanly (no deadlock
        on the stop barrier) and raise the same ConvergenceError as the
        single-process tiers."""
        from repro.congest.bellman_ford import distributed_bellman_ford
        from repro.errors import ConvergenceError

        graph = generators.path_graph(20)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 5), orientation="both", seed=master_seed
        )
        for engine in ("fast", "sharded"):
            with pytest.raises(ConvergenceError):
                distributed_bellman_ford(
                    instance, 0, engine=engine, max_rounds=3, num_shards=2
                )

    def test_worker_failure_propagates(self, master_seed):
        class ExplodingKernel(FloodingKernel):
            def round(self, state, inbox, inbox_senders, csr, shard):
                raise RuntimeError("boom in shard worker")

        network = CongestNetwork(generators.cycle_graph(12))
        with pytest.raises(SimulationError, match="boom in shard worker"):
            run_sharded(network, ExplodingKernel(0, [("c", 1)]), num_shards=2)

    def test_default_num_shards_bounds(self):
        assert default_num_shards(1) == 1
        assert 1 <= default_num_shards(10_000) <= 8
        assert default_num_shards(3) <= 3
