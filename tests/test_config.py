"""Tests for configuration objects."""

import pytest

from repro.core.config import FrameworkConfig, SeparatorParams


class TestSeparatorParams:
    def test_paper_preset_matches_paper_constants(self):
        p = SeparatorParams.paper()
        assert p.size_threshold_factor == 200.0
        assert abs(p.balance_fraction - 14399.0 / 14400.0) < 1e-12
        assert p.num_sampled_pairs == 95
        assert p.split_lower_divisor == 12
        assert p.split_upper_divisor == 4
        p.validate()

    def test_practical_preset_valid(self):
        p = SeparatorParams.practical()
        p.validate()
        assert p.balance_fraction < SeparatorParams.paper().balance_fraction
        assert p.size_threshold_factor < SeparatorParams.paper().size_threshold_factor

    def test_with_overrides(self):
        p = SeparatorParams.practical().with_overrides(num_sampled_pairs=7)
        assert p.num_sampled_pairs == 7
        assert p.balance_fraction == SeparatorParams.practical().balance_fraction

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"balance_fraction": 0.3},
            {"balance_fraction": 1.0},
            {"size_threshold_factor": 0},
            {"num_sampled_pairs": 0},
            {"split_lower_divisor": 2, "split_upper_divisor": 4},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SeparatorParams.practical().with_overrides(**kwargs).validate()


class TestFrameworkConfig:
    def test_defaults_validate(self):
        FrameworkConfig().validate()

    def test_seeded_rng_is_deterministic(self):
        a = FrameworkConfig(seed=3).rng().random()
        b = FrameworkConfig(seed=3).rng().random()
        assert a == b

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FrameworkConfig(initial_width_guess=0).validate()
        with pytest.raises(ValueError):
            FrameworkConfig(leaf_size=0).validate()
