"""Tests for the distributed weighted girth algorithms (Theorem 5)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FrameworkConfig
from repro.girth.baselines import exact_girth_directed, exact_girth_undirected
from repro.girth.girth import compute_girth, directed_girth, undirected_girth
from repro.errors import GraphError
from repro.graphs import generators
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph


class TestDirectedGirth:
    def test_matches_exact_on_random_orientations(self):
        for seed in range(3):
            g = generators.cycle_with_chords(25, 4, seed=seed)
            inst = generators.to_directed_instance(g, orientation="random", weight_range=(1, 6), seed=seed + 1)
            result = directed_girth(inst, config=FrameworkConfig(seed=seed))
            exact = exact_girth_directed(inst)
            if math.isinf(exact):
                assert math.isinf(result.girth)
            else:
                assert abs(result.girth - exact) < 1e-9

    def test_bidirected_instance_detects_two_cycles(self):
        g = generators.partial_k_tree(20, 2, seed=3)
        inst = generators.to_directed_instance(g, orientation="asymmetric", weight_range=(1, 6), seed=4)
        result = directed_girth(inst, config=FrameworkConfig(seed=3))
        assert abs(result.girth - exact_girth_directed(inst)) < 1e-9

    def test_acyclic_graph_infinite(self):
        inst = WeightedDiGraph()
        inst.add_edge(1, 2, weight=1)
        inst.add_edge(2, 3, weight=1)
        result = directed_girth(inst, config=FrameworkConfig(seed=0))
        assert math.isinf(result.girth)

    def test_rounds_positive(self):
        g = generators.cycle_with_chords(20, 3, seed=1)
        inst = generators.to_directed_instance(g, orientation="random", weight_range=(1, 3), seed=2)
        result = directed_girth(inst, config=FrameworkConfig(seed=1))
        assert result.rounds == result.ledger.total() > 0
        assert result.method == "directed"


class TestUndirectedGirth:
    def test_never_undershoots_girth(self):
        g = generators.with_random_weights(generators.cycle_with_chords(18, 3, seed=4), 1, 6, seed=5)
        result = undirected_girth(g, config=FrameworkConfig(seed=6), trials_per_scale=2)
        assert result.girth >= exact_girth_undirected(g) - 1e-9

    def test_exact_with_enough_trials(self):
        g = generators.with_random_weights(generators.cycle_with_chords(16, 3, seed=7), 1, 5, seed=8)
        result = undirected_girth(g, config=FrameworkConfig(seed=9), trials_per_scale=8)
        assert abs(result.girth - exact_girth_undirected(g)) < 1e-9

    def test_unit_weight_even_cycle(self):
        g = generators.cycle_graph(12)
        result = undirected_girth(g, config=FrameworkConfig(seed=2), trials_per_scale=6)
        assert result.girth == 12

    def test_tree_returns_infinity(self):
        g = generators.random_tree(15, seed=3)
        result = undirected_girth(g, config=FrameworkConfig(seed=3), trials_per_scale=2)
        assert math.isinf(result.girth)

    def test_trials_counted_and_rounds_positive(self):
        g = generators.cycle_graph(8)
        result = undirected_girth(g, config=FrameworkConfig(seed=1), trials_per_scale=2, scales=[1, 2])
        assert result.trials == 4
        assert result.rounds > 0

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            undirected_girth(Graph(edges=[(1, 2), (3, 4)]), config=FrameworkConfig(seed=0))


class TestDispatcher:
    def test_symmetric_instance_uses_undirected_algorithm(self):
        g = generators.cycle_graph(10)
        inst = generators.to_directed_instance(g, orientation="both")
        result = compute_girth(inst, config=FrameworkConfig(seed=4), trials_per_scale=4)
        assert result.method == "undirected"
        assert result.girth == 10  # not 2, which the directed reduction would report

    def test_asymmetric_instance_uses_directed_algorithm(self):
        g = generators.cycle_graph(10)
        inst = generators.to_directed_instance(g, orientation="random", seed=5)
        result = compute_girth(inst, config=FrameworkConfig(seed=5))
        assert result.method == "directed"

    def test_explicit_directed_flag_overrides_detection(self):
        g = generators.cycle_graph(6)
        inst = generators.to_directed_instance(g, orientation="both")
        result = compute_girth(inst, directed=True, config=FrameworkConfig(seed=6))
        assert result.method == "directed"
        assert result.girth == 2  # antiparallel pair forms a directed 2-cycle


@given(st.integers(min_value=8, max_value=20), st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=200))
@settings(max_examples=8, deadline=None)
def test_undirected_girth_is_always_an_upper_bound(n, chords, seed):
    """Property (Lemma 6): the randomized estimate never undershoots the true girth."""
    g = generators.with_random_weights(generators.cycle_with_chords(n, chords, seed=seed), 1, 4, seed=seed + 1)
    result = undirected_girth(g, config=FrameworkConfig(seed=seed), trials_per_scale=1, scales=[1, 4])
    assert result.girth >= exact_girth_undirected(g) - 1e-9
