"""Tests for stateful walk constraints (Definition 2, Examples 1-2, alternating walks)."""

import pytest

from repro.errors import ConstraintError
from repro.graphs.digraph import Edge, WeightedDiGraph
from repro.walks.constraints import (
    INITIAL_STATE,
    REJECT_STATE,
    AlternatingWalkConstraint,
    ColoredWalkConstraint,
    CountWalkConstraint,
    is_walk_in_constraint,
    walk_state,
)


def _edge(eid, u, v, label=None):
    return Edge(eid, u, v, 1.0, label)


class TestColoredWalks:
    def setup_method(self):
        self.constraint = ColoredWalkConstraint(["r", "b"])

    def test_state_set_contains_specials(self):
        states = self.constraint.states()
        assert INITIAL_STATE in states and REJECT_STATE in states
        assert self.constraint.state_count() == 4

    def test_alternating_colors_accepted(self):
        walk = [_edge(0, "a", "b", "r"), _edge(1, "b", "c", "b"), _edge(2, "c", "d", "r")]
        assert is_walk_in_constraint(self.constraint, walk)
        assert walk_state(self.constraint, walk) == ("color", "r")

    def test_monochromatic_consecutive_rejected(self):
        walk = [_edge(0, "a", "b", "r"), _edge(1, "b", "c", "r")]
        assert not is_walk_in_constraint(self.constraint, walk)

    def test_empty_walk_has_initial_state(self):
        assert walk_state(self.constraint, []) == INITIAL_STATE

    def test_unknown_color_raises(self):
        with pytest.raises(ConstraintError):
            walk_state(self.constraint, [_edge(0, "a", "b", "green")])

    def test_empty_palette_rejected(self):
        with pytest.raises(ConstraintError):
            ColoredWalkConstraint([])

    def test_reject_state_absorbing(self):
        e = _edge(0, "a", "b", "r")
        assert self.constraint.delta(REJECT_STATE, e) == REJECT_STATE


class TestCountWalks:
    def setup_method(self):
        self.constraint = CountWalkConstraint(2)

    def test_budget_respected(self):
        walk = [_edge(0, "a", "b", 1), _edge(1, "b", "c", 0), _edge(2, "c", "d", 1)]
        assert walk_state(self.constraint, walk) == ("count", 2)
        walk.append(_edge(3, "d", "e", 1))
        assert walk_state(self.constraint, walk) == REJECT_STATE

    def test_none_label_counts_as_zero(self):
        walk = [_edge(0, "a", "b", None), _edge(1, "b", "c", None)]
        assert walk_state(self.constraint, walk) == ("count", 0)

    def test_non_binary_label_rejected(self):
        with pytest.raises(ConstraintError):
            walk_state(self.constraint, [_edge(0, "a", "b", 5)])

    def test_negative_budget_rejected(self):
        with pytest.raises(ConstraintError):
            CountWalkConstraint(-1)

    def test_exact_target_state(self):
        assert CountWalkConstraint(1).exact_target_state() == ("count", 1)

    def test_state_count(self):
        assert self.constraint.state_count() == 2 + 3


class TestAlternatingWalks:
    def setup_method(self):
        self.constraint = AlternatingWalkConstraint([("a", "b"), ("c", "d")])

    def test_augmenting_shape_accepted(self):
        walk = [
            _edge(0, "x", "a"),       # unmatched
            _edge(1, "a", "b"),       # matched
            _edge(2, "b", "y"),       # unmatched
        ]
        assert walk_state(self.constraint, walk) == AlternatingWalkConstraint.UNMATCHED

    def test_first_edge_must_be_unmatched(self):
        walk = [_edge(0, "a", "b")]  # matched edge first
        assert walk_state(self.constraint, walk) == REJECT_STATE

    def test_two_consecutive_unmatched_rejected(self):
        walk = [_edge(0, "x", "y"), _edge(1, "y", "z")]
        assert walk_state(self.constraint, walk) == REJECT_STATE

    def test_matched_set_is_undirected(self):
        walk = [_edge(0, "x", "b"), _edge(1, "b", "a")]  # (b, a) is matched
        assert walk_state(self.constraint, walk) == AlternatingWalkConstraint.MATCHED


class TestValidation:
    def test_validate_on_graph(self):
        g = WeightedDiGraph()
        g.add_edge("a", "b", label="r")
        g.add_edge("b", "c", label="b")
        ColoredWalkConstraint(["r", "b"]).validate(g)

    def test_validate_catches_missing_specials(self):
        class Broken(ColoredWalkConstraint):
            def states(self):
                return [("color", c) for c in self.palette]

        g = WeightedDiGraph()
        g.add_edge("a", "b", label="r")
        with pytest.raises(ConstraintError):
            Broken(["r"]).validate(g)

    def test_validate_catches_state_escape(self):
        class Escaping(CountWalkConstraint):
            def transition(self, state, edge):
                return ("count", 999)

        g = WeightedDiGraph()
        g.add_edge("a", "b", label=0)
        with pytest.raises(ConstraintError):
            Escaping(1).validate(g)
