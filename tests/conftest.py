"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import os
import sys

# Make the package importable even without an installed distribution
# (offline environments may lack the `wheel` package needed for `pip install -e .`).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.congest.faults import Churn, LinkFlap, MassFailure
from repro.congest.scheduler import SlowLinkDelay, UniformDelay, UnitDelay
from repro.core.config import FrameworkConfig
from repro.graphs import generators


class ScheduleFuzzer:
    """Deterministic generator of seeded delay-model schedules for fuzzing.

    Every model is derived from the session ``--seed`` plus a case name and
    a schedule index, so any failing (family, kind, index) triple is
    reproducible from the command line by re-passing the same ``--seed``.
    ``kind`` selects the model family: ``"unit"`` (the bit-for-bit
    calibration schedule), ``"uniform"`` (i.i.d. per-(arc, pulse) integer
    delays) or ``"adversarial"`` (a seeded random subset of directed links
    slowed by an order of magnitude).
    """

    KINDS = ("unit", "uniform", "adversarial")

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)

    def case_seed(self, case: str, index: int = 0) -> int:
        h = 0
        for ch in str(case):
            h = (h * 131 + ord(ch)) % (1 << 31)
        return (self.master_seed * 1_000_003 + h * 257 + index) % (1 << 31)

    def model(self, kind: str, case: str, index: int = 0):
        """One delay model of ``kind`` for test case ``case``, schedule ``index``."""
        seed = self.case_seed(case, index)
        if kind == "unit":
            return UnitDelay()
        if kind == "uniform":
            low = 1 + seed % 2
            return UniformDelay(low, low + 2 + (seed >> 3) % 4, seed=seed)
        if kind == "adversarial":
            return SlowLinkDelay(
                slow_fraction=0.15 + (seed % 5) * 0.15,
                slow_delay=5 + seed % 6,
                seed=seed,
            )
        raise ValueError(f"unknown schedule kind {kind!r}")

    def models(self, kind: str, case: str, count: int):
        """``count`` independently seeded schedules of ``kind`` for ``case``."""
        return [self.model(kind, case, index) for index in range(count)]

    FAULT_KINDS = ("mass_node", "mass_edge", "churn", "flap")

    def fault_model(self, kind: str, case: str, index: int = 0):
        """One seeded fault model of ``kind`` for test case ``case``.

        Same reproducibility contract as :meth:`model`: every schedule is
        derived from ``--seed`` plus the (case, index) pair, so a failing
        sweep entry replays from the command line.  All four families are
        transient — every crashed node/edge recovers — so reconvergence to
        the fault-free oracle is always well-defined.
        """
        seed = self.case_seed(case, index)
        if kind == "mass_node":
            return MassFailure(
                fraction=0.2 + (seed % 3) * 0.1,
                at=4 + seed % 4,
                outage=4 + (seed >> 2) % 5,
                kind="node",
                seed=seed,
            )
        if kind == "mass_edge":
            return MassFailure(
                fraction=0.2 + (seed % 4) * 0.1,
                at=4 + seed % 4,
                outage=4 + (seed >> 2) % 5,
                kind="edge",
                seed=seed,
            )
        if kind == "churn":
            return Churn(
                cycles=3 + seed % 3,
                period=4 + (seed >> 1) % 3,
                outage=2 + seed % 2,
                start=3 + seed % 3,
                seed=seed,
            )
        if kind == "flap":
            period = 6 + seed % 4
            return LinkFlap(
                fraction=0.1 + (seed % 3) * 0.1,
                cycles=2 + seed % 2,
                period=period,
                outage=2 + seed % (period - 3),
                start=3 + seed % 3,
                seed=seed,
            )
        raise ValueError(f"unknown fault-model kind {kind!r}")

    def fault_models(self, kind: str, case: str, count: int):
        """``count`` independently seeded fault schedules of ``kind``."""
        return [self.fault_model(kind, case, index) for index in range(count)]


@pytest.fixture(scope="session")
def schedule_fuzzer(master_seed) -> ScheduleFuzzer:
    """The differential schedule fuzzer, seeded from ``--seed``."""
    return ScheduleFuzzer(master_seed)


@pytest.fixture
def config(master_seed) -> FrameworkConfig:
    """A deterministic framework configuration."""
    return FrameworkConfig(seed=master_seed)


@pytest.fixture
def small_partial_k_tree():
    """A small connected partial 3-tree used by many tests."""
    return generators.partial_k_tree(40, 3, seed=7)


@pytest.fixture
def small_grid():
    """A 5×8 grid (bipartite, treewidth 5)."""
    return generators.grid_graph(5, 8)


@pytest.fixture
def weighted_instance(small_partial_k_tree):
    """A weighted directed instance over the small partial k-tree."""
    return generators.to_directed_instance(
        small_partial_k_tree, weight_range=(1, 9), orientation="asymmetric", seed=11
    )
