"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import os
import sys

# Make the package importable even without an installed distribution
# (offline environments may lack the `wheel` package needed for `pip install -e .`).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.core.config import FrameworkConfig
from repro.graphs import generators


@pytest.fixture
def config(master_seed) -> FrameworkConfig:
    """A deterministic framework configuration."""
    return FrameworkConfig(seed=master_seed)


@pytest.fixture
def small_partial_k_tree():
    """A small connected partial 3-tree used by many tests."""
    return generators.partial_k_tree(40, 3, seed=7)


@pytest.fixture
def small_grid():
    """A 5×8 grid (bipartite, treewidth 5)."""
    return generators.grid_graph(5, 8)


@pytest.fixture
def weighted_instance(small_partial_k_tree):
    """A weighted directed instance over the small partial k-tree."""
    return generators.to_directed_instance(
        small_partial_k_tree, weight_range=(1, 9), orientation="asymmetric", seed=11
    )
