"""Tests for single-source shortest paths via distance labeling (experiment E4 companion)."""

import math

import pytest

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.core.config import FrameworkConfig
from repro.core.rounds import CostModel
from repro.errors import LabelingError
from repro.graphs import generators, properties
from repro.labeling.construction import build_distance_labeling
from repro.labeling.sssp import single_source_shortest_paths


@pytest.fixture
def labeled_instance(config):
    g = generators.partial_k_tree(45, 3, seed=21)
    inst = generators.to_directed_instance(g, weight_range=(1, 9), orientation="asymmetric", seed=22)
    result = build_distance_labeling(inst, config=config)
    return inst, result


class TestSSSPCorrectness:
    def test_distances_match_dijkstra(self, labeled_instance):
        inst, labeling_result = labeled_instance
        source = inst.nodes()[0]
        sssp = single_source_shortest_paths(labeling_result.labeling, source)
        expected = properties.dijkstra(inst, source)
        for v in inst.nodes():
            want = expected.get(v, math.inf)
            got = sssp.distances[v]
            assert (math.isinf(got) and math.isinf(want)) or abs(got - want) < 1e-9

    def test_reverse_distances_match_reverse_dijkstra(self, labeled_instance):
        inst, labeling_result = labeled_instance
        source = inst.nodes()[0]
        sssp = single_source_shortest_paths(labeling_result.labeling, source)
        reverse = properties.dijkstra(inst.reverse(), source)
        for v in inst.nodes():
            want = reverse.get(v, math.inf)
            got = sssp.distances_to_source[v]
            assert (math.isinf(got) and math.isinf(want)) or abs(got - want) < 1e-9

    def test_matches_distributed_bellman_ford(self, labeled_instance):
        inst, labeling_result = labeled_instance
        source = inst.nodes()[0]
        sssp = single_source_shortest_paths(labeling_result.labeling, source)
        bf = distributed_bellman_ford(inst, source)
        for v in inst.nodes():
            a, b = sssp.distances[v], bf.distances[v]
            assert (math.isinf(a) and math.isinf(b)) or abs(a - b) < 1e-9

    def test_unknown_source_raises(self, labeled_instance):
        _, labeling_result = labeled_instance
        with pytest.raises(LabelingError):
            single_source_shortest_paths(labeling_result.labeling, "nope")


class TestSSSPRounds:
    def test_rounds_accounted_with_cost_model(self, labeled_instance):
        inst, labeling_result = labeled_instance
        comm = inst.underlying_graph()
        cm = CostModel(n=comm.num_nodes(), diameter=properties.diameter(comm))
        source = inst.nodes()[0]
        sssp = single_source_shortest_paths(
            labeling_result.labeling, source, cost_model=cm, labeling_result=labeling_result
        )
        assert sssp.rounds > 0
        assert sssp.total_rounds == sssp.rounds + labeling_result.rounds

    def test_framework_rounds_essentially_independent_of_n(self):
        """The headline claim: for fixed τ and D-ish structure, rounds grow polylog in n
        while the Bellman-Ford baseline grows linearly on path-like instances."""
        rounds = []
        bf_rounds = []
        for n in (60, 240):
            g = generators.partial_k_tree(n, 3, seed=n)
            inst = generators.to_directed_instance(g, weight_range=(1, 5), orientation="both", seed=n + 1)
            cm = CostModel(n=n, diameter=properties.diameter(g))
            labeling = build_distance_labeling(inst, config=FrameworkConfig(seed=1), cost_model=cm)
            sssp = single_source_shortest_paths(labeling.labeling, inst.nodes()[0], cost_model=cm, labeling_result=labeling)
            rounds.append(sssp.total_rounds)
            bf_rounds.append(distributed_bellman_ford(inst, inst.nodes()[0]).rounds)
        # Quadrupling n: framework rounds grow by far less than 4×
        # (they depend on τ, D and log n only).
        assert rounds[1] < 4 * rounds[0]
