"""Unit tests for the weighted directed multigraph structure."""

import pytest

from repro.errors import GraphError
from repro.graphs.digraph import Edge, WeightedDiGraph
from repro.graphs.graph import Graph
from repro.graphs import generators


class TestEdges:
    def test_add_edge_returns_distinct_ids(self):
        g = WeightedDiGraph()
        e1 = g.add_edge("a", "b", weight=2)
        e2 = g.add_edge("a", "b", weight=3)
        assert e1 != e2
        assert g.num_edges() == 2
        assert g.max_multiplicity() == 2

    def test_negative_weight_rejected(self):
        g = WeightedDiGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, weight=-1)

    def test_duplicate_edge_id_rejected(self):
        g = WeightedDiGraph()
        g.add_edge(1, 2, eid=5)
        with pytest.raises(GraphError):
            g.add_edge(2, 3, eid=5)

    def test_remove_edge(self):
        g = WeightedDiGraph()
        eid = g.add_edge(1, 2)
        g.remove_edge(eid)
        assert g.num_edges() == 0
        with pytest.raises(GraphError):
            g.remove_edge(eid)

    def test_set_label(self):
        g = WeightedDiGraph()
        eid = g.add_edge(1, 2, label="red")
        g.set_label(eid, "blue")
        assert g.edge(eid).label == "blue"
        assert g.edge(eid).weight == 1.0

    def test_edge_relabeled_preserves_identity(self):
        e = Edge(3, "u", "v", 2.5, "x")
        e2 = e.relabeled("y")
        assert e2.eid == 3 and e2.weight == 2.5 and e2.label == "y"
        assert e.label == "x"

    def test_add_undirected_edge_creates_pair(self):
        g = WeightedDiGraph()
        e1, e2 = g.add_undirected_edge(1, 2, weight=4)
        assert g.edge(e1).endpoints() == (1, 2)
        assert g.edge(e2).endpoints() == (2, 1)
        assert g.edge(e1).weight == g.edge(e2).weight == 4


class TestQueries:
    def test_out_in_edges_and_degrees(self):
        g = WeightedDiGraph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        g.add_edge(3, 1)
        assert g.out_degree(1) == 2
        assert g.in_degree(1) == 1
        assert g.successors(1) == {2, 3}
        assert g.predecessors(1) == {3}

    def test_missing_node_queries_raise(self):
        g = WeightedDiGraph()
        with pytest.raises(GraphError):
            g.out_edges("nope")
        with pytest.raises(GraphError):
            g.edge(99)

    def test_total_weight(self):
        g = WeightedDiGraph()
        g.add_edge(1, 2, weight=2)
        g.add_edge(2, 3, weight=3)
        assert g.total_weight() == 5


class TestDerivedGraphs:
    def test_reverse_swaps_endpoints(self):
        g = WeightedDiGraph()
        g.add_edge("a", "b", weight=2, label="L")
        r = g.reverse()
        e = r.edges()[0]
        assert e.tail == "b" and e.head == "a" and e.weight == 2 and e.label == "L"

    def test_subgraph_preserves_edge_ids(self):
        g = WeightedDiGraph()
        kept = g.add_edge(1, 2)
        g.add_edge(2, 3)
        sub = g.subgraph([1, 2])
        assert sub.num_edges() == 1
        assert sub.edge(kept).endpoints() == (1, 2)

    def test_underlying_graph_drops_direction_weight_multiplicity(self):
        g = WeightedDiGraph()
        g.add_edge(1, 2, weight=5)
        g.add_edge(2, 1, weight=7)
        g.add_edge(1, 2, weight=9)
        g.add_edge(3, 3)  # self loop dropped
        u = g.underlying_graph()
        assert u.num_edges() == 1
        assert u.has_edge(1, 2)
        assert u.has_node(3)

    def test_underlying_weighted_graph_keeps_min_weight(self):
        g = WeightedDiGraph()
        g.add_edge(1, 2, weight=5)
        g.add_edge(2, 1, weight=3)
        u = g.underlying_weighted_graph()
        assert u.weight(1, 2) == 3

    def test_from_undirected_round_trip(self):
        base = generators.with_random_weights(generators.cycle_graph(6), 1, 5, seed=1)
        inst = WeightedDiGraph.from_undirected(base)
        assert inst.num_edges() == 2 * base.num_edges()
        assert set(inst.underlying_graph().edges()) == set(base.edges())

    def test_from_edge_list_directed_and_undirected(self):
        directed = WeightedDiGraph.from_edge_list([(1, 2, 3.0), (2, 3)])
        assert directed.num_edges() == 2
        undirected = WeightedDiGraph.from_edge_list([(1, 2)], directed=False)
        assert undirected.num_edges() == 2

    def test_copy_is_independent(self):
        g = WeightedDiGraph()
        g.add_edge(1, 2)
        h = g.copy()
        h.add_edge(2, 3)
        assert g.num_edges() == 1
        assert h.num_edges() == 2
