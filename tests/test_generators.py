"""Tests for the synthetic low-treewidth graph generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graphs import generators
from repro.graphs.treewidth import treewidth_upper_bound


class TestElementaryFamilies:
    def test_path_cycle_complete_star_sizes(self):
        assert generators.path_graph(5).num_edges() == 4
        assert generators.cycle_graph(5).num_edges() == 5
        assert generators.complete_graph(5).num_edges() == 10
        assert generators.star_graph(5).num_edges() == 4

    def test_invalid_sizes_raise(self):
        with pytest.raises(GraphError):
            generators.path_graph(0)
        with pytest.raises(GraphError):
            generators.cycle_graph(2)
        with pytest.raises(GraphError):
            generators.k_tree(3, 4, seed=0)

    def test_caterpillar_diameter_controlled(self):
        g = generators.caterpillar_graph(10, legs_per_node=2)
        assert g.num_nodes() == 10 + 20
        assert g.is_connected()
        # Tree => treewidth 1.
        assert treewidth_upper_bound(g) == 1


class TestKTreeFamilies:
    def test_k_tree_width_is_exactly_k(self):
        for k in (1, 2, 3):
            g = generators.k_tree(25, k, seed=k)
            assert treewidth_upper_bound(g) == k
            assert g.is_connected()

    def test_k_tree_edge_count(self):
        # A k-tree on n nodes has k(k+1)/2 + (n-k-1)k edges.
        n, k = 30, 3
        g = generators.k_tree(n, k, seed=1)
        assert g.num_edges() == k * (k + 1) // 2 + (n - k - 1) * k

    def test_partial_k_tree_connected_and_width_bounded(self):
        g = generators.partial_k_tree(60, 4, edge_keep_prob=0.4, seed=5)
        assert g.is_connected()
        assert treewidth_upper_bound(g) <= 4

    def test_partial_k_tree_bad_prob_raises(self):
        with pytest.raises(GraphError):
            generators.partial_k_tree(20, 2, edge_keep_prob=1.5)

    def test_partial_k_tree_deterministic_for_seed(self):
        a = generators.partial_k_tree(40, 3, seed=9)
        b = generators.partial_k_tree(40, 3, seed=9)
        assert set(a.edges()) == set(b.edges())


class TestOtherFamilies:
    def test_series_parallel_width_at_most_two(self):
        g = generators.series_parallel_graph(50, seed=2)
        assert g.is_connected()
        assert treewidth_upper_bound(g) <= 2

    def test_cycle_with_chords_width_bound(self):
        g = generators.cycle_with_chords(40, 3, seed=1)
        assert g.is_connected()
        assert treewidth_upper_bound(g) <= 3 + 2

    def test_grid_treewidth_equals_min_dimension(self):
        g = generators.grid_graph(4, 9)
        assert treewidth_upper_bound(g) >= 4
        assert g.is_bipartite()

    def test_grid_with_diagonal_not_bipartite(self):
        g = generators.grid_graph(3, 3, diagonal=True)
        assert not g.is_bipartite()

    def test_cylinder_graph_connected(self):
        g = generators.cylinder_graph(3, 6)
        assert g.is_connected()
        assert g.num_edges() > generators.grid_graph(3, 6).num_edges()


class TestBipartiteFamilies:
    def test_subdivided_graph_is_bipartite_and_preserves_connectivity(self):
        base = generators.partial_k_tree(20, 3, seed=4)
        sub = generators.subdivided_graph(base)
        assert sub.is_bipartite()
        assert sub.is_connected()
        assert sub.num_nodes() == base.num_nodes() + base.num_edges()

    def test_bipartite_double_cover(self):
        base = generators.cycle_graph(5)  # odd cycle, not bipartite
        cover = generators.bipartite_double_cover(base)
        assert cover.is_bipartite()
        assert cover.num_nodes() == 2 * base.num_nodes()
        assert cover.num_edges() == 2 * base.num_edges()

    def test_banded_bipartite_is_bipartite(self):
        g = generators.random_banded_bipartite(15, 20, band=2, seed=3)
        assert g.is_bipartite()
        for u in g.nodes():
            assert u[0] in ("L", "R")


class TestWeightsAndOrientation:
    def test_with_random_weights_in_range(self):
        g = generators.with_random_weights(generators.cycle_graph(10), 2, 6, seed=1)
        for _, _, w in g.weighted_edges():
            assert 2 <= w <= 6

    def test_with_random_weights_invalid_range(self):
        with pytest.raises(GraphError):
            generators.with_random_weights(generators.cycle_graph(4), 5, 2)

    def test_to_directed_instance_both_orientation(self):
        g = generators.cycle_graph(6)
        inst = generators.to_directed_instance(g, orientation="both")
        assert inst.num_edges() == 2 * g.num_edges()

    def test_to_directed_instance_random_orientation(self):
        g = generators.cycle_graph(6)
        inst = generators.to_directed_instance(g, orientation="random", seed=1)
        assert inst.num_edges() == g.num_edges()

    def test_to_directed_instance_unknown_orientation(self):
        with pytest.raises(GraphError):
            generators.to_directed_instance(generators.cycle_graph(4), orientation="bogus")

    def test_relabel_to_integers(self):
        g = generators.grid_graph(2, 3)
        relabeled, mapping = generators.relabel_to_integers(g)
        assert set(relabeled.nodes()) == set(range(6))
        assert relabeled.num_edges() == g.num_edges()
        assert len(mapping) == 6


@given(
    st.integers(min_value=5, max_value=40),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=25, deadline=None)
def test_partial_k_tree_properties(n, k, seed):
    """Property: partial k-trees are connected with treewidth ≤ k."""
    if n < k + 1:
        n = k + 1
    g = generators.partial_k_tree(n, k, seed=seed)
    assert g.num_nodes() == n
    assert g.is_connected()
    assert treewidth_upper_bound(g) <= k
