"""The optional compiled backend (:mod:`repro._accel`).

Covers the backend-selection contract on the fallback side (these tests run
everywhere, with or without numba): unknown names are rejected, ``"auto"``
silently serves python when numba is absent, an explicit ``accel="numba"``
request without numba emits exactly one
:class:`~repro.congest.engine.EngineFallbackWarning` naming both the
requested and the selected backend, and ``accel="python"`` is bit-for-bit
the default path end to end.  The ``accel``-marked class at the bottom
needs numba installed (CI's numba leg runs it with ``-m accel``) and
asserts the compiled ops are bit-for-bit twins of the python ops.
"""

from __future__ import annotations

import warnings

import pytest

from repro import _accel
from repro._accel import (
    BACKENDS,
    accel_fallback_message,
    numba_available,
    select_backend,
)
from repro.congest.engine import EngineFallbackWarning
from repro.congest.kernels import vectorized_available
from repro.congest.network import CongestNetwork
from repro.errors import SimulationError
from repro.graphs import generators

needs_numpy = pytest.mark.skipif(
    not vectorized_available(), reason="numpy unavailable"
)
needs_no_numba = pytest.mark.skipif(
    numba_available(), reason="numba installed: the fallback path never fires"
)


@pytest.fixture(autouse=True)
def _fresh_backend_state():
    """Each test starts from the default request with the warning re-armed."""
    _accel._reset_for_tests()
    yield
    _accel._reset_for_tests()


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown accel backend"):
            select_backend("cuda")

    def test_unknown_backend_rejected_from_run(self):
        net = CongestNetwork(generators.path_graph(4))
        from repro.congest.node import BroadcastAll

        with pytest.raises(SimulationError, match="unknown accel backend"):
            net.run(lambda u: BroadcastAll(value=u), engine="fast", accel="cuda")

    def test_default_is_auto(self):
        assert select_backend(None) in ("python", "numba")
        assert _accel._requested == "auto"

    def test_python_request_always_served(self):
        assert select_backend("python") == "python"
        assert _accel.active_backend() == "python"

    @needs_no_numba
    def test_auto_without_numba_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert select_backend("auto") == "python"
            assert _accel.active_backend() == "python"

    @needs_no_numba
    def test_numba_request_warns_with_exact_message(self):
        expected = accel_fallback_message(
            "numba", "python", "numba is not importable"
        )
        assert "accel='numba'" in expected and "accel='python'" in expected
        with pytest.warns(EngineFallbackWarning) as caught:
            assert select_backend("numba") == "python"
        assert [str(w.message) for w in caught] == [expected]

    @needs_no_numba
    def test_numba_fallback_warning_is_one_shot(self):
        with pytest.warns(EngineFallbackWarning):
            select_backend("numba")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert select_backend("numba") == "python"
            assert _accel.op is not None  # state intact, ops still served
        _accel._reset_for_tests()  # re-arming brings the warning back
        with pytest.warns(EngineFallbackWarning):
            select_backend("numba")

    @needs_no_numba
    def test_numba_request_warns_through_network_run(self):
        net = CongestNetwork(generators.grid_graph(3, 3))
        from repro.congest.node import BroadcastAll

        with pytest.warns(EngineFallbackWarning, match="accel='numba'"):
            ref = net.run(lambda u: BroadcastAll(value=u), engine="fast",
                          accel="numba")
        assert ref.rounds >= 1


@needs_numpy
class TestPythonOpsReference:
    """The python ops compute the exact expressions the call sites inlined
    before this module existed."""

    def test_bf_segmented_min_parent(self):
        import numpy as np

        op = _accel.op("bf_segmented_min_parent")
        vals = np.array([5.0, 2.0, 2.0, 7.0, 1.0, 3.0, 3.0])
        starts = np.array([0, 3, 4])
        senders = np.array([9, 4, 2, 8, 5, 3, 1])
        seg_min, seg_parent = op(vals, starts, senders, np.int64(10**6))
        assert seg_min.tolist() == [2.0, 7.0, 1.0]
        # Among positions attaining the min, the smallest sender wins.
        assert seg_parent.tolist() == [2, 8, 5]

    def test_deliver_order(self):
        import numpy as np

        op = _accel.op("deliver_order")
        rev = np.array([3, 2, 5, 0, 4, 1])
        indices = np.array([10, 11, 12, 13, 14, 15])
        pending = np.array([2, 0, 3])
        arcs, senders, perm = op(rev, indices, pending)
        assert arcs.tolist() == [0, 3, 5]
        assert senders.tolist() == [10, 13, 15]
        assert perm.tolist() == [3, 0, 2]

    def test_boundary_hits(self):
        import numpy as np

        op = _accel.op("boundary_hits")
        mask = np.array([True, False, True, False])
        src_idx = np.array([0, 1, 2, 3, 0])
        slots_tab = np.array([4, 5, 6, 7, 8])
        val_idx_tab = np.array([0, 1, 2, 3, 4])
        hitbuf = np.zeros(10, dtype=bool)
        slots, val_idx = op(mask, src_idx, slots_tab, val_idx_tab, hitbuf)
        assert slots.tolist() == [4, 6, 8]
        assert val_idx.tolist() == [0, 2, 4]
        assert np.flatnonzero(hitbuf).tolist() == [4, 6, 8]

    def test_label_query_batch(self):
        import numpy as np

        inf = float("inf")
        op = _accel.op("label_query_batch")
        # Three labels over hub table {0, 1, 2}:
        #   vertex 0: hubs {0, 1}  to (1, 5)   from (2, 1)
        #   vertex 1: hubs {1, 2}  to (3, inf) from (4, 7)
        #   vertex 2: hubs {}      (empty label)
        offsets = np.array([0, 2, 4, 4], dtype=np.int64)
        hubs = np.array([0, 1, 1, 2], dtype=np.int64)
        to_hub = np.array([1.0, 5.0, 3.0, inf], dtype=np.float64)
        from_hub = np.array([2.0, 1.0, 4.0, 7.0], dtype=np.float64)
        u_idx = np.array([0, 1, 0, 2, 1], dtype=np.int64)
        v_idx = np.array([1, 0, 0, 1, 2], dtype=np.int64)
        out = op(offsets, hubs, to_hub, from_hub, u_idx, v_idx)
        # (0→1): only shared hub 1, 5 + 4 = 9.  (1→0): hub 1, 3 + 1 = 4.
        # (0→0): identity 0.  (2→1): no shared hub → inf.  (1→2): empty → inf.
        assert out.tolist() == [9.0, 4.0, 0.0, inf, inf]


@needs_numpy
class TestPythonBackendEndToEnd:
    def test_accel_python_bit_for_bit(self, master_seed):
        from repro.congest.bellman_ford import distributed_bellman_ford

        graph = generators.grid_graph(5, 5, diagonal=True)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation="asymmetric",
            seed=master_seed,
        )
        source = min(instance.nodes(), key=str)
        ref = distributed_bellman_ford(instance, source, engine="vectorized")
        run = distributed_bellman_ford(
            instance, source, engine="vectorized", accel="python"
        )
        assert run.distances == ref.distances
        assert run.parents == ref.parents
        assert run.simulation.rounds == ref.simulation.rounds
        assert run.simulation.words_sent == ref.simulation.words_sent


@needs_numpy
class TestPackedQueryFallback:
    """The packed query kernel honours the one-shot fallback contract."""

    def _packed(self, master_seed):
        from repro.labeling.packed import PackedLabeling
        from test_engine_equivalence import _pseudo_labeling

        import random

        graph = generators.grid_graph(4, 4)
        labeling = _pseudo_labeling(graph, random.Random(master_seed))
        packed = PackedLabeling.from_labeling(labeling)
        vertices = list(packed.vertices())
        us = [vertices[i % len(vertices)] for i in range(12)]
        vs = [vertices[(5 * i) % len(vertices)] for i in range(12)]
        return packed, us, vs

    @needs_no_numba
    def test_numba_request_falls_back_once_with_exact_message(
        self, master_seed
    ):
        packed, us, vs = self._packed(master_seed)
        expected = accel_fallback_message(
            "numba", "python", "numba is not importable"
        )
        with pytest.warns(EngineFallbackWarning) as caught:
            first = packed.query(us, vs, accel="numba")
        assert [str(w.message) for w in caught] == [expected]
        # Second query through the same fallback: served, silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = packed.query(us, vs, accel="numba")
        assert list(again) == list(first) == packed.query(us, vs).tolist()
        # Re-arming brings the warning back exactly once.
        _accel._reset_for_tests()
        with pytest.warns(EngineFallbackWarning) as caught:
            packed.query(us, vs, accel="numba")
        assert [str(w.message) for w in caught] == [expected]

    @needs_no_numba
    def test_small_batches_also_trigger_the_one_shot_warning(
        self, master_seed
    ):
        """The adaptive scalar path still honours the selection contract:
        the backend is selected (and the fallback warned) before the
        batch-size cutover decides how to serve."""
        packed, us, vs = self._packed(master_seed)
        with pytest.warns(EngineFallbackWarning):
            small = packed.query(us[:2], vs[:2], accel="numba")
        assert list(small) == [packed.distance(u, v) for u, v in zip(us[:2], vs[:2])]

    def test_python_request_is_bit_for_bit_auto(self, master_seed):
        packed, us, vs = self._packed(master_seed)
        auto = packed.query(us, vs)
        explicit = packed.query(us, vs, accel="python")
        assert list(auto) == list(explicit)


@pytest.mark.accel
@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestNumbaBackend:
    """Bit-for-bit parity of the compiled ops (CI numba leg, ``-m accel``)."""

    def test_ops_match_python_backend(self, master_seed):
        import numpy as np

        rng = np.random.default_rng(master_seed)
        python_ops = _accel._build_python_ops()
        numba_ops = _accel._build_numba_ops()
        for trial in range(25):
            m = int(rng.integers(1, 12))
            counts = rng.integers(1, 6, size=m)
            total = int(counts.sum())
            starts = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.int64)
            vals = rng.choice([1.0, 2.0, 4.0, 8.0], size=total)
            senders = rng.permutation(total).astype(np.int64)
            a = python_ops["bf_segmented_min_parent"](vals, starts, senders, np.int64(1 << 40))
            b = numba_ops["bf_segmented_min_parent"](vals, starts, senders, np.int64(1 << 40))
            assert a[0].tolist() == b[0].tolist(), trial
            assert a[1].tolist() == b[1].tolist(), trial

            n_arcs = total + int(rng.integers(0, 5))
            rev = rng.permutation(n_arcs).astype(np.int64)
            indices = rng.integers(0, 50, size=n_arcs).astype(np.int64)
            pending = rng.choice(n_arcs, size=int(rng.integers(1, n_arcs + 1)),
                                 replace=False).astype(np.int64)
            a = python_ops["deliver_order"](rev, indices, pending)
            b = numba_ops["deliver_order"](rev, indices, pending)
            for x, y in zip(a, b):
                assert x.tolist() == y.tolist(), trial

            k = int(rng.integers(1, 20))
            mask = rng.random(8) < 0.5
            src_idx = rng.integers(0, 8, size=k).astype(np.int64)
            slots_tab = rng.permutation(k).astype(np.int64)
            val_idx_tab = np.arange(k, dtype=np.int64)
            hb_a = np.zeros(k, dtype=bool)
            hb_b = np.zeros(k, dtype=bool)
            a = python_ops["boundary_hits"](mask, src_idx, slots_tab, val_idx_tab, hb_a)
            b = numba_ops["boundary_hits"](mask, src_idx, slots_tab, val_idx_tab, hb_b)
            assert a[0].tolist() == b[0].tolist(), trial
            assert a[1].tolist() == b[1].tolist(), trial
            assert hb_a.tolist() == hb_b.tolist(), trial

    def test_label_query_batch_matches_python_backend(self, master_seed):
        import numpy as np

        rng = np.random.default_rng(master_seed)
        python_op = _accel._build_python_ops()["label_query_batch"]
        numba_op = _accel._build_numba_ops()["label_query_batch"]
        inf = np.inf
        for trial in range(25):
            n = int(rng.integers(1, 10))
            table = n + int(rng.integers(0, 4))
            counts = rng.integers(0, 7, size=n)
            offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            hubs = np.concatenate(
                [
                    np.sort(rng.choice(table, size=c, replace=False))
                    for c in counts
                ]
                or [np.empty(0)]
            ).astype(np.int64)
            total = int(counts.sum())
            to_hub = rng.choice([0.0, 1.0, 3.0, 9.0, inf], size=total)
            from_hub = rng.choice([0.0, 2.0, 5.0, 8.0, inf], size=total)
            pairs = int(rng.integers(1, 30))
            u_idx = rng.integers(0, n, size=pairs).astype(np.int64)
            v_idx = rng.integers(0, n, size=pairs).astype(np.int64)
            a = python_op(offsets, hubs, to_hub, from_hub, u_idx, v_idx)
            b = numba_op(offsets, hubs, to_hub, from_hub, u_idx, v_idx)
            assert a.tolist() == b.tolist(), trial

    def test_bellman_ford_numba_bit_for_bit(self, master_seed):
        from repro.congest.bellman_ford import distributed_bellman_ford

        graph = generators.grid_graph(6, 6, diagonal=True)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation="asymmetric",
            seed=master_seed,
        )
        source = min(instance.nodes(), key=str)
        ref = distributed_bellman_ford(
            instance, source, engine="vectorized", accel="python"
        )
        run = distributed_bellman_ford(
            instance, source, engine="vectorized", accel="numba"
        )
        assert run.distances == ref.distances
        assert run.parents == ref.parents
        assert run.simulation.rounds == ref.simulation.rounds
        assert run.simulation.words_sent == ref.simulation.words_sent
        assert run.simulation.messages_sent == ref.simulation.messages_sent
