"""Tests for alternating-walk augmenting path search."""

import pytest

from repro.errors import GraphError
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.matching.augmenting import (
    augment_along_path,
    find_augmenting_path,
    matched_vertices,
    verify_matching,
)
from repro.matching.hopcroft_karp import hopcroft_karp_matching


class TestHelpers:
    def test_matched_vertices(self):
        m = {frozenset({1, 2}), frozenset({3, 4})}
        assert matched_vertices(m) == {1, 2, 3, 4}

    def test_verify_matching_accepts_valid(self):
        g = generators.path_graph(6)
        assert verify_matching(g, {frozenset({0, 1}), frozenset({2, 3})})

    def test_verify_matching_rejects_shared_vertex(self):
        g = generators.path_graph(4)
        assert not verify_matching(g, {frozenset({0, 1}), frozenset({1, 2})})

    def test_verify_matching_rejects_non_edges(self):
        g = generators.path_graph(4)
        assert not verify_matching(g, {frozenset({0, 3})})

    def test_augment_along_path_flips_edges(self):
        matching = {frozenset({1, 2})}
        path = [0, 1, 2, 3]  # augmenting path: (0,1) unmatched, (1,2) matched, (2,3) unmatched
        new = augment_along_path(matching, path)
        assert new == {frozenset({0, 1}), frozenset({2, 3})}

    def test_augment_even_length_path_rejected(self):
        with pytest.raises(GraphError):
            augment_along_path(set(), [0, 1, 2])


class TestAugmentingSearch:
    def test_finds_path_on_even_path_graph(self):
        g = generators.path_graph(4)
        matching = {frozenset({1, 2})}
        path = find_augmenting_path(g, matching, 0)
        assert path == [0, 1, 2, 3]

    def test_no_path_when_matching_is_maximum(self):
        g = generators.star_graph(5)
        matching = {frozenset({0, 1})}
        assert find_augmenting_path(g, matching, 2) is None

    def test_matched_source_rejected(self):
        g = generators.path_graph(4)
        with pytest.raises(GraphError):
            find_augmenting_path(g, {frozenset({0, 1})}, 0)

    def test_source_outside_allowed_rejected(self):
        g = generators.path_graph(4)
        with pytest.raises(GraphError):
            find_augmenting_path(g, set(), 0, allowed={1, 2, 3})

    def test_allowed_restriction_blocks_paths(self):
        g = generators.path_graph(6)
        matching = {frozenset({1, 2}), frozenset({3, 4})}
        # Full graph: augmenting path 0..5 exists.
        assert find_augmenting_path(g, matching, 0) is not None
        # Restricting to the first half removes the free endpoint 5.
        restricted = find_augmenting_path(
            g, {frozenset({1, 2})}, 0, allowed={0, 1, 2, 3}
        )
        assert restricted == [0, 1, 2, 3]

    def test_repeated_augmentation_reaches_maximum(self):
        g = generators.grid_graph(3, 4)
        matching = set()
        free = sorted(g.nodes(), key=str)
        progress = True
        while progress:
            progress = False
            for v in free:
                if v in matched_vertices(matching):
                    continue
                path = find_augmenting_path(g, matching, v)
                if path is not None:
                    matching = augment_along_path(matching, path)
                    assert verify_matching(g, matching)
                    progress = True
        assert len(matching) == len(hopcroft_karp_matching(g))
