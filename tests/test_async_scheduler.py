"""Differential schedule-fuzz harness for the asynchronous engine tier.

The async tier's defining invariant (``src/repro/congest/scheduler.py``):

* under :class:`UnitDelay` the whole run — results, message/word/bandwidth
  ledger, round traces — is **bit-for-bit identical** to the four
  synchronous tiers (legacy, fast, vectorized, sharded), asserted here on
  the same ~30 seeded graph families as ``test_engine_equivalence.py``;
* under *any* seeded delay model, protocol outputs (distances, parents,
  labels, leaders) and the full message ledger are **schedule-invariant**,
  asserted across multiple independently seeded schedules per family via
  the :class:`ScheduleFuzzer` fixture (``conftest.py``), whose seeds all
  derive from the session ``--seed``.

The heavy multi-seed sweeps are marked ``fuzz`` (deselected by default; CI
runs them in a dedicated step via ``-m fuzz``); a small-seed subset runs in
the default job.  The module also regression-tests the async→fast fallback
ladder and the :class:`EngineFallbackWarning` message contract (both the
requested and the selected tier must be named).
"""

from __future__ import annotations

import random
import warnings

import pytest

from test_engine_equivalence import FAMILIES, _assert_identical, _pseudo_labeling

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.congest.engine import (
    EngineFallbackWarning,
    ShardPool,
    SimulationTrace,
    sharded_available,
)
from repro.congest.kernels import vectorized_available
from repro.congest.network import CongestNetwork
from repro.congest.node import BroadcastAll, NodeAlgorithm
from repro.congest.primitives import (
    FloodBroadcastNode,
    broadcast,
    build_bfs_tree,
    elect_leader,
    flood_chunks,
)
from repro.congest.scheduler import (
    DelayModel,
    EventRecord,
    PerArcDelay,
    SlowLinkDelay,
    UniformDelay,
    UnitDelay,
)
from repro.errors import (
    BandwidthExceededError,
    ConvergenceError,
    GraphError,
    SimulationError,
)
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.labeling.sssp import measured_label_broadcast

#: Families exercised by the default-job schedule-invariance subset (the
#: ``fuzz``-marked sweep covers every family).
SMALL_SWEEP = (
    "path_12",
    "cycle_9",
    "star_15",
    "grid_4x5",
    "random_tree_0",
    "partial_k_tree_1",
    "series_parallel_0",
    "glued_0",
)

needs_sharded = pytest.mark.skipif(
    not sharded_available(), reason="numpy/shared-memory unavailable"
)


def _deterministic_stats(simulation):
    """``async_stats`` minus its single wall-clock entry (``events_per_sec``
    measures this run's throughput and is never reproducible)."""
    stats = dict(simulation.async_stats)
    stats.pop("events_per_sec", None)
    return stats


class ZeroDelayModel(DelayModel):
    """A contract-violating model (module-level so it stays picklable)."""

    def delay(self, arc, pulse):
        return 0


class BoolDelayModel(DelayModel):
    """Another contract violation: bool is not an accepted delay type."""

    def delay(self, arc, pulse):
        return True


class NumpyIntDelay(DelayModel):
    """Delays as numpy integers — any integral type must be accepted."""

    def delay(self, arc, pulse):
        import numpy as np

        return np.int64(1 + (arc + pulse) % 3)


@pytest.fixture(params=[name for name, _ in FAMILIES])
def family_graph(request, master_seed):
    name = request.param
    builder = dict(FAMILIES)[name]
    graph = builder(master_seed + len(name))
    assert graph.num_nodes() > 0
    return graph


@pytest.fixture(params=SMALL_SWEEP)
def sweep_graph(request, master_seed):
    builder = dict(FAMILIES)[request.param]
    return builder(master_seed + len(request.param))


@pytest.fixture(scope="module")
def shard_pool():
    """One persistent 2-shard pool for the whole module's sharded runs."""
    if not sharded_available():
        yield None
        return
    with ShardPool(num_shards=2) as pool:
        yield pool


def _bf_instance(graph, master_seed):
    return generators.to_directed_instance(
        graph, weight_range=(1, 9), orientation="asymmetric", seed=master_seed
    )


# --------------------------------------------------------------------------- #
# Unit-delay: bit-for-bit against all four synchronous tiers
# --------------------------------------------------------------------------- #
class TestUnitDelayEquivalence:
    """``engine="async"`` + :class:`UnitDelay` ≡ legacy ≡ fast ≡ vectorized ≡
    sharded: results, ledger and round traces, on every equivalence family."""

    def test_bellman_ford_five_tiers(self, family_graph, master_seed, shard_pool):
        instance = _bf_instance(family_graph, master_seed)
        source = min(family_graph.nodes(), key=str)
        engines = ["fast", "legacy"]
        if vectorized_available():
            engines.append("vectorized")
        traces = {e: SimulationTrace() for e in engines + ["async"]}
        runs = {
            e: distributed_bellman_ford(instance, source, engine=e, trace=traces[e])
            for e in engines
        }
        runs["async"] = distributed_bellman_ford(
            instance, source, engine="async", delay_model=UnitDelay(),
            trace=traces["async"],
        )
        if shard_pool is not None:
            runs["sharded"] = distributed_bellman_ford(
                instance, source, engine="sharded", shard_pool=shard_pool
            )
            assert runs["sharded"].simulation.engine == "sharded"
        asy = runs["async"]
        assert asy.simulation.engine == "async"
        _assert_identical(*(r.simulation for r in runs.values()))
        for r in runs.values():
            assert r.distances == asy.distances
            assert r.parents == asy.parents
        for e in engines:
            assert traces[e].as_dicts() == traces["async"].as_dicts()
        # Unit delays are the synchronous clock: virtual time == rounds.
        assert asy.simulation.virtual_time == asy.rounds
        assert asy.simulation.async_stats["max_arc_in_flight"] <= 1

    def test_chunk_flood_unit_delay(self, family_graph, master_seed):
        rng = random.Random(master_seed + family_graph.num_edges())
        root = min(family_graph.nodes(), key=str)
        chunks = [("chunk", k, rng.randint(0, 99)) for k in range(rng.randint(1, 7))]
        net = CongestNetwork(family_graph, words_per_message=8)
        ref_trace, async_trace = SimulationTrace(), SimulationTrace()
        ref_received, ref = flood_chunks(
            net, root, chunks, engine="fast", trace=ref_trace
        )
        received, run = flood_chunks(
            net, root, chunks, engine="async", trace=async_trace
        )
        assert run.engine == "async"
        _assert_identical(ref, run)
        assert received == ref_received
        assert async_trace.as_dicts() == ref_trace.as_dicts()
        assert run.virtual_time == run.rounds

    def test_bfs_broadcast_leader_unit_delay(self, family_graph):
        net = CongestNetwork(family_graph)
        root = min(family_graph.nodes(), key=str)
        p_ref, d_ref, ref = build_bfs_tree(net, root, engine="fast")
        p_run, d_run, run = build_bfs_tree(net, root, engine="async")
        assert run.engine == "async"
        _assert_identical(ref, run)
        assert (p_run, d_run) == (p_ref, d_ref)

        vals_ref, bref = broadcast(net, root, ("payload", 1), engine="fast")
        vals_run, brun = broadcast(net, root, ("payload", 1), engine="async")
        _assert_identical(bref, brun)
        assert vals_run == vals_ref

        if family_graph.is_connected():
            leader_ref, eref = elect_leader(net, engine="fast")
            leader_run, erun = elect_leader(net, engine="async")
            _assert_identical(eref, erun)
            assert leader_run == leader_ref

    def test_label_broadcast_unit_delay(self, family_graph, master_seed):
        rng = random.Random(master_seed + family_graph.num_nodes())
        labeling = _pseudo_labeling(family_graph, rng)
        source = min(family_graph.nodes(), key=str)
        net = CongestNetwork(family_graph, words_per_message=16)
        ref_trace, async_trace = SimulationTrace(), SimulationTrace()
        ref = measured_label_broadcast(
            net, labeling, source, engine="fast", trace=ref_trace
        )
        run = measured_label_broadcast(
            net, labeling, source, engine="async", trace=async_trace
        )
        assert run.engine == "async"
        _assert_identical(ref, run)
        assert run.outputs == ref.outputs
        assert async_trace.as_dicts() == ref_trace.as_dicts()


# --------------------------------------------------------------------------- #
# Schedule invariance: small-seed subset (default job)
# --------------------------------------------------------------------------- #
class TestScheduleInvariance:
    """Outputs (and, with the α-synchronizer, the whole ledger) must not
    depend on the schedule: every seeded delay model reproduces the fast
    tier's results exactly, only the timing statistics move."""

    @pytest.mark.parametrize("kind", ("uniform", "adversarial"))
    def test_bellman_ford_invariant_small_sweep(
        self, sweep_graph, master_seed, schedule_fuzzer, kind
    ):
        instance = _bf_instance(sweep_graph, master_seed)
        source = min(sweep_graph.nodes(), key=str)
        ref = distributed_bellman_ford(instance, source, engine="fast")
        case = f"bf-{sweep_graph.num_nodes()}-{sweep_graph.num_edges()}"
        for model in schedule_fuzzer.models(kind, case, 2):
            run = distributed_bellman_ford(
                instance, source, engine="async", delay_model=model
            )
            assert run.simulation.engine == "async", model
            assert run.distances == ref.distances, model
            assert run.parents == ref.parents, model
            _assert_identical(ref.simulation, run.simulation)
            assert run.simulation.virtual_time >= run.rounds, model

    def test_same_seed_same_schedule(self, sweep_graph, master_seed, schedule_fuzzer):
        """Determinism: re-running one seeded model reproduces the timing
        statistics exactly (the reproducibility contract of the fuzzer)."""
        instance = _bf_instance(sweep_graph, master_seed)
        source = min(sweep_graph.nodes(), key=str)
        case = "determinism"
        first = distributed_bellman_ford(
            instance, source, engine="async",
            delay_model=schedule_fuzzer.model("uniform", case),
        )
        again = distributed_bellman_ford(
            instance, source, engine="async",
            delay_model=schedule_fuzzer.model("uniform", case),
        )
        assert first.simulation.virtual_time == again.simulation.virtual_time
        assert _deterministic_stats(first.simulation) == _deterministic_stats(
            again.simulation
        )
        assert first.distances == again.distances


# --------------------------------------------------------------------------- #
# Heap vs bucketed event queue
# --------------------------------------------------------------------------- #
class TestSchedulerCrossCheck:
    """The bucketed calendar queue (the default) and the reference min-heap
    (``scheduler="heap"``) must be operationally indistinguishable: same
    outputs, ledger, traces, event streams, virtual time and deterministic
    async statistics, under every schedule kind."""

    def test_unknown_scheduler_rejected(self):
        net = CongestNetwork(generators.path_graph(4))
        with pytest.raises(SimulationError, match="scheduler"):
            net.run(
                lambda u: BroadcastAll(value=u), engine="async",
                scheduler="calendar",
            )

    def test_scheduler_requires_async_engine(self):
        net = CongestNetwork(generators.path_graph(4))
        with pytest.raises(SimulationError, match="scheduler"):
            net.run(lambda u: BroadcastAll(value=u), engine="fast", scheduler="heap")

    @pytest.mark.parametrize("kind", ("unit", "uniform", "adversarial"))
    def test_bellman_ford_heap_vs_bucketed(
        self, sweep_graph, master_seed, schedule_fuzzer, kind
    ):
        instance = _bf_instance(sweep_graph, master_seed)
        source = min(sweep_graph.nodes(), key=str)
        case = f"xcheck-{sweep_graph.num_nodes()}-{sweep_graph.num_edges()}"
        count = 1 if kind == "unit" else 2
        for model in schedule_fuzzer.models(kind, case, count):
            runs, traces = {}, {}
            for sched in ("heap", "bucketed"):
                traces[sched] = SimulationTrace(record_events=True)
                runs[sched] = distributed_bellman_ford(
                    instance, source, engine="async", delay_model=model,
                    scheduler=sched, trace=traces[sched],
                )
            heap, bucketed = runs["heap"].simulation, runs["bucketed"].simulation
            _assert_identical(heap, bucketed)
            assert runs["heap"].distances == runs["bucketed"].distances
            assert runs["heap"].parents == runs["bucketed"].parents
            assert heap.virtual_time == bucketed.virtual_time
            assert _deterministic_stats(heap) == _deterministic_stats(bucketed)
            # The strongest check: the recorded event streams are identical,
            # delivery by delivery.
            assert traces["heap"].events == traces["bucketed"].events
            assert traces["heap"].as_dicts() == traces["bucketed"].as_dicts()

    def test_primitives_heap_vs_bucketed(self, sweep_graph, master_seed):
        net = CongestNetwork(sweep_graph)
        root = min(sweep_graph.nodes(), key=str)
        model = UniformDelay(1, 4, seed=master_seed)
        for helper in (
            lambda sched: build_bfs_tree(
                net, root, engine="async", delay_model=model, scheduler=sched
            )[2],
            lambda sched: broadcast(
                net, root, ("payload", 2), engine="async", delay_model=model,
                scheduler=sched,
            )[1],
        ):
            heap, bucketed = helper("heap"), helper("bucketed")
            _assert_identical(heap, bucketed)
            assert heap.virtual_time == bucketed.virtual_time
            assert _deterministic_stats(heap) == _deterministic_stats(bucketed)

    def test_events_per_sec_reported(self, master_seed):
        net = CongestNetwork(generators.grid_graph(4, 4))
        run = net.run(lambda u: BroadcastAll(value=u), engine="async")
        stats = run.async_stats
        assert stats["events_per_sec"] > 0.0
        assert stats["events_processed"] > 0


# --------------------------------------------------------------------------- #
# Full fuzz sweep (CI runs this in its own step via `-m fuzz`)
# --------------------------------------------------------------------------- #
@pytest.mark.fuzz
class TestFuzzSweep:
    """The full differential sweep: every equivalence family × every schedule
    kind × ≥ 5 seeds, for Bellman-Ford and the pipelined chunk flood."""

    @pytest.mark.parametrize("scheduler", ("bucketed", "heap"))
    @pytest.mark.parametrize("kind", ("unit", "uniform", "adversarial"))
    def test_bellman_ford_full_sweep(
        self, family_graph, master_seed, schedule_fuzzer, kind, scheduler
    ):
        instance = _bf_instance(family_graph, master_seed)
        source = min(family_graph.nodes(), key=str)
        ref_trace = SimulationTrace()
        ref = distributed_bellman_ford(instance, source, engine="fast", trace=ref_trace)
        case = f"bf-{family_graph.num_nodes()}-{family_graph.num_edges()}"
        count = 1 if kind == "unit" else 5  # unit delay has a single schedule
        for index, model in enumerate(schedule_fuzzer.models(kind, case, count)):
            trace = SimulationTrace()
            run = distributed_bellman_ford(
                instance, source, engine="async", delay_model=model, trace=trace,
                scheduler=scheduler,
            )
            key = (kind, index, scheduler)
            assert run.simulation.engine == "async", key
            assert run.distances == ref.distances, key
            assert run.parents == ref.parents, key
            _assert_identical(ref.simulation, run.simulation)
            assert trace.as_dicts() == ref_trace.as_dicts(), key
            if kind == "unit":
                assert run.simulation.virtual_time == run.rounds, key
            else:
                assert run.simulation.virtual_time >= run.rounds, key

    @pytest.mark.parametrize("scheduler", ("bucketed", "heap"))
    @pytest.mark.parametrize("kind", ("uniform", "adversarial"))
    def test_chunk_flood_full_sweep(
        self, family_graph, master_seed, schedule_fuzzer, kind, scheduler
    ):
        rng = random.Random(master_seed + family_graph.num_edges())
        root = min(family_graph.nodes(), key=str)
        chunks = [("chunk", k, rng.randint(0, 99)) for k in range(rng.randint(1, 7))]
        net = CongestNetwork(family_graph, words_per_message=8)
        ref_received, ref = flood_chunks(net, root, chunks, engine="fast")
        case = f"flood-{family_graph.num_nodes()}-{family_graph.num_edges()}"
        for index, model in enumerate(schedule_fuzzer.models(kind, case, 5)):
            received, run = flood_chunks(
                net, root, chunks, engine="async", delay_model=model,
                scheduler=scheduler,
            )
            key = (kind, index, scheduler)
            assert run.engine == "async", key
            assert received == ref_received, key
            _assert_identical(ref, run)
            assert run.virtual_time >= run.rounds, key


# --------------------------------------------------------------------------- #
# Delay models
# --------------------------------------------------------------------------- #
class TestDelayModels:
    def test_uniform_delay_bounds_and_determinism(self):
        net = CongestNetwork(generators.path_graph(10))
        model = UniformDelay(2, 6, seed=42)
        model.bind(net.indexed)
        draws = [model.delay(a, p) for a in range(18) for p in range(10)]
        assert all(2 <= d <= 6 for d in draws)
        assert len(set(draws)) > 1  # genuinely varies
        again = UniformDelay(2, 6, seed=42)
        again.bind(net.indexed)
        assert draws == [again.delay(a, p) for a in range(18) for p in range(10)]
        other = UniformDelay(2, 6, seed=43)
        other.bind(net.indexed)
        assert draws != [other.delay(a, p) for a in range(18) for p in range(10)]

    def test_uniform_delay_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformDelay(0, 4)
        with pytest.raises(ValueError):
            UniformDelay(5, 4)

    def test_per_arc_delay_resolution_and_validation(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        net = CongestNetwork(g)
        model = PerArcDelay({("a", "b"): 5, ("b", "a"): 2}, default=3)
        model.bind(net.indexed)
        idx = net.indexed
        pos = {}
        for i in range(idx.num_nodes):
            for k, v in enumerate(idx.neighbor_ids[i]):
                pos[(idx.node_ids[i], v)] = idx.indptr[i] + k
        assert model.delay(pos[("a", "b")], 0) == 5
        assert model.delay(pos[("b", "a")], 0) == 2
        assert model.delay(pos[("b", "c")], 0) == 3

        bogus = PerArcDelay({("a", "z"): 4})
        with pytest.raises(GraphError):
            bogus.bind(net.indexed)
        with pytest.raises(ValueError):
            PerArcDelay({("a", "b"): 0})
        with pytest.raises(ValueError):
            PerArcDelay(default=0)

    def test_slow_link_delay_partition(self):
        net = CongestNetwork(generators.cycle_graph(20))
        model = SlowLinkDelay(slow_fraction=0.5, slow_delay=9, seed=3)
        model.bind(net.indexed)
        slow = set(model.slow_arcs())
        assert slow  # at 50% over 40 arcs some link is slow
        num_arcs = len(net.indexed.indices)
        assert len(slow) < num_arcs
        for a in range(num_arcs):
            assert model.delay(a, 0) == (9 if a in slow else 1)
        none_slow = SlowLinkDelay(slow_fraction=0.0, seed=3)
        none_slow.bind(net.indexed)
        assert none_slow.slow_arcs() == []
        with pytest.raises(ValueError):
            SlowLinkDelay(slow_fraction=1.5)
        with pytest.raises(ValueError):
            SlowLinkDelay(slow_delay=1, fast_delay=2)

    def test_invalid_delay_value_raises(self):
        net = CongestNetwork(generators.path_graph(4))
        for model in (ZeroDelayModel(), BoolDelayModel()):
            with pytest.raises(SimulationError, match="delays must be integers >= 1"):
                net.run(
                    lambda u: BroadcastAll(value=u),
                    engine="async",
                    delay_model=model,
                )

    def test_integral_delay_types_accepted(self):
        """Custom models may return any integral type (numpy ints included)."""
        pytest.importorskip("numpy")
        net = CongestNetwork(generators.path_graph(6))
        ref = broadcast(net, 0, "v", engine="fast")[1]
        run = broadcast(net, 0, "v", engine="async", delay_model=NumpyIntDelay())[1]
        _assert_identical(ref, run)
        assert run.engine == "async"

    def test_bound_model_stays_pickle_small(self):
        """bind() must not retain the graph snapshot: a model reused across
        runs would otherwise drag an O(n + m) payload through the per-run
        picklability check."""
        import pickle

        net = CongestNetwork(generators.complete_graph(40))
        model = SlowLinkDelay(0.3, 6, seed=1)
        before = len(pickle.dumps(model))
        broadcast(net, 0, "v", engine="async", delay_model=model)
        after = len(pickle.dumps(model))
        # The bound per-arc table is allowed; the IndexedGraph is not.
        assert after < before + 20 * len(net.indexed.indices)
        # and the model still runs again, identically.
        rerun = broadcast(net, 0, "v", engine="async", delay_model=model)[1]
        assert rerun.engine == "async"


# --------------------------------------------------------------------------- #
# Timing semantics: virtual time and per-arc in-flight high-water marks
# --------------------------------------------------------------------------- #
class TestAsyncTiming:
    def test_per_arc_delay_virtual_time_hand_computed(self):
        """Path 0-1-2, arc (0, 1) slowed to 5: the broadcast still takes 2
        logical rounds, but node 1 only fires its round at t=5 and node 2
        receives at t=6 — the hand-computed recurrence T_v(p+1) =
        max_u(T_u(p) + delay)."""
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        net = CongestNetwork(g)
        vals, res = broadcast(
            net, 0, 42, engine="async", delay_model=PerArcDelay({(0, 1): 5})
        )
        assert vals == {0: 42, 1: 42, 2: 42}
        assert res.rounds == 2
        assert res.virtual_time == 6
        unit = broadcast(net, 0, 42, engine="async")[1]
        assert unit.virtual_time == unit.rounds == 2

    def test_slow_link_directions_independently_seeded_hand_computed(self):
        """The two directions of an edge are slowed independently: with seed
        26 at 50% on the path 0-1-2, the slow set is exactly {arc 0→1} — its
        reverse 1→0 and both (1, 2) directions stay fast.  The timing then
        reproduces the PerArcDelay hand-computed case: the broadcast is still
        2 logical rounds but node 1 fires at t=5 and node 2 receives at t=6,
        bit-for-bit the dedicated ``PerArcDelay({(0, 1): 5})`` run."""
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        net = CongestNetwork(g)
        idx = net.indexed
        pos = {}
        for i in range(idx.num_nodes):
            for k, v in enumerate(idx.neighbor_ids[i]):
                pos[(idx.node_ids[i], v)] = idx.indptr[i] + k
        model = SlowLinkDelay(slow_fraction=0.5, slow_delay=5, seed=26)
        model.bind(idx)
        assert set(model.slow_arcs()) == {pos[(0, 1)]}
        assert model.delay(pos[(0, 1)], 0) == 5
        assert model.delay(pos[(1, 0)], 0) == 1  # reverse direction fast

        vals, res = broadcast(net, 0, 42, engine="async", delay_model=model)
        assert vals == {0: 42, 1: 42, 2: 42}
        assert res.rounds == 2
        assert res.virtual_time == 6
        ref_vals, ref = broadcast(
            net, 0, 42, engine="async", delay_model=PerArcDelay({(0, 1): 5})
        )
        assert vals == ref_vals
        _assert_identical(ref, res)

    def test_slow_link_pipelining_in_flight_high_water(self):
        """Chunk flood on a triangle with one slow direction: the root keeps
        one pulse ahead of the slow link's deliveries, so two payload
        envelopes overlap on it (high-water 2) — while under unit delays no
        arc ever holds more than one message."""
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        net = CongestNetwork(g, words_per_message=8)
        chunks = [("c", k) for k in range(3)]
        ref_received, ref = flood_chunks(net, 0, chunks, engine="fast")
        received, run = flood_chunks(
            net, 0, chunks, engine="async", delay_model=PerArcDelay({(0, 1): 9})
        )
        assert received == ref_received
        _assert_identical(ref, run)
        stats = run.async_stats
        assert stats["max_arc_in_flight"] >= 2
        assert stats["congested_arcs"].get((0, 1), 0) >= 2
        unit = flood_chunks(net, 0, chunks, engine="async")[1]
        assert unit.async_stats["max_arc_in_flight"] == 1
        assert unit.async_stats["congested_arcs"] == {}

    def test_message_time_stamps(self):
        """The delivery-time-aware inbox contract: async messages carry
        sent/delivery stamps (absent on the synchronous tiers), and under
        unit delays every message travels exactly one time unit."""
        seen = []

        class Recorder(NodeAlgorithm):
            def __init__(self, node):
                super().__init__()
                self.node = node

            def initialize(self, ctx):
                if self.node == 0:
                    self.halt()
                    return {v: ("ping", 0) for v in ctx.neighbors}
                return {}

            def on_round(self, ctx, inbox):
                for msg in inbox:
                    seen.append(msg)
                self.halt()
                return {}

        net = CongestNetwork(generators.path_graph(3))
        net.run(lambda u: Recorder(u), engine="async")
        assert seen
        for msg in seen:
            assert msg.delivery_time == msg.sent_time + 1

        seen.clear()
        net.run(lambda u: Recorder(u), engine="fast")
        assert seen and all(
            m.sent_time is None and m.delivery_time is None for m in seen
        )

    def test_trace_event_records(self):
        trace = SimulationTrace(record_events=True)
        net = CongestNetwork(generators.path_graph(4))
        res = broadcast(net, 0, "x", engine="async", trace=trace)[1]
        kinds = {e.kind for e in trace.events}
        assert kinds == {"execute", "send", "deliver"}
        sends = [e for e in trace.events if e.kind == "send"]
        delivers = [e for e in trace.events if e.kind == "deliver"]
        assert len(sends) == len(delivers) == res.messages_sent
        assert all(isinstance(e, EventRecord) for e in trace.events)
        assert all(e.time <= res.virtual_time for e in delivers)
        # Round records are unaffected by event capture.
        plain = SimulationTrace()
        broadcast(net, 0, "x", engine="async", trace=plain)
        assert plain.as_dicts() == trace.as_dicts()
        assert plain.events == []

    def test_async_stats_reported_only_on_async(self):
        net = CongestNetwork(generators.path_graph(4))
        fast = broadcast(net, 0, "x", engine="fast")[1]
        assert fast.virtual_time is None and fast.async_stats is None
        asy = broadcast(net, 0, "x", engine="async")[1]
        assert asy.async_stats["events_processed"] > 0
        assert asy.async_stats["delay_model"] == "UnitDelay()"


# --------------------------------------------------------------------------- #
# Error semantics match the synchronous tiers
# --------------------------------------------------------------------------- #
class TestAsyncErrorSemantics:
    def test_convergence_error(self):
        class PingPong(NodeAlgorithm):
            def initialize(self, ctx):
                return {v: "ping" for v in ctx.neighbors}

            def on_round(self, ctx, inbox):
                return {v: "ping" for v in ctx.neighbors}

        net = CongestNetwork(generators.path_graph(4))
        for engine in ("fast", "async"):
            with pytest.raises(ConvergenceError, match="did not terminate within 7"):
                net.run(lambda u: PingPong(), engine=engine, max_rounds=7)

    def test_strict_bandwidth(self):
        net = CongestNetwork(generators.path_graph(3), words_per_message=2)
        with pytest.raises(BandwidthExceededError):
            broadcast(net, 0, ("too", "many", "words", "here"), engine="async")
        lenient = CongestNetwork(
            generators.path_graph(3), words_per_message=2, strict_bandwidth=False
        )
        ref = broadcast(lenient, 0, ("too", "many", "words", "here"), engine="fast")[1]
        run = broadcast(lenient, 0, ("too", "many", "words", "here"), engine="async")[1]
        _assert_identical(ref, run)
        assert run.max_message_words == ref.max_message_words > 2

    def test_non_neighbour_send(self):
        class Rogue(NodeAlgorithm):
            def initialize(self, ctx):
                return {"nowhere": 1}

            def on_round(self, ctx, inbox):
                return {}

        net = CongestNetwork(generators.path_graph(3))
        with pytest.raises(SimulationError, match="non-neighbour"):
            net.run(lambda u: Rogue(), engine="async")

    def test_stop_when_quiet_false(self):
        net = CongestNetwork(generators.path_graph(5))
        ref = broadcast(net, 0, "v", engine="fast")[1]
        run = net.run(
            lambda u: FloodBroadcastNode(u, 0, "v"),
            engine="async",
            stop_when_quiet=False,
        )
        assert run.halted
        assert run.outputs == ref.outputs

    def test_factory_called_exactly_once_per_node(self):
        """The supports_async probe is adopted as node 0's algorithm: the
        async tier makes exactly n factory calls, like every other tier."""
        calls = []

        def factory(u):
            calls.append(u)
            return BroadcastAll(value=u)

        net = CongestNetwork(generators.cycle_graph(9))
        result = net.run(factory, engine="async")
        assert result.engine == "async"
        assert len(calls) == 9
        assert sorted(calls, key=str) == sorted(net.graph.nodes(), key=str)

    def test_single_node_network(self):
        g = Graph()
        g.add_node("solo")
        net = CongestNetwork(g)
        ref = net.run(lambda u: BroadcastAll(value=u), engine="fast")
        run = net.run(lambda u: BroadcastAll(value=u), engine="async")
        _assert_identical(ref, run)
        assert run.engine == "async"


# --------------------------------------------------------------------------- #
# Fallback ladder + warning-message contract
# --------------------------------------------------------------------------- #
class TestAsyncFallbackLadder:
    """``engine="async"`` degrades to ``fast`` with exactly one
    :class:`EngineFallbackWarning` naming *both* the requested and the
    selected tier — mirroring the sharded→vectorized→fast ladder tests."""

    def _run(self, graph=None, **kwargs):
        net = CongestNetwork(graph if graph is not None else generators.cycle_graph(9))
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            result = net.run(lambda u: BroadcastAll(value=u), engine="async", **kwargs)
        return result, [w for w in rec if issubclass(w.category, EngineFallbackWarning)]

    def test_non_picklable_delay_model_falls_back_once(self):
        model = UnitDelay()
        model.hook = lambda arc: 1  # lambdas cannot be pickled
        result, fallbacks = self._run(delay_model=model)
        assert result.engine == "fast"
        assert len(fallbacks) == 1
        message = str(fallbacks[0].message)
        assert "engine='async'" in message
        assert "engine='fast'" in message
        assert "not picklable" in message
        # The fallback run is the plain fast run, bit for bit.
        ref = CongestNetwork(generators.cycle_graph(9)).run(
            lambda u: BroadcastAll(value=u), engine="fast"
        )
        _assert_identical(ref, result)

    def test_sync_only_protocol_falls_back_once(self):
        class LockstepOnly(BroadcastAll):
            supports_async = False

        net = CongestNetwork(generators.cycle_graph(9))
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            result = net.run(lambda u: LockstepOnly(value=u), engine="async")
        fallbacks = [w for w in rec if issubclass(w.category, EngineFallbackWarning)]
        assert result.engine == "fast"
        assert len(fallbacks) == 1
        message = str(fallbacks[0].message)
        assert "engine='async'" in message
        assert "engine='fast'" in message
        assert "supports_async=False" in message

    def test_wrong_delay_model_type_raises(self):
        net = CongestNetwork(generators.cycle_graph(9))
        with pytest.raises(SimulationError, match="DelayModel"):
            net.run(lambda u: BroadcastAll(value=u), engine="async", delay_model=7)

    def test_delay_model_requires_async_engine(self):
        net = CongestNetwork(generators.cycle_graph(9))
        with pytest.raises(SimulationError, match="engine='async'"):
            net.run(
                lambda u: BroadcastAll(value=u), engine="fast", delay_model=UnitDelay()
            )

    def test_async_success_does_not_warn(self):
        result, fallbacks = self._run(delay_model=UnitDelay())
        assert result.engine == "async"
        assert fallbacks == []


class TestFallbackMessageContract:
    """Regression tests for the warning-text fix: every
    :class:`EngineFallbackWarning` on every ladder path names both the
    requested and the selected tier (some paths used to name only the
    reason)."""

    def _fallbacks(self, net, **kwargs):
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            result = net.run(lambda u: BroadcastAll(value=u), **kwargs)
        return result, [w for w in rec if issubclass(w.category, EngineFallbackWarning)]

    def test_vectorized_fallback_names_both_tiers(self):
        net = CongestNetwork(generators.cycle_graph(9))
        result, fallbacks = self._fallbacks(net, engine="vectorized")
        assert result.engine == "fast"
        assert len(fallbacks) == 1
        message = str(fallbacks[0].message)
        assert "engine='vectorized'" in message
        assert "engine='fast'" in message

    def test_sharded_fallback_names_both_tiers(self):
        net = CongestNetwork(generators.cycle_graph(9))
        result, fallbacks = self._fallbacks(net, engine="sharded", num_shards=2)
        assert result.engine == "fast"
        assert len(fallbacks) == 1
        message = str(fallbacks[0].message)
        assert "engine='sharded'" in message
        assert "engine='fast'" in message

    @needs_sharded
    def test_num_shards_clamp_names_requested_and_selected_tier(self):
        """The clamp path stays on the sharded tier; its warning must say so
        explicitly instead of only describing the clamp."""
        from repro.congest.primitives import flood_chunks as fc

        net = CongestNetwork(generators.cycle_graph(9))
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            _, result = fc(
                net, 0, [("c", 1)], engine="sharded", num_shards=50
            )
        fallbacks = [w for w in rec if issubclass(w.category, EngineFallbackWarning)]
        assert result.engine == "sharded"
        assert len(fallbacks) == 1
        message = str(fallbacks[0].message)
        assert "engine='sharded'" in message
        assert "still running engine='sharded'" in message
        assert "clamped" in message
