"""Tests for the high-level LowTreewidthSolver facade."""

import math

import pytest

from repro import LowTreewidthSolver
from repro.core.config import FrameworkConfig
from repro.errors import GraphError
from repro.girth.baselines import exact_girth_undirected
from repro.graphs import generators
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph
from repro.graphs.properties import dijkstra
from repro.matching.hopcroft_karp import hopcroft_karp_matching


class TestConstruction:
    def test_from_undirected(self, small_partial_k_tree):
        solver = LowTreewidthSolver.from_undirected(small_partial_k_tree, seed=1)
        assert solver.instance.num_edges() == 2 * small_partial_k_tree.num_edges()

    def test_empty_instance_rejected(self):
        with pytest.raises(GraphError):
            LowTreewidthSolver(WeightedDiGraph())

    def test_disconnected_instance_rejected(self):
        inst = WeightedDiGraph()
        inst.add_edge(1, 2)
        inst.add_node(3)
        with pytest.raises(GraphError):
            LowTreewidthSolver(inst)

    def test_seed_overrides_config(self):
        g = generators.cycle_graph(8)
        solver = LowTreewidthSolver.from_undirected(g, config=FrameworkConfig(seed=1), seed=99)
        assert solver.config.seed == 99


class TestPipelines:
    def test_sssp_matches_dijkstra(self, weighted_instance):
        solver = LowTreewidthSolver(weighted_instance, seed=3)
        source = weighted_instance.nodes()[0]
        result = solver.single_source_shortest_paths(source)
        expected = dijkstra(weighted_instance, source)
        for v in weighted_instance.nodes():
            want = expected.get(v, math.inf)
            got = result.distances[v]
            assert (math.isinf(got) and math.isinf(want)) or abs(got - want) < 1e-9
        assert result.total_rounds > 0

    def test_pairwise_distance_and_caching(self, weighted_instance):
        solver = LowTreewidthSolver(weighted_instance, seed=3)
        u, v = weighted_instance.nodes()[:2]
        first = solver.pairwise_distance(u, v)
        # The labeling is cached: a second query must not rebuild it.
        labeling_obj = solver.distance_labeling()
        second = solver.pairwise_distance(u, v)
        assert first == second
        assert solver.distance_labeling() is labeling_obj
        rebuilt = solver.distance_labeling(rebuild=True)
        assert rebuilt is not labeling_obj

    def test_tree_decomposition_valid_and_cached(self, small_partial_k_tree):
        from repro.decomposition.validation import is_valid_tree_decomposition

        solver = LowTreewidthSolver.from_undirected(small_partial_k_tree, seed=2)
        result = solver.tree_decomposition()
        assert is_valid_tree_decomposition(small_partial_k_tree, result.decomposition)
        assert solver.tree_decomposition() is result

    def test_matching_via_solver(self):
        g = generators.grid_graph(4, 7)
        solver = LowTreewidthSolver.from_undirected(g, seed=5)
        result = solver.maximum_matching()
        assert result.size == len(hopcroft_karp_matching(g))

    def test_girth_via_solver(self):
        g = generators.cycle_graph(9)
        solver = LowTreewidthSolver.from_undirected(g, seed=6)
        result = solver.girth()
        assert result.girth >= exact_girth_undirected(g) - 1e-9

    def test_round_report_accumulates(self, weighted_instance):
        solver = LowTreewidthSolver(weighted_instance, seed=3)
        assert solver.round_report() == {}
        solver.distance_labeling()
        report = solver.round_report()
        assert set(report) == {"tree_decomposition", "distance_labeling"}
        assert all(v > 0 for v in report.values())
