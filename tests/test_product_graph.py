"""Tests for the product graph G_C and the Lemma 5 correspondence."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FrameworkConfig
from repro.decomposition.tree_decomposition import build_tree_decomposition
from repro.decomposition.validation import tree_decomposition_violations
from repro.errors import ConstraintError
from repro.graphs import generators
from repro.graphs.digraph import WeightedDiGraph
from repro.walks.constraints import (
    INITIAL_STATE,
    REJECT_STATE,
    ColoredWalkConstraint,
    CountWalkConstraint,
    walk_state,
)
from repro.walks.product import (
    build_product_graph,
    lift_tree_decomposition,
    shortest_constrained_walk,
)


def _colored_instance(seed=0, n=20):
    g = generators.partial_k_tree(n, 2, seed=seed)
    inst = generators.to_directed_instance(g, weight_range=(1, 5), orientation="both", seed=seed + 1)
    rng = random.Random(seed)
    for e in inst.edges():
        inst.set_label(e.eid, rng.choice(["r", "b"]))
    return inst


class TestConstruction:
    def test_node_and_edge_counts(self):
        inst = _colored_instance()
        constraint = ColoredWalkConstraint(["r", "b"])
        product = build_product_graph(inst, constraint)
        q = constraint.state_count()
        assert product.graph.num_nodes() == q * inst.num_nodes()
        # |Q| product edges per input edge + (|Q|-1) structural edges per node.
        expected = q * inst.num_edges() + (q - 1) * inst.num_nodes()
        assert product.graph.num_edges() == expected

    def test_structural_edges_lead_to_reject_only(self):
        inst = _colored_instance()
        product = build_product_graph(inst, ColoredWalkConstraint(["r", "b"]))
        for eid, origin in product.edge_origin.items():
            e = product.graph.edge(eid)
            if origin is None:
                assert e.head[1] == REJECT_STATE
                assert e.tail[0] == e.head[0]
                assert e.weight == 0.0

    def test_diameter_of_product_comm_graph_close_to_base(self):
        from repro.graphs.properties import diameter

        inst = _colored_instance(n=16)
        product = build_product_graph(inst, ColoredWalkConstraint(["r", "b"]))
        base_d = diameter(inst.underlying_graph())
        prod_d = diameter(product.graph.underlying_graph())
        assert prod_d <= base_d + 2


class TestLemma5Correspondence:
    def test_shortest_colored_walk_matches_bruteforce(self):
        inst = _colored_instance(seed=3, n=12)
        constraint = ColoredWalkConstraint(["r", "b"])
        product = build_product_graph(inst, constraint)
        nodes = inst.nodes()
        s, t = nodes[0], nodes[-1]
        result = shortest_constrained_walk(product, s, t, ("color", "r"))
        brute = _brute_force_constrained_distance(inst, constraint, s, t, ("color", "r"))
        if result is None:
            assert math.isinf(brute)
        else:
            length, edges = result
            assert abs(length - brute) < 1e-9
            # The returned walk must genuinely satisfy the constraint and end in state r.
            assert walk_state(constraint, edges) == ("color", "r")
            assert edges[0].tail == s and edges[-1].head == t
            assert abs(sum(e.weight for e in edges) - length) < 1e-9

    def test_reject_state_not_queryable(self):
        inst = _colored_instance(n=10)
        product = build_product_graph(inst, ColoredWalkConstraint(["r", "b"]))
        with pytest.raises(ConstraintError):
            shortest_constrained_walk(product, inst.nodes()[0], inst.nodes()[1], REJECT_STATE)


def _brute_force_constrained_distance(instance, constraint, source, target, target_state, max_len=8):
    """Exhaustive search over walks of bounded edge count (test oracle)."""
    best = math.inf
    frontier = [(0.0, source, INITIAL_STATE)]
    # Dijkstra-like BFS over (vertex, state) using the constraint directly —
    # independent of the product-graph construction under test.
    import heapq

    dist = {(source, INITIAL_STATE): 0.0}
    heap = [(0.0, 0, source, INITIAL_STATE)]
    counter = 0
    while heap:
        d, _, u, q = heapq.heappop(heap)
        if d > dist.get((u, q), math.inf):
            continue
        if u == target and q == target_state:
            best = min(best, d)
        for e in instance.out_edges(u):
            nq = constraint.delta(q, e)
            if nq == REJECT_STATE:
                continue
            nd = d + e.weight
            if nd < dist.get((e.head, nq), math.inf):
                dist[(e.head, nq)] = nd
                counter += 1
                heapq.heappush(heap, (nd, counter, e.head, nq))
    return best


class TestDecompositionLifting:
    def test_lifted_decomposition_is_valid_for_product_graph(self, config):
        inst = _colored_instance(seed=5, n=18)
        constraint = ColoredWalkConstraint(["r", "b"])
        comm = inst.underlying_graph()
        base = build_tree_decomposition(comm, config=config)
        lifted = lift_tree_decomposition(base, constraint)
        product = build_product_graph(inst, constraint)
        violations = tree_decomposition_violations(
            product.graph.underlying_graph(), lifted.decomposition
        )
        assert violations == []
        # Width of the lift is |Q|·(width+1) − 1.
        q = constraint.state_count()
        assert lifted.decomposition.width() == q * (base.decomposition.width() + 1) - 1


@given(st.integers(min_value=6, max_value=16), st.integers(min_value=0, max_value=200))
@settings(max_examples=10, deadline=None)
def test_count_walk_product_distances_match_oracle(n, seed):
    """Property: product-graph shortest constrained walks match a direct state-space search."""
    g = generators.partial_k_tree(n, 2, seed=seed)
    inst = generators.to_directed_instance(g, weight_range=(1, 4), orientation="both", seed=seed + 1)
    rng = random.Random(seed)
    for e in inst.edges():
        inst.set_label(e.eid, 1 if rng.random() < 0.3 else 0)
    constraint = CountWalkConstraint(1)
    product = build_product_graph(inst, constraint)
    nodes = inst.nodes()
    s, t = nodes[0], nodes[-1]
    target = constraint.exact_target_state()
    result = shortest_constrained_walk(product, s, t, target)
    oracle = _brute_force_constrained_distance(inst, constraint, s, t, target)
    if result is None:
        assert math.isinf(oracle)
    else:
        assert abs(result[0] - oracle) < 1e-9
