"""E3 — exact directed distance labeling (Theorem 2): exactness, label size, rounds."""

import pytest

from repro.analysis.experiments import run_labeling_experiment
from repro.analysis.workloads import sweep_k, sweep_n
from repro.analysis.complexity import growth_ratio


@pytest.mark.bench
def test_e3_labeling_exactness_and_size(benchmark, report_sink):
    workloads = sweep_k(fixed_n=120, ks=[2, 3, 4], seed=1)
    table = benchmark.pedantic(
        lambda: run_labeling_experiment(workloads, seed=1, check_pairs=150),
        rounds=1,
        iterations=1,
    )
    report_sink.append(table.to_text())
    for row in table:
        assert row["errors"] == 0, f"{row['workload']} decoded a wrong distance"
        # Label entries are Õ(τ²): far below n.
        assert row["max_label"] < row["n"]


@pytest.mark.bench
def test_e3_label_size_polylog_in_n(benchmark, report_sink):
    workloads = sweep_n(fixed_k=3, ns=[80, 160, 320], seed=2)
    table = benchmark.pedantic(
        lambda: run_labeling_experiment(workloads, seed=2, check_pairs=80),
        rounds=1,
        iterations=1,
    )
    report_sink.append(table.to_text())
    ns = table.column("n")
    labels = table.column("max_label")
    # Quadrupling n must grow the label size far slower than n (Õ(τ² log n)).
    assert growth_ratio(ns, labels) < 0.75
    assert all(row["errors"] == 0 for row in table)


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: E3 as a ``repro-bench`` cell."""
    from repro.experiments.matrix import CellSpec

    return [CellSpec("labeling_build", "-", "ktree", scale, seed)]
