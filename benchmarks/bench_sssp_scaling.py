"""E4 — SSSP round scaling at fixed treewidth vs the general-graph baselines.

The paper's headline framing: exact directed SSSP in Õ(τ²D + τ⁵) rounds, i.e.
polylogarithmic dependence on n for fixed τ and D, versus Ω̃(√n + D) for
general graphs and Θ(hop-depth) for distributed Bellman-Ford.

The Bellman-Ford baseline runs on the fast indexed simulation engine
(:mod:`repro.congest.engine`).  ``--bench-scale tiny`` shrinks the size sweep
to a CI smoke run (shape assertions that need large n are skipped there);
``--seed`` controls the instance generator.
"""

import pytest

from repro.analysis.complexity import fit_power_law
from repro.analysis.experiments import run_sssp_scaling_experiment

SIZES = {"full": [60, 120, 240, 480], "tiny": [24, 36]}


@pytest.mark.bench
def test_e4_sssp_scaling_against_baselines(benchmark, report_sink, bench_scale, master_seed):
    ns = SIZES[bench_scale]
    table = benchmark.pedantic(
        lambda: run_sssp_scaling_experiment(ns, k=3, seed=master_seed),
        rounds=1,
        iterations=1,
    )
    report_sink.append(table.to_text())

    rows = list(table)
    if bench_scale == "tiny":
        # Smoke run: the experiment must produce a full, finite table.
        assert len(rows) == len(ns)
        assert all(row["sssp_rounds"] > 0 for row in rows)
        return

    # Shape check 1: the framework's rounds grow much more slowly than n.
    fit = fit_power_law(table.column("n"), table.column("sssp_rounds"))
    assert fit.exponent < 0.9, f"framework rounds scale like n^{fit.exponent:.2f}"

    # Shape check 2: the Bellman-Ford baseline tracks the hop depth, which in
    # these sparse low-treewidth graphs keeps growing with n.
    assert rows[-1]["bellman_ford_rounds"] >= rows[0]["bellman_ford_rounds"]

    # Shape check 3: who wins — on the largest instance the framework should
    # not be worse than the general-graph exact-SSSP curve by more than a
    # polylog-ish factor, and the crossover trend must favour the framework.
    last = rows[-1]
    first = rows[0]
    ratio_last = last["sssp_rounds"] / max(1, last["general_exact_sssp"])
    ratio_first = first["sssp_rounds"] / max(1, first["general_exact_sssp"])
    assert ratio_last <= ratio_first * 1.5


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: E4 as a ``repro-bench`` cell."""
    from repro.experiments.matrix import CellSpec

    return [CellSpec("sssp_scaling", "-", "ktree", scale, seed)]
