"""E9 — crossover: fully-polynomial (τ, D, log n) rounds vs general-graph Ω̃(√n·D^¼ + D)."""

import pytest

from repro.analysis.experiments import run_crossover_experiment


@pytest.mark.bench
def test_e9_crossover_advantage_improves_with_n(benchmark, report_sink):
    ns = [80, 160, 320, 640]
    table = benchmark.pedantic(
        lambda: run_crossover_experiment(ns, k=3, seed=1), rounds=1, iterations=1
    )
    report_sink.append(table.to_text())
    rows = list(table)
    advantages = [row["advantage"] for row in rows]
    # The relative advantage of the fully-polynomial algorithm must not shrink
    # as n grows (the general bound grows like √n·D^¼ while ours grows like D).
    assert advantages[-1] >= 0.5 * advantages[0]
    # And the trend over the sweep is non-collapsing: the largest instance
    # should show at least as good a ratio as the median.
    assert advantages[-1] >= 0.5 * sorted(advantages)[len(advantages) // 2]


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: E9 as a ``repro-bench`` cell."""
    from repro.experiments.matrix import CellSpec

    return [CellSpec("crossover", "-", "ktree", scale, seed)]
