"""E8 — primitive costs: measured BFS/broadcast rounds vs the Lemma 9 / Corollary 2-3 model."""

import pytest

from repro.analysis.experiments import run_partwise_experiment


@pytest.mark.bench
def test_e8_primitive_costs_track_diameter(benchmark, report_sink):
    table = benchmark.pedantic(
        lambda: run_partwise_experiment([50, 100, 200], k=3, seed=1), rounds=1, iterations=1
    )
    report_sink.append(table.to_text())
    for row in table:
        # Measured flooding primitives finish within a couple of rounds of D.
        assert row["bfs_rounds_measured"] <= row["D"] + 2
        assert row["broadcast_rounds_measured"] <= row["D"] + 2
        # The PA cost model upper-bounds the measured single-broadcast rounds
        # (it charges Õ(τD)) and grows with the width.
        assert row["pa_rounds_model"] >= row["broadcast_rounds_measured"]
        assert row["mvc16_rounds_model"] >= row["bct16_rounds_model"]


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: E8 as a ``repro-bench`` cell."""
    from repro.experiments.matrix import CellSpec

    return [CellSpec("partwise", "-", "ktree", scale, seed)]
