"""Shared merge-writer for the ``BENCH_*.json`` trajectory files.

Every benchmark module records its cases into one JSON trajectory
(``BENCH_engine.json``, ``BENCH_serving.json``, ...) so speedups are
tracked across PRs.  The writer merges per case: re-running one case
updates its entry and leaves the rest of the file alone.
"""

from __future__ import annotations

import json
import os
from typing import Optional


def merge_trajectory_record(
    json_path: str, case: str, scale: str, tiers: dict,
    extra: Optional[dict] = None,
) -> None:
    """Merge one case's per-tier record into ``json_path``."""
    record = {}
    if os.path.exists(json_path):
        try:
            with open(json_path) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            record = {}
    entry = {"scale": scale, "tiers": tiers}
    if extra:
        entry.update(extra)
    record[case] = entry
    with open(json_path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
