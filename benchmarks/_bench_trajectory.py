"""Shared merge-writer for the ``BENCH_*.json`` trajectory files.

Thin re-export shim: the implementation lives in
:mod:`repro.experiments.trajectory` so the ``repro-bench export``
subcommand and the benchmark modules write the trajectories through the
*same* hardened writer (atomic ``os.replace`` publication, corrupt-file
backup instead of silent reset, ``fcntl``-locked merges).  Benchmark
modules keep importing ``merge_trajectory_record`` from here.
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:  # standalone use outside the pytest conftests
    sys.path.insert(0, _SRC)

from repro.experiments.trajectory import (  # noqa: E402,F401
    TrajectoryCorruptWarning,
    load_trajectory,
    merge_trajectory_record,
    write_json_atomic,
)
