"""Engine shoot-out across the four execution tiers.

Measures the same protocol executions on the :meth:`CongestNetwork.run`
tiers and checks that

* the results (rounds, outputs, words, per-edge bandwidth) are identical,
* the fast worklist tier beats the legacy loop (deep-path Bellman-Ford is
  the legacy loop's worst case: per-round O(n) inbox rebuild vs O(active)),
* the vectorized kernel tier beats the fast tier on *dense* rounds (the
  dense-graph Bellman-Ford case: ≥ 5× at full scale, and never slower even
  at the tiny CI smoke scale),
* the multiprocess sharded tier — run warm on a persistent ShardPool —
  beats the fast tier on dense rounds at every measured shard count ≥ 2 at
  full scale, with per-worker declared-state arena bytes asserted to be a
  ~1/num_shards share (the memory scale-out contract); per-shard-count
  records (warm + cold timings, boundary words published, declared bytes,
  peak RSS) land in the trajectory file — and the 2-shard run is not slower
  than 0.5× fast even at the small CI smoke scale,
* the two shard transports (shared-memory arena vs localhost TCP) are
  bit-for-bit identical on the same dense case, with the socket flavour's
  real bytes-on-the-wire recorded per peer alongside the wall times (no
  speed bar between flavours — the socket path exists for wire measurement,
  not throughput),
* the async tier's bucketed calendar queue (the default) beats the
  reference heap queue's events/sec on both round shapes — ≥ 2× on the
  deep path, where per-event heap churn dominates — measured on the *same*
  instances as the synchronous cases so the tiers line up per ``n``.

Every case appends a trajectory record (per-tier wall seconds, messages per
second) to ``BENCH_engine.json`` (path overridable via the
``BENCH_ENGINE_JSON`` environment variable) so the speedups are tracked
across PRs.  Wall-clock *assertions* are gated to ``--bench-scale full``
except the dense case's "vectorized not slower than fast" and the sharded
case's "not slower than 0.5× fast" smoke assertions, which CI runs at tiny
scale.
"""

import os
import time

import pytest

from repro.congest.bellman_ford import (
    BellmanFordKernel,
    BellmanFordNode,
    distributed_bellman_ford,
)
from repro.congest.engine import ShardPool
from repro.congest.network import CongestNetwork
from repro.congest.primitives import broadcast, build_bfs_tree
from repro.graphs import generators
from repro.graphs.sharding import ShardPlan


def _peak_rss_kb() -> dict:
    """Monotone peak-RSS high-water marks (parent and reaped children), KiB.

    ``ru_maxrss`` never decreases, so per-tier snapshots record the running
    peak *after* each tier, not an isolated per-tier footprint; the children
    figure is the peak of any shard worker reaped so far.
    """
    import sys

    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix
        return {}
    scale = 1024 if sys.platform == "darwin" else 1  # macOS reports bytes
    return {
        "parent": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) // scale,
        "children": int(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss) // scale,
    }

SIZES = {"full": 2000, "tiny": 120}
DENSE_SIZES = {"full": 400, "tiny": 60}
#: Best-of-N repetitions for the async scheduler shoot-out (events/sec is a
#: throughput ratio, so the record keeps the least-noisy run per queue).
ASYNC_REPS = 5
#: Dense instance for the sharded shoot-out.  The smoke size is larger than
#: the plain dense case because a sharded run pays a fixed worker/arena
#: startup cost that a 60-node instance cannot amortize.
SHARDED_SIZES = {"full": 400, "tiny": 120}
SHARD_COUNTS = {"full": (1, 2, 4), "tiny": (2,)}
#: Fault-injection instances (partial 3-tree meshes on the async tier) and
#: the length of the incremental-labeling churn sweep.
FAULT_SIZES = {"full": 200, "tiny": 40}
FAULT_UPDATES = {"full": 32, "tiny": 8}

BENCH_JSON = os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json")


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _record_bench(case: str, scale: str, tiers: dict, extra: dict = None) -> None:
    """Merge one case's per-tier timings into the BENCH_engine.json record."""
    from _bench_trajectory import merge_trajectory_record

    merge_trajectory_record(BENCH_JSON, case, scale, tiers, extra)


def _tier(seconds: float, messages: int) -> dict:
    return {
        "seconds": round(seconds, 6),
        "messages": messages,
        "msgs_per_sec": round(messages / max(seconds, 1e-9), 1),
    }


@pytest.mark.bench
def test_engine_speedup_bellman_ford_deep_path(benchmark, report_sink, bench_scale, master_seed):
    """Deep-path SSSP: hop-depth Θ(n) rounds, the legacy loop's worst case.

    Sparse rounds (≈ 1 active node) are also the vectorized tier's worst
    case — its per-round array overhead is recorded here as the crossover
    datapoint against the dense case below.
    """
    n = SIZES[bench_scale]
    graph = generators.path_graph(n)
    instance = generators.to_directed_instance(
        graph, weight_range=(1, 10), orientation="both", seed=master_seed
    )
    source = 0

    fast, t_fast = _timed(
        lambda: benchmark.pedantic(
            lambda: distributed_bellman_ford(instance, source, engine="fast"),
            rounds=1,
            iterations=1,
        )
    )
    legacy, t_legacy = _timed(
        lambda: distributed_bellman_ford(instance, source, engine="legacy")
    )
    vec, t_vec = _timed(
        lambda: distributed_bellman_ford(instance, source, engine="vectorized")
    )

    assert fast.rounds == legacy.rounds == vec.rounds
    assert fast.distances == legacy.distances == vec.distances
    assert fast.simulation.words_sent == legacy.simulation.words_sent == vec.simulation.words_sent
    assert (
        fast.simulation.max_words_per_edge_round
        == legacy.simulation.max_words_per_edge_round
        == vec.simulation.max_words_per_edge_round
    )

    msgs = fast.simulation.messages_sent
    speedup = t_legacy / max(t_fast, 1e-9)
    _record_bench(
        "bellman_ford_deep_path",
        bench_scale,
        {
            "fast": _tier(t_fast, msgs),
            "legacy": _tier(t_legacy, msgs),
            "vectorized": _tier(t_vec, msgs),
        },
        extra={"n": n, "rounds": fast.rounds},
    )
    report_sink.append(
        f"== engine shoot-out: Bellman-Ford on path n={n} ==\n"
        f"fast       {t_fast * 1000:8.1f} ms\n"
        f"legacy     {t_legacy * 1000:8.1f} ms\n"
        f"vectorized {t_vec * 1000:8.1f} ms\n"
        f"speedup {speedup:.1f}x ({fast.rounds} rounds, "
        f"{fast.simulation.messages_sent} messages)"
    )
    if bench_scale == "full":
        assert speedup >= 2.0, f"fast engine only {speedup:.2f}x faster than legacy"


@pytest.mark.bench
def test_engine_speedup_bellman_ford_dense_vectorized(report_sink, bench_scale, master_seed):
    """Dense-graph SSSP: few rounds, Θ(n²) messages per improvement wave —
    the round shape the vectorized kernel tier exists for.

    Times :meth:`CongestNetwork.run` itself (instance and CSR construction
    are identical one-time costs for every tier) and asserts the vectorized
    tier is ≥ 5× faster than fast at full scale and not slower even at the
    tiny CI smoke scale.
    """
    n = DENSE_SIZES[bench_scale]
    graph = generators.complete_graph(n)
    instance = generators.to_directed_instance(
        graph, weight_range=(1, 10), orientation="asymmetric", seed=master_seed
    )
    source = 0
    network = CongestNetwork(instance.underlying_graph())
    local_inputs = {
        u: [(e.head, e.weight) for e in instance.out_edges(u)] for u in instance.nodes()
    }
    limit = 4 * n + 16

    def run(engine):
        kernel = (
            BellmanFordKernel(source, local_inputs) if engine == "vectorized" else None
        )
        return network.run(
            lambda u: BellmanFordNode(u, source),
            max_rounds=limit,
            local_inputs=local_inputs,
            engine=engine,
            kernel=kernel,
        )

    # Warm one-time caches (numpy import, CSR arrays) outside the timings.
    network.indexed.to_arrays()
    run("vectorized")

    vec, t_vec = _timed(lambda: run("vectorized"))
    fast, t_fast = _timed(lambda: run("fast"))

    assert vec.engine == "vectorized"
    assert fast.rounds == vec.rounds
    assert fast.outputs == vec.outputs
    assert fast.messages_sent == vec.messages_sent
    assert fast.words_sent == vec.words_sent
    assert fast.max_words_per_edge_round == vec.max_words_per_edge_round

    msgs = fast.messages_sent
    speedup = t_fast / max(t_vec, 1e-9)
    _record_bench(
        "bellman_ford_dense",
        bench_scale,
        {"fast": _tier(t_fast, msgs), "vectorized": _tier(t_vec, msgs)},
        extra={
            "n": n,
            "rounds": fast.rounds,
            "speedup_vectorized_vs_fast": round(speedup, 2),
            "peak_rss_kb": _peak_rss_kb(),
        },
    )
    report_sink.append(
        f"== engine shoot-out: Bellman-Ford on K_{n} (dense rounds) ==\n"
        f"fast       {t_fast * 1000:8.1f} ms\n"
        f"vectorized {t_vec * 1000:8.1f} ms\n"
        f"speedup {speedup:.1f}x ({fast.rounds} rounds, {msgs} messages)"
    )
    assert speedup >= 1.0, (
        f"vectorized tier slower than fast on dense rounds ({speedup:.2f}x)"
    )
    if bench_scale == "full":
        assert speedup >= 5.0, (
            f"vectorized tier only {speedup:.2f}x faster than fast at full scale"
        )


@pytest.mark.bench
def test_engine_speedup_bellman_ford_sharded(report_sink, bench_scale, master_seed):
    """Dense-graph SSSP across shard worker processes.

    Same round shape as the dense vectorized case, executed by
    ``engine="sharded"`` at several shard counts, each on a persistent
    :class:`ShardPool` the way a serving deployment would run it: the
    headline ``sharded[k]`` timing is a warm pooled run (workers parked,
    graph snapshot cached worker-side), with the cold first run recorded
    alongside as ``sharded[k]_cold``.  Each count must be bit-for-bit
    identical to ``fast``; at full scale every count ≥ 2 must beat the fast
    tier on wall-clock, and at the CI smoke scale the 2-shard run must stay
    within 2× of fast.  The per-shard record keeps the plan's boundary
    fraction, the packed boundary words actually published, the per-worker
    declared-state arena bytes (asserted to shrink ~1/num_shards — the
    memory scale-out contract) and the peak-RSS high-water marks alongside
    the timing, so the exchange-volume/speedup/memory trade-off is tracked
    across PRs.
    """
    n = SHARDED_SIZES[bench_scale]
    graph = generators.complete_graph(n)
    instance = generators.to_directed_instance(
        graph, weight_range=(1, 10), orientation="asymmetric", seed=master_seed
    )
    source = 0
    network = CongestNetwork(instance.underlying_graph())
    local_inputs = {
        u: [(e.head, e.weight) for e in instance.out_edges(u)] for u in instance.nodes()
    }
    limit = 4 * n + 16

    def run(engine, num_shards=None, shard_pool=None):
        kernel = (
            BellmanFordKernel(source, local_inputs)
            if engine in ("vectorized", "sharded")
            else None
        )
        return network.run(
            lambda u: BellmanFordNode(u, source),
            max_rounds=limit,
            local_inputs=local_inputs,
            engine=engine,
            kernel=kernel,
            num_shards=num_shards,
            shard_pool=shard_pool,
        )

    # Warm one-time caches (numpy import, CSR arrays, fork machinery).
    csr = network.indexed.to_arrays()
    run("sharded", num_shards=2)

    fast, t_fast = _timed(lambda: run("fast"))
    msgs = fast.messages_sent
    tiers = {"fast": _tier(t_fast, msgs)}
    extra = {
        "n": n,
        "rounds": fast.rounds,
        "boundary_fraction": {},
        "speedup_vs_fast": {},
        "boundary_words_published": {},
        "declared_state_bytes": {},
        "peak_rss_kb": {"after_fast": _peak_rss_kb()},
    }
    lines = [
        f"== engine shoot-out: sharded Bellman-Ford on K_{n} (pooled) ==",
        f"fast         {t_fast * 1000:8.1f} ms",
    ]
    times = {}
    for shards in SHARD_COUNTS[bench_scale]:
        with ShardPool(num_shards=shards) as pool:
            cold, t_cold = _timed(lambda: run("sharded", shard_pool=pool))
            sharded, t_sharded = _timed(lambda: run("sharded", shard_pool=pool))
        for result in (cold, sharded):
            assert result.engine == "sharded"
            assert result.rounds == fast.rounds
            assert result.outputs == fast.outputs
            assert result.messages_sent == fast.messages_sent
            assert result.words_sent == fast.words_sent
            assert result.max_words_per_edge_round == fast.max_words_per_edge_round
        stats = sharded.shard_stats
        declared = stats["declared_state_bytes"]
        total_declared = sum(declared)
        if shards >= 2:
            # The memory scale-out contract: per-worker declared state is a
            # ~1/num_shards share of the whole-graph allocation (arc-balanced
            # plans bound the worst segment by twice the ideal quota).
            assert max(declared) <= 2 * total_declared / shards, (
                f"shard segment {max(declared)}B exceeds 2x the 1/{shards} "
                f"quota of {total_declared}B"
            )
        times[shards] = t_sharded
        speedup = t_fast / max(t_sharded, 1e-9)
        tiers[f"sharded[{shards}]"] = _tier(t_sharded, msgs)
        tiers[f"sharded[{shards}]_cold"] = _tier(t_cold, msgs)
        plan = ShardPlan.balanced(csr, shards)
        extra["boundary_fraction"][str(shards)] = round(plan.boundary_fraction, 4)
        extra["speedup_vs_fast"][str(shards)] = round(speedup, 2)
        extra["boundary_words_published"][str(shards)] = stats[
            "boundary_words_published"
        ]
        extra["declared_state_bytes"][str(shards)] = declared
        extra["peak_rss_kb"][f"after_sharded_{shards}"] = _peak_rss_kb()
        lines.append(
            f"sharded[{shards}]   {t_sharded * 1000:8.1f} ms warm / "
            f"{t_cold * 1000:8.1f} ms cold "
            f"({speedup:.1f}x vs fast, boundary {plan.boundary_fraction:.0%}, "
            f"max segment {max(declared)}B of {total_declared}B)"
        )
    _record_bench("bellman_ford_dense_sharded", bench_scale, tiers, extra=extra)
    report_sink.append("\n".join(lines))

    smoke_shards = min(s for s in times if s >= 2)
    smoke_speed = t_fast / max(times[smoke_shards], 1e-9)
    assert smoke_speed >= 0.5, (
        f"sharded[{smoke_shards}] tier slower than 0.5x fast ({smoke_speed:.2f}x)"
    )
    if bench_scale == "full":
        # The 2-shard beat is asserted unconditionally (the acceptance bar):
        # its speedup comes from kernelized per-round compute, not from
        # parallelism, so it holds even on a 1-core box.  Larger counts are
        # asserted only up to the core count — beyond it the extra workers
        # time-slice and the measurement is of the OS scheduler, not the
        # tier.  All counts are still recorded above.
        hostable = max(2, os.cpu_count() or 1)
        for shards, t_sharded in times.items():
            if shards < 2 or shards > hostable:
                continue
            speedup = t_fast / max(t_sharded, 1e-9)
            assert speedup > 1.0, (
                f"sharded[{shards}] tier not faster than fast at full scale "
                f"({speedup:.2f}x)"
            )


@pytest.mark.bench
def test_engine_shard_transport_shootout(report_sink, bench_scale, master_seed):
    """Shared-memory vs localhost-TCP boundary transport on the dense
    sharded Bellman-Ford case.

    Both transports run warm on a persistent :class:`ShardPool` at every
    measured shard count and must be bit-for-bit identical to ``fast``
    (results and full ledger).  The record tracks the trade the transport
    choice makes: wall seconds per flavour, the packed boundary words both
    publish, and the socket flavour's *real* bytes on the wire (per-peer
    and control-plane) — the datapoint the transport abstraction exists to
    expose.  No wall-clock bar is asserted between the flavours: the socket
    transport pays genuine syscalls per boundary frame and exists for wire
    measurement and as the multi-host stepping stone, not for speed.
    """
    n = SHARDED_SIZES[bench_scale]
    graph = generators.complete_graph(n)
    instance = generators.to_directed_instance(
        graph, weight_range=(1, 10), orientation="asymmetric", seed=master_seed
    )
    source = 0
    network = CongestNetwork(instance.underlying_graph())
    local_inputs = {
        u: [(e.head, e.weight) for e in instance.out_edges(u)] for u in instance.nodes()
    }
    limit = 4 * n + 16

    def run(engine, transport=None, shard_pool=None):
        kernel = (
            BellmanFordKernel(source, local_inputs)
            if engine in ("vectorized", "sharded")
            else None
        )
        return network.run(
            lambda u: BellmanFordNode(u, source),
            max_rounds=limit,
            local_inputs=local_inputs,
            engine=engine,
            kernel=kernel,
            shard_pool=shard_pool,
            transport=transport,
        )

    network.indexed.to_arrays()
    fast, t_fast = _timed(lambda: run("fast"))
    msgs = fast.messages_sent
    tiers = {"fast": _tier(t_fast, msgs)}
    extra = {
        "n": n,
        "rounds": fast.rounds,
        "boundary_words_published": {},
        "wire_bytes_total": {},
        "wire_bytes_by_peer": {},
        "wire_control_bytes": {},
    }
    lines = [
        f"== engine shoot-out: shard transports on K_{n} (pooled, warm) ==",
        f"fast              {t_fast * 1000:8.1f} ms",
    ]
    for shards in SHARD_COUNTS[bench_scale]:
        for transport in ("shm", "socket"):
            with ShardPool(num_shards=shards) as pool:
                run("sharded", transport=transport, shard_pool=pool)  # cold
                result, t_warm = _timed(
                    lambda: run("sharded", transport=transport, shard_pool=pool)
                )
            assert result.engine == "sharded"
            assert result.rounds == fast.rounds
            assert result.outputs == fast.outputs
            assert result.messages_sent == fast.messages_sent
            assert result.words_sent == fast.words_sent
            assert result.max_words_per_edge_round == fast.max_words_per_edge_round
            stats = result.shard_stats
            assert stats["transport"] == transport
            key = f"sharded[{shards}]/{transport}"
            tiers[key] = _tier(t_warm, msgs)
            extra["boundary_words_published"][key] = stats[
                "boundary_words_published"
            ]
            extra["wire_bytes_total"][key] = stats["wire_bytes_total"]
            extra["wire_control_bytes"][key] = stats["wire_control_bytes"]
            extra["wire_bytes_by_peer"][key] = stats["wire_bytes_by_peer"]
            lines.append(
                f"{key:17s} {t_warm * 1000:8.1f} ms "
                f"({stats['boundary_words_published']} boundary words, "
                f"{stats['wire_bytes_total']} wire bytes)"
            )
    _record_bench("bellman_ford_shard_transport", bench_scale, tiers, extra=extra)
    report_sink.append("\n".join(lines))


@pytest.mark.bench
def test_engine_async_unit_delay(report_sink, bench_scale, master_seed):
    """Unit-delay async vs fast, bucketed calendar queue vs reference heap.

    Runs the *same* deep-path and dense instances as the synchronous
    shoot-outs above (``SIZES``/``DENSE_SIZES``), so the async tier's cost
    is directly comparable to the fast/legacy/vectorized timings of the
    neighbouring records.  The async tier is a *semantics/timing* tier, not
    a throughput tier: it pays one event per arc per pulse for the
    synchronizer's envelopes, so no speedup over ``fast`` is asserted.
    What is asserted, at every scale:

    * bit-for-bit equality with ``fast`` under the unit-delay model
      (results and ledger) for both event queues, and identical
      ``events_processed`` between the queues;
    * ``virtual_time == rounds``;
    * the bucketed calendar queue's events/sec beats the reference heap on
      both round shapes (the smoke bar CI runs at tiny scale), and by ≥ 2×
      on the deep-path case — the sparse-pulse shape whose per-event heap
      churn the calendar queue exists to eliminate (the dense case is
      bounded by shared protocol work per event, so only the ≥ 1× bar
      applies there).

    Each queue's record keeps the best of ``ASYNC_REPS`` runs (events/sec
    from ``async_stats``, the in-loop measurement) so the ratio is not an
    artifact of one noisy run.
    """
    from repro.congest.scheduler import UnitDelay

    tiers = {}
    extra = {
        "events": {},
        "events_per_sec": {},
        "bucketed_vs_heap": {},
        "n": {},
        "rounds": {},
    }
    lines = ["== engine shoot-out: unit-delay async Bellman-Ford =="]
    cases = {
        "deep_path": generators.path_graph(SIZES[bench_scale]),
        "dense": generators.complete_graph(DENSE_SIZES[bench_scale]),
    }
    for case, graph in cases.items():
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 10),
            orientation="both" if case == "deep_path" else "asymmetric",
            seed=master_seed,
        )
        fast, t_fast = _timed(
            lambda: distributed_bellman_ford(instance, 0, engine="fast")
        )
        msgs = fast.simulation.messages_sent
        tiers[f"fast_{case}"] = _tier(t_fast, msgs)
        extra["n"][case] = graph.num_nodes()
        extra["rounds"][case] = fast.rounds
        best_eps = {}
        for scheduler in ("heap", "bucketed"):
            best = None
            for _ in range(ASYNC_REPS):
                asy, t_async = _timed(
                    lambda: distributed_bellman_ford(
                        instance, 0, engine="async", delay_model=UnitDelay(),
                        scheduler=scheduler,
                    )
                )
                sim = asy.simulation
                assert sim.engine == "async"
                assert asy.rounds == fast.rounds
                assert asy.distances == fast.distances
                assert asy.parents == fast.parents
                assert sim.messages_sent == fast.simulation.messages_sent
                assert sim.words_sent == fast.simulation.words_sent
                assert (
                    sim.max_words_per_edge_round
                    == fast.simulation.max_words_per_edge_round
                )
                assert sim.virtual_time == asy.rounds
                eps = sim.async_stats["events_per_sec"]
                if best is None or eps > best[0]:
                    best = (eps, t_async, sim)
            eps, t_async, sim = best
            events = sim.async_stats["events_processed"]
            # Both queues process the same schedule: same event count.
            assert extra["events"].setdefault(case, events) == events
            best_eps[scheduler] = eps
            tiers[f"async_{case}_{scheduler}"] = _tier(t_async, msgs)
            extra["events_per_sec"][f"{case}_{scheduler}"] = round(eps, 1)
            lines.append(
                f"{case:10s} async/{scheduler:8s} {t_async * 1000:8.1f} ms "
                f"({events} events, {eps:,.0f} events/s, {fast.rounds} rounds)"
            )
        ratio = best_eps["bucketed"] / max(best_eps["heap"], 1e-9)
        extra["bucketed_vs_heap"][case] = round(ratio, 2)
        lines.append(
            f"{case:10s} fast {t_fast * 1000:8.1f} ms | "
            f"bucketed/heap {ratio:.2f}x"
        )
        # The calendar queue must never lose to the reference heap (CI
        # smoke bar, tiny scale included).
        assert ratio >= 1.0, (
            f"bucketed scheduler slower than heap on {case} ({ratio:.2f}x)"
        )
    assert extra["bucketed_vs_heap"]["deep_path"] >= 2.0, (
        "bucketed scheduler below the 2x deep-path bar vs heap "
        f"({extra['bucketed_vs_heap']['deep_path']:.2f}x)"
    )
    _record_bench("bellman_ford_async", bench_scale, tiers, extra=extra)
    report_sink.append("\n".join(lines))


@pytest.mark.bench
def test_engine_fault_churn_bellman_ford(report_sink, bench_scale, master_seed):
    """Bellman-Ford under seeded faults + incremental label maintenance.

    Two halves of the robustness story, both recorded as the
    ``bellman_ford_churn`` trajectory entry:

    * **Reconvergence cost.**  SSSP on a partial 3-tree mesh under a
      ``MassFailure(0.3)`` node outage and a steady :class:`Churn` rotation,
      against the fault-free async baseline.  Every scenario is transient,
      so the final distances must equal the fault-free Dijkstra oracle
      (asserted); the record keeps the scheduler's events/sec under faults,
      the verdict's rounds-to-reconverge and the payloads actually dropped,
      so fault-path overhead in the event loop shows up across PRs.
    * **Incremental vs full rebuild.**  A seeded weight-churn sweep applied
      to a built :class:`DistanceLabeling` via ``apply_edge_update`` —
      timed per update and checked against a from-scratch
      ``build_distance_labeling`` on the post-churn instance on sampled
      pairwise queries — with the wall-time ratio recorded (the incremental
      path exists precisely because the rebuild is orders of magnitude
      more work per update).
    """
    import random

    from repro.congest.faults import Churn, MassFailure
    from repro.congest.scheduler import UnitDelay
    from repro.graphs.properties import dijkstra
    from repro.labeling.construction import build_distance_labeling

    n = FAULT_SIZES[bench_scale]
    graph = generators.partial_k_tree(n, 3, seed=master_seed)
    instance = generators.to_directed_instance(
        graph, weight_range=(1, 9), orientation="both", seed=master_seed
    )
    source = 0
    oracle = dijkstra(instance, source)

    def run(fault_schedule=None):
        return distributed_bellman_ford(
            instance,
            source,
            engine="async",
            delay_model=UnitDelay(),
            fault_schedule=fault_schedule,
        )

    scenarios = {
        "mass_failure": MassFailure(
            fraction=0.3, at=6, outage=6, kind="node", seed=master_seed
        ),
        "churn": Churn(cycles=4, period=6, outage=3, start=4, seed=master_seed),
    }

    baseline, t_base = _timed(run)
    tiers = {
        "async_fault_free": _tier(t_base, baseline.simulation.messages_sent)
    }
    extra = {
        "n": n,
        "events_per_sec": {},
        "rounds_to_reconverge": {},
        "faults_injected": {},
        "payloads_dropped": {},
    }
    base_events = baseline.simulation.async_stats["events_processed"]
    extra["events_per_sec"]["fault_free"] = round(
        base_events / max(t_base, 1e-9), 1
    )
    lines = [
        f"== fault injection: async Bellman-Ford on partial 3-tree n={n} ==",
        f"fault-free   {t_base * 1000:8.1f} ms "
        f"({base_events} events, {baseline.rounds} rounds)",
    ]
    for name, model in scenarios.items():
        result, t_run = _timed(lambda: run(fault_schedule=model))
        sim = result.simulation
        verdict = sim.fault_verdict
        # Transient faults: after the last recovery the protocol must
        # reconverge to the fault-free oracle on the intact mesh.
        assert verdict.reconverged
        assert not verdict.down_nodes_at_end and not verdict.down_edges_at_end
        for v, d in oracle.items():
            assert result.distances[v] == d
        events = sim.async_stats["events_processed"]
        tiers[f"async_{name}"] = _tier(t_run, sim.messages_sent)
        extra["events_per_sec"][name] = round(events / max(t_run, 1e-9), 1)
        extra["rounds_to_reconverge"][name] = verdict.rounds_to_reconverge
        extra["faults_injected"][name] = verdict.faults_injected
        extra["payloads_dropped"][name] = verdict.payloads_dropped
        lines.append(
            f"{name:12s} {t_run * 1000:8.1f} ms "
            f"({events} events, {verdict.faults_injected} faults, "
            f"{verdict.payloads_dropped} payloads dropped, "
            f"reconverged in {verdict.rounds_to_reconverge} rounds)"
        )

    # -- incremental label maintenance vs full rebuild under weight churn --
    labeling, t_build = _timed(
        lambda: build_distance_labeling(instance).labeling
    )
    labeling.attach_instance(instance)
    churned = instance.copy()
    rng = random.Random(master_seed * 9176 + 11)
    edges = sorted(
        {(e.tail, e.head) for u in instance.nodes() for e in instance.out_edges(u)}
    )
    updates = [
        (tail, head, float(rng.randint(1, 9)))
        for tail, head in rng.sample(edges, FAULT_UPDATES[bench_scale])
    ]
    t_incremental = 0.0
    hubs_recomputed = 0
    for tail, head, weight in updates:
        stats, t_step = _timed(
            lambda: labeling.apply_edge_update(tail, head, weight)
        )
        t_incremental += t_step
        hubs_recomputed += stats.from_hubs_recomputed + stats.to_hubs_recomputed
        for e in list(churned.out_edges(tail)):
            if e.head == head:
                churned.remove_edge(e.eid)
        churned.add_edge(tail, head, weight=weight)
    rebuilt, t_rebuild = _timed(
        lambda: build_distance_labeling(churned).labeling
    )
    nodes = list(instance.nodes())
    for _ in range(64):
        u, v = rng.choice(nodes), rng.choice(nodes)
        assert labeling.distance(u, v) == rebuilt.distance(u, v)

    count = len(updates)
    per_update = t_incremental / count
    extra["labeling"] = {
        "updates": count,
        "build_seconds": round(t_build, 6),
        "incremental_seconds_total": round(t_incremental, 6),
        "incremental_ms_per_update": round(per_update * 1000, 3),
        "rebuild_seconds": round(t_rebuild, 6),
        "rebuild_vs_incremental_update": round(t_rebuild / max(per_update, 1e-9), 1),
        "hubs_recomputed": hubs_recomputed,
    }
    lines.append(
        f"labels: {count} weight updates in {t_incremental * 1000:.1f} ms "
        f"({per_update * 1000:.2f} ms/update, {hubs_recomputed} hub recomputes) "
        f"vs full rebuild {t_rebuild * 1000:.1f} ms "
        f"({t_rebuild / max(per_update, 1e-9):.0f}x one update)"
    )
    _record_bench("bellman_ford_churn", bench_scale, tiers, extra=extra)
    report_sink.append("\n".join(lines))
    # The incremental path must beat a from-scratch rebuild per update even
    # at smoke scale — a 1x ratio would mean the affectedness filters are
    # recomputing every hub.
    assert per_update < t_rebuild, (
        f"apply_edge_update ({per_update:.4f}s) not faster than a full "
        f"rebuild ({t_rebuild:.4f}s)"
    )


@pytest.mark.bench
def test_engine_speedup_bfs_broadcast_grid(benchmark, report_sink, bench_scale, master_seed):
    """BFS tree + flooding broadcast on a grid (short, wide simulations)."""
    side = 40 if bench_scale == "full" else 10
    graph = generators.grid_graph(side, side)
    network = CongestNetwork(graph)
    root = (0, 0)

    def run_pair(engine):
        _, _, bfs = build_bfs_tree(network, root, engine=engine)
        _, bc = broadcast(network, root, 42, engine=engine)
        return bfs, bc

    (fast_bfs, fast_bc), t_fast = _timed(
        lambda: benchmark.pedantic(lambda: run_pair("fast"), rounds=1, iterations=1)
    )
    (legacy_bfs, legacy_bc), t_legacy = _timed(lambda: run_pair("legacy"))

    assert fast_bfs.rounds == legacy_bfs.rounds
    assert fast_bfs.outputs == legacy_bfs.outputs
    assert fast_bc.rounds == legacy_bc.rounds
    assert fast_bc.words_sent == legacy_bc.words_sent

    msgs = fast_bfs.messages_sent + fast_bc.messages_sent
    speedup = t_legacy / max(t_fast, 1e-9)
    _record_bench(
        "bfs_broadcast_grid",
        bench_scale,
        {"fast": _tier(t_fast, msgs), "legacy": _tier(t_legacy, msgs)},
        extra={"side": side},
    )
    report_sink.append(
        f"== engine shoot-out: BFS+broadcast on {side}x{side} grid ==\n"
        f"fast   {t_fast * 1000:8.1f} ms\n"
        f"legacy {t_legacy * 1000:8.1f} ms\n"
        f"speedup {speedup:.1f}x"
    )
    if bench_scale == "full":
        assert speedup >= 1.2, f"fast engine only {speedup:.2f}x faster than legacy"


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: this module's shoot-out as runner cells.

    The same engine-tier comparisons — Bellman-Ford on the deep path and
    the dense clique across every tier, BFS+broadcast on the grid — as
    resumable ``repro-bench`` cells (``repro-bench run -p bellman_ford
    -e fast -e vectorized ...`` reproduces any record here one cell at a
    time).
    """
    from repro.experiments.matrix import CellSpec

    cells = [
        CellSpec("bellman_ford", engine, family, scale, seed)
        for family in ("path", "dense")
        for engine in ("legacy", "fast", "vectorized", "sharded", "async")
    ]
    cells += [
        CellSpec(protocol, engine, "grid", scale, seed)
        for protocol in ("bfs_tree", "broadcast")
        for engine in ("legacy", "fast")
    ]
    return cells
