"""Engine shoot-out: the indexed fast path vs the legacy reference loop.

Measures the same protocol executions (distributed Bellman-Ford on a deep
instance, BFS tree + flooding broadcast on a grid) on both
:meth:`CongestNetwork.run` engines and checks that

* the results (rounds, outputs, words) are identical, and
* the fast engine is at least 2× faster at full scale (the deep-path
  Bellman-Ford case is worst-case for the legacy loop's per-round O(n)
  inbox rebuild; the fast path's worklist makes it O(active)).

Wall-clock assertions are gated to ``--bench-scale full`` so the CI smoke
run (``tiny``) stays timing-independent.
"""

import time

import pytest

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.congest.network import CongestNetwork
from repro.congest.primitives import broadcast, build_bfs_tree
from repro.graphs import generators

SIZES = {"full": 2000, "tiny": 120}


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


@pytest.mark.bench
def test_engine_speedup_bellman_ford_deep_path(benchmark, report_sink, bench_scale, master_seed):
    """Deep-path SSSP: hop-depth Θ(n) rounds, the legacy loop's worst case."""
    n = SIZES[bench_scale]
    graph = generators.path_graph(n)
    instance = generators.to_directed_instance(
        graph, weight_range=(1, 10), orientation="both", seed=master_seed
    )
    source = 0

    fast, t_fast = _timed(
        lambda: benchmark.pedantic(
            lambda: distributed_bellman_ford(instance, source, engine="fast"),
            rounds=1,
            iterations=1,
        )
    )
    legacy, t_legacy = _timed(
        lambda: distributed_bellman_ford(instance, source, engine="legacy")
    )

    assert fast.rounds == legacy.rounds
    assert fast.distances == legacy.distances
    assert fast.simulation.words_sent == legacy.simulation.words_sent
    assert (
        fast.simulation.max_words_per_edge_round
        == legacy.simulation.max_words_per_edge_round
    )

    speedup = t_legacy / max(t_fast, 1e-9)
    report_sink.append(
        f"== engine shoot-out: Bellman-Ford on path n={n} ==\n"
        f"fast   {t_fast * 1000:8.1f} ms\n"
        f"legacy {t_legacy * 1000:8.1f} ms\n"
        f"speedup {speedup:.1f}x ({fast.rounds} rounds, "
        f"{fast.simulation.messages_sent} messages)"
    )
    if bench_scale == "full":
        assert speedup >= 2.0, f"fast engine only {speedup:.2f}x faster than legacy"


@pytest.mark.bench
def test_engine_speedup_bfs_broadcast_grid(benchmark, report_sink, bench_scale, master_seed):
    """BFS tree + flooding broadcast on a grid (short, wide simulations)."""
    side = 40 if bench_scale == "full" else 10
    graph = generators.grid_graph(side, side)
    network = CongestNetwork(graph)
    root = (0, 0)

    def run_pair(engine):
        _, _, bfs = build_bfs_tree(network, root, engine=engine)
        _, bc = broadcast(network, root, 42, engine=engine)
        return bfs, bc

    (fast_bfs, fast_bc), t_fast = _timed(
        lambda: benchmark.pedantic(lambda: run_pair("fast"), rounds=1, iterations=1)
    )
    (legacy_bfs, legacy_bc), t_legacy = _timed(lambda: run_pair("legacy"))

    assert fast_bfs.rounds == legacy_bfs.rounds
    assert fast_bfs.outputs == legacy_bfs.outputs
    assert fast_bc.rounds == legacy_bc.rounds
    assert fast_bc.words_sent == legacy_bc.words_sent

    speedup = t_legacy / max(t_fast, 1e-9)
    report_sink.append(
        f"== engine shoot-out: BFS+broadcast on {side}x{side} grid ==\n"
        f"fast   {t_fast * 1000:8.1f} ms\n"
        f"legacy {t_legacy * 1000:8.1f} ms\n"
        f"speedup {speedup:.1f}x"
    )
    if bench_scale == "full":
        assert speedup >= 1.2, f"fast engine only {speedup:.2f}x faster than legacy"
