"""Distance-query serving shoot-out: scalar point serving vs packed batching.

The serving stack exists so the paper's payoff — ``dist(u, v)`` answered
from two labels — survives sustained traffic.  This bench measures the
three ways a corpus can be served and records them as the
``BENCH_serving.json`` trajectory (path overridable via the
``BENCH_SERVING_JSON`` environment variable):

* ``scalar_point`` — the pre-packing baseline: a server decoding each
  point query with dict-form ``decode_distance``
  (``QueryServer(decode="scalar")``), one request frame per query.
* ``packed_point`` — the same point traffic against the packed server,
  where the per-tick micro-batcher coalesces concurrent points into one
  vectorized kernel call.
* ``packed_batched`` — client-side batches (one frame, one
  ``label_query_batch`` kernel call per request) against the packed
  server.

Load is generated open-loop: client *processes* schedule arrivals at a
fixed rate and measure each request's latency from its **scheduled**
arrival time (not the send time), so a saturated server shows up as
latency growth instead of silently throttling the generator
(coordination-omission-corrected, after the PROBE ``http_load_test``
exemplar).  Each tier records achieved QPS and p50/p95/p99 latency.

Assertions: the packed batched path must beat the scalar point path by
≥10× QPS at ``--bench-scale full`` (the tentpole claim: batching kills
the per-request overhead that dominates scalar serving), and every
packed-server worker must report its label arrays memory-mapped with
zero copied label bytes (the multi-process zero-copy contract).  The
in-process kernel microbench records raw decode throughput — scalar
``decode_distance`` vs the batched kernel on the same pairs — without a
wall-clock assertion: with the PR's O(|smaller label|) scalar decoder
the python kernel is roughly at parity per pair, and the batched win
comes from serving-side amortization (and the numba twin where numba is
installed).

The short smoke case runs unmarked (both the numpy and no-numpy CI jobs
exercise it); the full load sweep is marked ``serving`` and deselected
by default.
"""

import math
import os
import random
import time

import pytest

from _bench_trajectory import merge_trajectory_record
from repro.congest.engine import _mp_context
from repro.congest.kernels import vectorized_available
from repro.labeling.construction import build_distance_labeling
from repro.labeling.labels import decode_distance
from repro.labeling.packed import PackedLabeling
from repro.serving import LabelStore, QueryClient, ServerPool

BENCH_JSON = os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json")

#: Corpus graph size (partial 3-tree, the workhorse family).
SIZES = {"full": 240, "tiny": 24}
#: Pairs per in-process kernel measurement.
KERNEL_PAIRS = {"full": 50_000, "tiny": 1_000}
#: Open-loop load shape per tier: client processes × per-client arrival
#: rate (req/s) × seconds, plus the client-side batch size for the
#: batched tier.
LOAD = {
    "full": {
        "clients": 3, "rate": 8000.0, "duration": 2.0,
        "batch_pairs": 20_000, "batch_rate": 12.0, "batch_duration": 2.0,
    },
    "tiny": {
        "clients": 2, "rate": 200.0, "duration": 0.5,
        "batch_pairs": 200, "batch_rate": 10.0, "batch_duration": 0.5,
    },
}


def _corpus_graph(n: int, seed: int):
    from repro.graphs.generators import partial_k_tree, to_directed_instance

    g = partial_k_tree(n, 3, 0.6, seed=seed)
    return to_directed_instance(
        g, weight_range=(1, 9), orientation="asymmetric", seed=seed
    )


def _seeded_pairs(vertices, count: int, seed: int):
    rng = random.Random(seed)
    return [
        (rng.choice(vertices), rng.choice(vertices)) for _ in range(count)
    ]


def _percentiles(latencies) -> dict:
    ordered = sorted(latencies)

    def pct(p: float) -> float:
        return ordered[min(len(ordered) - 1, int(p / 100.0 * len(ordered)))]

    return {
        "p50_ms": round(pct(50.0) * 1000.0, 3),
        "p95_ms": round(pct(95.0) * 1000.0, 3),
        "p99_ms": round(pct(99.0) * 1000.0, 3),
    }


# --------------------------------------------------------------------------- #
# Open-loop client processes
# --------------------------------------------------------------------------- #
def _open_loop_client(address, graph, pairs, rate, duration, batch, out_queue):
    """Send requests at a fixed arrival rate; latencies are measured from
    each request's *scheduled* arrival, so server backlog is charged to
    the request, not hidden by a stalled generator."""
    latencies = []
    served = 0
    with QueryClient(address, timeout=60.0) as client:
        client.ping()  # connection + first-tick cost off the measured path
        interval = 1.0 / rate
        start = time.perf_counter()
        i = 0
        while True:
            scheduled = start + i * interval
            if scheduled - start >= duration:
                break
            now = time.perf_counter()
            if now < scheduled:
                time.sleep(scheduled - now)
            if batch is None:
                u, v = pairs[i % len(pairs)]
                client.point(graph, u, v)
                served += 1
            else:
                chunk = [
                    pairs[(i * batch + j) % len(pairs)] for j in range(batch)
                ]
                client.query(
                    graph, [u for u, _ in chunk], [v for _, v in chunk]
                )
                served += batch
            latencies.append(time.perf_counter() - scheduled)
            i += 1
        elapsed = time.perf_counter() - start
    out_queue.put((latencies, served, elapsed))


def _run_load(addresses, graph, pairs, clients, rate, duration, batch=None):
    """Fan `clients` open-loop processes across the worker addresses."""
    ctx = _mp_context()
    out_queue = ctx.Queue()
    procs = []
    for c in range(clients):
        procs.append(
            ctx.Process(
                target=_open_loop_client,
                args=(
                    addresses[c % len(addresses)], graph,
                    pairs[c::clients] or pairs, rate, duration, batch,
                    out_queue,
                ),
                daemon=True,
            )
        )
    for p in procs:
        p.start()
    results = [out_queue.get(timeout=120.0) for _ in procs]
    for p in procs:
        p.join(timeout=30.0)
    latencies = [lat for lats, _served, _el in results for lat in lats]
    served = sum(s for _lats, s, _el in results)
    elapsed = max(el for _lats, _s, el in results)
    tier = {"qps": round(served / elapsed, 1), "requests": len(latencies)}
    tier.update(_percentiles(latencies))
    return tier


# --------------------------------------------------------------------------- #
# Cases
# --------------------------------------------------------------------------- #
def test_kernel_microbench(bench_scale, master_seed, tmp_path):
    """In-process decode throughput: scalar dict decode vs packed batch."""
    n = SIZES[bench_scale]
    instance = _corpus_graph(n, master_seed + n)
    labeling = build_distance_labeling(instance).labeling
    packed = PackedLabeling.from_labeling(labeling)
    pairs = _seeded_pairs(
        list(packed.vertices()), KERNEL_PAIRS[bench_scale], master_seed
    )
    us = [u for u, _ in pairs]
    vs = [v for _, v in pairs]

    t0 = time.perf_counter()
    expected = [
        decode_distance(labeling.label(u), labeling.label(v)) for u, v in pairs
    ]
    scalar_s = time.perf_counter() - t0

    best = math.inf
    for _ in range(3):
        t0 = time.perf_counter()
        got = packed.query(us, vs)
        best = min(best, time.perf_counter() - t0)

    assert list(got) == expected
    tiers = {
        "scalar_decode": {
            "seconds": round(scalar_s, 6),
            "qps": round(len(pairs) / scalar_s, 1),
        },
        "packed_batched": {
            "seconds": round(best, 6),
            "qps": round(len(pairs) / best, 1),
            "backend": "numpy" if vectorized_available() else "pure",
        },
    }
    merge_trajectory_record(
        BENCH_JSON, "kernel_micro", bench_scale, tiers,
        {"n": n, "pairs": len(pairs), "label_entries": packed.total_entries},
    )


def _build_store(tmp_path, bench_scale, master_seed):
    n = SIZES[bench_scale]
    name = f"ktree{n}"
    instance = _corpus_graph(n, master_seed + n)
    store_dir = tmp_path / "store"
    store = LabelStore.build({name: instance}, store_dir)
    return store_dir, store, name


def test_serving_smoke(bench_scale, master_seed, tmp_path):
    """Two workers over one mapped store: correct answers, zero label copies.

    This is the CI smoke case — it must pass on the no-numpy job too
    (pure-python packed fallback; the zero-copy assertion is numpy-only
    because the pure backend has no mmap to share).
    """
    store_dir, store, name = _build_store(tmp_path, bench_scale, master_seed)
    packed = store.get(name)
    pairs = _seeded_pairs(list(packed.vertices()), 50, master_seed + 1)
    us = [u for u, _ in pairs]
    vs = [v for _, v in pairs]
    expected = [packed.distance(u, v) for u, v in pairs]

    with ServerPool(store_dir, num_workers=2) as pool:
        assert len(pool.addresses) == 2
        for address in pool.addresses:
            with QueryClient(address) as client:
                assert client.query(name, us, vs) == expected
                assert client.point(name, us[0], vs[0]) == expected[0]
                stats = client.server_stats()
                store_stats = stats["store"]
                if vectorized_available():
                    # The zero-copy contract: every worker serves the same
                    # mapped pages; no label bytes were copied to its heap.
                    assert store_stats["copied_label_bytes"] == 0
                    assert store_stats["mapped_bytes"] > 0
                assert stats["counters"]["dropped_clients"] == 0
    merge_trajectory_record(
        BENCH_JSON, "serving_smoke", bench_scale,
        {
            "packed_point": {
                "workers": 2,
                "mapped_bytes": store_stats["mapped_bytes"],
                "copied_label_bytes": store_stats["copied_label_bytes"],
                "rss_kb": stats["rss_kb"],
            }
        },
        {"n": SIZES[bench_scale], "graph": name},
    )


@pytest.mark.serving
def test_serving_load_sweep(bench_scale, master_seed, tmp_path):
    """The full open-loop sweep: scalar point vs packed point vs batched."""
    store_dir, store, name = _build_store(tmp_path, bench_scale, master_seed)
    packed = store.get(name)
    load = LOAD[bench_scale]
    pairs = _seeded_pairs(
        list(packed.vertices()), max(load["batch_pairs"], 10_000),
        master_seed + 2,
    )

    tiers = {}
    with ServerPool(store_dir, num_workers=2, decode="scalar") as pool:
        tiers["scalar_point"] = _run_load(
            pool.addresses, name, pairs,
            load["clients"], load["rate"], load["duration"],
        )
    with ServerPool(store_dir, num_workers=2) as pool:
        tiers["packed_point"] = _run_load(
            pool.addresses, name, pairs,
            load["clients"], load["rate"], load["duration"],
        )
        tiers["packed_batched"] = _run_load(
            pool.addresses, name, pairs,
            load["clients"], load["batch_rate"], load["batch_duration"],
            batch=load["batch_pairs"],
        )
        workers = []
        for address in pool.addresses:
            with QueryClient(address) as client:
                stats = client.server_stats()
            workers.append(
                {
                    "rss_kb": stats["rss_kb"],
                    "mapped_bytes": stats["store"]["mapped_bytes"],
                    "copied_label_bytes": stats["store"]["copied_label_bytes"],
                    "max_batch": stats["counters"]["max_batch"],
                    "batch_calls": stats["counters"]["batch_calls"],
                    "point_queries": stats["counters"]["point_queries"],
                }
            )
            if vectorized_available():
                assert stats["store"]["copied_label_bytes"] == 0
                assert stats["store"]["mapped_bytes"] > 0

    speedup = tiers["packed_batched"]["qps"] / tiers["scalar_point"]["qps"]
    merge_trajectory_record(
        BENCH_JSON, "serving_load", bench_scale, tiers,
        {
            "n": SIZES[bench_scale],
            "graph": name,
            "workers": workers,
            "speedup_batched_vs_scalar_point": round(speedup, 1),
        },
    )
    if bench_scale == "full":
        # The tentpole claim: batching beats scalar point serving ≥10×.
        assert speedup >= 10.0, (
            f"packed batched path only {speedup:.1f}x over scalar point "
            f"serving ({tiers['packed_batched']['qps']} vs "
            f"{tiers['scalar_point']['qps']} QPS)"
        )


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: the serving decode backends as runner cells.

    ``repro-bench run -p serving_query -e scalar -e packed -f ktree``
    reproduces the kernel-microbench half of this module (scalar
    ``decode_distance`` vs the packed batch kernel on identical pairs);
    the open-loop multi-process load sweep stays bench-only.
    """
    from repro.experiments.matrix import CellSpec

    return [
        CellSpec("serving_query", engine, "ktree", scale, seed)
        for engine in ("scalar", "packed")
    ]
