"""Benchmark harness: one module per experiment E1–E9 (see DESIGN.md §3)."""
