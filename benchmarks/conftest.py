"""Shared configuration for the benchmark harness.

Every benchmark module regenerates the rows of one experiment (E1–E9) and
checks the *shape* of the paper's claim (who wins, how quantities scale); the
absolute wall-clock timings reported by pytest-benchmark measure the simulator
itself, not a real network, and are therefore secondary.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest


def pytest_configure(config):
    config.addinivalue_line("markers", "bench: benchmark harness tests")


@pytest.fixture(scope="session")
def report_sink():
    """Collects rendered result tables so a session summary can be printed."""
    tables = []
    yield tables
    if tables:
        print("\n\n" + "\n\n".join(tables))
