"""Shared configuration for the benchmark harness.

Every benchmark module regenerates the rows of one experiment (E1–E9) and
checks the *shape* of the paper's claim (who wins, how quantities scale); the
absolute wall-clock timings reported by pytest-benchmark measure the simulator
itself, not a real network, and are therefore secondary.
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for _path in (_SRC, _HERE):
    if _path not in sys.path:
        sys.path.insert(0, _path)

import pytest

from _bench_trajectory import merge_trajectory_record

#: Trajectory files written by the benchmark modules, each overridable via
#: its environment variable (the CI jobs `cat` these after the run).
TRAJECTORIES = {
    "engine": os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json"),
    "serving": os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json"),
}


def pytest_configure(config):
    config.addinivalue_line("markers", "bench: benchmark harness tests")


@pytest.fixture(scope="session")
def report_sink():
    """Collects rendered result tables so a session summary can be printed."""
    tables = []
    yield tables
    if tables:
        print("\n\n" + "\n\n".join(tables))


@pytest.fixture(scope="session")
def trajectory_recorder():
    """The shared ``BENCH_*.json`` merge-writer (see `_bench_trajectory`)."""
    return merge_trajectory_record
