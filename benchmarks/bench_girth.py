"""E7 — weighted girth (Theorem 5): exactness (directed), upper-bound + whp exactness (undirected)."""

import math

import pytest

from repro.analysis.experiments import run_girth_experiment
from repro.analysis.workloads import workload
from repro.baselines.congest_bounds import diameter_lower_bound_rounds


@pytest.mark.bench
def test_e7_girth_directed_and_undirected(benchmark, report_sink):
    directed = [
        workload("chords(40,5)", "cycle_chords", seed=1, n=40, chords=5),
        workload("pkt(40,3)", "partial_k_tree", seed=2, n=40, k=3),
    ]
    undirected = [
        workload("chords(18,3)", "cycle_chords", seed=3, n=18, chords=3),
        workload("grid(4x5)", "grid", rows=4, cols=5),
    ]
    table = benchmark.pedantic(
        lambda: run_girth_experiment(directed, undirected, seed=1, trials_per_scale=6),
        rounds=1,
        iterations=1,
    )
    report_sink.append(table.to_text())
    for row in table:
        if row["mode"] == "directed":
            assert row["match"], f"{row['workload']}: directed girth mismatch"
        else:
            # Lemma 6: never an underestimate; whp exact (seeded run is exact here).
            assert row["girth"] >= row["exact_girth"] - 1e-9


@pytest.mark.bench
def test_e7_girth_vs_diameter_separation(benchmark, report_sink):
    """The paper's separation: girth is fully-polynomial, diameter needs Ω̃(n) rounds."""
    directed = [
        workload("chords(60,5)", "cycle_chords", seed=5, n=60, chords=5),
        workload("chords(120,5)", "cycle_chords", seed=6, n=120, chords=5),
    ]
    table = benchmark.pedantic(
        lambda: run_girth_experiment(directed, [], seed=2), rounds=1, iterations=1
    )
    report_sink.append(table.to_text())
    rows = list(table)
    for row in rows:
        assert row["match"]
    # Girth rounds grow mildly with n, while the diameter lower bound is Ω̃(n):
    # doubling n doubles the diameter bound but must not double our advantage away.
    small, large = rows[0], rows[1]
    our_growth = large["rounds"] / max(1, small["rounds"])
    diam_growth = diameter_lower_bound_rounds(120) / diameter_lower_bound_rounds(60)
    assert our_growth < 4 * diam_growth


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: E7 as a ``repro-bench`` cell."""
    from repro.experiments.matrix import CellSpec

    return [CellSpec("girth", "-", "chords", scale, seed)]
