"""E1 — balanced separators (Lemma 1): size ≤ 400(τ+1)², balance, round scaling."""

import pytest

from repro.analysis.experiments import run_separator_experiment
from repro.analysis.workloads import sweep_k, sweep_n


@pytest.mark.bench
def test_e1_separator_size_and_balance(benchmark, report_sink):
    workloads = sweep_k(fixed_n=200, ks=[2, 3, 4, 5], seed=1)

    table = benchmark.pedantic(
        lambda: run_separator_experiment(workloads, seed=1), rounds=1, iterations=1
    )
    report_sink.append(table.to_text())

    for row in table:
        assert row["valid"], f"{row['workload']} produced an unbalanced separator"
        assert row["sep_size"] <= row["size_bound"]
    # Shape: separator size grows with τ but stays far below n.
    sizes = table.column("sep_size")
    assert max(sizes) < 200


@pytest.mark.bench
def test_e1_separator_rounds_scale_with_diameter(benchmark, report_sink):
    workloads = sweep_n(fixed_k=3, ns=[100, 200, 400], seed=2)
    table = benchmark.pedantic(
        lambda: run_separator_experiment(workloads, seed=2), rounds=1, iterations=1
    )
    report_sink.append(table.to_text())
    rows = list(table)
    # Rounds grow with n only through the diameter term (Õ(τ²D + τ³)).
    assert rows[-1]["rounds"] <= 25 * max(1, rows[0]["rounds"])


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: E1 as a ``repro-bench`` cell."""
    from repro.experiments.matrix import CellSpec

    return [CellSpec("separator", "-", "ktree", scale, seed)]
