"""E5 — constrained distance labeling overhead (Theorem 3) as |Q| grows."""

import pytest

from repro.analysis.experiments import run_stateful_walk_experiment


@pytest.mark.bench
def test_e5_cdl_overhead_grows_with_state_count(benchmark, report_sink):
    table = benchmark.pedantic(
        lambda: run_stateful_walk_experiment(n=36, k=3, palettes=(2, 3, 4), seed=1),
        rounds=1,
        iterations=1,
    )
    report_sink.append(table.to_text())

    colored = [row for row in table if str(row["constraint"]).startswith("colored")]
    assert len(colored) == 3
    # Rounds increase monotonically with the palette size (product graph grows).
    rounds = [row["rounds"] for row in colored]
    assert rounds[0] <= rounds[1] <= rounds[2]
    # Product graph has exactly |Q|·n nodes.
    for row in table:
        assert row["product_nodes"] == row["states"] * 36
    # Every CDL construction is more expensive than the unconstrained labeling.
    assert all(row["rounds"] >= row["base_rounds"] for row in table)


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: E5 as a ``repro-bench`` cell."""
    from repro.experiments.matrix import CellSpec

    return [CellSpec("stateful_walks", "-", "ktree", scale, seed)]
