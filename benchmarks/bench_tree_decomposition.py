"""E2 — distributed tree decomposition (Theorem 1): width, depth and round scaling."""

import math

import pytest

from repro.analysis.experiments import run_decomposition_experiment
from repro.analysis.workloads import standard_workloads, sweep_k


@pytest.mark.bench
def test_e2_width_and_depth_bounds(benchmark, report_sink):
    workloads = standard_workloads("small")
    table = benchmark.pedantic(
        lambda: run_decomposition_experiment(workloads, seed=1), rounds=1, iterations=1
    )
    report_sink.append(table.to_text())
    for row in table:
        assert row["valid"]
        assert row["width"] <= row["width_bound"]
        assert row["depth"] <= row["depth_bound"]


@pytest.mark.bench
def test_e2_width_grows_with_treewidth_not_n(benchmark, report_sink):
    workloads = sweep_k(fixed_n=250, ks=[2, 4, 6], seed=3)
    table = benchmark.pedantic(
        lambda: run_decomposition_experiment(workloads, seed=3), rounds=1, iterations=1
    )
    report_sink.append(table.to_text())
    widths = table.column("width")
    ns = table.column("n")
    # Width is a function of τ (and log n), far below n.
    assert all(w < n / 2 for w, n in zip(widths, ns))
    # Larger τ should not produce smaller decompositions than τ=2 by a wide margin.
    assert widths[-1] >= widths[0]


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: E2 as a ``repro-bench`` cell."""
    from repro.experiments.matrix import CellSpec

    return [CellSpec("tree_decomposition", "-", "ktree", scale, seed)]
