"""E6 — exact bipartite maximum matching (Theorem 4): exactness and scaling vs Õ(s_max)."""

import pytest

from repro.analysis.experiments import run_matching_experiment
from repro.analysis.workloads import bipartite_workloads, workload


@pytest.mark.bench
def test_e6_matching_exact_on_bipartite_families(benchmark, report_sink):
    workloads = bipartite_workloads("small")
    table = benchmark.pedantic(
        lambda: run_matching_experiment(workloads, seed=1), rounds=1, iterations=1
    )
    report_sink.append(table.to_text())
    for row in table:
        assert row["exact"], f"{row['workload']} did not reach the optimum"
        assert row["matching_size"] == row["optimal"]


@pytest.mark.bench
def test_e6_matching_scaling_vs_smax_baseline(benchmark, report_sink):
    workloads = [
        workload("grid(4x10)", "grid", rows=4, cols=10),
        workload("grid(4x20)", "grid", rows=4, cols=20),
        workload("grid(4x40)", "grid", rows=4, cols=40),
    ]
    table = benchmark.pedantic(
        lambda: run_matching_experiment(workloads, seed=2), rounds=1, iterations=1
    )
    report_sink.append(table.to_text())
    rows = list(table)
    assert all(row["exact"] for row in rows)
    # The Õ(s_max) baseline grows linearly with the matching size; the
    # framework's charged rounds must grow more slowly than s_max does
    # (its dependence on n is only through D and log n at fixed width).
    smax_growth = rows[-1]["optimal"] / rows[0]["optimal"]
    round_growth = rows[-1]["rounds"] / max(1, rows[0]["rounds"])
    assert round_growth < 2 * smax_growth


def matrix_cells(scale: str = "smoke", seed: int = 12345):
    """Thin matrix-cell adapter: E6 as a ``repro-bench`` cell."""
    from repro.experiments.matrix import CellSpec

    return [CellSpec("matching", "-", "bipartite", scale, seed)]
