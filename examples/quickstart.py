#!/usr/bin/env python3
"""Quickstart: the full pipeline on one low-treewidth instance.

Builds a random partial 3-tree, wraps it as a weighted directed instance,
and runs every stage of the paper's framework through the high-level
:class:`repro.LowTreewidthSolver` facade:

* distributed tree decomposition (Theorem 1),
* exact distance labeling + single-source shortest paths (Theorem 2),
* exact bipartite maximum matching on a bipartite companion graph (Theorem 4),
* weighted girth (Theorem 5),

printing the CONGEST round accounting of each stage.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import LowTreewidthSolver
from repro.graphs import generators
from repro.graphs.properties import diameter, dijkstra
from repro.graphs.treewidth import treewidth_upper_bound
from repro.matching.hopcroft_karp import hopcroft_karp_matching


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. Build a workload: a weighted directed partial 3-tree.
    # ----------------------------------------------------------------- #
    graph = generators.partial_k_tree(80, 3, seed=7)
    instance = generators.to_directed_instance(
        graph, weight_range=(1, 9), orientation="asymmetric", seed=8
    )
    print("instance:")
    print(f"  nodes              : {graph.num_nodes()}")
    print(f"  edges (undirected) : {graph.num_edges()}")
    print(f"  diameter D         : {diameter(graph)}")
    print(f"  treewidth bound τ  : {treewidth_upper_bound(graph)}")

    solver = LowTreewidthSolver(instance, seed=7)

    # ----------------------------------------------------------------- #
    # 2. Tree decomposition (Theorem 1).
    # ----------------------------------------------------------------- #
    decomposition = solver.tree_decomposition()
    td = decomposition.decomposition
    print("\ntree decomposition (Theorem 1):")
    print(f"  bags   : {td.num_bags()}")
    print(f"  width  : {td.width()}")
    print(f"  depth  : {td.depth()}")
    print(f"  rounds : {decomposition.rounds}")

    # ----------------------------------------------------------------- #
    # 3. Distance labeling and SSSP (Theorem 2).
    # ----------------------------------------------------------------- #
    labeling = solver.distance_labeling()
    source = instance.nodes()[0]
    sssp = solver.single_source_shortest_paths(source)
    reference = dijkstra(instance, source)
    mismatches = sum(
        1
        for v in instance.nodes()
        if abs(sssp.distances[v] - reference.get(v, float("inf"))) > 1e-9
    )
    print("\ndistance labeling + SSSP (Theorem 2):")
    print(f"  max label entries : {labeling.labeling.max_entries()}")
    print(f"  labeling rounds   : {labeling.rounds}")
    print(f"  SSSP total rounds : {sssp.total_rounds}")
    print(f"  mismatches vs Dijkstra: {mismatches}")

    # ----------------------------------------------------------------- #
    # 4. Bipartite maximum matching (Theorem 4) on a bipartite companion.
    # ----------------------------------------------------------------- #
    bipartite = generators.subdivided_graph(graph)
    matching_solver = LowTreewidthSolver.from_undirected(bipartite, seed=7)
    matching = matching_solver.maximum_matching()
    optimum = len(hopcroft_karp_matching(bipartite))
    print("\nbipartite maximum matching (Theorem 4, on the subdivided graph):")
    print(f"  matching size : {matching.size}  (Hopcroft-Karp optimum: {optimum})")
    print(f"  augmentations : {matching.augmentations}")
    print(f"  rounds        : {matching.rounds}")

    # ----------------------------------------------------------------- #
    # 5. Weighted girth (Theorem 5) — on a randomly oriented copy, so that
    #    antiparallel edge pairs don't trivially form directed 2-cycles.
    # ----------------------------------------------------------------- #
    oriented = generators.to_directed_instance(
        graph, weight_range=(1, 9), orientation="random", seed=9
    )
    girth_solver = LowTreewidthSolver(oriented, seed=7)
    girth = girth_solver.girth()
    print("\nweighted girth (Theorem 5, randomly oriented copy):")
    print(f"  girth  : {girth.girth}")
    print(f"  method : {girth.method}")
    print(f"  rounds : {girth.rounds}")

    print("\nround report:", solver.round_report())


if __name__ == "__main__":
    main()
