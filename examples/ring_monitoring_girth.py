#!/usr/bin/env python3
"""Scenario: detecting the cheapest routing loop in an overlay network.

Overlay/backbone networks are often "rings with chords": a resilient cycle
plus a few express links.  The weight of the *shortest cycle* (the weighted
girth) bounds how quickly a misrouted packet can loop back to its origin and
is a standard health metric.  Such topologies have treewidth O(#chords), so
the paper's girth algorithm (Theorem 5) applies:

* if link latencies are asymmetric (directed), the girth is decoded from the
  distance labels exchanged across each link;
* if they are symmetric (undirected), the exact count-1 stateful-walk trick
  with random edge labels is used — this example runs both and compares them
  with the exact centralized baseline.

Run:  python examples/ring_monitoring_girth.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.core.config import FrameworkConfig
from repro.girth.baselines import exact_girth_directed, exact_girth_undirected
from repro.girth.girth import directed_girth, undirected_girth
from repro.graphs import generators
from repro.graphs.treewidth import treewidth_upper_bound


def main() -> None:
    config = FrameworkConfig(seed=11)

    # ----------------------------------------------------------------- #
    # Undirected overlay: symmetric latencies.
    # ----------------------------------------------------------------- #
    overlay = generators.with_random_weights(
        generators.cycle_with_chords(30, 5, seed=11), low=2, high=12, seed=12
    )
    print(
        f"undirected overlay: {overlay.num_nodes()} routers, {overlay.num_edges()} links, "
        f"treewidth ≤ {treewidth_upper_bound(overlay)}"
    )
    result = undirected_girth(overlay, config=config, trials_per_scale=8)
    exact = exact_girth_undirected(overlay)
    print(f"  cheapest loop (framework) : {result.girth}")
    print(f"  cheapest loop (exact)     : {exact}")
    print(f"  random-label trials       : {result.trials}")
    print(f"  CONGEST rounds            : {result.rounds}")

    # ----------------------------------------------------------------- #
    # Directed overlay: asymmetric latencies.
    # ----------------------------------------------------------------- #
    directed = generators.to_directed_instance(
        generators.cycle_with_chords(40, 6, seed=13),
        weight_range=(2, 15),
        orientation="asymmetric",
        seed=14,
    )
    d_result = directed_girth(directed, config=config)
    d_exact = exact_girth_directed(directed)
    print(
        f"\ndirected overlay: {directed.num_nodes()} routers, {directed.num_edges()} directed links"
    )
    print(f"  cheapest loop (framework) : {d_result.girth}")
    print(f"  cheapest loop (exact)     : {d_exact}")
    print(f"  CONGEST rounds            : {d_result.rounds}")

    print(
        "\nThe paper's separation result: on low-treewidth, low-diameter networks the"
        "\ngirth is computable in rounds polynomial in the treewidth and the diameter,"
        "\nwhile computing the *diameter* of such networks requires Ω̃(n) rounds [ACK16]."
    )


if __name__ == "__main__":
    main()
