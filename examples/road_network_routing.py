#!/usr/bin/env python3
"""Scenario: distributed routing tables for a road-like network.

Road networks are the canonical "real graphs have small treewidth" example
(the paper cites Maniu et al. [MSJ19]).  This example models a city-scale road
network as a grid with diagonal shortcuts and randomly removed streets
(treewidth ≈ grid width, far below n), assigns asymmetric travel times to the
two directions of each street, and builds the paper's *distance labeling*: an
Õ(τ²)-entry routing label per intersection from which any pair of
intersections can compute their exact travel time without any further
communication.

The example then compares:

* label construction cost (CONGEST rounds) vs the distributed Bellman-Ford
  baseline that would have to be re-run per source, and
* decoded travel times vs exact Dijkstra, for a sample of origin/destination
  pairs.

Run:  python examples/road_network_routing.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.core.config import FrameworkConfig
from repro.core.rounds import CostModel
from repro.graphs import generators
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter, dijkstra
from repro.graphs.treewidth import treewidth_upper_bound
from repro.labeling.construction import build_distance_labeling
from repro.labeling.sssp import single_source_shortest_paths


def build_road_network(rows: int = 6, cols: int = 20, seed: int = 3) -> WeightedDiGraph:
    """A grid-with-shortcuts road network with asymmetric travel times."""
    rng = random.Random(seed)
    base = generators.grid_graph(rows, cols)
    # Close ~10% of the streets (keeping the network connected).
    closed = 0
    for u, v in list(base.edges()):
        if rng.random() < 0.10:
            base.remove_edge(u, v)
            if base.is_connected():
                closed += 1
            else:
                base.add_edge(u, v)
    network = WeightedDiGraph(base.nodes())
    for u, v in base.edges():
        forward = rng.randint(2, 9)
        backward = max(1, forward + rng.randint(-2, 2))  # rush-hour asymmetry
        network.add_edge(u, v, weight=forward)
        network.add_edge(v, u, weight=backward)
    print(f"road network: {base.num_nodes()} intersections, {base.num_edges()} streets "
          f"({closed} closed), treewidth ≤ {treewidth_upper_bound(base)}")
    return network


def main() -> None:
    network = build_road_network()
    comm = network.underlying_graph()
    d = diameter(comm)
    cost_model = CostModel(n=comm.num_nodes(), diameter=d)
    config = FrameworkConfig(seed=3)

    print(f"communication diameter D = {d}")

    # Build the routing labels once.
    labeling = build_distance_labeling(network, config=config, cost_model=cost_model)
    print(f"\nrouting labels built in {labeling.rounds} CONGEST rounds "
          f"(decomposition: {labeling.decomposition_rounds})")
    print(f"largest label: {labeling.labeling.max_entries()} entries "
          f"(~{labeling.labeling.max_size_bits(comm.num_nodes(), 9)} bits)")

    # Compare against per-source distributed Bellman-Ford.
    rng = random.Random(0)
    intersections = network.nodes()
    sources = rng.sample(intersections, 3)
    bf_rounds = 0
    for s in sources:
        bf_rounds += distributed_bellman_ford(network, s).rounds
    sssp_rounds = sum(
        single_source_shortest_paths(labeling.labeling, s, cost_model=cost_model).rounds
        for s in sources
    )
    print(f"\nanswering 3 full single-source queries:")
    print(f"  via labels (after one-time construction): {sssp_rounds} rounds")
    print(f"  via distributed Bellman-Ford            : {bf_rounds} rounds")
    print(
        "  (Bellman-Ford rounds grow with the shortest-path hop depth — i.e. with the\n"
        "   size of the road network — while the label-query cost depends only on the\n"
        "   diameter and the Õ(τ²) label size; any point-to-point query after\n"
        "   construction is answered with zero additional communication.)"
    )

    # Spot-check exactness for random origin/destination pairs.
    errors = 0
    for _ in range(200):
        a, b = rng.choice(intersections), rng.choice(intersections)
        expected = dijkstra(network, a).get(b, float("inf"))
        got = labeling.labeling.distance(a, b)
        if abs(got - expected) > 1e-9:
            errors += 1
    print(f"\nexactness check on 200 random origin/destination pairs: {errors} mismatches")


if __name__ == "__main__":
    main()
