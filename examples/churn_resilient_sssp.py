#!/usr/bin/env python3
"""Demo of the fault-injection layer: SSSP that survives churn.

A sensor mesh keeps shortest-path routes to a gateway while nodes reboot
and links flap.  The demo runs distributed Bellman-Ford on the async tier
under three seeded fault scenarios — steady churn, a mass failure taking
out 30% of the links at once, and a flapping link — and checks that the
protocol reconverges to the exact post-fault distances every time.  It then
shows the complementary *data-structure* side: a distance labeling absorbing
the same weight churn incrementally instead of rebuilding from scratch.

Run:  python examples/churn_resilient_sssp.py
"""

import math
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.congest.faults import Churn, FaultEvent, FaultSchedule, LinkFlap, MassFailure
from repro.graphs import generators
from repro.graphs.properties import dijkstra
from repro.labeling.construction import build_distance_labeling

INF = math.inf


def main() -> None:
    graph = generators.partial_k_tree(60, 3, seed=7)
    instance = generators.to_directed_instance(
        graph, weight_range=(1, 9), orientation="both", seed=8
    )
    gateway = min(graph.nodes())
    print(f"mesh: {graph.num_nodes()} nodes, {graph.num_edges()} links, "
          f"gateway {gateway}\n")

    oracle = dijkstra(instance, gateway)
    scenarios = [
        ("steady churn (one node down at a time)",
         Churn(cycles=5, period=5, outage=3, start=4, seed=1)),
        ("mass failure (30% of links, rounds 8-15)",
         MassFailure(fraction=0.3, at=8, outage=8, kind="edge", seed=2)),
        ("flapping link (20% of links, 2 cycles)",
         LinkFlap(fraction=0.2, cycles=2, period=8, outage=3, start=4, seed=3)),
    ]
    for title, model in scenarios:
        bf = distributed_bellman_ford(instance, gateway, fault_schedule=model)
        verdict = bf.simulation.fault_verdict
        wrong = sum(
            1 for v in instance.nodes()
            if abs(bf.distances.get(v, INF) - oracle.get(v, INF)) > 1e-9
        )
        print(f"{title}:")
        print(f"  {verdict.faults_injected} faults injected, "
              f"{verdict.payloads_dropped} payloads dropped, "
              f"reconverged in {verdict.rounds_to_reconverge} rounds "
              f"after the last fault ({bf.rounds} rounds total)")
        print(f"  distances vs Dijkstra oracle: {wrong} mismatches\n")

    # Hand-written schedules compose with the generators' output: here the
    # gateway itself reboots (it must come back — a schedule that leaves the
    # source down forever is rejected up front).
    reboot = FaultSchedule([
        FaultEvent(6, "node_down", gateway),
        FaultEvent(10, "node_up", gateway),
    ])
    bf = distributed_bellman_ford(instance, gateway, fault_schedule=reboot)
    verdict = bf.simulation.fault_verdict
    wrong = sum(
        1 for v in instance.nodes()
        if abs(bf.distances.get(v, INF) - oracle.get(v, INF)) > 1e-9
    )
    print("gateway reboot (down rounds 6-9):")
    print(f"  {verdict.faults_injected} faults, reconverged in "
          f"{verdict.rounds_to_reconverge} rounds, {wrong} mismatches\n")

    # The labeling side of the same story: absorb weight churn incrementally.
    labeling = build_distance_labeling(instance).labeling
    labeling.attach_instance(instance)
    arcs = [e for e in instance.edges() if e.tail != e.head]
    updates = [(arcs[k].tail, arcs[k].head, float(1 + (k * 7) % 9))
               for k in range(0, len(arcs), max(1, len(arcs) // 8))]
    rewritten = hubs = 0
    for tail, head, w in updates:
        stats = labeling.apply_edge_update(tail, head, w)
        rewritten += stats.entries_rewritten
        hubs += stats.from_hubs_recomputed + stats.to_hubs_recomputed
    print(f"incremental labeling: {len(updates)} weight updates absorbed, "
          f"{hubs} hub trees recomputed, {rewritten} entry rewrites across "
          f"{labeling.total_entries()} stored entries — no rebuild")


if __name__ == "__main__":
    main()
