#!/usr/bin/env python3
"""Async-tier throughput: the bucketed calendar queue vs the reference heap.

The event-driven fifth tier simulates one envelope per arc per pulse, so its
wall-clock cost is dominated by the event queue.  This demo runs the same
Bellman-Ford instances under both queues (``scheduler="heap"`` and the
default ``scheduler="bucketed"``), verifies the runs are bit-for-bit
identical, and compares the ``events_per_sec`` figure each run reports in
``SimulationResult.async_stats``.  The deep path graph is the bucketed
queue's best case — long runs of silent-node pulse markers fuse into single
ranged tick events — while the dense complete graph is payload-bound and
gains less.

Run:  python examples/async_throughput.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.graphs import generators

REPS = 3  # best-of, to damp wall-clock noise


def measure(instance, source, scheduler):
    best = None
    for _ in range(REPS):
        run = distributed_bellman_ford(
            instance, source, engine="async", scheduler=scheduler
        )
        if best is None or (run.simulation.async_stats["events_per_sec"]
                            > best.simulation.async_stats["events_per_sec"]):
            best = run
    return best


def main() -> None:
    cases = [
        ("deep path (n=600)", generators.path_graph(600), "both"),
        ("dense K_80", generators.complete_graph(80), "asymmetric"),
    ]
    for label, graph, orientation in cases:
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 9), orientation=orientation, seed=7
        )
        source = min(instance.nodes(), key=str)

        heap = measure(instance, source, "heap")
        bucketed = measure(instance, source, "bucketed")

        assert bucketed.distances == heap.distances
        assert bucketed.parents == heap.parents
        assert bucketed.simulation.virtual_time == heap.simulation.virtual_time
        assert (bucketed.simulation.async_stats["events_processed"]
                == heap.simulation.async_stats["events_processed"])

        events = heap.simulation.async_stats["events_processed"]
        eps_heap = heap.simulation.async_stats["events_per_sec"]
        eps_bucket = bucketed.simulation.async_stats["events_per_sec"]
        print(f"{label}: {bucketed.rounds} rounds, {events} events "
              f"(identical under both queues)")
        print(f"  scheduler='heap'     {eps_heap:>12,.0f} events/s")
        print(f"  scheduler='bucketed' {eps_bucket:>12,.0f} events/s "
              f"({eps_bucket / eps_heap:.2f}x)\n")

    print("Same events, same order, same results -- the calendar queue just "
          "releases each pulse's batch in one pop.")


if __name__ == "__main__":
    main()
