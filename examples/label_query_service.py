#!/usr/bin/env python3
"""Distance-label query service: build a corpus, serve it, batch-query it.

The end-to-end serving story (see ``docs/serving.md``): a seeded corpus of
low-treewidth directed instances is labelled with the paper's construction
and persisted as packed ``.rplb`` files (``LabelStore.build``), two worker
processes memory-map the same store (``ServerPool`` — zero label copies),
and clients compare the three ways to ask for distances:

* point queries, one request frame per pair (the server micro-batches
  concurrent points per tick);
* client-side batches, one frame and one vectorized kernel call per
  request;
* the local packed decode, as the ground truth the served answers must
  equal bit for bit.

Run:  python examples/label_query_service.py
"""

import os
import random
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.serving import LabelStore, QueryClient, ServerPool, seeded_corpus

SEED = 7
N = 60          # corpus graph size
POINTS = 400    # point queries per graph
BATCH = 5_000   # pairs per batched request


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = os.path.join(tmp, "store")

        t0 = time.perf_counter()
        store = LabelStore.build(seeded_corpus(SEED, N), store_dir)
        build_s = time.perf_counter() - t0
        print(f"built + packed {len(store.graphs())} labelings "
              f"in {build_s:.2f}s -> {store_dir}")
        for name in store.graphs():
            packed = store.get(name)
            print(f"  {name:>16}: {len(packed)} vertices, "
                  f"{packed.total_entries} entries, "
                  f"{packed.array_bytes} array bytes")

        rng = random.Random(SEED + 1)
        with ServerPool(store_dir, num_workers=2) as pool:
            print(f"\n2 workers serving at {pool.addresses}")
            name = store.graphs()[0]
            vertices = list(store.get(name).vertices())
            pairs = [(rng.choice(vertices), rng.choice(vertices))
                     for _ in range(max(POINTS, BATCH))]

            with QueryClient(pool.addresses[0]) as client:
                t0 = time.perf_counter()
                point_vals = [client.point(name, u, v)
                              for u, v in pairs[:POINTS]]
                point_s = time.perf_counter() - t0

                us = [u for u, _ in pairs[:BATCH]]
                vs = [v for _, v in pairs[:BATCH]]
                t0 = time.perf_counter()
                batch_vals = client.query(name, us, vs)
                batch_s = time.perf_counter() - t0

            packed = store.get(name)
            local = [packed.distance(u, v) for u, v in pairs[:BATCH]]
            assert point_vals == local[:POINTS]
            assert batch_vals == local

            # Both workers map the same file once they serve it: the
            # zero-copy contract (labels are never copied to worker heaps).
            for worker, address in enumerate(pool.addresses):
                with QueryClient(address) as client:
                    client.query(name, us[:10], vs[:10])
                    stats = client.server_stats()
                print(f"  worker {worker}: pid {stats['pid']}, "
                      f"mapped {stats['store']['mapped_bytes']} B, "
                      f"copied {stats['store']['copied_label_bytes']} B")

            print(f"\nserved answers == local packed decode ({name})")
            print(f"  point   : {POINTS} queries in {point_s:.3f}s "
                  f"({POINTS / point_s:,.0f} qps)")
            print(f"  batched : {BATCH} pairs in {batch_s:.3f}s "
                  f"({BATCH / batch_s:,.0f} qps, one kernel call)")
            print(f"  batched/point speedup: "
                  f"{(BATCH / batch_s) / (POINTS / point_s):.1f}x")


if __name__ == "__main__":
    main()
