#!/usr/bin/env python3
"""Scenario: assigning sensing tasks to devices in a linear deployment.

A sensor network deployed along a corridor (pipeline, tunnel, road) is
naturally a *banded bipartite* graph: device i can only serve tasks located
within a few positions of i.  Such graphs have small pathwidth — hence small
treewidth — so the paper's exact bipartite maximum matching (Theorem 4)
computes an optimal device↔task assignment in Õ(τ⁴D + τ⁷) CONGEST rounds,
sublinear in the network size, instead of the Õ(s_max) ≈ Õ(n) rounds of the
general-graph baseline.

The example builds such a deployment, runs the divide-and-conquer matching,
verifies optimality against Hopcroft–Karp and prints how the assignment and
the round cost evolve as the corridor gets longer.

Run:  python examples/sensor_task_assignment.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis.records import ResultTable
from repro.baselines.congest_bounds import matching_baseline_rounds
from repro.core.config import FrameworkConfig
from repro.graphs import generators
from repro.graphs.treewidth import treewidth_upper_bound
from repro.matching.bipartite import maximum_bipartite_matching
from repro.matching.hopcroft_karp import hopcroft_karp_matching


def main() -> None:
    table = ResultTable(
        "sensor/task assignment along a corridor",
        ["devices", "tasks", "treewidth", "assigned", "optimal", "framework_rounds", "baseline_rounds"],
    )
    for size in (20, 40, 80):
        graph = generators.random_banded_bipartite(size, size + 5, band=3, edge_prob=0.5, seed=size)
        result = maximum_bipartite_matching(graph, config=FrameworkConfig(seed=size))
        optimum = len(hopcroft_karp_matching(graph))
        assert result.size == optimum, "the framework matching must be optimal"
        table.add(
            devices=size,
            tasks=size + 5,
            treewidth=treewidth_upper_bound(graph),
            assigned=result.size,
            optimal=optimum,
            framework_rounds=result.rounds,
            baseline_rounds=round(matching_baseline_rounds(optimum)),
        )
    print(table.to_text())
    print(
        "\nNote: the Õ(s_max)-round baseline [AKO18] grows linearly with the number of"
        "\nassigned pairs, while the framework's rounds are governed by the treewidth,"
        "\nthe diameter and log n (Theorem 4)."
    )

    # Show one concrete assignment for the smallest deployment.
    graph = generators.random_banded_bipartite(8, 10, band=2, edge_prob=0.6, seed=1)
    result = maximum_bipartite_matching(graph, config=FrameworkConfig(seed=1))
    print(f"\nexample assignment for 8 devices / 10 tasks ({result.size} pairs):")
    for edge in sorted(result.matching, key=lambda e: sorted(map(str, e))):
        left = next(x for x in edge if x[0] == "L")
        right = next(x for x in edge if x[0] == "R")
        print(f"  device {left[1]:>2} -> task {right[1]:>2}")


if __name__ == "__main__":
    main()
