#!/usr/bin/env python3
"""Demo of the message-level CONGEST simulator and its primitives.

Shows the substrate the higher layers are calibrated against: BFS-tree
construction, flooding broadcast, convergecast aggregation, leader election
and distributed Bellman-Ford, each with measured round counts and message
volumes under the O(log n)-bit-per-edge-per-round budget.

Run:  python examples/congest_primitives_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.congest.bellman_ford import distributed_bellman_ford
from repro.congest.network import CongestNetwork
from repro.congest import primitives
from repro.graphs import generators
from repro.graphs.properties import diameter, dijkstra


def main() -> None:
    graph = generators.partial_k_tree(100, 3, seed=21)
    d = diameter(graph)
    print(f"network: {graph.num_nodes()} nodes, {graph.num_edges()} links, diameter {d}\n")

    network = CongestNetwork(graph)
    root = min(graph.nodes())

    parent, depth, bfs = primitives.build_bfs_tree(network, root)
    print(f"BFS tree from node {root}: depth {max(depth.values())}, "
          f"{bfs.rounds} rounds, {bfs.messages_sent} messages")

    values, bc = primitives.broadcast(network, root, ("topology-version", 42))
    print(f"broadcast: all {len(values)} nodes informed in {bc.rounds} rounds")

    total, cc = primitives.convergecast_sum(network, parent, {u: 1 for u in graph.nodes()})
    print(f"convergecast (count nodes): {total} in {cc.rounds} rounds")

    leader, le = primitives.elect_leader(network)
    print(f"leader election: node {leader} elected in {le.rounds} rounds")

    instance = generators.to_directed_instance(graph, weight_range=(1, 9), orientation="both", seed=22)
    bf = distributed_bellman_ford(instance, root)
    reference = dijkstra(instance, root)
    errors = sum(1 for v in instance.nodes() if abs(bf.distances[v] - reference[v]) > 1e-9)
    print(f"distributed Bellman-Ford SSSP: {bf.rounds} rounds, {bf.messages} messages, "
          f"{errors} mismatches vs Dijkstra")
    print("\n(The framework's labeling needs many fewer rounds per query once built — "
          "see examples/road_network_routing.py.)")


if __name__ == "__main__":
    main()
