"""Contiguous node-range sharding of a :class:`~repro.graphs.indexed.CsrArrays` view.

The vectorized CONGEST tier addresses all per-round data by *dense CSR arc
slot*: node ``i`` owns the contiguous slot range ``indptr[i]:indptr[i+1]``,
and the message sent on arc ``p`` is delivered into the receiver-side slot
``rev[p]``.  That addressing was designed as a shard interface, and this
module cashes it in: a :class:`ShardPlan` cuts the node space ``0..n-1`` into
``num_shards`` contiguous ranges, so each shard simultaneously owns

* a contiguous *row range* of every per-node state vector,
* the contiguous *arc-slot range* ``indptr[lo]:indptr[hi]`` of every per-arc
  array (CSR rows of a contiguous node range are themselves contiguous), and
* a precomputed classification of its arcs into *interior* (the reverse arc
  lands in the same shard) and *boundary* (the reverse arc is owned by
  another shard).

The per-round delivery contract of the sharded engine tier
(:func:`repro.congest.engine.run_sharded`) follows directly:

* shard ``s`` *publishes* its send-mask/word slices plus the payload values
  of its :attr:`boundary_out` slots — and only those — into shared memory,
  *packed*: the published value array of shard ``s`` has one slot per
  boundary arc, not one per arc;
* shard ``s`` *gathers* its inbox — the slots ``arc_lo..arc_hi`` — through
  the precomputed :meth:`exchange` tables: interior sources are read from
  the shard's private send buffers, foreign sources from the packed
  published slots of the owning peer shard (``src_packed`` maps a foreign
  source arc straight to its position in the peer's packed array).

Because ``rev`` is an involution, ``inbox_sources(s)`` restricted to foreign
slots is exactly the union of the other shards' ``boundary_out`` tables that
point into ``s`` — only boundary payload slots ever cross a shard boundary,
and the :class:`ShardExchange` tables enumerate every (peer, packed slot,
local inbox slot) triple once, at plan-build time.

Everything here is a pure index computation over the frozen CSR snapshot;
the plan holds no simulation state and can be shared between runs.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.errors import GraphError


class Shard:
    """One contiguous node/arc-slot range of a :class:`ShardPlan`.

    Attributes
    ----------
    index:
        Position of this shard in the plan (``0..num_shards-1``).
    node_lo / node_hi:
        The half-open node-index range ``[node_lo, node_hi)`` this shard owns.
    arc_lo / arc_hi:
        The half-open CSR arc-slot range owned by those nodes
        (``indptr[node_lo]:indptr[node_hi]``).
    """

    __slots__ = ("index", "node_lo", "node_hi", "arc_lo", "arc_hi")

    def __init__(self, index: int, node_lo: int, node_hi: int, arc_lo: int, arc_hi: int) -> None:
        self.index = index
        self.node_lo = node_lo
        self.node_hi = node_hi
        self.arc_lo = arc_lo
        self.arc_hi = arc_hi

    @classmethod
    def full(cls, csr) -> "Shard":
        """The degenerate whole-graph shard (used by the single-process tiers)."""
        return cls(0, 0, csr.num_nodes, 0, csr.num_arcs)

    @property
    def num_nodes(self) -> int:
        return self.node_hi - self.node_lo

    @property
    def num_arcs(self) -> int:
        return self.arc_hi - self.arc_lo

    @property
    def node_slice(self) -> slice:
        return slice(self.node_lo, self.node_hi)

    @property
    def arc_slice(self) -> slice:
        return slice(self.arc_lo, self.arc_hi)

    def owns_node(self, i: int) -> bool:
        return self.node_lo <= i < self.node_hi

    def owns_arc(self, p: int) -> bool:
        return self.arc_lo <= p < self.arc_hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Shard({self.index}, nodes=[{self.node_lo},{self.node_hi}), "
            f"arcs=[{self.arc_lo},{self.arc_hi}))"
        )


class PeerExchange:
    """One peer's contribution to a shard's packed boundary gather.

    All indices are *local*: ``recv_slots`` are inbox slot positions inside
    the receiving shard's arc range, ``src_local`` are the source arcs'
    positions inside the peer's arc range (for mask lookups in the peer's
    published mask segment), and ``src_packed`` are the source arcs'
    positions inside the peer's packed ``boundary_out`` value array.
    """

    __slots__ = ("peer", "recv_slots", "src_local", "src_packed")

    def __init__(self, peer: int, recv_slots, src_local, src_packed) -> None:
        self.peer = peer
        self.recv_slots = recv_slots
        self.src_local = src_local
        self.src_packed = src_packed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeerExchange(peer={self.peer}, slots={self.recv_slots.shape[0]})"


class ShardExchange:
    """The precomputed packed boundary-exchange tables of one shard.

    ``int_slots``/``int_src`` cover the interior deliveries (both local to
    the shard's own arc range: inbox slot position and source arc position);
    ``peers`` holds one :class:`PeerExchange` per other shard that sends
    into this one.  Together they enumerate every inbox slot of the shard
    exactly once, so a worker's per-round gather touches only active slots
    plus these O(boundary) tables — never a full-length arc array of another
    shard.
    """

    __slots__ = ("shard_index", "int_slots", "int_src", "peers")

    def __init__(self, shard_index: int, int_slots, int_src, peers) -> None:
        self.shard_index = shard_index
        self.int_slots = int_slots
        self.int_src = int_src
        self.peers = tuple(peers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardExchange(shard={self.shard_index}, "
            f"interior={self.int_src.shape[0]}, peers={len(self.peers)})"
        )


class ShardPlan:
    """A contiguous node-range partition of a :class:`CsrArrays` snapshot.

    Parameters
    ----------
    csr:
        The numpy CSR view (:meth:`IndexedGraph.to_arrays`).
    node_starts:
        Monotone cut points of the node space: shard ``s`` owns nodes
        ``node_starts[s]..node_starts[s+1]-1``.  Must start at 0, end at
        ``num_nodes`` and be strictly increasing — a zero-range shard would
        be a worker process with no work and no owned arena segment, so
        empty shards are refused.  Build balanced plans with
        :meth:`balanced`.
    """

    __slots__ = (
        "csr",
        "num_shards",
        "node_starts",
        "arc_starts",
        "shard_of_node",
        "_boundary_arc_mask",
        "_boundary_out",
        "_interior_inbox",
        "_exchange",
        "_peer_links",
    )

    def __init__(self, csr, node_starts) -> None:
        import numpy as np

        starts = np.asarray(node_starts, dtype=np.int64)
        if starts.ndim != 1 or starts.shape[0] < 2:
            raise GraphError("node_starts must hold at least [0, num_nodes]")
        if starts[0] != 0 or starts[-1] != csr.num_nodes:
            raise GraphError(
                f"node_starts must span [0, {csr.num_nodes}], got {starts.tolist()}"
            )
        if csr.num_nodes and np.any(np.diff(starts) <= 0):
            raise GraphError(
                "node_starts must be strictly increasing (every shard owns at "
                f"least one node), got {starts.tolist()}"
            )
        self.csr = csr
        self.num_shards = int(starts.shape[0] - 1)
        self.node_starts = starts
        #: Arc-slot cut points: shard s owns slots arc_starts[s]:arc_starts[s+1].
        self.arc_starts = csr.indptr[starts]
        #: Per node index, the shard that owns it.
        self.shard_of_node = (
            np.searchsorted(starts, np.arange(csr.num_nodes), side="right") - 1
        )
        self._boundary_arc_mask = None
        self._boundary_out: Dict[int, object] = {}
        self._interior_inbox: Dict[int, object] = {}
        self._exchange: Dict[int, ShardExchange] = {}
        self._peer_links: Dict[int, list] = {}

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def balanced(cls, csr, num_shards: int) -> "ShardPlan":
        """Cut the node space into ``num_shards`` arc-balanced contiguous ranges.

        Cut points are chosen so every shard owns roughly ``num_arcs /
        num_shards`` CSR slots (per-round work is proportional to arc slots,
        not nodes).  ``num_shards`` is clamped to ``[1, num_nodes]`` so every
        shard owns at least one node.
        """
        import numpy as np

        n = csr.num_nodes
        s = max(1, min(int(num_shards), n)) if n else 1
        starts = [0]
        for k in range(1, s):
            target = k * csr.num_arcs / s
            cut = int(np.searchsorted(csr.indptr, target, side="left"))
            cut = min(max(cut, starts[-1] + 1), n - (s - k))
            starts.append(cut)
        starts.append(n)
        return cls(csr, starts)

    @classmethod
    def single(cls, csr) -> "ShardPlan":
        """The trivial one-shard plan (whole graph)."""
        return cls(csr, [0, csr.num_nodes])

    # ------------------------------------------------------------------ #
    # Shard access
    # ------------------------------------------------------------------ #
    def shard(self, s: int) -> Shard:
        if not 0 <= s < self.num_shards:
            raise GraphError(f"shard {s} out of range (plan has {self.num_shards})")
        return Shard(
            s,
            int(self.node_starts[s]),
            int(self.node_starts[s + 1]),
            int(self.arc_starts[s]),
            int(self.arc_starts[s + 1]),
        )

    def __len__(self) -> int:
        return self.num_shards

    def __iter__(self) -> Iterator[Shard]:
        return (self.shard(s) for s in range(self.num_shards))

    # ------------------------------------------------------------------ #
    # Boundary classification and delivery tables
    # ------------------------------------------------------------------ #
    @property
    def boundary_arc_mask(self):
        """Boolean per arc slot: the reverse arc is owned by another shard.

        An arc ``p`` (``i -> j``) is *boundary* iff ``i`` and ``j`` live in
        different shards — equivalently ``rev[p]`` lies outside the owner's
        slot range.  Interior arcs never leave their shard's private buffers.
        """
        mask = self._boundary_arc_mask
        if mask is None:
            csr = self.csr
            mask = (
                self.shard_of_node[csr.arc_owner] != self.shard_of_node[csr.indices]
            )
            self._boundary_arc_mask = mask
        return mask

    def boundary_out(self, s: int):
        """Global ids of shard ``s``'s *boundary send* slots (ascending).

        These are the only payload slots shard ``s`` must publish to shared
        memory each round; all its other sends are delivered shard-locally.
        """
        import numpy as np

        table = self._boundary_out.get(s)
        if table is None:
            lo, hi = int(self.arc_starts[s]), int(self.arc_starts[s + 1])
            table = lo + np.flatnonzero(self.boundary_arc_mask[lo:hi])
            self._boundary_out[s] = table
        return table

    def inbox_sources(self, s: int):
        """Per inbox slot of shard ``s``, the global source arc (``rev`` slice).

        The message delivered into slot ``q`` (``arc_lo <= q < arc_hi``) was
        sent on arc ``rev[q]``; this is the precomputed rev-gather table the
        sharded engine reads delivered traffic through.
        """
        lo, hi = int(self.arc_starts[s]), int(self.arc_starts[s + 1])
        return self.csr.rev[lo:hi]

    def interior_inbox(self, s: int):
        """Boolean per inbox slot of shard ``s``: the source arc is shard-local."""
        table = self._interior_inbox.get(s)
        if table is None:
            src = self.inbox_sources(s)
            lo, hi = int(self.arc_starts[s]), int(self.arc_starts[s + 1])
            table = (src >= lo) & (src < hi)
            self._interior_inbox[s] = table
        return table

    def exchange(self, s: int) -> ShardExchange:
        """The packed boundary-exchange tables of shard ``s`` (cached).

        Splits the shard's inbox slots into the interior part (source arc is
        shard-local) and one :class:`PeerExchange` per sending peer shard.
        Foreign source arcs are resolved to their position inside the peer's
        packed :meth:`boundary_out` array, so a per-round gather reads only
        packed boundary words — the publish/gather copies of the sharded
        engine never touch a whole-length value array.
        """
        import numpy as np

        table = self._exchange.get(s)
        if table is None:
            lo = int(self.arc_starts[s])
            sources = self.inbox_sources(s)
            interior = self.interior_inbox(s)
            slots = np.arange(sources.shape[0], dtype=np.int64)
            int_slots = slots[interior]
            int_src = sources[interior] - lo
            foreign_slots = slots[~interior]
            foreign_src = sources[~interior]
            owners = self.shard_of_node[self.csr.arc_owner[foreign_src]]
            peers = []
            for t in np.unique(owners):
                t = int(t)
                sel = owners == t
                src_t = foreign_src[sel]
                # Every foreign source is a boundary arc of its owner, so the
                # searchsorted lookup into the peer's packed table is exact.
                packed = np.searchsorted(self.boundary_out(t), src_t)
                peers.append(
                    PeerExchange(
                        t,
                        foreign_slots[sel],
                        src_t - int(self.arc_starts[t]),
                        packed,
                    )
                )
            table = ShardExchange(s, int_slots, int_src, peers)
            self._exchange[s] = table
        return table

    def peer_links(self, s: int):
        """Send-side peer tables of shard ``s`` (cached): ``[(peer, src_local)]``.

        For every peer shard that receives boundary traffic from ``s``, the
        positions — inside ``s``'s own arc range — of the source arcs that
        peer's :meth:`exchange` gather reads, *in the peer's table order*.
        This is the receiver's :class:`PeerExchange` seen from the sending
        side: because the two tables are parallel, a network transport can
        serialize exactly ``mask[src_local]`` plus the masked payload values
        per round, and the receiver applies its ``recv_slots`` unchanged —
        no per-round index translation crosses the wire.  ``rev`` being an
        involution makes the peer relation symmetric, so the peers listed
        here are exactly the peers of :meth:`exchange` for ``s``.
        """
        table = self._peer_links.get(s)
        if table is None:
            table = []
            for t in range(self.num_shards):
                if t == s:
                    continue
                for p in self.exchange(t).peers:
                    if p.peer == s:
                        table.append((t, p.src_local))
                        break
            self._peer_links[s] = table
        return table

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def num_boundary_arcs(self) -> int:
        return int(self.boundary_arc_mask.sum())

    @property
    def boundary_fraction(self) -> float:
        """Fraction of arc slots whose payload crosses a shard boundary."""
        if self.csr.num_arcs == 0:
            return 0.0
        return self.num_boundary_arcs / self.csr.num_arcs

    def describe(self) -> Dict[str, object]:
        """Summary dict for logs and benchmark records."""
        return {
            "num_shards": self.num_shards,
            "node_starts": [int(x) for x in self.node_starts],
            "arcs_per_shard": [
                int(self.arc_starts[s + 1] - self.arc_starts[s])
                for s in range(self.num_shards)
            ],
            "boundary_arcs": self.num_boundary_arcs,
            "boundary_fraction": round(self.boundary_fraction, 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardPlan(shards={self.num_shards}, n={self.csr.num_nodes})"
