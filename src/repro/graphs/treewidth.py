"""Treewidth estimation and elimination-order tree decompositions.

The distributed algorithms of the paper never need to *know* the treewidth τ:
they guess a width parameter ``t`` and double it on failure.  The experiment
harness, however, needs a reference value of τ to (i) report results as a
function of τ and (ii) validate the O(τ² log n) width bound of the distributed
decomposition.  This module provides:

* ``min_degree_order`` / ``min_fill_order`` — classical elimination-order
  heuristics giving *upper bounds* on the treewidth (these are the same
  heuristics exposed by networkx; our implementation keeps the library
  self-contained and returns the full elimination order).
* ``decomposition_from_elimination_order`` — the standard construction of a
  tree decomposition from an elimination order.
* ``treewidth_upper_bound`` — min over both heuristics.
* ``treewidth_lower_bound`` — the degeneracy (MMD) lower bound.
* ``treewidth_exact_small`` — exact treewidth by trying all widths with a
  simple recursive QuickBB-flavoured search, intended only for graphs with at
  most ~14 vertices (used in unit tests to pin heuristic quality).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph

NodeId = Hashable


# --------------------------------------------------------------------------- #
# Elimination orders
# --------------------------------------------------------------------------- #
def _copy_adj(graph: Graph) -> Dict[NodeId, Set[NodeId]]:
    return {u: set(graph.neighbors(u)) for u in graph.nodes()}


def min_degree_order(graph: Graph) -> List[NodeId]:
    """Return an elimination order chosen greedily by minimum degree."""
    adj = _copy_adj(graph)
    strs = {u: str(u) for u in adj}
    order: List[NodeId] = []
    while adj:
        u = min(adj, key=lambda x: (len(adj[x]), strs[x]))
        order.append(u)
        nbrs = adj.pop(u)
        for a in nbrs:
            adj[a].discard(u)
        for a, b in itertools.combinations(nbrs, 2):
            adj[a].add(b)
            adj[b].add(a)
    return order


def min_fill_order(graph: Graph) -> List[NodeId]:
    """Return an elimination order chosen greedily by minimum fill-in.

    Fill-in counts are cached and recomputed only for vertices whose
    neighbourhood (or a pair inside it) changed — i.e. the eliminated
    vertex's neighbours and *their* neighbours — which turns the classical
    O(n · Σdeg²) loop into one that is near-linear per step on
    bounded-degree/low-treewidth graphs.  The produced order is identical to
    the naive recompute-everything greedy.
    """
    adj = _copy_adj(graph)
    strs = {u: str(u) for u in adj}
    order: List[NodeId] = []

    def fill_in(u: NodeId) -> int:
        nbrs = adj[u]
        k = len(nbrs)
        if k < 2:
            return 0
        # Count adjacent pairs inside N(u) by set intersection (each
        # unordered pair is seen from both endpoints).
        present = 0
        for a in nbrs:
            present += len(nbrs & adj[a])
        return k * (k - 1) // 2 - present // 2

    fill: Dict[NodeId, int] = {u: fill_in(u) for u in adj}

    while adj:
        u = min(adj, key=lambda x: (fill[x], len(adj[x]), strs[x]))
        order.append(u)
        nbrs = adj.pop(u)
        del fill[u]
        for a in nbrs:
            adj[a].discard(u)
        for a, b in itertools.combinations(nbrs, 2):
            adj[a].add(b)
            adj[b].add(a)
        # fill_in can only have changed for the eliminated vertex's
        # neighbours (their neighbourhood changed) and the neighbours of
        # those (a fill edge may have closed one of their missing pairs).
        affected: Set[NodeId] = set()
        for a in nbrs:
            affected.add(a)
            affected |= adj[a]
        affected &= adj.keys()
        for x in affected:
            fill[x] = fill_in(x)
    return order


def width_of_elimination_order(graph: Graph, order: Sequence[NodeId]) -> int:
    """Return the width induced by eliminating ``order`` (max bag size − 1)."""
    if set(order) != set(graph.nodes()):
        raise GraphError("elimination order must be a permutation of the node set")
    adj = _copy_adj(graph)
    width = 0
    for u in order:
        nbrs = adj.pop(u)
        width = max(width, len(nbrs))
        for a in nbrs:
            adj[a].discard(u)
        for a, b in itertools.combinations(nbrs, 2):
            adj[a].add(b)
            adj[b].add(a)
    return width


def decomposition_from_elimination_order(
    graph: Graph, order: Sequence[NodeId]
) -> Tuple[Dict[int, Set[NodeId]], Dict[int, Optional[int]]]:
    """Build a tree decomposition from an elimination order.

    Returns ``(bags, parent)`` where bags are indexed by the position of the
    eliminated vertex in ``order`` and ``parent`` gives the decomposition-tree
    structure (root maps to ``None``).  The construction is the textbook one:
    bag i = {order[i]} ∪ (higher-numbered neighbours in the fill-in graph),
    and bag i's parent is the bag of the lowest-numbered vertex of
    bag i − {order[i]}.
    """
    if set(order) != set(graph.nodes()):
        raise GraphError("elimination order must be a permutation of the node set")
    position = {u: i for i, u in enumerate(order)}
    adj = _copy_adj(graph)
    bags: Dict[int, Set[NodeId]] = {}
    for i, u in enumerate(order):
        nbrs = adj.pop(u)
        bags[i] = {u} | set(nbrs)
        for a in nbrs:
            adj[a].discard(u)
        for a, b in itertools.combinations(nbrs, 2):
            adj[a].add(b)
            adj[b].add(a)
    parent: Dict[int, Optional[int]] = {}
    n = len(order)
    for i in range(n):
        later = [position[v] for v in bags[i] if position[v] > i]
        parent[i] = min(later) if later else None
    # Exactly one root when the graph is connected; for disconnected graphs,
    # attach secondary roots to the last bag to keep a single tree.
    roots = [i for i, p in parent.items() if p is None]
    if len(roots) > 1:
        anchor = roots[-1]
        for r in roots[:-1]:
            parent[r] = anchor
    return bags, parent


# --------------------------------------------------------------------------- #
# Bounds
# --------------------------------------------------------------------------- #
def treewidth_upper_bound(graph: Graph) -> int:
    """Best heuristic upper bound (min over min-degree and min-fill orders)."""
    if graph.num_nodes() == 0:
        return 0
    w1 = width_of_elimination_order(graph, min_degree_order(graph))
    w2 = width_of_elimination_order(graph, min_fill_order(graph))
    return min(w1, w2)


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy of the graph (a lower bound on treewidth)."""
    adj = _copy_adj(graph)
    strs = {u: str(u) for u in adj}
    best = 0
    while adj:
        u = min(adj, key=lambda x: (len(adj[x]), strs[x]))
        best = max(best, len(adj[u]))
        nbrs = adj.pop(u)
        for a in nbrs:
            adj[a].discard(u)
    return best


def treewidth_lower_bound(graph: Graph) -> int:
    """A cheap treewidth lower bound (degeneracy / MMD bound)."""
    return degeneracy(graph)


# --------------------------------------------------------------------------- #
# Exact treewidth for tiny graphs
# --------------------------------------------------------------------------- #
def _has_order_of_width(graph: Graph, k: int) -> bool:
    """Decide whether ``graph`` has an elimination order of width ≤ k.

    Memoised recursion on the set of remaining vertices; exponential — only
    intended for |V| ≤ ~14 (unit-test scale).
    """
    nodes = tuple(sorted(graph.nodes(), key=str))
    index = {u: i for i, u in enumerate(nodes)}
    base_adj = {u: {index[v] for v in graph.neighbors(u)} for u in nodes}
    adj_bits = [base_adj[u] for u in nodes]
    full_mask = (1 << len(nodes)) - 1
    memo: Dict[int, bool] = {}

    def neighbors_in(v: int, mask: int) -> Set[int]:
        """Neighbours of v in the graph where eliminated vertices (not in mask)
        have been 'absorbed': we take the connected reachability through
        eliminated vertices, which equals the fill-in neighbourhood."""
        seen = {v}
        stack = [v]
        result: Set[int] = set()
        while stack:
            x = stack.pop()
            for y in adj_bits[x]:
                if y in seen:
                    continue
                seen.add(y)
                if mask & (1 << y):
                    result.add(y)
                else:
                    stack.append(y)
        return result

    def solve(mask: int) -> bool:
        if mask == 0:
            return True
        if mask in memo:
            return memo[mask]
        ok = False
        for v in range(len(nodes)):
            if not mask & (1 << v):
                continue
            if len(neighbors_in(v, mask & ~(1 << v))) <= k:
                if solve(mask & ~(1 << v)):
                    ok = True
                    break
        memo[mask] = ok
        return ok

    return solve(full_mask)


def treewidth_exact_small(graph: Graph, max_nodes: int = 14) -> int:
    """Exact treewidth by incremental width search (tiny graphs only).

    Raises :class:`GraphError` if the graph has more than ``max_nodes`` nodes.
    """
    n = graph.num_nodes()
    if n == 0:
        return 0
    if n > max_nodes:
        raise GraphError(
            f"treewidth_exact_small supports at most {max_nodes} nodes (got {n})"
        )
    upper = treewidth_upper_bound(graph)
    lower = treewidth_lower_bound(graph)
    for k in range(lower, upper + 1):
        if _has_order_of_width(graph, k):
            return k
    return upper
