"""Weighted directed multigraphs.

:class:`WeightedDiGraph` models the *input instances* of the paper's problems:
directed, weighted multigraphs ``G = (V(G), E(G), γ_G)`` with an edge-identity
map γ (paper §5.1).  Parallel edges are first-class citizens (each edge has its
own id), which the stateful-walk framework and the girth reduction rely on.

The *communication network* implied by an instance is its underlying simple
undirected graph ⟦G⟧ — obtained by :meth:`WeightedDiGraph.underlying_graph` —
exactly as defined in paper §2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph

NodeId = Hashable


@dataclass(frozen=True)
class Edge:
    """A single directed edge of a multigraph.

    Attributes
    ----------
    eid:
        Unique edge identifier (integer assigned by the graph).
    tail, head:
        The ordered endpoint pair γ(e) = (tail, head).
    weight:
        Non-negative edge cost (paper: c_G : E(G) → ℕ; we allow floats).
    label:
        Optional application label (e.g. colour for c-colored walks, the 0/1
        count label for count-c walks, or matched/unmatched for matching).
    """

    eid: int
    tail: NodeId
    head: NodeId
    weight: float = 1.0
    label: Any = None

    def endpoints(self) -> Tuple[NodeId, NodeId]:
        return (self.tail, self.head)

    def relabeled(self, label: Any) -> "Edge":
        """Return a copy of this edge carrying a different label."""
        return Edge(self.eid, self.tail, self.head, self.weight, label)


class WeightedDiGraph:
    """A weighted directed multigraph with stable integer edge ids.

    The class supports the operations needed by the framework: incidence
    queries, reversal, per-edge relabeling, conversion to the underlying
    simple undirected communication graph, and conversion to/from lists of
    edges.  It is deliberately *not* a general-purpose graph library — see
    :mod:`repro.graphs.convert` for networkx interoperability.
    """

    def __init__(self, nodes: Optional[Iterable[NodeId]] = None) -> None:
        self._nodes: Set[NodeId] = set()
        self._edges: Dict[int, Edge] = {}
        self._out: Dict[NodeId, List[int]] = {}
        self._in: Dict[NodeId, List[int]] = {}
        self._next_eid = 0
        self._version = 0
        self._ug_cache: Optional[Graph] = None
        self._ug_version = -1
        if nodes is not None:
            for u in nodes:
                self.add_node(u)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, u: NodeId) -> None:
        if u not in self._nodes:
            self._nodes.add(u)
            self._out[u] = []
            self._in[u] = []
            self._version += 1

    def add_edge(
        self,
        tail: NodeId,
        head: NodeId,
        weight: float = 1.0,
        label: Any = None,
        eid: Optional[int] = None,
    ) -> int:
        """Add a directed edge and return its edge id.

        Parallel edges and self-loops are allowed (self-loops are ignored by
        the communication graph but may appear in intermediate constructions).
        Negative weights are rejected — all of the paper's problems assume
        non-negative costs.
        """
        if weight < 0:
            raise GraphError(f"negative edge weight {weight!r} not supported")
        self.add_node(tail)
        self.add_node(head)
        if eid is None:
            eid = self._next_eid
        if eid in self._edges:
            raise GraphError(f"duplicate edge id {eid}")
        self._next_eid = max(self._next_eid, eid) + 1
        edge = Edge(eid, tail, head, float(weight), label)
        self._edges[eid] = edge
        self._out[tail].append(eid)
        self._in[head].append(eid)
        self._version += 1
        return eid

    def add_undirected_edge(
        self, u: NodeId, v: NodeId, weight: float = 1.0, label: Any = None
    ) -> Tuple[int, int]:
        """Add an undirected edge as a pair of antiparallel directed edges.

        Returns the pair of new edge ids ``(u→v, v→u)``.
        """
        e1 = self.add_edge(u, v, weight=weight, label=label)
        e2 = self.add_edge(v, u, weight=weight, label=label)
        return e1, e2

    def remove_edge(self, eid: int) -> None:
        edge = self._edges.pop(eid, None)
        if edge is None:
            raise GraphError(f"edge id {eid} not in graph")
        self._out[edge.tail].remove(eid)
        self._in[edge.head].remove(eid)
        self._version += 1

    def set_label(self, eid: int, label: Any) -> None:
        """Replace the label of edge ``eid`` in place."""
        edge = self._edges.get(eid)
        if edge is None:
            raise GraphError(f"edge id {eid} not in graph")
        self._edges[eid] = edge.relabeled(label)

    def copy(self) -> "WeightedDiGraph":
        # Direct structural copy: Edge objects are immutable and can be shared.
        g = WeightedDiGraph()
        g._nodes = set(self._nodes)
        g._edges = dict(self._edges)
        g._out = {u: list(eids) for u, eids in self._out.items()}
        g._in = {u: list(eids) for u, eids in self._in.items()}
        g._next_eid = self._next_eid
        return g

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def nodes(self) -> List[NodeId]:
        return list(self._nodes)

    def edges(self) -> List[Edge]:
        return list(self._edges.values())

    def edge(self, eid: int) -> Edge:
        if eid not in self._edges:
            raise GraphError(f"edge id {eid} not in graph")
        return self._edges[eid]

    def has_node(self, u: NodeId) -> bool:
        return u in self._nodes

    def num_nodes(self) -> int:
        return len(self._nodes)

    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, u: NodeId) -> List[Edge]:
        """Return outgoing edges of ``u`` (paper notation E^out_G(u))."""
        if u not in self._nodes:
            raise GraphError(f"node {u!r} not in graph")
        return [self._edges[eid] for eid in self._out[u]]

    def in_edges(self, u: NodeId) -> List[Edge]:
        if u not in self._nodes:
            raise GraphError(f"node {u!r} not in graph")
        return [self._edges[eid] for eid in self._in[u]]

    def successors(self, u: NodeId) -> Set[NodeId]:
        return {e.head for e in self.out_edges(u)}

    def predecessors(self, u: NodeId) -> Set[NodeId]:
        return {e.tail for e in self.in_edges(u)}

    def out_degree(self, u: NodeId) -> int:
        return len(self._out[u])

    def in_degree(self, u: NodeId) -> int:
        return len(self._in[u])

    def max_multiplicity(self) -> int:
        """Return the maximum edge multiplicity p_max between any ordered pair."""
        counts: Dict[Tuple[NodeId, NodeId], int] = {}
        for e in self._edges.values():
            key = (e.tail, e.head)
            counts[key] = counts.get(key, 0) + 1
        return max(counts.values(), default=0)

    def total_weight(self) -> float:
        return sum(e.weight for e in self._edges.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, u: NodeId) -> bool:
        return u in self._nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedDiGraph(n={self.num_nodes()}, m={self.num_edges()})"

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def reverse(self) -> "WeightedDiGraph":
        """Return the graph with every edge reversed (same edge ids)."""
        g = WeightedDiGraph(self._nodes)
        for e in self._edges.values():
            g.add_edge(e.head, e.tail, weight=e.weight, label=e.label, eid=e.eid)
        return g

    def subgraph(self, nodes: Iterable[NodeId]) -> "WeightedDiGraph":
        """Return the subgraph induced by ``nodes`` (edge ids preserved)."""
        keep = set(nodes)
        missing = keep - self._nodes
        if missing:
            raise GraphError(f"nodes not in graph: {sorted(map(repr, missing))[:5]}")
        # Direct structural construction: immutable Edge objects are shared,
        # and edges keep the parent's (deterministic) insertion order.
        g = WeightedDiGraph(keep)
        edges = g._edges
        out = g._out
        inn = g._in
        for e in self._edges.values():
            if e.tail in keep and e.head in keep:
                edges[e.eid] = e
                out[e.tail].append(e.eid)
                inn[e.head].append(e.eid)
        g._next_eid = self._next_eid
        return g

    def underlying_graph(self) -> Graph:
        """Return the communication network ⟦G⟧ (paper §2.1).

        Orientation, weights, multiplicities and self-loops are dropped; the
        result is a simple unweighted undirected graph on the same node set.

        The result is a version-cached snapshot (like :meth:`Graph.to_indexed`)
        shared by every caller until this digraph is mutated — treat it as
        read-only.  Sharing matters operationally: repeated simulator helper
        calls (e.g. ``distributed_bellman_ford`` on one instance) then reuse
        one CSR snapshot, which is what lets a persistent
        :class:`~repro.congest.engine.ShardPool`'s workers keep their cached
        graph instead of re-receiving it every run.
        """
        if self._ug_cache is not None and self._ug_version == self._version:
            return self._ug_cache
        from repro.graphs.graph import _edge_key

        g = Graph(nodes=self._nodes)
        adj = g._adj
        weights = g._weights
        for e in self._edges.values():
            t, h = e.tail, e.head
            if t != h and h not in adj[t]:
                adj[t].add(h)
                adj[h].add(t)
                weights[_edge_key(t, h)] = 1.0
        g._version += 1
        self._ug_cache = g
        self._ug_version = self._version
        return g

    def underlying_weighted_graph(self) -> Graph:
        """Return the undirected weighted simple graph (min weight over parallel edges)."""
        g = Graph(nodes=self._nodes)
        for e in self._edges.values():
            if e.tail == e.head:
                continue
            if g.has_edge(e.tail, e.head):
                # Graph.add_edge keeps the minimum weight on duplicates.
                g.add_edge(e.tail, e.head, weight=e.weight)
            else:
                g.add_edge(e.tail, e.head, weight=e.weight)
        return g

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_undirected(cls, graph: Graph, default_weight: float = 1.0) -> "WeightedDiGraph":
        """Build a directed instance from an undirected graph.

        Every undirected edge ``{u, v}`` of weight ``w`` becomes the pair of
        antiparallel directed edges ``u→v`` and ``v→u`` with weight ``w``.
        """
        g = cls(graph.nodes())
        for u, v, w in graph.weighted_edges():
            g.add_undirected_edge(u, v, weight=w if w is not None else default_weight)
        return g

    @classmethod
    def from_edge_list(
        cls, edges: Iterable[Tuple], directed: bool = True
    ) -> "WeightedDiGraph":
        """Build a graph from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        g = cls()
        for t in edges:
            if len(t) == 2:
                u, v, w = t[0], t[1], 1.0
            else:
                u, v, w = t[0], t[1], t[2]
            if directed:
                g.add_edge(u, v, weight=w)
            else:
                g.add_undirected_edge(u, v, weight=w)
        return g
