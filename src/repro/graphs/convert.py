"""Conversions between ``repro`` graph types and :mod:`networkx`.

networkx is used exclusively for *reference/baseline* computations in tests
and benchmarks (exact shortest paths, maximum matching, treewidth heuristics);
all algorithms under test use the native :class:`~repro.graphs.graph.Graph`
and :class:`~repro.graphs.digraph.WeightedDiGraph` structures.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph


def graph_to_networkx(graph: Graph) -> "nx.Graph":
    """Convert an undirected :class:`Graph` to a :class:`networkx.Graph`."""
    g = nx.Graph()
    g.add_nodes_from(graph.nodes())
    for u, v, w in graph.weighted_edges():
        g.add_edge(u, v, weight=w)
    return g


def graph_from_networkx(g: "nx.Graph") -> Graph:
    """Convert a :class:`networkx.Graph` to an undirected :class:`Graph`."""
    out = Graph(nodes=g.nodes())
    for u, v, data in g.edges(data=True):
        if u == v:
            continue
        out.add_edge(u, v, weight=float(data.get("weight", 1.0)))
    return out


def digraph_to_networkx(graph: WeightedDiGraph) -> "nx.MultiDiGraph":
    """Convert a :class:`WeightedDiGraph` to a :class:`networkx.MultiDiGraph`."""
    g = nx.MultiDiGraph()
    g.add_nodes_from(graph.nodes())
    for e in graph.edges():
        g.add_edge(e.tail, e.head, key=e.eid, weight=e.weight, label=e.label)
    return g


def digraph_to_simple_networkx(graph: WeightedDiGraph) -> "nx.DiGraph":
    """Convert to a simple :class:`networkx.DiGraph`, keeping minimum parallel weight."""
    g = nx.DiGraph()
    g.add_nodes_from(graph.nodes())
    for e in graph.edges():
        if g.has_edge(e.tail, e.head):
            if e.weight < g[e.tail][e.head]["weight"]:
                g[e.tail][e.head]["weight"] = e.weight
        else:
            g.add_edge(e.tail, e.head, weight=e.weight)
    return g


def digraph_from_networkx(g, default_weight: float = 1.0) -> WeightedDiGraph:
    """Convert any networkx (di)graph to a :class:`WeightedDiGraph`.

    Undirected networkx graphs produce antiparallel edge pairs.
    """
    out = WeightedDiGraph(g.nodes())
    directed = g.is_directed()
    if g.is_multigraph():
        edge_iter = g.edges(keys=False, data=True)
    else:
        edge_iter = g.edges(data=True)
    for u, v, data in edge_iter:
        w = float(data.get("weight", default_weight))
        label = data.get("label")
        if directed:
            out.add_edge(u, v, weight=w, label=label)
        else:
            out.add_undirected_edge(u, v, weight=w, label=label)
    return out
