"""Graph properties and centralized shortest-path reference routines.

These are *substrate* routines: the round-cost model needs the unweighted
diameter ``D`` of the communication network (paper §2.1), the tree-splitting
procedure needs subtree sizes and centroids, and the test suite needs exact
centralized distances (Dijkstra) to validate the distributed distance labels.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph

NodeId = Hashable
INF = math.inf


# --------------------------------------------------------------------------- #
# Unweighted (communication-network) properties
# --------------------------------------------------------------------------- #
def eccentricity(graph: Graph, source: NodeId) -> int:
    """Return the unweighted eccentricity of ``source`` within its component."""
    layers = graph.bfs_layers(source)
    return max(layers.values(), default=0)


def diameter(graph: Graph, exact: bool = True, sample: int = 8) -> int:
    """Return the unweighted diameter ``D`` of ``graph``.

    Parameters
    ----------
    exact:
        If ``True`` (default) run a BFS from every node.  If ``False``, run a
        2-sweep style estimate from ``sample`` BFS sources, which is a lower
        bound on the diameter and within a factor 2 of it; useful for large
        benchmark instances where the exact all-pairs sweep dominates runtime.
    sample:
        Number of BFS sweeps used when ``exact`` is ``False``.

    Raises
    ------
    GraphError
        If the graph is disconnected (the diameter would be infinite).
    """
    nodes = graph.nodes()
    if not nodes:
        return 0
    if not graph.is_connected():
        raise GraphError("diameter is undefined for a disconnected graph")
    if exact:
        return max(eccentricity(graph, u) for u in nodes)
    # 2-sweep style heuristic: repeatedly jump to the farthest node found.
    best = 0
    current = nodes[0]
    for _ in range(max(1, sample)):
        layers = graph.bfs_layers(current)
        far_node = max(layers, key=layers.get)
        best = max(best, layers[far_node])
        if far_node == current:
            break
        current = far_node
    return best


def radius(graph: Graph) -> int:
    """Return the unweighted radius of a connected graph."""
    if not graph.is_connected():
        raise GraphError("radius is undefined for a disconnected graph")
    return min(eccentricity(graph, u) for u in graph.nodes())


def center(graph: Graph) -> List[NodeId]:
    """Return the nodes of minimum eccentricity."""
    if not graph.is_connected():
        raise GraphError("center is undefined for a disconnected graph")
    ecc = {u: eccentricity(graph, u) for u in graph.nodes()}
    r = min(ecc.values())
    return [u for u, e in ecc.items() if e == r]


def largest_component(graph: Graph) -> Set[NodeId]:
    """Return the node set of the largest connected component."""
    comps = graph.connected_components()
    if not comps:
        return set()
    return max(comps, key=len)


# --------------------------------------------------------------------------- #
# Weighted shortest paths (centralized references)
# --------------------------------------------------------------------------- #
def dijkstra(graph: WeightedDiGraph, source: NodeId) -> Dict[NodeId, float]:
    """Single-source shortest-path distances in a weighted directed multigraph.

    Unreachable nodes are absent from the returned mapping.
    """
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} not in graph")
    dist: Dict[NodeId, float] = {source: 0.0}
    heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, source)]
    counter = 0
    settled: Set[NodeId] = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for e in graph.out_edges(u):
            nd = d + e.weight
            if nd < dist.get(e.head, INF):
                dist[e.head] = nd
                counter += 1
                heapq.heappush(heap, (nd, counter, e.head))
    return dist


def dijkstra_with_paths(
    graph: WeightedDiGraph, source: NodeId
) -> Tuple[Dict[NodeId, float], Dict[NodeId, Optional[NodeId]]]:
    """Dijkstra returning distances and a shortest-path predecessor map."""
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} not in graph")
    dist: Dict[NodeId, float] = {source: 0.0}
    pred: Dict[NodeId, Optional[NodeId]] = {source: None}
    heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, source)]
    counter = 0
    settled: Set[NodeId] = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for e in graph.out_edges(u):
            nd = d + e.weight
            if nd < dist.get(e.head, INF):
                dist[e.head] = nd
                pred[e.head] = u
                counter += 1
                heapq.heappush(heap, (nd, counter, e.head))
    return dist, pred


def all_pairs_shortest_paths(graph: WeightedDiGraph) -> Dict[NodeId, Dict[NodeId, float]]:
    """Exact all-pairs shortest-path distances (Dijkstra from every node)."""
    return {u: dijkstra(graph, u) for u in graph.nodes()}


def undirected_dijkstra(graph: Graph, source: NodeId) -> Dict[NodeId, float]:
    """Weighted single-source distances in an undirected :class:`Graph`."""
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} not in graph")
    dist: Dict[NodeId, float] = {source: 0.0}
    heap: List[Tuple[float, int, NodeId]] = [(0.0, 0, source)]
    counter = 0
    settled: Set[NodeId] = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v in graph.neighbors(u):
            nd = d + graph.weight(u, v)
            if nd < dist.get(v, INF):
                dist[v] = nd
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    return dist


def weighted_diameter(graph: WeightedDiGraph) -> float:
    """Return the maximum finite pairwise weighted distance (directed)."""
    best = 0.0
    for u in graph.nodes():
        dist = dijkstra(graph, u)
        for d in dist.values():
            if d > best:
                best = d
    return best


# --------------------------------------------------------------------------- #
# Tree helpers (used by the Split procedure and the simulator)
# --------------------------------------------------------------------------- #
def tree_subtree_sizes(
    parent: Dict[NodeId, Optional[NodeId]], weight: Optional[Dict[NodeId, int]] = None
) -> Dict[NodeId, int]:
    """Given a ``child -> parent`` tree map, return the (weighted) subtree size of each node.

    ``weight`` maps each node to its contribution (default 1); the paper uses
    μ_X weights where only nodes of ``X`` count.
    """
    children: Dict[NodeId, List[NodeId]] = {u: [] for u in parent}
    roots = []
    for u, p in parent.items():
        if p is None:
            roots.append(u)
        else:
            children[p].append(u)
    sizes: Dict[NodeId, int] = {}
    # Iterative post-order to avoid recursion-depth limits on path-like trees.
    for root in roots:
        stack: List[Tuple[NodeId, bool]] = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                w = 1 if weight is None else weight.get(node, 0)
                sizes[node] = w + sum(sizes[c] for c in children[node])
            else:
                stack.append((node, True))
                for c in children[node]:
                    stack.append((c, False))
    return sizes


def tree_children(parent: Dict[NodeId, Optional[NodeId]]) -> Dict[NodeId, List[NodeId]]:
    """Invert a ``child -> parent`` map into a ``parent -> children`` map."""
    children: Dict[NodeId, List[NodeId]] = {u: [] for u in parent}
    for u, p in parent.items():
        if p is not None:
            children[p].append(u)
    return children


def tree_centroid(
    parent: Dict[NodeId, Optional[NodeId]], weight: Optional[Dict[NodeId, int]] = None
) -> NodeId:
    """Return a weighted centroid of the tree given as a ``child -> parent`` map.

    The centroid ``c`` is a vertex whose removal leaves components of weighted
    size at most half of the total weight (paper §3.3, Split step).  Ties are
    broken deterministically by string representation.
    """
    if not parent:
        raise GraphError("cannot take the centroid of an empty tree")
    children = tree_children(parent)
    sizes = tree_subtree_sizes(parent, weight)
    roots = [u for u, p in parent.items() if p is None]
    if len(roots) != 1:
        raise GraphError("tree_centroid expects a single tree (exactly one root)")
    root = roots[0]
    total = sizes[root]
    best: Optional[NodeId] = None
    best_key: Optional[Tuple[int, str]] = None
    for u in parent:
        # Largest piece after removing u: max over child subtrees and the "rest".
        pieces = [sizes[c] for c in children[u]]
        own = 1 if weight is None else weight.get(u, 0)
        pieces.append(total - sizes[u])
        worst = max(pieces) if pieces else 0
        key = (worst, str(u))
        if best_key is None or key < best_key:
            best_key = key
            best = u
        # own weight intentionally unused beyond size bookkeeping
        _ = own
    assert best is not None
    return best


def reroot_tree(
    parent: Dict[NodeId, Optional[NodeId]], new_root: NodeId
) -> Dict[NodeId, Optional[NodeId]]:
    """Return the same tree re-rooted at ``new_root`` (child -> parent map)."""
    if new_root not in parent:
        raise GraphError(f"node {new_root!r} not in tree")
    # Build adjacency and BFS from the new root.
    adj: Dict[NodeId, Set[NodeId]] = {u: set() for u in parent}
    for u, p in parent.items():
        if p is not None:
            adj[u].add(p)
            adj[p].add(u)
    new_parent: Dict[NodeId, Optional[NodeId]] = {new_root: None}
    queue = deque([new_root])
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v not in new_parent:
                new_parent[v] = u
                queue.append(v)
    if len(new_parent) != len(parent):
        raise GraphError("tree is not connected; cannot re-root")
    return new_parent
