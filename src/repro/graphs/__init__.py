"""Graph substrate: data structures, generators and treewidth tooling.

This subpackage provides the graph-theoretic foundation of the library:

* :class:`~repro.graphs.graph.Graph` — simple undirected graphs (the
  communication network :math:`[\\![G]\\!]` of the CONGEST model).
* :class:`~repro.graphs.digraph.WeightedDiGraph` — weighted directed
  multigraphs (the *input instances* of the paper's problems: distance
  labeling, stateful walks, girth).
* :mod:`~repro.graphs.generators` — synthetic low-treewidth graph families
  (k-trees, partial k-trees, grids, series-parallel, cycles with chords,
  bipartite families) used as workloads for experiments.
* :mod:`~repro.graphs.treewidth` — treewidth upper/lower bound heuristics
  (min-degree, min-fill) and exact computation for small graphs.
* :mod:`~repro.graphs.properties` — diameter, eccentricities, connectivity
  and other graph properties used by the round-cost model.
"""

from repro.graphs.graph import Graph
from repro.graphs.digraph import WeightedDiGraph, Edge
from repro.graphs.indexed import IndexedGraph
from repro.graphs import generators, treewidth, properties, convert

__all__ = [
    "Graph",
    "WeightedDiGraph",
    "Edge",
    "IndexedGraph",
    "generators",
    "treewidth",
    "properties",
    "convert",
]
