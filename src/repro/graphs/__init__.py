"""Graph substrate: data structures, generators and treewidth tooling.

This subpackage provides the graph-theoretic foundation of the library:

* :class:`~repro.graphs.graph.Graph` — simple undirected graphs (the
  communication network :math:`[\\![G]\\!]` of the CONGEST model).
* :class:`~repro.graphs.digraph.WeightedDiGraph` — weighted directed
  multigraphs (the *input instances* of the paper's problems: distance
  labeling, stateful walks, girth).
* :mod:`~repro.graphs.generators` — synthetic low-treewidth graph families
  (k-trees, partial k-trees, grids, series-parallel, cycles with chords,
  bipartite families) used as workloads for experiments.
* :mod:`~repro.graphs.sharding` — :class:`ShardPlan`, the contiguous
  node-range partition of a CSR snapshot that the sharded simulation tier
  places across worker processes (per-shard arc-slot ranges, boundary-arc
  classification, rev-gather delivery tables).
* :mod:`~repro.graphs.treewidth` — treewidth upper/lower bound heuristics
  (min-degree, min-fill) and exact computation for small graphs.
* :mod:`~repro.graphs.properties` — diameter, eccentricities, connectivity
  and other graph properties used by the round-cost model.
"""

from repro.graphs.graph import Graph
from repro.graphs.digraph import WeightedDiGraph, Edge
from repro.graphs.indexed import IndexedGraph
from repro.graphs.sharding import Shard, ShardPlan
from repro.graphs import generators, treewidth, properties, convert

__all__ = [
    "Graph",
    "WeightedDiGraph",
    "Edge",
    "IndexedGraph",
    "Shard",
    "ShardPlan",
    "generators",
    "treewidth",
    "properties",
    "convert",
]
