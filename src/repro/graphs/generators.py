"""Synthetic low-treewidth graph families.

The paper evaluates nothing empirically; to exercise its algorithms we need
workload generators that produce connected graphs with *known or tightly
bounded treewidth* and controllable diameter, so that the experiments can
sweep (n, τ, D) independently.  The families provided here are standard:

* ``path_graph`` / ``cycle_graph`` / ``tree_graph`` — treewidth 1 / 2 / 1.
* ``grid_graph(rows, cols)`` — treewidth = min(rows, cols).
* ``k_tree(n, k)`` — treewidth exactly k (the canonical maximal family).
* ``partial_k_tree(n, k, edge_keep_prob)`` — treewidth ≤ k; the workhorse
  family for the experiments (connectivity is enforced).
* ``series_parallel_graph(n)`` — treewidth ≤ 2.
* ``cycle_with_chords(n, num_chords)`` — small treewidth for few chords.
* ``caterpillar_graph`` — tree with long spine, controls diameter precisely.
* bipartite families for the matching experiments: grids, edge subdivisions
  (bipartite, treewidth preserved up to +1) and random bipartite "banded"
  graphs of bounded pathwidth.

All generators accept an explicit ``seed``/``rng`` and return
:class:`~repro.graphs.graph.Graph` (undirected); helpers at the bottom turn an
undirected graph into a weighted directed instance.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph


def _rng(seed_or_rng) -> random.Random:
    """Normalise a seed / Random instance / None into a ``random.Random``."""
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


# --------------------------------------------------------------------------- #
# Elementary families
# --------------------------------------------------------------------------- #
def path_graph(n: int) -> Graph:
    """Path on ``n`` nodes (treewidth 1, diameter n-1)."""
    if n <= 0:
        raise GraphError("path_graph requires n >= 1")
    g = Graph(nodes=range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n`` nodes (treewidth 2 for n >= 3)."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def complete_graph(n: int) -> Graph:
    """Complete graph K_n (treewidth n-1)."""
    if n <= 0:
        raise GraphError("complete_graph requires n >= 1")
    g = Graph(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j)
    return g


def star_graph(n: int) -> Graph:
    """Star with one hub and ``n - 1`` leaves (treewidth 1, diameter 2)."""
    if n <= 0:
        raise GraphError("star_graph requires n >= 1")
    g = Graph(nodes=range(n))
    for i in range(1, n):
        g.add_edge(0, i)
    return g


def random_tree(n: int, seed=None) -> Graph:
    """Uniform-ish random tree built by random attachment (treewidth 1)."""
    rng = _rng(seed)
    if n <= 0:
        raise GraphError("random_tree requires n >= 1")
    g = Graph(nodes=range(n))
    for i in range(1, n):
        g.add_edge(i, rng.randrange(i))
    return g


def caterpillar_graph(spine: int, legs_per_node: int = 1) -> Graph:
    """Caterpillar tree: a path of ``spine`` nodes, each with pendant leaves.

    Useful for controlling the diameter exactly (D = spine - 1 + up to 2)
    while keeping treewidth 1.
    """
    if spine <= 0:
        raise GraphError("caterpillar_graph requires spine >= 1")
    g = path_graph(spine)
    next_id = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(i, next_id)
            next_id += 1
    return g


# --------------------------------------------------------------------------- #
# Grid-like families
# --------------------------------------------------------------------------- #
def grid_graph(rows: int, cols: int, diagonal: bool = False) -> Graph:
    """A ``rows × cols`` grid (treewidth = min(rows, cols); bipartite unless diagonal).

    ``diagonal=True`` adds one diagonal per cell (a "king-move lite" grid),
    which increases the treewidth to at most ``2 * min(rows, cols)`` and makes
    the graph non-bipartite.
    """
    if rows <= 0 or cols <= 0:
        raise GraphError("grid_graph requires positive dimensions")
    g = Graph(nodes=((r, c) for r in range(rows) for c in range(cols)))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                g.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                g.add_edge((r, c), (r, c + 1))
            if diagonal and r + 1 < rows and c + 1 < cols:
                g.add_edge((r, c), (r + 1, c + 1))
    return g


def cylinder_graph(rows: int, cols: int) -> Graph:
    """Grid with wrap-around columns (treewidth ≈ 2·min dimension)."""
    g = grid_graph(rows, cols)
    if cols >= 3:
        for r in range(rows):
            g.add_edge((r, cols - 1), (r, 0))
    return g


# --------------------------------------------------------------------------- #
# k-trees and partial k-trees
# --------------------------------------------------------------------------- #
def k_tree(n: int, k: int, seed=None) -> Graph:
    """A random k-tree on ``n`` nodes (treewidth exactly ``k`` for n > k).

    Construction: start from the clique K_{k+1}; each new vertex is joined to
    a uniformly random existing k-clique.  The cliques are tracked explicitly,
    so the generator also certifies treewidth ``k``.
    """
    rng = _rng(seed)
    if k < 1:
        raise GraphError("k_tree requires k >= 1")
    if n < k + 1:
        raise GraphError(f"k_tree requires n >= k + 1 (got n={n}, k={k})")
    g = complete_graph(k + 1)
    cliques: List[Tuple[int, ...]] = [tuple(range(k + 1))]
    # Every (k)-subset of the initial clique is a candidate attachment face.
    faces: List[Tuple[int, ...]] = []
    base = list(range(k + 1))
    for skip in range(k + 1):
        faces.append(tuple(base[:skip] + base[skip + 1 :]))
    for v in range(k + 1, n):
        face = faces[rng.randrange(len(faces))]
        g.add_node(v)
        for u in face:
            g.add_edge(v, u)
        new_clique = tuple(sorted(face + (v,)))
        cliques.append(new_clique)
        members = list(new_clique)
        for skip in range(len(members)):
            faces.append(tuple(members[:skip] + members[skip + 1 :]))
    return g


def partial_k_tree(
    n: int,
    k: int,
    edge_keep_prob: float = 0.7,
    seed=None,
    ensure_connected: bool = True,
) -> Graph:
    """A random partial k-tree: a random subgraph of a random k-tree.

    Treewidth is at most ``k``.  With ``ensure_connected=True`` (default) a
    spanning tree of the k-tree is always retained so the result is connected
    (required by every distributed algorithm in the paper).
    """
    rng = _rng(seed)
    if not 0.0 <= edge_keep_prob <= 1.0:
        raise GraphError("edge_keep_prob must be in [0, 1]")
    full = k_tree(n, k, seed=rng)
    g = Graph(nodes=full.nodes())
    kept_tree: Set[Tuple[int, int]] = set()
    if ensure_connected:
        parent = full.spanning_tree(root=0)
        for child, par in parent.items():
            if par is not None:
                kept_tree.add(tuple(sorted((child, par))))
    for u, v in full.edges():
        key = tuple(sorted((u, v)))
        if key in kept_tree or rng.random() < edge_keep_prob:
            g.add_edge(u, v)
    return g


def series_parallel_graph(n: int, seed=None) -> Graph:
    """A random series-parallel graph on roughly ``n`` nodes (treewidth ≤ 2).

    Built by repeatedly replacing a random edge by either a series composition
    (subdivide) or a parallel composition (duplicate path of length 2, since
    the simple-graph model cannot hold true parallel edges).
    """
    rng = _rng(seed)
    if n < 2:
        raise GraphError("series_parallel_graph requires n >= 2")
    g = Graph(nodes=[0, 1])
    g.add_edge(0, 1)
    next_id = 2
    while g.num_nodes() < n:
        edges = g.edges()
        u, v = edges[rng.randrange(len(edges))]
        if rng.random() < 0.5:
            # Series: subdivide (u, v) with a fresh node.
            g.remove_edge(u, v)
            g.add_edge(u, next_id)
            g.add_edge(next_id, v)
            next_id += 1
        else:
            # Parallel: add a new length-2 path alongside (u, v).
            g.add_edge(u, next_id)
            g.add_edge(next_id, v)
            next_id += 1
    return g


def cycle_with_chords(n: int, num_chords: int, seed=None) -> Graph:
    """A cycle on ``n`` nodes with ``num_chords`` random chords.

    Treewidth is at most ``num_chords + 2``; useful for girth experiments
    because short cycles are created by chords.
    """
    rng = _rng(seed)
    g = cycle_graph(n)
    attempts = 0
    added = 0
    while added < num_chords and attempts < 50 * max(1, num_chords):
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        added += 1
    return g


# --------------------------------------------------------------------------- #
# Bipartite families (for the matching experiments)
# --------------------------------------------------------------------------- #
def subdivided_graph(graph: Graph) -> Graph:
    """Subdivide every edge once: the result is bipartite and treewidth is preserved
    (up to max(tw, 1))."""
    g = Graph(nodes=graph.nodes())
    next_id = 0
    existing = set(graph.nodes())
    for u, v in graph.edges():
        while ("sub", next_id) in existing:
            next_id += 1
        mid = ("sub", next_id)
        next_id += 1
        g.add_edge(u, mid)
        g.add_edge(mid, v)
    return g


def bipartite_double_cover(graph: Graph) -> Graph:
    """The bipartite double cover (tensor product with K2); treewidth ≤ 2·tw(G)+1."""
    g = Graph()
    for u in graph.nodes():
        g.add_node((u, 0))
        g.add_node((u, 1))
    for u, v in graph.edges():
        g.add_edge((u, 0), (v, 1))
        g.add_edge((u, 1), (v, 0))
    return g


def random_banded_bipartite(
    n_left: int, n_right: int, band: int = 3, edge_prob: float = 0.6, seed=None
) -> Graph:
    """Random bipartite graph where left node ``i`` only connects to right nodes
    within ``band`` positions of ``i`` (pathwidth, hence treewidth, O(band)).

    A spanning structure is kept so the graph is connected.
    """
    rng = _rng(seed)
    if n_left <= 0 or n_right <= 0:
        raise GraphError("random_banded_bipartite requires positive part sizes")
    g = Graph()
    left = [("L", i) for i in range(n_left)]
    right = [("R", j) for j in range(n_right)]
    for u in left + right:
        g.add_node(u)
    for i in range(n_left):
        lo = max(0, int(i * n_right / n_left) - band)
        hi = min(n_right - 1, int(i * n_right / n_left) + band)
        candidates = list(range(lo, hi + 1))
        # Guarantee at least one incident edge per left node.
        forced = rng.choice(candidates)
        for j in candidates:
            if j == forced or rng.random() < edge_prob:
                g.add_edge(("L", i), ("R", j))
    # Stitch the right side together through existing structure if disconnected:
    # connect consecutive right nodes through their band-overlapping left nodes.
    comps = g.connected_components()
    if len(comps) > 1:
        comps_sorted = sorted(comps, key=lambda c: min(str(x) for x in c))
        for a, b in zip(comps_sorted, comps_sorted[1:]):
            u = next(iter(x for x in a if x[0] == "L"), next(iter(a)))
            v = next(iter(x for x in b if x[0] == "R"), next(iter(b)))
            if u[0] == v[0]:
                # Same side; bridge via any opposite-side node in either component.
                continue
            g.add_edge(u, v)
    return g


# --------------------------------------------------------------------------- #
# Weighted / directed instance helpers
# --------------------------------------------------------------------------- #
def with_random_weights(
    graph: Graph, low: int = 1, high: int = 10, seed=None
) -> Graph:
    """Return a copy of ``graph`` with integer edge weights drawn uniformly from [low, high]."""
    rng = _rng(seed)
    if low < 0 or high < low:
        raise GraphError("weights must satisfy 0 <= low <= high")
    g = Graph(nodes=graph.nodes())
    for u, v in graph.edges():
        g.add_edge(u, v, weight=rng.randint(low, high))
    return g


def to_directed_instance(
    graph: Graph,
    weight_range: Optional[Tuple[int, int]] = None,
    orientation: str = "both",
    seed=None,
) -> WeightedDiGraph:
    """Turn an undirected graph into a weighted directed instance.

    Parameters
    ----------
    weight_range:
        ``(low, high)`` for uniform integer weights; ``None`` keeps the
        undirected weights (default 1).
    orientation:
        ``"both"`` — every undirected edge becomes two antiparallel directed
        edges (possibly with different weights); ``"random"`` — a single random
        orientation per edge; ``"asymmetric"`` — antiparallel edges with
        independent random weights.
    """
    rng = _rng(seed)
    dg = WeightedDiGraph(graph.nodes())

    def draw(u, v) -> float:
        if weight_range is None:
            return graph.weight(u, v)
        return float(rng.randint(weight_range[0], weight_range[1]))

    for u, v in graph.edges():
        if orientation == "both":
            w = draw(u, v)
            dg.add_edge(u, v, weight=w)
            dg.add_edge(v, u, weight=w)
        elif orientation == "asymmetric":
            dg.add_edge(u, v, weight=draw(u, v))
            dg.add_edge(v, u, weight=draw(u, v))
        elif orientation == "random":
            if rng.random() < 0.5:
                dg.add_edge(u, v, weight=draw(u, v))
            else:
                dg.add_edge(v, u, weight=draw(u, v))
        else:
            raise GraphError(f"unknown orientation {orientation!r}")
    return dg


def relabel_to_integers(graph: Graph) -> Tuple[Graph, Dict]:
    """Relabel the nodes of ``graph`` to 0..n-1; returns (new_graph, old->new map)."""
    mapping = {u: i for i, u in enumerate(sorted(graph.nodes(), key=str))}
    g = Graph(nodes=mapping.values())
    for u, v, w in graph.weighted_edges():
        g.add_edge(mapping[u], mapping[v], weight=w)
    return g, mapping
