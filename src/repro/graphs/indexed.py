"""Indexed CSR (compressed sparse row) view of a :class:`~repro.graphs.graph.Graph`.

The adjacency-set :class:`~repro.graphs.graph.Graph` is convenient for
construction and for the decomposition algorithms, but it is a poor substrate
for the hot loop of the CONGEST simulator: every round-level operation pays
for hashing arbitrary node ids and for rebuilding neighbour sets.

:class:`IndexedGraph` freezes a graph into flat arrays:

* nodes are renumbered to contiguous integers ``0..n-1`` (in ``graph.nodes()``
  insertion order, so results stay deterministic);
* the adjacency structure is CSR — ``indptr``/``indices`` — with neighbours
  sorted by ``str(node_id)``, matching the neighbour order the simulator
  exposes to protocols;
* every undirected edge gets a dense integer *edge id* in ``0..m-1``; the id
  of the edge ``{u, v}`` is an O(1) dict lookup via :meth:`edge_id`, and each
  CSR arc position carries its edge id in ``arc_edge_ids`` so per-edge
  statistics (e.g. words per edge per round) index a flat array.

The view is a snapshot: mutating the source graph afterwards does not update
the view.  :meth:`Graph.to_indexed` caches the view and invalidates the cache
when the graph is mutated.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.errors import GraphError

NodeId = Hashable


class IndexedGraph:
    """A frozen CSR snapshot of an undirected graph.

    Attributes
    ----------
    node_ids:
        ``idx -> original node id`` (insertion order of the source graph).
    index_of:
        ``original node id -> idx``.
    indptr / indices:
        CSR adjacency: the neighbours of node ``i`` are
        ``indices[indptr[i]:indptr[i + 1]]`` (as indices), sorted by
        ``str(original id)``.
    neighbor_ids:
        Per node, the tuple of neighbours as *original* ids in the same order
        as ``indices`` (what the simulator exposes as ``ctx.neighbors``;
        immutable so a protocol cannot corrupt the shared snapshot).
    arc_edge_ids:
        Parallel to ``indices``: the undirected edge id of each arc.
    arc_weights:
        Parallel to ``indices``: the weight of each arc's edge.
    edge_endpoints:
        ``edge id -> (i, j)`` index pair (first-encounter orientation).
    """

    __slots__ = (
        "node_ids",
        "index_of",
        "indptr",
        "indices",
        "neighbor_ids",
        "arc_edge_ids",
        "arc_weights",
        "edge_endpoints",
        "_edge_index",
        "_neighbor_maps",
        "_csr_arrays",
        "num_nodes",
        "num_edges",
    )

    def __init__(self, graph) -> None:
        node_ids: List[NodeId] = graph.nodes()
        index_of: Dict[NodeId, int] = {u: i for i, u in enumerate(node_ids)}
        n = len(node_ids)

        indptr: List[int] = [0] * (n + 1)
        indices: List[int] = []
        neighbor_ids: List[Tuple[NodeId, ...]] = []
        arc_edge_ids: List[int] = []
        arc_weights: List[float] = []
        edge_endpoints: List[Tuple[int, int]] = []
        edge_index: Dict[Tuple[int, int], int] = {}

        for i, u in enumerate(node_ids):
            nbrs = tuple(sorted(graph.neighbors(u), key=str))
            neighbor_ids.append(nbrs)
            for v in nbrs:
                j = index_of[v]
                indices.append(j)
                eid = edge_index.get((j, i))
                if eid is None:
                    eid = len(edge_endpoints)
                    edge_endpoints.append((i, j))
                edge_index[(i, j)] = eid
                arc_edge_ids.append(eid)
                arc_weights.append(graph.weight(u, v))
            indptr[i + 1] = len(indices)

        self.node_ids = node_ids
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.neighbor_ids = neighbor_ids
        self.arc_edge_ids = arc_edge_ids
        self.arc_weights = arc_weights
        self.edge_endpoints = edge_endpoints
        self._edge_index = edge_index
        self._neighbor_maps = None
        self._csr_arrays = None
        self.num_nodes = n
        self.num_edges = len(edge_endpoints)

    # ------------------------------------------------------------------ #
    # Queries (all O(1) or O(deg))
    # ------------------------------------------------------------------ #
    def neighbors(self, i: int) -> Sequence[int]:
        """Return the neighbour indices of node index ``i`` (a list slice)."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def arc_range(self, i: int) -> Tuple[int, int]:
        """Return the ``(start, end)`` CSR arc positions of node index ``i``."""
        return self.indptr[i], self.indptr[i + 1]

    def degree(self, i: int) -> int:
        return self.indptr[i + 1] - self.indptr[i]

    def has_arc(self, i: int, j: int) -> bool:
        return (i, j) in self._edge_index

    def edge_id(self, i: int, j: int) -> int:
        """Return the dense id of edge ``{i, j}`` (O(1); raises if absent)."""
        eid = self._edge_index.get((i, j))
        if eid is None:
            raise GraphError(f"edge ({i}, {j}) not in indexed graph")
        return eid

    def edge_weight(self, eid: int) -> float:
        i, j = self.edge_endpoints[eid]
        # The arc (i -> j) exists by construction; scan i's arcs for j.
        lo, hi = self.indptr[i], self.indptr[i + 1]
        for pos in range(lo, hi):
            if self.indices[pos] == j:
                return self.arc_weights[pos]
        raise GraphError(f"edge id {eid} has no arc")  # pragma: no cover

    @property
    def neighbor_maps(self) -> List[Dict[NodeId, Tuple[int, int]]]:
        """Per node index: ``original neighbour id -> (neighbour index, edge id)``.

        The O(1) outbox-validation/edge-lookup tables of the simulation fast
        path; built lazily once per snapshot and shared by every network over
        the same graph.
        """
        maps = self._neighbor_maps
        if maps is None:
            indices = self.indices
            arc_edge_ids = self.arc_edge_ids
            node_ids = self.node_ids
            maps = []
            for i in range(self.num_nodes):
                lo, hi = self.indptr[i], self.indptr[i + 1]
                maps.append(
                    {
                        node_ids[indices[pos]]: (indices[pos], arc_edge_ids[pos])
                        for pos in range(lo, hi)
                    }
                )
            self._neighbor_maps = maps
        return maps

    def to_arrays(self) -> "CsrArrays":
        """Return (and cache) the numpy mirror of this snapshot.

        The :class:`CsrArrays` view is what the vectorized simulation tier
        operates on: every per-round operation is an array op over dense arc
        positions.  Requires numpy; raises ``ImportError`` where it is
        unavailable (callers fall back to the scalar fast path).
        """
        arrays = self._csr_arrays
        if arrays is None:
            arrays = CsrArrays(self)
            self._csr_arrays = arrays
        return arrays

    # Pickle support (shard workers receive the snapshot): ship only the
    # frozen structure, not the lazily built lookup/numpy caches — each
    # process rebuilds them deterministically on first use.
    def __getstate__(self):
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_neighbor_maps"] = None
        state["_csr_arrays"] = None
        return state

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def original(self, i: int) -> NodeId:
        """Return the original node id of index ``i``."""
        return self.node_ids[i]

    def id_of(self, u: NodeId) -> int:
        """Return the index of original node ``u``."""
        idx = self.index_of.get(u)
        if idx is None:
            raise GraphError(f"node {u!r} not in indexed graph")
        return idx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedGraph(n={self.num_nodes}, m={self.num_edges})"


class CsrArrays:
    """numpy mirror of an :class:`IndexedGraph`, shared by vectorized kernels.

    Every undirected edge contributes two *arcs* (CSR positions); a message
    from node ``i`` to its neighbour ``j`` occupies the arc position ``p`` in
    ``i``'s CSR slice with ``indices[p] == j``, and is delivered into the
    receiver-side slot ``rev[p]`` (the reverse arc, ``j``'s slice position
    pointing back at ``i``).  This arc-slot addressing is the boundary the
    multiprocess sharded engine tier cuts along: a
    :class:`~repro.graphs.sharding.ShardPlan` gives each shard a contiguous
    node range plus the arc slots of its nodes, and cross-shard rounds
    exchange only the ``rev``-gathered boundary slots.

    Attributes
    ----------
    indptr / indices:
        CSR adjacency as ``int64`` arrays (see :class:`IndexedGraph`).
    arc_owner:
        Per arc position, the node index owning the slice it lives in.
    rev:
        Per arc position ``p`` (``i -> j``), the position of the reverse arc
        (``j -> i``).  An involution: ``rev[rev[p]] == p``.
    arc_edge_ids:
        Per arc position, the dense undirected edge id (both directions of an
        edge share one id, so a per-edge ``bincount`` sums both directions).
    """

    __slots__ = ("indexed", "num_nodes", "num_arcs", "num_edges",
                 "indptr", "indices", "arc_owner", "rev", "arc_edge_ids")

    def __init__(self, indexed: IndexedGraph) -> None:
        import numpy as np

        n = indexed.num_nodes
        indptr = np.asarray(indexed.indptr, dtype=np.int64)
        indices = np.asarray(indexed.indices, dtype=np.int64)
        num_arcs = int(indices.shape[0])
        arc_owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        # Reverse-arc table: the arc (i -> j) keyed as i*n + j is found at
        # the sorted position of its flipped key j*n + i (arc keys of a
        # simple graph are unique, so searchsorted is an exact lookup).
        keys = arc_owner * n + indices
        order = np.argsort(keys)
        rev = order[np.searchsorted(keys[order], indices * n + arc_owner)]
        self.indexed = indexed
        self.num_nodes = n
        self.num_arcs = num_arcs
        self.num_edges = indexed.num_edges
        self.indptr = indptr
        self.indices = indices
        self.arc_owner = arc_owner
        self.rev = rev
        self.arc_edge_ids = np.asarray(indexed.arc_edge_ids, dtype=np.int64)

    # Convenience passthroughs used by kernels.
    @property
    def node_ids(self):
        return self.indexed.node_ids

    @property
    def index_of(self):
        return self.indexed.index_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CsrArrays(n={self.num_nodes}, arcs={self.num_arcs})"
