"""Simple undirected graphs.

:class:`Graph` models the *communication network* of the CONGEST model
(paper §2.1): an undirected, unweighted simple graph whose vertices are
computational nodes and whose edges are communication links.  It also serves
as the object on which separators and tree decompositions are computed
(paper §2.2, §3), since the treewidth of a directed input instance is defined
as the treewidth of its underlying simple undirected graph ⟦G⟧.

The implementation is a thin adjacency-set structure optimised for the access
patterns of the library: neighbourhood iteration, induced subgraphs, connected
components and BFS.  Optional per-edge weights are supported because several
applications (girth, shortest paths on undirected instances) operate on
weighted undirected graphs; weights default to 1.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import GraphError

NodeId = Hashable


def _edge_key(u: NodeId, v: NodeId) -> Tuple[NodeId, NodeId]:
    """Canonical key for an undirected edge (order-independent and deterministic).

    The common case — totally ordered node ids — takes the fast native
    comparison.  Both directions are checked so partially ordered types
    (e.g. frozensets, where ``<=`` is subset) cannot yield two different
    keys for the same pair; incomparable or mixed-type ids fall back to
    sorting by ``(type name, repr)``, which orders any hashables stably.
    """
    try:
        if u <= v:
            return (u, v)
        if v <= u:
            return (v, u)
    except (TypeError, ValueError):
        pass
    a, b = sorted((u, v), key=lambda x: (str(type(x)), repr(x)))
    return (a, b)


class Graph:
    """A simple undirected graph with optional edge weights.

    Parameters
    ----------
    nodes:
        Optional iterable of initial nodes.
    edges:
        Optional iterable of ``(u, v)`` or ``(u, v, weight)`` tuples.

    Notes
    -----
    Self-loops are rejected and parallel edges collapse onto a single edge
    (keeping the minimum weight), matching the paper's definition of ⟦G⟧.
    """

    def __init__(
        self,
        nodes: Optional[Iterable[NodeId]] = None,
        edges: Optional[Iterable[Tuple]] = None,
    ) -> None:
        self._adj: Dict[NodeId, Set[NodeId]] = {}
        self._weights: Dict[Tuple[NodeId, NodeId], float] = {}
        # Mutation counter; used to invalidate the cached indexed (CSR) view.
        self._version = 0
        self._indexed_cache = None
        self._indexed_version = -1
        if nodes is not None:
            for u in nodes:
                self.add_node(u)
        if edges is not None:
            for e in edges:
                if len(e) == 2:
                    self.add_edge(e[0], e[1])
                else:
                    self.add_edge(e[0], e[1], weight=e[2])

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(self, u: NodeId) -> None:
        """Add node ``u`` (no-op if it already exists)."""
        if u not in self._adj:
            self._adj[u] = set()
            self._version += 1

    def add_edge(self, u: NodeId, v: NodeId, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with the given weight.

        Adding an existing edge keeps the smaller of the old and new weights
        (multi-edges collapse, as in the definition of ⟦G⟧).
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed in a simple graph (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._version += 1
        key = _edge_key(u, v)
        if key in self._weights:
            self._weights[key] = min(self._weights[key], weight)
        else:
            self._weights[key] = weight

    def remove_node(self, u: NodeId) -> None:
        """Remove node ``u`` and all incident edges."""
        if u not in self._adj:
            raise GraphError(f"node {u!r} not in graph")
        for v in list(self._adj[u]):
            self._adj[v].discard(u)
            self._weights.pop(_edge_key(u, v), None)
        del self._adj[u]
        self._version += 1

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge ``{u, v}``."""
        if v not in self._adj.get(u, ()):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._weights.pop(_edge_key(u, v), None)
        self._version += 1

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        g = Graph()
        g._adj = {u: set(nbrs) for u, nbrs in self._adj.items()}
        g._weights = dict(self._weights)
        g._version = 1
        return g

    def to_indexed(self):
        """Return the cached CSR view of this graph (see :mod:`repro.graphs.indexed`).

        The view is rebuilt lazily whenever the graph has been mutated since
        the last call; callers must treat it as an immutable snapshot.
        """
        if self._indexed_cache is None or self._indexed_version != self._version:
            from repro.graphs.indexed import IndexedGraph

            self._indexed_cache = IndexedGraph(self)
            self._indexed_version = self._version
        return self._indexed_cache

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def nodes(self) -> List[NodeId]:
        """Return a list of all nodes."""
        return list(self._adj.keys())

    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        """Return a list of all edges as canonical ``(u, v)`` pairs."""
        return list(self._weights.keys())

    def weighted_edges(self) -> List[Tuple[NodeId, NodeId, float]]:
        """Return all edges with their weights."""
        return [(u, v, w) for (u, v), w in self._weights.items()]

    def has_node(self, u: NodeId) -> bool:
        return u in self._adj

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self._adj.get(u, ())

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Return the weight of the edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not in graph")
        return self._weights[_edge_key(u, v)]

    def neighbors(self, u: NodeId) -> Set[NodeId]:
        """Return the (set of) neighbours of ``u``."""
        if u not in self._adj:
            raise GraphError(f"node {u!r} not in graph")
        return self._adj[u]

    def degree(self, u: NodeId) -> int:
        return len(self.neighbors(u))

    def num_nodes(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return len(self._weights)

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, u: NodeId) -> bool:
        return u in self._adj

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_nodes()}, m={self.num_edges()})"

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Return the subgraph induced by ``nodes``."""
        keep = set(nodes)
        missing = [u for u in keep if u not in self._adj]
        if missing:
            raise GraphError(f"nodes not in graph: {sorted(map(repr, missing))[:5]}")
        # Build the internal structures directly (no per-edge add_edge calls):
        # adjacency by set intersection, then weights either by walking the
        # kept adjacency (small subgraph of a large graph) or by filtering
        # the canonical edge-key dict at C speed (large subgraph).
        g = Graph()
        g._adj = {u: self._adj[u] & keep for u in keep}
        kept_vol = sum(len(nbrs) for nbrs in g._adj.values())  # 2 × kept edges
        sw = self._weights
        # The Python-level walk pays ~a per-arc _edge_key call; the C-speed
        # dict filter pays a much cheaper per-edge membership test over ALL
        # m parent edges.  Walk only when the subgraph is far smaller.
        if 4 * kept_vol < len(sw):
            weights: Dict[Tuple[NodeId, NodeId], float] = {}
            for u, nbrs in g._adj.items():
                for v in nbrs:
                    k = _edge_key(u, v)
                    if k not in weights:
                        weights[k] = sw[k]
            g._weights = weights
        else:
            g._weights = {k: w for k, w in sw.items() if k[0] in keep and k[1] in keep}
        g._version = 1
        return g

    def without_nodes(self, removed: Iterable[NodeId]) -> "Graph":
        """Return the subgraph induced by all nodes *except* ``removed``."""
        removed = set(removed)
        return self.subgraph(u for u in self._adj if u not in removed)

    # ------------------------------------------------------------------ #
    # Traversal / connectivity
    # ------------------------------------------------------------------ #
    def bfs_order(self, source: NodeId) -> List[NodeId]:
        """Return nodes reachable from ``source`` in BFS order."""
        if source not in self._adj:
            raise GraphError(f"node {source!r} not in graph")
        seen = {source}
        order = [source]
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    order.append(v)
                    queue.append(v)
        return order

    def bfs_layers(self, source: NodeId) -> Dict[NodeId, int]:
        """Return hop distances from ``source`` to every reachable node."""
        if source not in self._adj:
            raise GraphError(f"node {source!r} not in graph")
        dist = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        return dist

    def connected_components(self) -> List[Set[NodeId]]:
        """Return the list of connected components (as sets of nodes)."""
        seen: Set[NodeId] = set()
        components: List[Set[NodeId]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = set(self.bfs_order(start))
            seen |= comp
            components.append(comp)
        return components

    def is_connected(self) -> bool:
        """Return ``True`` iff the graph is connected (empty graphs count as connected)."""
        if not self._adj:
            return True
        return len(self.bfs_order(next(iter(self._adj)))) == len(self._adj)

    def spanning_tree(self, root: Optional[NodeId] = None) -> Dict[NodeId, Optional[NodeId]]:
        """Return a BFS spanning tree as a ``child -> parent`` map (root maps to ``None``).

        Only the connected component of ``root`` is covered.
        """
        if not self._adj:
            return {}
        if root is None:
            root = next(iter(self._adj))
        parent: Dict[NodeId, Optional[NodeId]] = {root: None}
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if v not in parent:
                    parent[v] = u
                    queue.append(v)
        return parent

    def is_bipartite(self) -> bool:
        """Return ``True`` iff the graph is bipartite."""
        return self.bipartition() is not None

    def bipartition(self) -> Optional[Tuple[Set[NodeId], Set[NodeId]]]:
        """Return a 2-colouring ``(left, right)`` of the nodes, or ``None`` if not bipartite."""
        color: Dict[NodeId, int] = {}
        for start in self._adj:
            if start in color:
                continue
            color[start] = 0
            queue = deque([start])
            while queue:
                u = queue.popleft()
                for v in self._adj[u]:
                    if v not in color:
                        color[v] = 1 - color[u]
                        queue.append(v)
                    elif color[v] == color[u]:
                        return None
        left = {u for u, c in color.items() if c == 0}
        right = {u for u, c in color.items() if c == 1}
        return left, right
