"""Round accounting: the CONGEST cost model for subgraph primitives.

The paper's algorithms are built from a small set of communication primitives
(part-wise aggregation and the subgraph operations of Lemma 8 / Corollaries
2–3), whose round complexities are known in closed form for bounded-treewidth
communication graphs:

* Lemma 9 — part-wise aggregation (PA) over a near-disjoint collection has
  dilation Õ(τ·D) and congestion Õ(τ).
* Lemma 8 — RST / STA / SLE / CCD / BCT are each Õ(1) invocations of PA and
  SNC; MVC(t) is Õ(t) invocations.
* Corollary 2 — MVC(h, t): h simultaneous vertex-cut instances cost
  Õ(t·τ·D + h·t·τ) rounds.
* Corollary 3 — BCT(h): h simultaneous broadcasts cost Õ(τ·D + h·τ) rounds.
* Theorem 6 (Ghaffari scheduling) — running a set of algorithms with dilation
  δ and total congestion γ takes Õ(δ + γ) rounds.

:class:`CostModel` turns these formulas into concrete round charges (with the
polylog factors made explicit and configurable), and :class:`RoundLedger`
accumulates the charges per named phase so that experiments can report both
totals and breakdowns.  The message-level simulator
(:mod:`repro.congest`) is used to *measure* the base quantities (D, BFS/
broadcast rounds) that parameterise the model.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class CostModel:
    """Closed-form round costs for the subgraph primitives.

    Parameters
    ----------
    n:
        Number of nodes in the communication graph.
    diameter:
        Unweighted diameter D of the communication graph.
    log_factor_exponent:
        The Õ(·) notation hides polylog(n) factors; the model charges
        ``ceil(log2 n) ** log_factor_exponent`` for each hidden polylog.
        The default of 1 keeps the charges conservative and the *shape*
        (dependence on τ, D, h, t) intact, which is what the experiments
        measure.
    constant:
        A uniform leading constant applied to every primitive.
    """

    n: int
    diameter: int
    log_factor_exponent: int = 1
    constant: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("CostModel requires n >= 1")
        if self.diameter < 0:
            raise ValueError("CostModel requires diameter >= 0")

    # -- helpers --------------------------------------------------------- #
    @property
    def log_n(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.n))))

    @property
    def polylog(self) -> float:
        return float(self.log_n ** self.log_factor_exponent)

    def _c(self, value: float) -> int:
        """Apply the leading constant and round up to whole rounds."""
        return max(1, math.ceil(self.constant * value))

    @property
    def d(self) -> int:
        """Effective diameter (at least 1, so D=0 singletons still cost rounds)."""
        return max(1, self.diameter)

    # -- primitive costs (all in rounds) --------------------------------- #
    def snc(self) -> int:
        """Single-round neighbourhood communication (SNC)."""
        return 1

    def partwise_aggregation(self, width: int) -> int:
        """One PA invocation over a near-disjoint collection (Lemma 9 dilation Õ(τD))."""
        return self._c(max(1, width) * self.d * self.polylog)

    def pa_congestion(self, width: int) -> int:
        """Per-edge congestion of one PA invocation (Lemma 9: Õ(τ))."""
        return self._c(max(1, width) * self.polylog)

    def subgraph_operation(self, width: int) -> int:
        """One RST / STA / SLE / CCD / BCT invocation (Lemma 8: Õ(1) PAs + SNCs)."""
        return self._c(self.partwise_aggregation(width) + self.snc())

    def broadcast_multi(self, width: int, h: int) -> int:
        """BCT(h): h simultaneous per-part broadcasts (Corollary 3: Õ(τD + hτ))."""
        w = max(1, width)
        return self._c((w * self.d + max(1, h) * w) * self.polylog)

    def min_vertex_cut_multi(self, width: int, h: int, t: int) -> int:
        """MVC(h, t): h simultaneous size-≤t vertex cuts (Corollary 2: Õ(tτD + htτ))."""
        w = max(1, width)
        t = max(1, t)
        return self._c((t * w * self.d + max(1, h) * t * w) * self.polylog)

    def min_vertex_cut(self, width: int, t: int) -> int:
        """MVC(t): a single vertex-cut instance (Lemma 8: Õ(t) PAs)."""
        return self._c(max(1, t) * self.partwise_aggregation(width))

    def scheduled(self, dilation: int, congestion: int) -> int:
        """Ghaffari scheduling of a set of algorithms (Theorem 6: Õ(δ + γ))."""
        return self._c((max(1, dilation) + max(0, congestion)) * self.polylog)

    def local_broadcast_volume(self, width: int, words: int) -> int:
        """Broadcast of ``words`` O(log n)-bit words inside every part.

        This is BCT(h) with h = words (each word is one message-sized item),
        used by the distance-labeling construction where each bag broadcasts
        Õ(width²) edge entries of the auxiliary graph H_x.
        """
        return self.broadcast_multi(width, max(1, words))


class RoundLedger:
    """Accumulates round charges per named phase.

    Phases are hierarchical strings (``"tree_decomposition/separator/pa"``);
    :meth:`breakdown` can report at any prefix depth.  Ledgers are additive
    (:meth:`merge`) so sub-algorithms can keep their own ledgers that the
    caller folds into the global one.
    """

    def __init__(self) -> None:
        self._charges: "OrderedDict[str, int]" = OrderedDict()
        self._stack: List[str] = []

    # -- charging --------------------------------------------------------- #
    def charge(self, phase: str, rounds: int) -> None:
        """Add ``rounds`` to ``phase`` (prefixed by any active phase scopes)."""
        if rounds < 0:
            raise ValueError("cannot charge a negative number of rounds")
        full = "/".join(self._stack + [phase]) if self._stack else phase
        self._charges[full] = self._charges.get(full, 0) + int(rounds)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope subsequent charges under ``name``."""
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()

    def merge(self, other: "RoundLedger", prefix: str = "") -> None:
        """Fold another ledger's charges into this one (optionally under a prefix)."""
        for phase, rounds in other._charges.items():
            full = f"{prefix}/{phase}" if prefix else phase
            self._charges[full] = self._charges.get(full, 0) + rounds

    # -- reporting -------------------------------------------------------- #
    def total(self) -> int:
        """Total number of charged rounds."""
        return sum(self._charges.values())

    def breakdown(self, depth: Optional[int] = None) -> Dict[str, int]:
        """Return charges grouped by phase prefix truncated to ``depth`` segments."""
        if depth is None:
            return dict(self._charges)
        out: Dict[str, int] = {}
        for phase, rounds in self._charges.items():
            key = "/".join(phase.split("/")[:depth])
            out[key] = out.get(key, 0) + rounds
        return out

    def phases(self) -> List[str]:
        return list(self._charges.keys())

    def __getitem__(self, phase: str) -> int:
        return self._charges.get(phase, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundLedger(total={self.total()}, phases={len(self._charges)})"

    def as_table(self, depth: int = 2) -> str:
        """Render the breakdown as a fixed-width text table (for reports)."""
        rows = sorted(self.breakdown(depth).items(), key=lambda kv: -kv[1])
        if not rows:
            return "(no rounds charged)"
        width = max(len(k) for k, _ in rows)
        lines = [f"{'phase'.ljust(width)}  rounds"]
        for phase, rounds in rows:
            lines.append(f"{phase.ljust(width)}  {rounds}")
        lines.append(f"{'TOTAL'.ljust(width)}  {self.total()}")
        return "\n".join(lines)
