"""Configuration objects shared across the framework.

The paper's algorithms are written with analysis-friendly constants (e.g. the
separator balance factor 14399/14400 and the size threshold 200·t²).  Used
literally, these constants make every instance that fits in memory fall into
the trivial base case, so the library exposes them through
:class:`SeparatorParams` with two presets:

* :meth:`SeparatorParams.paper` — the constants exactly as written in §3.3;
* :meth:`SeparatorParams.practical` — scaled-down constants (balance 3/4,
  threshold 4·t², 20 sampled pairs) that exercise the interesting code paths
  at laptop scale while preserving every correctness invariant (balancedness
  and separator validity are *checked*, not assumed).

:class:`FrameworkConfig` bundles the knobs shared by the higher-level
algorithms (randomness, round-cost model parameters, recursion limits).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class SeparatorParams:
    """Tunable constants of the ``Sep`` balanced-separator algorithm (paper §3.3).

    Attributes
    ----------
    size_threshold_factor:
        Step 1 halts and outputs X when μ(G) ≤ ``size_threshold_factor · t²``
        (paper: 200).
    balance_fraction:
        The algorithm outputs an (X, ``balance_fraction``)-balanced separator
        (paper: 14399/14400).  Smaller values give better balance and smaller
        recursion depth but may require more separator vertices.
    iterations_factor:
        Number of outer iterations \\hat t = ceil(``iterations_factor`` · t)
        (paper: 301/300).
    num_sampled_pairs:
        Number of random split-tree pairs sampled per iteration in step 4
        (paper: 95).
    split_lower_divisor / split_upper_divisor:
        Split trees have μ-size in [μ(G)/(``split_lower_divisor``·t),
        μ(G)/(``split_upper_divisor``·t)] (paper: 12 and 4).
    max_retries:
        Number of independent trials of Sep before concluding τ + 1 > t and
        doubling t (paper: 5·log n; we use a fixed small count because each
        trial is already internally randomized).
    """

    size_threshold_factor: float = 200.0
    balance_fraction: float = 14399.0 / 14400.0
    iterations_factor: float = 301.0 / 300.0
    num_sampled_pairs: int = 95
    split_lower_divisor: int = 12
    split_upper_divisor: int = 4
    max_retries: int = 5

    @classmethod
    def paper(cls) -> "SeparatorParams":
        """The constants exactly as stated in §3.3 of the paper."""
        return cls()

    @classmethod
    def practical(cls) -> "SeparatorParams":
        """Scaled-down constants for laptop-scale experiments (see DESIGN.md)."""
        return cls(
            size_threshold_factor=4.0,
            balance_fraction=0.75,
            iterations_factor=1.0,
            num_sampled_pairs=20,
            split_lower_divisor=6,
            split_upper_divisor=2,
            max_retries=4,
        )

    def with_overrides(self, **kwargs) -> "SeparatorParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        if not 0.5 <= self.balance_fraction < 1.0:
            raise ValueError("balance_fraction must be in [0.5, 1)")
        if self.size_threshold_factor <= 0:
            raise ValueError("size_threshold_factor must be positive")
        if self.num_sampled_pairs < 1:
            raise ValueError("num_sampled_pairs must be >= 1")
        if self.split_lower_divisor <= self.split_upper_divisor:
            raise ValueError("split_lower_divisor must exceed split_upper_divisor")


@dataclass
class FrameworkConfig:
    """Shared configuration for the high-level algorithms.

    Attributes
    ----------
    seed:
        Seed for all randomized components (separator sampling, girth edge
        labels).  ``None`` draws a fresh seed from the OS.
    separator:
        Constants for the ``Sep`` algorithm.
    initial_width_guess:
        Starting value of the doubling estimate ``t`` of τ + 1.
    max_width:
        Safety cap for the doubling loop (defaults to n when unset).
    cost_log_exponent / cost_constant:
        Parameters of the round :class:`~repro.core.rounds.CostModel`.
    leaf_size:
        Decomposition recursion stops when a part has at most
        ``max(leaf_size, 2·|separator|)`` vertices.
    """

    seed: Optional[int] = None
    separator: SeparatorParams = field(default_factory=SeparatorParams.practical)
    initial_width_guess: int = 2
    max_width: Optional[int] = None
    cost_log_exponent: int = 1
    cost_constant: float = 1.0
    leaf_size: int = 4

    def rng(self) -> random.Random:
        """Return a fresh ``random.Random`` seeded from :attr:`seed`."""
        return random.Random(self.seed)

    def validate(self) -> None:
        self.separator.validate()
        if self.initial_width_guess < 1:
            raise ValueError("initial_width_guess must be >= 1")
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
