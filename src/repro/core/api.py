"""High-level facade: :class:`LowTreewidthSolver`.

The solver bundles the full pipeline of the paper for a single input
instance: tree decomposition (Theorem 1), distance labeling (Theorem 2),
single-source shortest paths, constrained distance labeling for stateful walk
constraints (Theorem 3), exact bipartite maximum matching (Theorem 4) and
weighted girth (Theorem 5) — all with CONGEST round accounting.

Intermediate artefacts (the decomposition, the labeling) are cached on the
solver so repeated queries don't redo the expensive construction, mirroring
how a deployed distributed system would reuse the labeling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Optional, TYPE_CHECKING

from repro.core.config import FrameworkConfig, SeparatorParams
from repro.core.rounds import CostModel, RoundLedger
from repro.errors import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter

if TYPE_CHECKING:  # pragma: no cover - type-checking only imports
    from repro.decomposition.tree_decomposition import DecompositionResult
    from repro.labeling.construction import DistanceLabelingResult
    from repro.labeling.sssp import SSSPResult
    from repro.matching.bipartite import MatchingResult
    from repro.girth.girth import GirthResult

NodeId = Hashable


class LowTreewidthSolver:
    """One-stop interface to the paper's algorithms for a single instance.

    Parameters
    ----------
    instance:
        A weighted directed (multi)graph.  Use :meth:`from_undirected` to wrap
        an undirected graph (each edge becomes an antiparallel pair).
    config:
        Framework configuration; a fresh default (practical separator
        constants) is used when omitted.
    seed:
        Convenience override of ``config.seed``.
    """

    def __init__(
        self,
        instance: WeightedDiGraph,
        config: Optional[FrameworkConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        if instance.num_nodes() == 0:
            raise GraphError("cannot create a solver for an empty instance")
        self.instance = instance
        self.config = config or FrameworkConfig()
        if seed is not None:
            self.config.seed = seed
        self.config.validate()
        self.communication_graph = instance.underlying_graph()
        if not self.communication_graph.is_connected():
            raise GraphError("the communication graph must be connected")
        self._cost_model: Optional[CostModel] = None
        self._decomposition: Optional["DecompositionResult"] = None
        self._labeling: Optional["DistanceLabelingResult"] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_undirected(
        cls,
        graph: Graph,
        config: Optional[FrameworkConfig] = None,
        seed: Optional[int] = None,
    ) -> "LowTreewidthSolver":
        """Wrap an undirected (optionally weighted) graph as a symmetric instance."""
        return cls(WeightedDiGraph.from_undirected(graph), config=config, seed=seed)

    # ------------------------------------------------------------------ #
    # Shared infrastructure
    # ------------------------------------------------------------------ #
    @property
    def cost_model(self) -> CostModel:
        """The round-cost model for this instance's communication graph."""
        if self._cost_model is None:
            comm = self.communication_graph
            self._cost_model = CostModel(
                n=comm.num_nodes(),
                diameter=diameter(comm, exact=comm.num_nodes() <= 600),
                log_factor_exponent=self.config.cost_log_exponent,
                constant=self.config.cost_constant,
            )
        return self._cost_model

    def tree_decomposition(self, rebuild: bool = False) -> "DecompositionResult":
        """Build (and cache) the distributed tree decomposition (Theorem 1)."""
        from repro.decomposition.tree_decomposition import build_tree_decomposition

        if self._decomposition is None or rebuild:
            self._decomposition = build_tree_decomposition(
                self.communication_graph, config=self.config, cost_model=self.cost_model
            )
        return self._decomposition

    def distance_labeling(self, rebuild: bool = False) -> "DistanceLabelingResult":
        """Build (and cache) the exact distance labeling (Theorem 2)."""
        from repro.labeling.construction import build_distance_labeling

        if self._labeling is None or rebuild:
            self._labeling = build_distance_labeling(
                self.instance,
                decomposition=self.tree_decomposition(),
                config=self.config,
                cost_model=self.cost_model,
            )
        return self._labeling

    # ------------------------------------------------------------------ #
    # Problems
    # ------------------------------------------------------------------ #
    def single_source_shortest_paths(self, source: NodeId) -> "SSSPResult":
        """Exact directed SSSP from ``source`` via the distance labeling."""
        from repro.labeling.sssp import single_source_shortest_paths

        labeling_result = self.distance_labeling()
        return single_source_shortest_paths(
            labeling_result.labeling,
            source,
            cost_model=self.cost_model,
            labeling_result=labeling_result,
        )

    def pairwise_distance(self, u: NodeId, v: NodeId) -> float:
        """Exact d_G(u, v) decoded from the two labels."""
        return self.distance_labeling().labeling.distance(u, v)

    def maximum_matching(self) -> "MatchingResult":
        """Exact maximum matching of a bipartite undirected instance (Theorem 4)."""
        from repro.matching.bipartite import maximum_bipartite_matching

        return maximum_bipartite_matching(
            self.communication_graph,
            config=self.config,
            cost_model=self.cost_model,
        )

    def girth(self, weighted: bool = True) -> "GirthResult":
        """Weighted girth of the instance (Theorem 5)."""
        from repro.girth.girth import compute_girth

        return compute_girth(
            self.instance,
            config=self.config,
            cost_model=self.cost_model,
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def round_report(self) -> Dict[str, int]:
        """Rounds charged so far by the cached constructions, per major phase."""
        report: Dict[str, int] = {}
        if self._decomposition is not None:
            report["tree_decomposition"] = self._decomposition.rounds
        if self._labeling is not None:
            report["distance_labeling"] = self._labeling.rounds
        return report
