"""Core layer: configuration, round accounting, and the high-level facade."""

from repro.core.rounds import CostModel, RoundLedger
from repro.core.config import SeparatorParams, FrameworkConfig

__all__ = ["CostModel", "RoundLedger", "SeparatorParams", "FrameworkConfig"]
