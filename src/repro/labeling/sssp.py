"""Single-source shortest paths from a distance labeling (paper §1.2 / §4).

The reduction is the one sketched in the paper's introduction: once a distance
labeling is available, SSSP from a source s is solved by broadcasting la(s) to
every node, after which each node v computes d_G(s, v) = dec(la(s), la(v))
locally.  The broadcast of an Õ(τ²)-word label costs Õ(D + τ²) rounds
(pipelined flooding), which is dominated by the labeling construction.

This module also exposes the convenience of computing the full distance map
centrally from the labeling, which the tests and experiments use to compare
against Dijkstra and against distributed Bellman-Ford (experiment E4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.core.rounds import CostModel, RoundLedger
from repro.errors import LabelingError
from repro.labeling.construction import DistanceLabelingResult
from repro.labeling.labels import DistanceLabeling, decode_distance

NodeId = Hashable


@dataclass
class SSSPResult:
    """Distances from (and to) a source vertex, with round accounting.

    Attributes
    ----------
    source:
        The source vertex s.
    distances:
        d_G(s, v) for every vertex v (``inf`` when unreachable).
    distances_to_source:
        d_G(v, s) for every vertex v — available for free because labels store
        both directions (the paper's labeling is for directed graphs).
    rounds:
        Rounds charged for the SSSP phase alone (label broadcast); the
        labeling construction cost is reported separately by
        :class:`~repro.labeling.construction.DistanceLabelingResult`.
    total_rounds:
        Construction rounds + SSSP rounds, when the labeling result was
        provided.
    """

    source: NodeId
    distances: Dict[NodeId, float]
    distances_to_source: Dict[NodeId, float]
    rounds: int
    total_rounds: int


def single_source_shortest_paths(
    labeling: DistanceLabeling,
    source: NodeId,
    cost_model: Optional[CostModel] = None,
    labeling_result: Optional[DistanceLabelingResult] = None,
) -> SSSPResult:
    """Compute exact SSSP distances from ``source`` using the labeling.

    Parameters
    ----------
    labeling:
        A complete distance labeling of the instance.
    source:
        The source vertex.
    cost_model:
        Optional cost model used to charge the label-broadcast rounds
        (Õ(D + |la(s)|)); without it the SSSP phase is charged 0 rounds.
    labeling_result:
        When provided, its construction rounds are added to ``total_rounds``.
    """
    if source not in labeling:
        raise LabelingError(f"source {source!r} has no label")
    src_label = labeling.label(source)
    distances: Dict[NodeId, float] = {}
    distances_to: Dict[NodeId, float] = {}
    for v in labeling.vertices():
        lab_v = labeling.label(v)
        distances[v] = decode_distance(src_label, lab_v)
        distances_to[v] = decode_distance(lab_v, src_label)

    rounds = 0
    if cost_model is not None:
        # Pipelined broadcast of the source label: D + (#words) rounds, where
        # each hub entry is a constant number of words.
        rounds = cost_model._c(cost_model.d + 3 * src_label.num_entries())
    total = rounds
    if labeling_result is not None:
        total += labeling_result.rounds
    return SSSPResult(
        source=source,
        distances=distances,
        distances_to_source=distances_to,
        rounds=rounds,
        total_rounds=total,
    )
