"""Single-source shortest paths from a distance labeling (paper §1.2 / §4).

The reduction is the one sketched in the paper's introduction: once a distance
labeling is available, SSSP from a source s is solved by broadcasting la(s) to
every node, after which each node v computes d_G(s, v) = dec(la(s), la(v))
locally.  The broadcast of an Õ(τ²)-word label costs Õ(D + τ²) rounds
(pipelined flooding), which is dominated by the labeling construction.

Two round accountings are available:

* *modeled* (default) — the broadcast cost is charged through the
  :class:`~repro.core.rounds.CostModel` (D + #label-words), as before;
* *measured* — pass a :class:`~repro.congest.network.CongestNetwork` over the
  communication graph via ``network=`` and the label broadcast is actually
  executed as a pipelined flooding protocol on the fast simulation engine
  (:mod:`repro.congest.engine`), one hub entry per message, and the measured
  round count is used.  Each node's simulated output is the decoded distance
  dec(la(s), la(v)), which the cross-validation suite checks against the
  centralized decode.

This module also exposes the convenience of computing the full distance map
centrally from the labeling, which the tests and experiments use to compare
against Dijkstra and against distributed Bellman-Ford (experiment E4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional

from repro.congest.kernels import PackedInbox, PackedSends, RoundKernel, ragged_slices
from repro.congest.message import PayloadSchema, payload_size_words
from repro.congest.network import CongestNetwork, SimulationResult
from repro.congest.primitives import ChunkFloodNode
from repro.core.rounds import CostModel, RoundLedger
from repro.errors import LabelingError
from repro.labeling.construction import DistanceLabelingResult
from repro.labeling.labels import DistanceLabel, DistanceLabeling, decode_distance

NodeId = Hashable
INF = math.inf


@dataclass
class SSSPResult:
    """Distances from (and to) a source vertex, with round accounting.

    Attributes
    ----------
    source:
        The source vertex s.
    distances:
        d_G(s, v) for every vertex v (``inf`` when unreachable).
    distances_to_source:
        d_G(v, s) for every vertex v — available for free because labels store
        both directions (the paper's labeling is for directed graphs).
    rounds:
        Rounds charged for the SSSP phase alone (label broadcast); the
        labeling construction cost is reported separately by
        :class:`~repro.labeling.construction.DistanceLabelingResult`.
    total_rounds:
        Construction rounds + SSSP rounds, when the labeling result was
        provided.
    simulation:
        When the broadcast was actually executed on a network (``network=``),
        the :class:`~repro.congest.network.SimulationResult` of the run.
    """

    source: NodeId
    distances: Dict[NodeId, float]
    distances_to_source: Dict[NodeId, float]
    rounds: int
    total_rounds: int
    simulation: Optional[SimulationResult] = None


class LabelBroadcastNode(ChunkFloodNode):
    """Pipelined flooding of the source label, one hub entry per message.

    A :class:`~repro.congest.primitives.ChunkFloodNode` whose wire chunks
    are the source's label entries ``(k, C, hub, d_to, d_from)``: the
    broadcast pipelines in O(D + C) rounds, and when a node holds all ``C``
    chunks and has drained its queues it reconstructs la(s), decodes
    ``dec(la(s), la(v))`` against its own label, stores it as its output and
    halts.
    """

    def __init__(
        self,
        node: NodeId,
        source: NodeId,
        source_label: DistanceLabel,
        own_label: Optional[DistanceLabel],
    ) -> None:
        super().__init__(node, source)
        self.source = source
        self.source_label = source_label
        self.own_label = own_label
        # Until the full label arrives the node knows no finite distance.
        self.output = INF

    def _make_chunks(self) -> List[Any]:
        entries = list(self.source_label.to_dist.items())
        total = len(entries)
        return [
            (k, total, hub, d_to, self.source_label.from_dist.get(hub, INF))
            for k, (hub, d_to) in enumerate(entries)
        ]

    def _finish(self) -> None:
        rebuilt = DistanceLabel(self.source)
        for _, _, hub, d_to, d_from in self.chunks.values():
            rebuilt.set_entry(hub, d_to, d_from)
        if self.node == self.source:
            self.output = 0.0
        elif self.own_label is None:
            self.output = INF
        else:
            self.output = decode_distance(rebuilt, self.own_label)


class LabelBroadcastKernel(RoundKernel):
    """Whole-round vectorized pipelined flooding (``engine="vectorized"``).

    Bit-for-bit equivalent to :class:`LabelBroadcastNode`.  The ``C`` label
    chunks are a finite table precomputed at ``init``, so a message is packed
    as one int64 *chunk index* per arc slot and ``payload_size_words`` is an
    O(1) table lookup (``chunk_words``).  The scalar protocol's per-neighbour
    FIFO queues become one ``(arc, chunk) -> enqueue sequence number`` array:

    * *learning* chunk ``k`` at round ``r`` from sender ``s`` stamps the
      sequence ``r * (C + n + 2) + C + s`` on every out-arc except the one
      back to ``s`` — strictly increasing in ``(r, s)``, which is exactly the
      scalar learn order (inbox scans run in ascending sender index), and the
      source's round-0 chunks get sequences ``0..C-1`` below all of them;
    * *draining* pops the minimum-sequence pending chunk per arc per round —
      the FIFO ``popleft``;
    * a node halts once it has seen a chunk, knows all ``C``, and has no
      pending arc slot — the scalar ``_finish_if_complete`` after a drain.

    Duplicate deliveries of one chunk to one node in the same round resolve
    to the minimum-index sender (the first inbox hit), so the excluded
    back-arc matches the scalar run exactly.
    """

    schema = PayloadSchema(fields=(("chunk", "i8"),))
    event_driven = False

    def __init__(
        self,
        source: NodeId,
        source_label: DistanceLabel,
        labeling: DistanceLabeling,
    ) -> None:
        self.source = source
        self.source_label = source_label
        self.labeling = labeling
        self.chunks: List[Any] = []
        self.chunk_words = None
        self._sentinel = None

    def init(self, state, csr) -> Optional[PackedSends]:
        import numpy as np

        n = csr.num_nodes
        entries = list(self.source_label.to_dist.items())
        c = len(entries)
        chunk_words = np.zeros(max(c, 1), dtype=np.int64)
        self.chunks = []
        for k, (hub, d_to) in enumerate(entries):
            d_from = self.source_label.from_dist.get(hub, INF)
            chunk = (k, c, hub, d_to, d_from)
            self.chunks.append(chunk)
            chunk_words[k] = payload_size_words(chunk)
        self.chunk_words = chunk_words
        self._sentinel = np.iinfo(np.int64).max

        state["halted"] = np.zeros(n, dtype=bool)
        state["seen"] = np.zeros(n, dtype=bool)
        state["known"] = np.zeros((n, c), dtype=bool)
        state["pending"] = np.full((csr.num_arcs, c), self._sentinel, dtype=np.int64)
        state["round"] = 0
        # Preallocated round buffers: the chunk-index payload array (schema
        # field) and the per-arc word sizes, both reused every round.
        state["send"] = self.schema.alloc(csr.num_arcs)
        state["send_words"] = np.zeros(csr.num_arcs, dtype=np.int64)

        src = csr.index_of.get(self.source)
        if src is not None:
            state["seen"][src] = True
            if c:
                state["known"][src, :] = True
                lo, hi = int(csr.indptr[src]), int(csr.indptr[src + 1])
                state["pending"][lo:hi, :] = np.arange(c, dtype=np.int64)
        sends = self._pop(state, csr)
        self._update_halts(state, csr)
        return sends

    def _pop(self, state, csr) -> Optional[PackedSends]:
        """Drain one chunk per arc: the minimum-sequence pending entry."""
        import numpy as np

        pending = state["pending"]
        if pending.shape[1] == 0:
            return None
        kmin = pending.argmin(axis=1)
        rows = np.arange(pending.shape[0])
        mask = pending[rows, kmin] != self._sentinel
        if not mask.any():
            return None
        pending[rows[mask], kmin[mask]] = self._sentinel
        buffers = state["send"]
        np.copyto(buffers["chunk"], kmin)
        np.take(self.chunk_words, kmin, out=state["send_words"])
        return PackedSends(mask, buffers, words=state["send_words"])

    def _update_halts(self, state, csr) -> None:
        import numpy as np

        known = state["known"]
        halted = state["halted"]
        complete = state["seen"] & ~halted
        if known.shape[1]:
            arc_pending = (state["pending"] != self._sentinel).any(axis=1)
            node_pending = (
                np.bincount(
                    csr.arc_owner, weights=arc_pending, minlength=csr.num_nodes
                )
                > 0
            )
            complete &= known.all(axis=1) & ~node_pending
        halted[complete] = True

    def round(self, state, inbox_values: PackedInbox, inbox_senders, csr) -> Optional[PackedSends]:
        import numpy as np

        state["round"] += 1
        known = state["known"]
        c = known.shape[1]
        if c and len(inbox_values):
            ks = inbox_values["chunk"]
            recv = csr.arc_owner[inbox_values.arcs]
            cand = ~state["halted"][recv] & ~known[recv, ks]
            if cand.any():
                rc, kc, sc = recv[cand], ks[cand], inbox_senders[cand]
                # First inbox hit per (receiver, chunk): minimum sender index.
                keys = rc * c + kc
                order = np.lexsort((sc, keys))
                keys_sorted = keys[order]
                win = order[np.r_[True, keys_sorted[1:] != keys_sorted[:-1]]]
                rw, kw, sw = rc[win], kc[win], sc[win]
                known[rw, kw] = True
                state["seen"][rw] = True
                # Enqueue on every out-arc of each learner except the one
                # pointing back at the teaching sender.
                deg = csr.indptr[rw + 1] - csr.indptr[rw]
                arc_pos = ragged_slices(csr.indptr[rw], deg)
                kk = np.repeat(kw, deg)
                ss = np.repeat(sw, deg)
                seqv = np.repeat(
                    state["round"] * (c + csr.num_nodes + 2) + c + sw, deg
                )
                keep = csr.indices[arc_pos] != ss
                state["pending"][arc_pos[keep], kk[keep]] = seqv[keep]
        sends = self._pop(state, csr)
        self._update_halts(state, csr)
        return sends

    def outputs(self, state, csr) -> Dict[NodeId, Any]:
        rebuilt = DistanceLabel(self.source)
        for _, _, hub, d_to, d_from in self.chunks:
            rebuilt.set_entry(hub, d_to, d_from)
        halted = state["halted"]
        out: Dict[NodeId, Any] = {}
        for i, u in enumerate(csr.node_ids):
            if not halted[i]:
                out[u] = INF
            elif u == self.source:
                out[u] = 0.0
            elif u in self.labeling:
                out[u] = decode_distance(rebuilt, self.labeling.label(u))
            else:
                out[u] = INF
        return out


def measured_label_broadcast(
    network: CongestNetwork,
    labeling: DistanceLabeling,
    source: NodeId,
    max_rounds: int = 1_000_000,
    engine: Optional[str] = None,
    trace=None,
) -> SimulationResult:
    """Execute the pipelined la(s) broadcast on ``network`` and return the run.

    Each node's output is dec(la(s), la(v)) computed from the received label;
    nodes outside ``labeling`` (or unreachable ones) output ``inf``.  Chunks
    carry one hub entry (≈ 5 words + the hub id); size the network's
    ``words_per_message`` accordingly for exotic node-id types.

    With ``engine="vectorized"`` the broadcast runs as the whole-round
    :class:`LabelBroadcastKernel` (identical measured rounds and traffic).
    """
    if source not in labeling:
        raise LabelingError(f"source {source!r} has no label")
    src_label = labeling.label(source)

    def factory(u: NodeId) -> LabelBroadcastNode:
        own = labeling.label(u) if u in labeling else None
        return LabelBroadcastNode(u, source, src_label, own)

    kernel = (
        LabelBroadcastKernel(source, src_label, labeling)
        if engine == "vectorized"
        else None
    )
    return network.run(
        factory,
        max_rounds=max_rounds,
        stop_when_quiet=True,
        engine=engine,
        trace=trace,
        kernel=kernel,
    )


def single_source_shortest_paths(
    labeling: DistanceLabeling,
    source: NodeId,
    cost_model: Optional[CostModel] = None,
    labeling_result: Optional[DistanceLabelingResult] = None,
    network: Optional[CongestNetwork] = None,
) -> SSSPResult:
    """Compute exact SSSP distances from ``source`` using the labeling.

    Parameters
    ----------
    labeling:
        A complete distance labeling of the instance.
    source:
        The source vertex.
    cost_model:
        Optional cost model used to charge the label-broadcast rounds
        (Õ(D + |la(s)|)); without it the SSSP phase is charged 0 rounds.
    labeling_result:
        When provided, its construction rounds are added to ``total_rounds``.
    network:
        Optional :class:`CongestNetwork` over the communication graph: the
        label broadcast is then actually executed on the simulation engine
        and the *measured* round count replaces the cost-model estimate.
    """
    if source not in labeling:
        raise LabelingError(f"source {source!r} has no label")
    src_label = labeling.label(source)
    distances: Dict[NodeId, float] = {}
    distances_to: Dict[NodeId, float] = {}
    for v in labeling.vertices():
        lab_v = labeling.label(v)
        distances[v] = decode_distance(src_label, lab_v)
        distances_to[v] = decode_distance(lab_v, src_label)

    rounds = 0
    simulation: Optional[SimulationResult] = None
    if network is not None:
        simulation = measured_label_broadcast(network, labeling, source)
        rounds = simulation.rounds
    elif cost_model is not None:
        # Pipelined broadcast of the source label: D + (#words) rounds, where
        # each hub entry is a constant number of words.
        rounds = cost_model._c(cost_model.d + 3 * src_label.num_entries())
    total = rounds
    if labeling_result is not None:
        total += labeling_result.rounds
    return SSSPResult(
        source=source,
        distances=distances,
        distances_to_source=distances_to,
        rounds=rounds,
        total_rounds=total,
        simulation=simulation,
    )
