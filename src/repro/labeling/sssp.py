"""Single-source shortest paths from a distance labeling (paper §1.2 / §4).

The reduction is the one sketched in the paper's introduction: once a distance
labeling is available, SSSP from a source s is solved by broadcasting la(s) to
every node, after which each node v computes d_G(s, v) = dec(la(s), la(v))
locally.  The broadcast of an Õ(τ²)-word label costs Õ(D + τ²) rounds
(pipelined flooding), which is dominated by the labeling construction.

Two round accountings are available:

* *modeled* (default) — the broadcast cost is charged through the
  :class:`~repro.core.rounds.CostModel` (D + #label-words), as before;
* *measured* — pass a :class:`~repro.congest.network.CongestNetwork` over the
  communication graph via ``network=`` and the label broadcast is actually
  executed as a pipelined flooding protocol on the fast simulation engine
  (:mod:`repro.congest.engine`), one hub entry per message, and the measured
  round count is used.  Each node's simulated output is the decoded distance
  dec(la(s), la(v)), which the cross-validation suite checks against the
  centralized decode.

This module also exposes the convenience of computing the full distance map
centrally from the labeling, which the tests and experiments use to compare
against Dijkstra and against distributed Bellman-Ford (experiment E4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional

from repro.congest.faults import resolve_fault_schedule
from repro.congest.kernels import FloodingKernel
from repro.congest.network import CongestNetwork, SimulationResult
from repro.congest.primitives import ChunkFloodNode
from repro.core.rounds import CostModel, RoundLedger
from repro.errors import LabelingError
from repro.labeling.construction import DistanceLabelingResult
from repro.labeling.labels import DistanceLabel, DistanceLabeling, decode_distance

NodeId = Hashable
INF = math.inf


@dataclass
class SSSPResult:
    """Distances from (and to) a source vertex, with round accounting.

    Attributes
    ----------
    source:
        The source vertex s.
    distances:
        d_G(s, v) for every vertex v (``inf`` when unreachable).
    distances_to_source:
        d_G(v, s) for every vertex v — available for free because labels store
        both directions (the paper's labeling is for directed graphs).
    rounds:
        Rounds charged for the SSSP phase alone (label broadcast); the
        labeling construction cost is reported separately by
        :class:`~repro.labeling.construction.DistanceLabelingResult`.
    total_rounds:
        Construction rounds + SSSP rounds, when the labeling result was
        provided.
    simulation:
        When the broadcast was actually executed on a network (``network=``),
        the :class:`~repro.congest.network.SimulationResult` of the run.
    """

    source: NodeId
    distances: Dict[NodeId, float]
    distances_to_source: Dict[NodeId, float]
    rounds: int
    total_rounds: int
    simulation: Optional[SimulationResult] = None


class LabelBroadcastNode(ChunkFloodNode):
    """Pipelined flooding of the source label, one hub entry per message.

    A :class:`~repro.congest.primitives.ChunkFloodNode` whose wire chunks
    are the source's label entries ``(k, C, hub, d_to, d_from)``: the
    broadcast pipelines in O(D + C) rounds, and when a node holds all ``C``
    chunks and has drained its queues it reconstructs la(s), decodes
    ``dec(la(s), la(v))`` against its own label, stores it as its output and
    halts.
    """

    def __init__(
        self,
        node: NodeId,
        source: NodeId,
        source_label: DistanceLabel,
        own_label: Optional[DistanceLabel],
    ) -> None:
        super().__init__(node, source)
        self.source = source
        self.source_label = source_label
        self.own_label = own_label
        # Until the full label arrives the node knows no finite distance.
        self.output = INF

    def _make_chunks(self) -> List[Any]:
        entries = list(self.source_label.to_dist.items())
        total = len(entries)
        return [
            (k, total, hub, d_to, self.source_label.from_dist.get(hub, INF))
            for k, (hub, d_to) in enumerate(entries)
        ]

    def _finish(self) -> None:
        rebuilt = DistanceLabel(self.source)
        for _, _, hub, d_to, d_from in self.chunks.values():
            rebuilt.set_entry(hub, d_to, d_from)
        if self.node == self.source:
            self.output = 0.0
        elif self.own_label is None:
            self.output = INF
        else:
            self.output = decode_distance(rebuilt, self.own_label)


class LabelBroadcastKernel(FloodingKernel):
    """Whole-round vectorized pipelined la(s) flooding
    (``engine="vectorized"``/``"sharded"``).

    Bit-for-bit equivalent to :class:`LabelBroadcastNode`.  The transport —
    chunk-index packing, O(1) ``chunk_words`` accounting, the ``(arc, chunk)
    -> sequence number`` FIFO matrix and the shard-locality of every round
    operation — is inherited from
    :class:`~repro.congest.kernels.FloodingKernel`; this subclass only
    supplies the wire chunks (one hub entry each) and the label-decoding
    outputs, mirroring how the scalar ``LabelBroadcastNode`` subclasses
    ``ChunkFloodNode``.
    """

    def __init__(
        self,
        source: NodeId,
        source_label: DistanceLabel,
        labeling: DistanceLabeling,
    ) -> None:
        super().__init__(root=source)
        self.source = source
        self.source_label = source_label
        self.labeling = labeling

    def __getstate__(self):
        # The full labeling is read only by ``outputs``, which runs in the
        # sharded parent on its own instance — don't ship it to every worker
        # in each run header (the transport needs only the source label).
        state = self.__dict__.copy()
        state["labeling"] = None
        return state

    def _chunk_table(self) -> List[Any]:
        entries = list(self.source_label.to_dist.items())
        c = len(entries)
        return [
            (k, c, hub, d_to, self.source_label.from_dist.get(hub, INF))
            for k, (hub, d_to) in enumerate(entries)
        ]

    def outputs(self, state, csr) -> Dict[NodeId, Any]:
        rebuilt = DistanceLabel(self.source)
        for _, _, hub, d_to, d_from in self.chunks:
            rebuilt.set_entry(hub, d_to, d_from)
        halted = state["halted"]
        out: Dict[NodeId, Any] = {}
        for i, u in enumerate(csr.node_ids):
            if not halted[i]:
                out[u] = INF
            elif u == self.source:
                out[u] = 0.0
            elif u in self.labeling:
                out[u] = decode_distance(rebuilt, self.labeling.label(u))
            else:
                out[u] = INF
        return out


def measured_label_broadcast(
    network: CongestNetwork,
    labeling: DistanceLabeling,
    source: NodeId,
    max_rounds: int = 1_000_000,
    engine: Optional[str] = None,
    trace=None,
    num_shards: Optional[int] = None,
    shard_pool=None,
    delay_model=None,
    transport=None,
    fault_schedule=None,
) -> SimulationResult:
    """Execute the pipelined la(s) broadcast on ``network`` and return the run.

    Each node's output is dec(la(s), la(v)) computed from the received label;
    nodes outside ``labeling`` (or unreachable ones) output ``inf``.  Chunks
    carry one hub entry (≈ 5 words + the hub id); size the network's
    ``words_per_message`` accordingly for exotic node-id types.

    With ``engine="vectorized"`` the broadcast runs as the whole-round
    :class:`LabelBroadcastKernel`; ``engine="sharded"`` distributes the same
    kernel over ``num_shards`` worker processes (identical measured rounds
    and traffic either way).  ``engine="async"`` runs the scalar pipelined
    flood on the event-driven scheduler under ``delay_model`` — the decoded
    distances are schedule-invariant, and the measured rounds/traffic equal
    the synchronous tiers.

    A ``fault_schedule`` (see :mod:`repro.congest.faults`) implies the async
    tier; the broadcast self-stabilizes through crashes and recoveries via
    the chunk-flood recovery hook, provided the source eventually stays up.
    """
    if source not in labeling:
        raise LabelingError(f"source {source!r} has no label")
    src_label = labeling.label(source)
    if fault_schedule is not None:
        if engine is None:
            engine = "async"
        schedule = resolve_fault_schedule(fault_schedule, network.indexed)
        schedule.ensure_eventual_recovery([source], protocol="label broadcast")
        fault_schedule = schedule

    def factory(u: NodeId) -> LabelBroadcastNode:
        own = labeling.label(u) if u in labeling else None
        return LabelBroadcastNode(u, source, src_label, own)

    return network.run(
        factory,
        max_rounds=max_rounds,
        stop_when_quiet=True,
        engine=engine,
        trace=trace,
        kernel=LabelBroadcastKernel(source, src_label, labeling),
        num_shards=num_shards,
        shard_pool=shard_pool,
        delay_model=delay_model,
        transport=transport,
        fault_schedule=fault_schedule,
    )


def single_source_shortest_paths(
    labeling: DistanceLabeling,
    source: NodeId,
    cost_model: Optional[CostModel] = None,
    labeling_result: Optional[DistanceLabelingResult] = None,
    network: Optional[CongestNetwork] = None,
) -> SSSPResult:
    """Compute exact SSSP distances from ``source`` using the labeling.

    Parameters
    ----------
    labeling:
        A complete distance labeling of the instance.
    source:
        The source vertex.
    cost_model:
        Optional cost model used to charge the label-broadcast rounds
        (Õ(D + |la(s)|)); without it the SSSP phase is charged 0 rounds.
    labeling_result:
        When provided, its construction rounds are added to ``total_rounds``.
    network:
        Optional :class:`CongestNetwork` over the communication graph: the
        label broadcast is then actually executed on the simulation engine
        and the *measured* round count replaces the cost-model estimate.
    """
    if source not in labeling:
        raise LabelingError(f"source {source!r} has no label")
    src_label = labeling.label(source)
    distances: Dict[NodeId, float] = {}
    distances_to: Dict[NodeId, float] = {}
    for v in labeling.vertices():
        lab_v = labeling.label(v)
        distances[v] = decode_distance(src_label, lab_v)
        distances_to[v] = decode_distance(lab_v, src_label)

    rounds = 0
    simulation: Optional[SimulationResult] = None
    if network is not None:
        simulation = measured_label_broadcast(network, labeling, source)
        rounds = simulation.rounds
    elif cost_model is not None:
        # Pipelined broadcast of the source label: D + (#words) rounds, where
        # each hub entry is a constant number of words.
        rounds = cost_model._c(cost_model.d + 3 * src_label.num_entries())
    total = rounds
    if labeling_result is not None:
        total += labeling_result.rounds
    return SSSPResult(
        source=source,
        distances=distances,
        distances_to_source=distances_to,
        rounds=rounds,
        total_rounds=total,
        simulation=simulation,
    )
