"""Distance labels and the decoder function (paper §4.1, Definition 1 and Lemma 2).

The label of a vertex u is the *distance set* d_G(u, B↑(u)): for every vertex
s in the union B↑(u) of the bags on the root path to u's canonical bag, the
pair of directed distances (d_G(u, s), d_G(s, u)).  The decoder computes

    dec(la(u), la(v)) = min_{s ∈ B↑(u) ∩ B↑(v)}  d_G(u, s) + d_G(s, v),

which Lemma 2 proves equals d_G(u, v) because the bag at the lowest common
ancestor of the two canonical nodes separates u from v.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from repro.errors import LabelingError

NodeId = Hashable
INF = math.inf


@dataclass
class DistanceLabel:
    """The distance label of a single vertex.

    Attributes
    ----------
    vertex:
        The labelled vertex u.
    to_dist:
        ``s -> d_G(u, s)`` for every s in the label's hub set B↑(u).
    from_dist:
        ``s -> d_G(s, u)`` for the same hub set.
    """

    vertex: NodeId
    to_dist: Dict[NodeId, float] = field(default_factory=dict)
    from_dist: Dict[NodeId, float] = field(default_factory=dict)

    def hubs(self) -> Iterable[NodeId]:
        """The hub set B↑(u) covered by this label."""
        return self.to_dist.keys()

    def num_entries(self) -> int:
        """Number of hub vertices stored (the paper's label-size measure, Õ(τ²))."""
        return len(self.to_dist)

    def size_bits(self, n: int, max_weight: float = 1.0) -> int:
        """Estimated label size in bits: each entry stores a vertex id and two distances.

        Vertex ids take ⌈log₂ n⌉ bits and distances ⌈log₂(n · W)⌉ bits for
        maximum edge weight W, matching the O(τ² log² n)-bit bound of Theorem 2.
        """
        id_bits = max(1, math.ceil(math.log2(max(2, n))))
        dist_bits = max(1, math.ceil(math.log2(max(2, n * max(1.0, max_weight)))))
        return self.num_entries() * (id_bits + 2 * dist_bits)

    def set_entry(self, hub: NodeId, to_hub: float, from_hub: float) -> None:
        self.to_dist[hub] = to_hub
        self.from_dist[hub] = from_hub

    def restrict(self, hubs: Iterable[NodeId]) -> "DistanceLabel":
        """Return a copy keeping only the given hub vertices."""
        keep = set(hubs)
        return DistanceLabel(
            vertex=self.vertex,
            to_dist={s: d for s, d in self.to_dist.items() if s in keep},
            from_dist={s: d for s, d in self.from_dist.items() if s in keep},
        )

    def copy(self) -> "DistanceLabel":
        return DistanceLabel(self.vertex, dict(self.to_dist), dict(self.from_dist))


def decode_distance(label_u: DistanceLabel, label_v: DistanceLabel) -> float:
    """dec(la(u), la(v)): the exact directed distance d_G(u, v) (Lemma 2).

    Returns ``inf`` when v is unreachable from u.
    """
    if label_u.vertex == label_v.vertex:
        return 0.0
    best = INF
    # Iterate over the smaller hub set for speed.
    if len(label_u.to_dist) <= len(label_v.from_dist):
        for s, d_us in label_u.to_dist.items():
            d_sv = label_v.from_dist.get(s)
            if d_sv is None:
                continue
            total = d_us + d_sv
            if total < best:
                best = total
    else:
        for s, d_sv in label_v.from_dist.items():
            d_us = label_u.to_dist.get(s)
            if d_us is None:
                continue
            total = d_us + d_sv
            if total < best:
                best = total
    return best


class DistanceLabeling:
    """A complete labeling: one :class:`DistanceLabel` per vertex plus the decoder."""

    def __init__(self, labels: Mapping[NodeId, DistanceLabel]) -> None:
        self._labels: Dict[NodeId, DistanceLabel] = dict(labels)

    def label(self, v: NodeId) -> DistanceLabel:
        if v not in self._labels:
            raise LabelingError(f"no label for vertex {v!r}")
        return self._labels[v]

    def vertices(self) -> Iterable[NodeId]:
        return self._labels.keys()

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Exact d_G(u, v) decoded from the two labels."""
        return decode_distance(self.label(u), self.label(v))

    def max_entries(self) -> int:
        """Largest label size in hub entries (paper bound: Õ(τ²))."""
        return max((lab.num_entries() for lab in self._labels.values()), default=0)

    def total_entries(self) -> int:
        return sum(lab.num_entries() for lab in self._labels.values())

    def max_size_bits(self, n: Optional[int] = None, max_weight: float = 1.0) -> int:
        n = n if n is not None else len(self._labels)
        return max(
            (lab.size_bits(n, max_weight) for lab in self._labels.values()), default=0
        )

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, v: NodeId) -> bool:
        return v in self._labels
