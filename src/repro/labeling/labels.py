"""Distance labels and the decoder function (paper §4.1, Definition 1 and Lemma 2).

The label of a vertex u is the *distance set* d_G(u, B↑(u)): for every vertex
s in the union B↑(u) of the bags on the root path to u's canonical bag, the
pair of directed distances (d_G(u, s), d_G(s, u)).  The decoder computes

    dec(la(u), la(v)) = min_{s ∈ B↑(u) ∩ B↑(v)}  d_G(u, s) + d_G(s, v),

which Lemma 2 proves equals d_G(u, v) because the bag at the lowest common
ancestor of the two canonical nodes separates u from v.

**Incremental maintenance.**  A labeling attached to its instance via
:meth:`DistanceLabeling.attach_instance` supports weight updates through
:meth:`DistanceLabeling.apply_edge_update` without a from-scratch rebuild.
The hub sets B↑(u) depend only on the tree decomposition of the *undirected
communication topology*, which weight changes (and edge removals /
re-insertions — removing edges never breaks a separator) leave valid; only
the stored distances can go stale.  An update of arc (a, b) from w_old to
w_new changes d(s, ·) only if s can reach the arc on an improved path
(``d(s,a) + w_new < d(s,b)``) or the arc lay on a shortest path out of s
(``d(s,a) + w_old == d(s,b)``); both tests are answered *exactly* by the
pre-update labels themselves, so the affected hubs are found with O(#hubs)
decode calls and only those hubs re-run Dijkstra — everything else is
provably untouched.  Updates that would *grow* the topology are rejected
(a genuinely new edge could bypass the separators Lemma 2 relies on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import LabelingError

NodeId = Hashable
INF = math.inf


@dataclass
class DistanceLabel:
    """The distance label of a single vertex.

    Attributes
    ----------
    vertex:
        The labelled vertex u.
    to_dist:
        ``s -> d_G(u, s)`` for every s in the label's hub set B↑(u).
    from_dist:
        ``s -> d_G(s, u)`` for the same hub set.
    """

    vertex: NodeId
    to_dist: Dict[NodeId, float] = field(default_factory=dict)
    from_dist: Dict[NodeId, float] = field(default_factory=dict)
    #: Cached deterministic hub order (see :meth:`sorted_hubs`); invalidated
    #: by :meth:`set_entry`.  Excluded from equality so two labels with the
    #: same entries compare equal whether or not the cache is warm.
    _hub_order: Optional[Tuple[NodeId, ...]] = field(
        default=None, repr=False, compare=False
    )

    def hubs(self) -> Iterable[NodeId]:
        """The hub set B↑(u) covered by this label."""
        return self.to_dist.keys()

    def sorted_hubs(self) -> Tuple[NodeId, ...]:
        """The union of the to/from hub sets in deterministic ``str`` order.

        Cached after the first call (and invalidated by :meth:`set_entry`):
        the decoder scans the smaller label in this order, and
        :class:`~repro.labeling.packed.PackedLabeling` packs label segments
        from it, so both see one canonical hub enumeration.
        """
        if self._hub_order is None:
            keys = self.to_dist.keys()
            if len(self.from_dist) != len(self.to_dist) or (
                self.from_dist.keys() != keys
            ):
                keys = keys | self.from_dist.keys()
            self._hub_order = tuple(sorted(keys, key=str))
        return self._hub_order

    def num_entries(self) -> int:
        """Number of hub vertices stored (the paper's label-size measure, Õ(τ²))."""
        return len(self.to_dist)

    def size_bits(self, n: int, max_weight: float = 1.0) -> int:
        """Estimated label size in bits: each entry stores a vertex id and two distances.

        Vertex ids take ⌈log₂ n⌉ bits and distances ⌈log₂(n · W)⌉ bits for
        maximum edge weight W, matching the O(τ² log² n)-bit bound of Theorem 2.
        """
        id_bits = max(1, math.ceil(math.log2(max(2, n))))
        dist_bits = max(1, math.ceil(math.log2(max(2, n * max(1.0, max_weight)))))
        return self.num_entries() * (id_bits + 2 * dist_bits)

    def set_entry(self, hub: NodeId, to_hub: float, from_hub: float) -> None:
        if hub not in self.to_dist or hub not in self.from_dist:
            self._hub_order = None
        self.to_dist[hub] = to_hub
        self.from_dist[hub] = from_hub

    def restrict(self, hubs: Iterable[NodeId]) -> "DistanceLabel":
        """Return a copy keeping only the given hub vertices."""
        keep = set(hubs)
        return DistanceLabel(
            vertex=self.vertex,
            to_dist={s: d for s, d in self.to_dist.items() if s in keep},
            from_dist={s: d for s, d in self.from_dist.items() if s in keep},
        )

    def copy(self) -> "DistanceLabel":
        return DistanceLabel(self.vertex, dict(self.to_dist), dict(self.from_dist))


def decode_distance(label_u: DistanceLabel, label_v: DistanceLabel) -> float:
    """dec(la(u), la(v)): the exact directed distance d_G(u, v) (Lemma 2).

    Returns ``inf`` when v is unreachable from u.  The scan is
    O(|smaller label|): it walks the smaller side's cached
    :meth:`~DistanceLabel.sorted_hubs` order — the same canonical hub
    enumeration the packed form uses for its sorted-array merge — and
    resolves each hub against the larger side with one O(1) probe, so the
    larger label's size never enters the cost.
    """
    if label_u.vertex == label_v.vertex:
        return 0.0
    best = INF
    to_dist = label_u.to_dist
    from_dist = label_v.from_dist
    if len(to_dist) <= len(from_dist):
        probe = from_dist.get
        for s in label_u.sorted_hubs():
            d_us = to_dist.get(s)
            if d_us is None:
                continue
            d_sv = probe(s)
            if d_sv is None:
                continue
            total = d_us + d_sv
            if total < best:
                best = total
    else:
        probe = to_dist.get
        for s in label_v.sorted_hubs():
            d_sv = from_dist.get(s)
            if d_sv is None:
                continue
            d_us = probe(s)
            if d_us is None:
                continue
            total = d_us + d_sv
            if total < best:
                best = total
    return best


@dataclass
class EdgeUpdateStats:
    """Accounting for one :meth:`DistanceLabeling.apply_edge_update` call.

    Attributes
    ----------
    tail, head:
        The updated arc (a, b).
    old_weight, new_weight:
        Effective weight of the arc before/after (the minimum over parallel
        edges; ``inf`` means the arc is absent).
    candidate_hubs:
        Hubs examined by the decode-based affectedness filter (each costs two
        O(label) decodes, no graph traversal).
    from_hubs_recomputed, to_hubs_recomputed:
        Hubs whose outgoing (``d(s, ·)``) / incoming (``d(·, s)``) distance
        trees were re-run with Dijkstra.
    entries_rewritten:
        Label entries overwritten with fresh distances.
    """

    tail: NodeId
    head: NodeId
    old_weight: float
    new_weight: float
    candidate_hubs: int = 0
    from_hubs_recomputed: int = 0
    to_hubs_recomputed: int = 0
    entries_rewritten: int = 0


class DistanceLabeling:
    """A complete labeling: one :class:`DistanceLabel` per vertex plus the decoder."""

    def __init__(self, labels: Mapping[NodeId, DistanceLabel]) -> None:
        self._labels: Dict[NodeId, DistanceLabel] = dict(labels)
        # Cached size statistics; recomputing max/total entries is an O(n)
        # sweep that query-serving callers hit per request, so both are
        # computed once and invalidated by the two mutation paths that can
        # change an entry count (set_entry / apply_edge_update).
        self._max_entries_cache: Optional[int] = None
        self._total_entries_cache: Optional[int] = None
        # Incremental-maintenance state; populated by attach_instance().
        self._instance = None
        self._reverse = None
        self._removed: Set[Tuple[NodeId, NodeId]] = set()
        self._hub_members_to: Dict[NodeId, List[NodeId]] = {}
        self._hub_members_from: Dict[NodeId, List[NodeId]] = {}

    def label(self, v: NodeId) -> DistanceLabel:
        if v not in self._labels:
            raise LabelingError(f"no label for vertex {v!r}")
        return self._labels[v]

    def vertices(self) -> Iterable[NodeId]:
        return self._labels.keys()

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Exact d_G(u, v) decoded from the two labels."""
        return decode_distance(self.label(u), self.label(v))

    def set_entry(
        self, vertex: NodeId, hub: NodeId, to_hub: float, from_hub: float
    ) -> None:
        """Set one label entry through the labeling, keeping caches honest.

        Mutating a :class:`DistanceLabel` directly bypasses the labeling's
        cached size statistics; this is the supported write path.
        """
        self.label(vertex).set_entry(hub, to_hub, from_hub)
        self._max_entries_cache = None
        self._total_entries_cache = None

    def max_entries(self) -> int:
        """Largest label size in hub entries (paper bound: Õ(τ²)); cached."""
        if self._max_entries_cache is None:
            self._max_entries_cache = max(
                (lab.num_entries() for lab in self._labels.values()), default=0
            )
        return self._max_entries_cache

    def total_entries(self) -> int:
        """Sum of all label sizes in hub entries; cached."""
        if self._total_entries_cache is None:
            self._total_entries_cache = sum(
                lab.num_entries() for lab in self._labels.values()
            )
        return self._total_entries_cache

    def max_size_bits(self, n: Optional[int] = None, max_weight: float = 1.0) -> int:
        n = n if n is not None else len(self._labels)
        return max(
            (lab.size_bits(n, max_weight) for lab in self._labels.values()), default=0
        )

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, v: NodeId) -> bool:
        return v in self._labels

    # ------------------------------------------------------------------ #
    # Incremental maintenance under edge updates
    # ------------------------------------------------------------------ #
    def attach_instance(self, instance) -> None:
        """Snapshot ``instance`` so the labeling can absorb edge updates.

        Stores private forward/reversed copies of the weighted instance the
        labels were built from (the caller's graph is never mutated) and the
        hub → member index needed to rewrite label entries.  Must be called
        once before :meth:`apply_edge_update`; the labels are expected to be
        exact for ``instance`` at attach time.
        """
        for v in self._labels:
            if not instance.has_node(v):
                raise LabelingError(
                    f"labelled vertex {v!r} is not a vertex of the attached instance"
                )
        self._instance = instance.copy()
        self._reverse = self._instance.reverse()
        self._removed = set()
        self._hub_members_to = {}
        self._hub_members_from = {}
        for u, lab in self._labels.items():
            for s in lab.to_dist:
                self._hub_members_to.setdefault(s, []).append(u)
            for s in lab.from_dist:
                self._hub_members_from.setdefault(s, []).append(u)

    def apply_edge_update(self, tail: NodeId, head: NodeId, weight: float) -> EdgeUpdateStats:
        """Update arc (tail, head) to ``weight`` and repair the labels in place.

        Replaces every parallel (tail, head) edge of the attached instance
        with a single edge of the new weight; ``weight=inf`` removes the arc
        entirely, and a previously removed arc may be re-inserted at a finite
        weight.  Arcs that never existed in the attached instance are
        rejected — a genuinely new edge could bypass the decomposition's
        separators and invalidate the decoder (see the module docstring).

        Only hubs whose distance tree provably changed re-run Dijkstra; the
        affected set is found with two exact label decodes per hub.  After the
        call, ``distance(u, v)`` answers every pairwise query identically to a
        from-scratch rebuild on the updated instance.
        """
        from repro.graphs.properties import dijkstra

        if self._instance is None:
            raise LabelingError(
                "apply_edge_update requires attach_instance() to be called first"
            )
        if tail == head:
            raise LabelingError("self-loop updates do not affect distances")
        if not self._instance.has_node(tail) or not self._instance.has_node(head):
            raise LabelingError(
                f"arc ({tail!r}, {head!r}) endpoints are not vertices of the instance"
            )
        if weight != INF and (not weight >= 0):
            raise LabelingError(f"edge weight must be non-negative or inf, got {weight!r}")

        parallel = [e for e in self._instance.out_edges(tail) if e.head == head]
        w_old = min((e.weight for e in parallel), default=INF)
        if not parallel and (tail, head) not in self._removed:
            raise LabelingError(
                f"arc ({tail!r}, {head!r}) is not an edge of the attached instance; "
                "updates must not grow the topology"
            )
        w_new = INF if weight == INF else float(weight)
        stats = EdgeUpdateStats(tail=tail, head=head, old_weight=w_old, new_weight=w_new)
        # Entry rewrites below go straight at the label dicts, so the cached
        # size statistics are invalidated up front (cheap, and keeps the
        # cache contract simple: any update call resets it).
        self._max_entries_cache = None
        self._total_entries_cache = None

        # Affectedness filters on the *pre-update* labels (exact distances).
        # d(s, ·) changes iff s reaches the arc on an improved path, or the
        # arc carried a shortest path out of s; mirror for d(·, s).  An
        # unchanged effective weight (collapsing parallel edges) cannot move
        # any distance.
        affected_from: List[NodeId] = []
        affected_to: List[NodeId] = []
        if w_new != w_old:
            for s in self._hub_members_from:
                stats.candidate_hubs += 1
                d_st, d_sh = self.distance(s, tail), self.distance(s, head)
                if (d_st + w_new < d_sh) if w_new < w_old else (d_st + w_old == d_sh):
                    affected_from.append(s)
            for s in self._hub_members_to:
                d_hs, d_ts = self.distance(head, s), self.distance(tail, s)
                if (w_new + d_hs < d_ts) if w_new < w_old else (d_ts == w_old + d_hs):
                    affected_to.append(s)

        # Apply the update symmetrically to both maintained copies (reverse()
        # preserves edge ids, so removals and explicit-id insertions stay in
        # lockstep).
        for e in parallel:
            self._instance.remove_edge(e.eid)
            self._reverse.remove_edge(e.eid)
        if w_new == INF:
            self._removed.add((tail, head))
        else:
            self._removed.discard((tail, head))
            eid = self._instance.add_edge(tail, head, weight=w_new)
            self._reverse.add_edge(head, tail, weight=w_new, eid=eid)

        for s in affected_from:
            dist = dijkstra(self._instance, s)
            for u in self._hub_members_from[s]:
                self._labels[u].from_dist[s] = dist.get(u, INF)
                stats.entries_rewritten += 1
            stats.from_hubs_recomputed += 1
        for s in affected_to:
            rdist = dijkstra(self._reverse, s)
            for u in self._hub_members_to[s]:
                self._labels[u].to_dist[s] = rdist.get(u, INF)
                stats.entries_rewritten += 1
            stats.to_hubs_recomputed += 1
        return stats
