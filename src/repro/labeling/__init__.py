"""Exact distance labeling and single-source shortest paths (paper §4, Theorem 2).

A distance labeling assigns every vertex a short label such that the exact
directed distance between any two vertices can be decoded from their two
labels alone.  The paper constructs labels of Õ(τ²) entries in Õ(τ²D + τ⁵)
CONGEST rounds by recursing over the tree decomposition of §3: the label of u
stores its distances to/from every vertex of B↑(u), the union of the bags on
the root path to u's canonical bag.

* :mod:`~repro.labeling.labels` — the label data structure, the decoder and
  the incremental maintenance path (``DistanceLabeling.apply_edge_update``
  with :class:`EdgeUpdateStats` accounting).
* :mod:`~repro.labeling.construction` — the recursive construction
  (auxiliary graphs H_x, Lemma 3/4 updates) with CONGEST round accounting.
* :mod:`~repro.labeling.sssp` — single-source shortest paths by broadcasting
  the source's label (the reduction described in §1.2).
* :mod:`~repro.labeling.packed` — :class:`PackedLabeling`, the CSR-packed
  serving form: flat sorted-hub arrays, a versioned memory-mappable file
  format, and batched vectorized decoding (the ``label_query_batch`` accel
  op).
"""

from repro.labeling.labels import (
    DistanceLabel,
    DistanceLabeling,
    EdgeUpdateStats,
    decode_distance,
)
from repro.labeling.construction import build_distance_labeling, DistanceLabelingResult
from repro.labeling.packed import PackedLabeling
from repro.labeling.sssp import single_source_shortest_paths, SSSPResult

__all__ = [
    "DistanceLabel",
    "DistanceLabeling",
    "EdgeUpdateStats",
    "PackedLabeling",
    "decode_distance",
    "build_distance_labeling",
    "DistanceLabelingResult",
    "single_source_shortest_paths",
    "SSSPResult",
]
