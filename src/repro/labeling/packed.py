"""CSR-packed distance labels: the query-serving form of a labeling.

:class:`~repro.labeling.labels.DistanceLabeling` is the construction-side
representation — one Python dict pair per vertex, ideal for the recursive
build and the incremental maintenance path, and hopeless for serving
sustained query traffic (every ``decode_distance`` walks two dicts).
:class:`PackedLabeling` is the serving-side twin: the same labels packed
into four flat arrays in the ``PayloadSchema`` spirit (preallocated typed
columns keyed by dense offsets, no per-entry objects):

``offsets``
    ``int64[n + 1]`` — vertex ``i``'s label occupies the half-open segment
    ``[offsets[i], offsets[i + 1])`` of the three entry arrays.
``hubs``
    ``int64[E]`` — hub ids as indices into the shared vertex/hub table,
    **sorted ascending within every segment** (the invariant every query
    path relies on).
``to_hub`` / ``from_hub``
    ``float64[E]`` — ``d(u, s)`` / ``d(s, u)`` per entry; ``inf`` marks an
    unreachable hub *and* a hub the dict form stored on one side only, so
    packing the union of the two key sets is decode-exact (an ``inf``
    summand can never win the minimum).

Queries
-------
``distance(u, v)`` answers one pair with a sorted two-pointer merge of the
two segments — the packed mirror of the scalar decoder.  ``query(us, vs)``
answers a whole batch with one vectorized kernel call: the u-side segments
are flattened, given composite ``pair * stride + hub`` keys, and matched
against the v-side segments with a single ``searchsorted`` (the v-side key
array is globally sorted because segments are pair-major and hub-sorted),
then a segmented ``minimum.reduceat`` folds the matched sums per pair.  The
kernel lives in the :mod:`repro._accel` op registry as
``label_query_batch`` with the usual twins — the numpy expression above
(``accel="python"``) and an ``@njit`` per-pair merge loop
(``accel="numba"``) — behind the established ``accel="auto"`` selection and
one-shot :class:`~repro.congest.engine.EngineFallbackWarning` contract.
Without numpy the same API serves a pure-python two-pointer fallback
(``backend="pure"``), so the packed form works on every CI configuration.

File format (version 1)
-----------------------
``save``/``load`` round-trip a versioned little-endian binary file built
for ``np.memmap``: concurrent server workers map the same file and share
its pages, so a corpus of labelings costs one copy of physical memory no
matter how many processes serve it.

============  ======================  =========================================
section       layout                  contents
============  ======================  =========================================
header        ``<4s I Q Q Q Q``       magic ``b"RPLB"``, format version ``1``,
                                      ``num_nodes``, table length ``T``,
                                      ``num_entries``, id-blob byte length
id blob       pickle                  the vertex/hub id table (``T`` ids; the
                                      first ``num_nodes`` are the labelled
                                      vertices in segment order)
padding       zeros                   to the next 64-byte boundary
``offsets``   ``<i8 × (num_nodes+1)``
``hubs``      ``<i8 × num_entries``
``to_hub``    ``<f8 × num_entries``
``from_hub``  ``<f8 × num_entries``
============  ======================  =========================================

``load(path)`` memory-maps the four arrays read-only at their recorded
offsets (zero copies; ``is_memory_mapped`` reports it and
:meth:`stats` accounts ``copied_label_bytes == 0``).  ``load(path,
mmap=False)`` or ``backend="pure"`` reads heap copies instead.  Unknown
magic, an unsupported version, or a truncated file raise
:class:`~repro.errors.LabelingError` before any array is touched.
"""

from __future__ import annotations

import io
import math
import pickle
import struct
import sys
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import LabelingError
from repro.labeling.labels import DistanceLabel, DistanceLabeling

NodeId = Hashable
INF = math.inf

#: File magic + supported format version.
MAGIC = b"RPLB"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sIQQQQ")
#: Array sections start on this alignment so memory-mapped views are
#: naturally aligned for their 8-byte dtypes.
_ALIGN = 64

#: Batches at or below this size are served by the scalar two-pointer
#: merge on the python backend: the vectorized kernel's per-call set-up
#: (~60 µs) only amortizes above this crossover (measured on the n=240
#: partial 3-tree serving corpus).
_SMALL_BATCH_CUTOVER = 4

_BACKENDS = ("auto", "numpy", "pure")


def numpy_or_none():
    """numpy when importable, else ``None`` (the pure-python fallback)."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is baked into CI images
        return None
    return np


def _resolve_backend(backend: str):
    """Map a ``backend=`` argument to the numpy module or ``None`` (pure)."""
    if backend not in _BACKENDS:
        raise LabelingError(
            f"unknown packed-labeling backend {backend!r}; expected one of "
            f"{_BACKENDS}"
        )
    if backend == "pure":
        return None
    np = numpy_or_none()
    if backend == "numpy" and np is None:
        raise LabelingError("backend='numpy' requires numpy to be importable")
    return np


class PackedLabeling:
    """A :class:`DistanceLabeling` packed into flat CSR arrays for serving.

    Build one with :meth:`from_labeling`, persist with :meth:`save`, and
    reopen zero-copy with :meth:`load`.  All query entry points
    (:meth:`distance`, :meth:`query`) are exact mirrors of
    :func:`~repro.labeling.labels.decode_distance`.
    """

    __slots__ = (
        "ids",
        "index",
        "num_nodes",
        "offsets",
        "hubs",
        "to_hub",
        "from_hub",
        "_np",
        "_mapped",
    )

    def __init__(self, ids, num_nodes, offsets, hubs, to_hub, from_hub,
                 np_module, mapped=False) -> None:
        self.ids: Tuple[NodeId, ...] = tuple(ids)
        self.index: Dict[NodeId, int] = {v: i for i, v in enumerate(self.ids)}
        self.num_nodes = int(num_nodes)
        self.offsets = offsets
        self.hubs = hubs
        self.to_hub = to_hub
        self.from_hub = from_hub
        self._np = np_module
        self._mapped = bool(mapped)

    # ------------------------------------------------------------------ #
    # Construction / conversion
    # ------------------------------------------------------------------ #
    @classmethod
    def from_labeling(
        cls, labeling: DistanceLabeling, backend: str = "auto"
    ) -> "PackedLabeling":
        """Pack a dict-form labeling.

        The labelled vertices become table slots ``0 .. n-1`` in
        deterministic ``str`` order; hubs that are not labelled vertices
        (possible for synthetic/restricted labels) extend the table.  Each
        vertex's segment packs the **union** of its to/from hub sets —
        a side the dict form did not store becomes ``inf``, which is
        decode-equivalent (see the module docstring).
        """
        np = _resolve_backend(backend)
        vertices = sorted(labeling.vertices(), key=str)
        index: Dict[NodeId, int] = {v: i for i, v in enumerate(vertices)}
        extras: List[NodeId] = []
        for v in vertices:
            for s in labeling.label(v).sorted_hubs():
                if s not in index:
                    index[s] = len(vertices) + len(extras)
                    extras.append(s)
        ids = vertices + extras

        offsets: List[int] = [0]
        hub_rows: List[int] = []
        to_rows: List[float] = []
        from_rows: List[float] = []
        for v in vertices:
            lab = labeling.label(v)
            entries = sorted(index[s] for s in lab.sorted_hubs())
            for h in entries:
                s = ids[h]
                hub_rows.append(h)
                to_rows.append(float(lab.to_dist.get(s, INF)))
                from_rows.append(float(lab.from_dist.get(s, INF)))
            offsets.append(len(hub_rows))

        if np is not None:
            return cls(
                ids, len(vertices),
                np.asarray(offsets, dtype=np.int64),
                np.asarray(hub_rows, dtype=np.int64),
                np.asarray(to_rows, dtype=np.float64),
                np.asarray(from_rows, dtype=np.float64),
                np,
            )
        return cls(ids, len(vertices), offsets, hub_rows, to_rows, from_rows, None)

    def to_labeling(self) -> DistanceLabeling:
        """Unpack back to the dict form.

        Entries the packing stored as one-sided ``inf`` (a hub the original
        label carried on only one side) come back as explicit ``inf``
        values — a decode-equivalent labeling, and an exact round trip
        whenever the original to/from key sets matched (the invariant of
        every labeling the construction produces).
        """
        labels: Dict[NodeId, DistanceLabel] = {}
        for i in range(self.num_nodes):
            v = self.ids[i]
            lab = DistanceLabel(v)
            for e in range(int(self.offsets[i]), int(self.offsets[i + 1])):
                lab.set_entry(
                    self.ids[int(self.hubs[e])],
                    float(self.to_hub[e]),
                    float(self.from_hub[e]),
                )
            labels[v] = lab
        return DistanceLabeling(labels)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, v: NodeId) -> bool:
        i = self.index.get(v)
        return i is not None and i < self.num_nodes

    def vertices(self) -> Tuple[NodeId, ...]:
        return self.ids[: self.num_nodes]

    @property
    def total_entries(self) -> int:
        return len(self.hubs)

    @property
    def max_entries(self) -> int:
        if self.num_nodes == 0:
            return 0
        return max(
            int(self.offsets[i + 1]) - int(self.offsets[i])
            for i in range(self.num_nodes)
        )

    @property
    def is_memory_mapped(self) -> bool:
        """Whether the entry arrays are read-only views of a mapped file."""
        return self._mapped

    @property
    def array_bytes(self) -> int:
        """Total bytes of the four packed arrays (mapped or heap)."""
        n, e = self.num_nodes, len(self.hubs)
        return 8 * (n + 1) + 8 * e + 8 * e + 8 * e

    def stats(self) -> Dict[str, object]:
        """Size/residency accounting in the ``shard_stats`` spirit."""
        return {
            "num_nodes": self.num_nodes,
            "table_len": len(self.ids),
            "total_entries": self.total_entries,
            "array_bytes": self.array_bytes,
            "mapped_bytes": self.array_bytes if self._mapped else 0,
            "copied_label_bytes": 0 if self._mapped else self.array_bytes,
            "backend": "numpy" if self._np is not None else "pure",
        }

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _vertex_index(self, v: NodeId) -> int:
        i = self.index.get(v)
        if i is None or i >= self.num_nodes:
            raise LabelingError(f"no label for vertex {v!r}")
        return i

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Exact d_G(u, v) from the packed segments (one sorted merge)."""
        ui = self._vertex_index(u)
        vi = self._vertex_index(v)
        if ui == vi:
            return 0.0
        offsets, hubs = self.offsets, self.hubs
        to_hub, from_hub = self.to_hub, self.from_hub
        a, a_hi = int(offsets[ui]), int(offsets[ui + 1])
        b, b_hi = int(offsets[vi]), int(offsets[vi + 1])
        best = INF
        while a < a_hi and b < b_hi:
            ha = hubs[a]
            hb = hubs[b]
            if ha == hb:
                total = to_hub[a] + from_hub[b]
                if total < best:
                    best = total
                a += 1
                b += 1
            elif ha < hb:
                a += 1
            else:
                b += 1
        return float(best)

    def query(self, us: Sequence[NodeId], vs: Sequence[NodeId],
              accel: Optional[str] = None):
        """Batched exact distances for the pairs ``zip(us, vs)``.

        One vectorized kernel call on the numpy backend (a ``float64``
        array comes back); a python merge loop on the pure backend (a list
        of floats).  ``accel`` follows :meth:`CongestNetwork.run
        <repro.congest.network.CongestNetwork.run>`: ``"auto"`` (default),
        ``"python"``, or ``"numba"`` with the one-shot fallback warning
        when numba is unavailable.
        """
        if len(us) != len(vs):
            raise LabelingError(
                f"query needs pairs: got {len(us)} sources, {len(vs)} targets"
            )
        from repro import _accel

        if accel is not None:
            _accel.select_backend(accel)
        np = self._np
        if np is None:
            return [self.distance(u, v) for u, v in zip(us, vs)]
        if (
            len(us) <= _SMALL_BATCH_CUTOVER
            and _accel.active_backend() != "numba"
        ):
            # Below the measured crossover the python kernel's fixed
            # per-call overhead (~60 µs of array set-up) loses to a plain
            # scalar merge per pair; the compiled twin has no such floor.
            return np.asarray(
                [self.distance(u, v) for u, v in zip(us, vs)],
                dtype=np.float64,
            )
        u_idx = np.fromiter(
            (self._vertex_index(u) for u in us), dtype=np.int64, count=len(us)
        )
        v_idx = np.fromiter(
            (self._vertex_index(v) for v in vs), dtype=np.int64, count=len(vs)
        )
        return self.query_indices(u_idx, v_idx)

    def query_indices(self, u_idx, v_idx):
        """Batched distances for pre-resolved vertex indices (numpy only).

        The hot entry point for servers that cache the id → index mapping:
        no per-call dict lookups, straight into the active
        ``label_query_batch`` op.
        """
        if self._np is None:
            raise LabelingError(
                "query_indices requires the numpy backend; use query()"
            )
        from repro import _accel

        op = _accel.op("label_query_batch")
        return op(
            self.offsets, self.hubs, self.to_hub, self.from_hub, u_idx, v_idx
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def _array_bytes_le(self, arr, typecode: str) -> bytes:
        """Serialize one column little-endian regardless of backend/host."""
        np = self._np
        if np is not None:
            dtype = "<i8" if typecode == "q" else "<f8"
            return np.ascontiguousarray(arr, dtype=dtype).tobytes()
        import array as array_mod

        a = array_mod.array(typecode, arr)
        if sys.byteorder == "big":  # pragma: no cover - little-endian hosts
            a.byteswap()
        return a.tobytes()

    def save(self, path) -> int:
        """Write the versioned binary file; returns the bytes written."""
        id_blob = pickle.dumps(list(self.ids), protocol=pickle.HIGHEST_PROTOCOL)
        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION, self.num_nodes, len(self.ids),
            len(self.hubs), len(id_blob),
        )
        data_start = _aligned(_HEADER.size + len(id_blob))
        buf = io.BytesIO()
        buf.write(header)
        buf.write(id_blob)
        buf.write(b"\x00" * (data_start - _HEADER.size - len(id_blob)))
        buf.write(self._array_bytes_le(self.offsets, "q"))
        buf.write(self._array_bytes_le(self.hubs, "q"))
        buf.write(self._array_bytes_le(self.to_hub, "d"))
        buf.write(self._array_bytes_le(self.from_hub, "d"))
        payload = buf.getvalue()
        with open(path, "wb") as fh:
            fh.write(payload)
        return len(payload)

    @classmethod
    def load(cls, path, mmap: bool = True, backend: str = "auto") -> "PackedLabeling":
        """Open a saved packed labeling.

        With numpy and ``mmap=True`` (the default) the four arrays are
        read-only ``np.memmap`` views — concurrent processes opening the
        same file share its physical pages, which is the zero-copy
        contract :class:`~repro.serving.store.LabelStore` is built on.
        """
        np = _resolve_backend(backend)
        with open(path, "rb") as fh:
            raw_header = fh.read(_HEADER.size)
            if len(raw_header) != _HEADER.size:
                raise LabelingError(f"truncated packed-labeling file {path!r}")
            magic, version, num_nodes, table_len, num_entries, blob_len = (
                _HEADER.unpack(raw_header)
            )
            if magic != MAGIC:
                raise LabelingError(
                    f"{path!r} is not a packed-labeling file "
                    f"(magic {magic!r}, expected {MAGIC!r})"
                )
            if version != FORMAT_VERSION:
                raise LabelingError(
                    f"unsupported packed-labeling format version {version} "
                    f"in {path!r} (supported: {FORMAT_VERSION})"
                )
            id_blob = fh.read(blob_len)
            if len(id_blob) != blob_len:
                raise LabelingError(f"truncated packed-labeling file {path!r}")
            ids = pickle.loads(id_blob)
            if len(ids) != table_len:
                raise LabelingError(
                    f"corrupt packed-labeling file {path!r}: id table length "
                    f"{len(ids)} != recorded {table_len}"
                )
            data_start = _aligned(_HEADER.size + blob_len)
            sections = [
                ("q", num_nodes + 1),
                ("q", num_entries),
                ("d", num_entries),
                ("d", num_entries),
            ]
            total = data_start + 8 * sum(count for _, count in sections)
            fh.seek(0, 2)
            if fh.tell() < total:
                raise LabelingError(f"truncated packed-labeling file {path!r}")

            if np is not None and mmap:
                arrays = []
                offset = data_start
                for typecode, count in sections:
                    dtype = "<i8" if typecode == "q" else "<f8"
                    arrays.append(
                        np.memmap(
                            path, dtype=dtype, mode="r", offset=offset,
                            shape=(count,),
                        )
                    )
                    offset += 8 * count
                return cls(ids, num_nodes, *arrays, np, mapped=True)

            fh.seek(data_start)
            arrays = []
            for typecode, count in sections:
                chunk = fh.read(8 * count)
                if np is not None:
                    dtype = "<i8" if typecode == "q" else "<f8"
                    arrays.append(
                        np.frombuffer(chunk, dtype=dtype).astype(
                            np.int64 if typecode == "q" else np.float64
                        )
                    )
                else:
                    import array as array_mod

                    a = array_mod.array(typecode)
                    a.frombytes(chunk)
                    if sys.byteorder == "big":  # pragma: no cover
                        a.byteswap()
                    arrays.append(a.tolist())
            return cls(ids, num_nodes, *arrays, np, mapped=False)


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN
