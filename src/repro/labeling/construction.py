"""Recursive construction of the distance labeling (paper §4.2, Theorem 2).

The construction walks the tree decomposition bottom-up.  For a leaf node x
the subgraph G_x is small enough that every node learns all of it and solves
all-pairs shortest paths locally.  For an internal node x:

1. the children's labelings (distances within each child graph G_{x·i}) are
   already available;
2. the auxiliary graph H_x on the bag B_x is formed: an edge (u, v) with cost
   min(c_G(u, v), min_i d_{G_{x·i}}(u, v)); by Lemma 3 the distances in H_x
   equal the distances in G_x restricted to B_x;
3. H_x is broadcast inside G_x (BCT with Õ(width²) words — the dominant cost,
   Õ(τD + τ⁵) per level);
4. every node upgrades its distance set from child-graph distances to
   G_x-distances using the Lemma 4 decomposition through the bag, and learns
   its distances to/from all of B_x.

At the root the labels store exact full-graph distances to B↑(u), which is
what the decoder of Lemma 2 requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Set, Tuple

from repro.congest.message import DEFAULT_WORDS_PER_MESSAGE, payload_size_words
from repro.congest.network import CongestNetwork
from repro.congest.primitives import flood_chunks
from repro.core.config import FrameworkConfig
from repro.core.rounds import CostModel, RoundLedger
from repro.decomposition.tree_decomposition import (
    DecompositionResult,
    TreeDecomposition,
    build_tree_decomposition,
)
from repro.errors import GraphError, LabelingError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter, dijkstra
from repro.labeling.labels import DistanceLabel, DistanceLabeling

NodeId = Hashable
Label = Tuple[int, ...]
INF = math.inf


@dataclass
class DistanceLabelingResult:
    """A distance labeling with its construction cost and provenance.

    When the construction was run with ``measured_broadcast=True``,
    ``measured_broadcast_rounds`` maps each decomposition level to the round
    count actually measured on the simulation engine for that level's BCT
    broadcast (otherwise ``None``: the rounds were charged through the cost
    model).
    """

    labeling: DistanceLabeling
    decomposition: TreeDecomposition
    rounds: int
    ledger: RoundLedger
    width_guess: int
    decomposition_rounds: int
    measured_broadcast_rounds: Optional[Dict[int, int]] = None

    def max_label_entries(self) -> int:
        return self.labeling.max_entries()


def _local_apsp_labels(
    instance: WeightedDiGraph, vertices: FrozenSet[NodeId]
) -> Dict[NodeId, DistanceLabel]:
    """Leaf case: all-pairs shortest paths inside the induced subgraph."""
    sub = instance.subgraph(vertices)
    dist_from: Dict[NodeId, Dict[NodeId, float]] = {
        u: dijkstra(sub, u) for u in vertices
    }
    labels: Dict[NodeId, DistanceLabel] = {}
    for u in vertices:
        lab = DistanceLabel(u)
        for s in vertices:
            lab.set_entry(
                s,
                dist_from[u].get(s, INF),
                dist_from[s].get(u, INF),
            )
        labels[u] = lab
    return labels


def _build_auxiliary_graph(
    instance: WeightedDiGraph,
    bag: FrozenSet[NodeId],
    gx_vertices: FrozenSet[NodeId],
    child_info: List[Tuple[FrozenSet[NodeId], Dict[NodeId, DistanceLabel]]],
) -> WeightedDiGraph:
    """Construct the directed auxiliary graph H_x on the bag B_x (paper §4.2)."""
    h = WeightedDiGraph(bag)
    best: Dict[Tuple[NodeId, NodeId], float] = {}

    def offer(u: NodeId, v: NodeId, w: float) -> None:
        if u == v or w == INF:
            return
        key = (u, v)
        if key not in best or w < best[key]:
            best[key] = w

    # Direct input edges of G_x between bag vertices.
    for u in bag:
        if not instance.has_node(u):
            continue
        for e in instance.out_edges(u):
            if e.head in bag and e.head in gx_vertices and e.tail in gx_vertices:
                offer(e.tail, e.head, e.weight)

    # Distances through the child graphs.
    for child_vertices, child_labels in child_info:
        boundary = [v for v in bag if v in child_vertices]
        for u in boundary:
            lab = child_labels.get(u)
            if lab is None:
                continue
            for v in boundary:
                if v == u:
                    continue
                d = lab.to_dist.get(v, INF)
                offer(u, v, d)

    for (u, v), w in best.items():
        h.add_edge(u, v, weight=w)
    return h


def _broadcast_chunks(dg: WeightedDiGraph) -> List[Tuple]:
    """The BCT broadcast payload of one part: its vertex and edge rows.

    One chunk per vertex plus one per directed edge — the ``|V| + |E|``
    volume the cost model charges for the same broadcast — in a
    deterministic order so measured runs are seed-reproducible.
    """
    chunks: List[Tuple] = [("v", u) for u in sorted(dg.nodes(), key=str)]
    edges = sorted(
        ((e.tail, e.head, e.weight) for u in dg.nodes() for e in dg.out_edges(u)),
        key=lambda t: (str(t[0]), str(t[1]), t[2]),
    )
    chunks.extend(("e", t, h, w) for t, h, w in edges)
    return chunks


def _measured_bct_broadcast(
    comm: Graph,
    vertices: FrozenSet[NodeId],
    chunks: List[Tuple],
    engine: Optional[str] = None,
):
    """Execute one level's H_x broadcast inside G_x on the simulation engine.

    The part's communication graph is the subgraph of the network induced by
    the part's vertices; the broadcast is the pipelined chunk flooding of
    :func:`~repro.congest.primitives.flood_chunks` from the part's minimal
    vertex.  The per-message budget is sized to the largest chunk (hub ids of
    arbitrary node types can exceed the default CONGEST word budget; the
    model cost of a chunk is still O(1) words).
    """
    sub = comm.subgraph(vertices)
    root = min(vertices, key=str)
    total = len(chunks)
    budget = max(
        DEFAULT_WORDS_PER_MESSAGE,
        max((payload_size_words((k, total, c)) for k, c in enumerate(chunks)), default=1),
    )
    network = CongestNetwork(sub, words_per_message=budget)
    _, sim = flood_chunks(network, root, chunks, engine=engine)
    return sim


def build_distance_labeling(
    instance: WeightedDiGraph,
    decomposition: Optional[DecompositionResult] = None,
    config: Optional[FrameworkConfig] = None,
    cost_model: Optional[CostModel] = None,
    measured_broadcast: bool = False,
    broadcast_engine: Optional[str] = None,
) -> DistanceLabelingResult:
    """Construct the exact distance labeling of a weighted directed instance.

    Parameters
    ----------
    instance:
        The weighted directed (multi)graph G.  Its underlying undirected
        graph must be connected.
    decomposition:
        Optional pre-built decomposition of ⟦G⟧ (with its round cost); when
        omitted it is built here and its rounds are included in the result.
    config / cost_model:
        Framework configuration and round-cost model.
    measured_broadcast:
        When ``True``, the per-level BCT broadcast of H_x inside G_x — the
        dominant cost of the construction — is actually executed as a
        pipelined chunk flood on the CONGEST engine (the level's largest
        part, whose cost bounds the level) and the *measured* round counts
        are charged to the ledger instead of the cost model's
        ``broadcast_multi`` estimate.  The local-update SNC term stays
        modeled.
    broadcast_engine:
        Engine tier for the measured broadcasts (``"fast"``, ``"legacy"``,
        ``"vectorized"`` or ``"sharded"`` — the generic chunk flood runs as
        :class:`~repro.congest.kernels.FloodingKernel` on the kernel tiers,
        with identical measured rounds).  Default is the network default.

    Returns
    -------
    DistanceLabelingResult
        Exact labels for every vertex; ``labeling.distance(u, v)`` equals
        d_G(u, v) for all pairs.
    """
    config = config or FrameworkConfig()
    comm = instance.underlying_graph()
    if comm.num_nodes() == 0:
        raise GraphError("cannot label an empty graph")
    if not comm.is_connected():
        raise GraphError("distance labeling requires a connected communication graph")

    if cost_model is None:
        cost_model = CostModel(
            n=comm.num_nodes(),
            diameter=diameter(comm, exact=comm.num_nodes() <= 600),
            log_factor_exponent=config.cost_log_exponent,
            constant=config.cost_constant,
        )
    if decomposition is None:
        decomposition = build_tree_decomposition(comm, config=config, cost_model=cost_model)
    td = decomposition.decomposition
    width_guess = max(1, decomposition.width_guess)

    ledger = RoundLedger()
    ledger.merge(decomposition.ledger)

    # Bottom-up sweep over the decomposition tree.
    labels_by_node: Dict[Label, Dict[NodeId, DistanceLabel]] = {}
    order = sorted(td.labels(), key=len, reverse=True)
    # Per-level maximum broadcast volume (in words), charged once per level as
    # BCT(h) — the parts of one level are processed in parallel.  When the
    # broadcast is measured on the engine, the maximal part's vertex set and
    # payload graph are kept; the chunk list is built once per level in the
    # charge loop (only the final maximum survives the sweep).
    level_volume: Dict[int, int] = {}
    level_payload: Dict[int, Tuple[FrozenSet[NodeId], WeightedDiGraph]] = {}

    for label in order:
        node = td.nodes[label]
        if node.is_leaf or not node.children:
            labels_by_node[label] = _local_apsp_labels(instance, node.graph_vertices)
            sub = instance.subgraph(node.graph_vertices)
            volume = sub.num_edges() + sub.num_nodes()
            depth = len(label)
            if volume > level_volume.get(depth, 0):
                level_volume[depth] = volume
                if measured_broadcast:
                    level_payload[depth] = (node.graph_vertices, sub)
            continue

        child_info: List[Tuple[FrozenSet[NodeId], Dict[NodeId, DistanceLabel]]] = []
        for child in node.children:
            child_node = td.nodes[child]
            child_info.append((child_node.graph_vertices, labels_by_node[child]))

        bag = node.bag
        gx_vertices = node.graph_vertices
        aux = _build_auxiliary_graph(instance, bag, gx_vertices, child_info)
        # All-pairs shortest paths on H_x = distances of G_x restricted to B_x
        # (Lemma 3).
        apsp_to: Dict[NodeId, Dict[NodeId, float]] = {u: dijkstra(aux, u) for u in bag}

        depth = len(label)
        volume = aux.num_edges() + aux.num_nodes()
        if volume > level_volume.get(depth, 0):
            level_volume[depth] = volume
            if measured_broadcast:
                level_payload[depth] = (node.graph_vertices, aux)

        new_labels: Dict[NodeId, DistanceLabel] = {}
        # Bag vertices: their subtree hub set is exactly B_x (their canonical
        # node is at this depth or above), with exact G_x distances from H_x.
        for u in bag:
            lab = DistanceLabel(u)
            du = apsp_to[u]
            for s in bag:
                lab.set_entry(s, du.get(s, INF), apsp_to[s].get(u, INF))
            new_labels[u] = lab

        # Non-bag vertices: upgrade the child label (Lemma 4) and extend it
        # with distances to/from all of B_x.
        for child_vertices, child_labels in child_info:
            boundary = [v for v in bag if v in child_vertices]
            for u in child_vertices:
                if u in bag:
                    continue
                old = child_labels[u]
                lab = DistanceLabel(u)
                # New hub entries: every s ∈ B_x, reached through the boundary.
                to_boundary = [(s2, old.to_dist.get(s2, INF)) for s2 in boundary]
                from_boundary = [(s2, old.from_dist.get(s2, INF)) for s2 in boundary]
                for s in bag:
                    best_to = INF
                    best_from = INF
                    for s2, d_u_s2 in to_boundary:
                        if d_u_s2 == INF:
                            continue
                        d_s2_s = apsp_to[s2].get(s, INF)
                        if d_s2_s == INF:
                            continue
                        cand = d_u_s2 + d_s2_s
                        if cand < best_to:
                            best_to = cand
                    ds = apsp_to[s]
                    for s2, d_s2_u in from_boundary:
                        if d_s2_u == INF:
                            continue
                        d_s_s2 = ds.get(s2, INF)
                        if d_s_s2 == INF:
                            continue
                        cand = d_s_s2 + d_s2_u
                        if cand < best_from:
                            best_from = cand
                    lab.set_entry(s, best_to, best_from)
                # Upgraded deep entries: hubs of the child label not in B_x.
                for v in old.to_dist:
                    if v in bag:
                        continue
                    v_label = child_labels.get(v)
                    best_to = old.to_dist.get(v, INF)
                    best_from = old.from_dist.get(v, INF)
                    if v_label is not None:
                        for s2 in boundary:
                            d_u_s2 = lab.to_dist.get(s2, INF)
                            d_s2_v = v_label.from_dist.get(s2, INF)
                            if d_u_s2 != INF and d_s2_v != INF:
                                cand = d_u_s2 + d_s2_v
                                if cand < best_to:
                                    best_to = cand
                            d_v_s2 = v_label.to_dist.get(s2, INF)
                            d_s2_u = lab.from_dist.get(s2, INF)
                            if d_v_s2 != INF and d_s2_u != INF:
                                cand = d_v_s2 + d_s2_u
                                if cand < best_from:
                                    best_from = cand
                    lab.set_entry(v, best_to, best_from)
                new_labels[u] = lab

        labels_by_node[label] = new_labels
        # Children labelings are no longer needed.
        for child in node.children:
            labels_by_node.pop(child, None)

    # Charge the per-level broadcast cost (BCT(h), Corollary 3): either the
    # cost-model estimate, or — with ``measured_broadcast`` — the rounds the
    # level's maximal H_x broadcast actually takes on the simulation engine.
    measured_rounds: Optional[Dict[int, int]] = {} if measured_broadcast else None
    for depth in sorted(level_volume):
        if measured_broadcast:
            vertices, payload_graph = level_payload[depth]
            chunks = _broadcast_chunks(payload_graph)
            sim = _measured_bct_broadcast(comm, vertices, chunks, engine=broadcast_engine)
            measured_rounds[depth] = sim.rounds
            ledger.charge(
                f"distance_labeling/level_{depth}/broadcast[measured]",
                sim.rounds,
            )
        else:
            ledger.charge(
                f"distance_labeling/level_{depth}/broadcast",
                cost_model.broadcast_multi(width_guess, level_volume[depth]),
            )
        ledger.charge(
            f"distance_labeling/level_{depth}/local_update",
            cost_model.snc(),
        )

    root_labels = labels_by_node.get((), {})
    missing = set(str(v) for v in instance.nodes()) - set(str(v) for v in root_labels)
    if missing:
        raise LabelingError(
            f"distance labeling construction missed {len(missing)} vertices"
        )
    labeling = DistanceLabeling(root_labels)
    return DistanceLabelingResult(
        labeling=labeling,
        decomposition=td,
        rounds=ledger.total(),
        ledger=ledger,
        width_guess=width_guess,
        decomposition_rounds=decomposition.rounds,
        measured_broadcast_rounds=measured_rounds,
    )
