"""Subgraph operations (Lemma 8) and their scheduled multi-instance variants.

:class:`SubgraphOperations` bundles the toolbox the paper's algorithms are
written in: per-part rooted spanning trees (RST), subtree aggregation (STA),
leader election (SLE), connected-component detection (CCD), broadcast (BCT)
and minimum vertex cuts (MVC), plus the scheduled BCT(h) and MVC(h, t) of
Corollaries 2–3.  Each call performs the logical computation on the base
graph and charges the corresponding closed-form round cost to a shared
:class:`~repro.core.rounds.RoundLedger`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.rounds import CostModel, RoundLedger
from repro.decomposition.vertex_cut import minimum_vertex_cut
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties import tree_subtree_sizes
from repro.shortcuts.partition import SubgraphCollection

NodeId = Hashable


class SubgraphOperations:
    """The Lemma-8 operation toolbox over a collection of subgraphs.

    Parameters
    ----------
    collection:
        The (near-)disjoint collection of connected subgraphs to operate on.
    width:
        The treewidth parameter τ (or the current width guess t) used by the
        round-cost formulas.
    cost_model / ledger:
        Round accounting; either may be ``None`` to disable accounting.
    """

    def __init__(
        self,
        collection: SubgraphCollection,
        width: int,
        cost_model: Optional[CostModel] = None,
        ledger: Optional[RoundLedger] = None,
    ) -> None:
        self.collection = collection
        self.width = max(1, width)
        self.cost_model = cost_model
        self.ledger = ledger if ledger is not None else RoundLedger()

    # ------------------------------------------------------------------ #
    def _charge(self, phase: str, rounds: int) -> None:
        if self.cost_model is not None:
            self.ledger.charge(phase, rounds)

    def _op_cost(self) -> int:
        return self.cost_model.subgraph_operation(self.width) if self.cost_model else 0

    # ------------------------------------------------------------------ #
    # RST: rooted spanning tree per part
    # ------------------------------------------------------------------ #
    def rooted_spanning_trees(
        self, roots: Mapping[int, NodeId]
    ) -> Dict[int, Dict[NodeId, Optional[NodeId]]]:
        """RST: a BFS spanning tree (child → parent map) per part, rooted as requested."""
        out: Dict[int, Dict[NodeId, Optional[NodeId]]] = {}
        for idx in range(len(self.collection)):
            root = roots.get(idx)
            sub = self.collection.subgraph(idx)
            if root is None:
                root = min(sub.nodes(), key=str)
            if not sub.has_node(root):
                raise GraphError(f"root {root!r} not in part {idx}")
            out[idx] = sub.spanning_tree(root=root)
        self._charge("rst", self._op_cost())
        return out

    # ------------------------------------------------------------------ #
    # STA: subtree aggregation
    # ------------------------------------------------------------------ #
    def subtree_aggregate(
        self,
        trees: Mapping[int, Dict[NodeId, Optional[NodeId]]],
        values: Mapping[NodeId, int],
    ) -> Dict[int, Dict[NodeId, int]]:
        """STA: for every tree node, the sum of ``values`` over its subtree."""
        out: Dict[int, Dict[NodeId, int]] = {}
        for idx, parent in trees.items():
            weight = {v: values.get(v, 0) for v in parent}
            out[idx] = tree_subtree_sizes(parent, weight)
        self._charge("sta", self._op_cost())
        return out

    # ------------------------------------------------------------------ #
    # SLE: leader election per part
    # ------------------------------------------------------------------ #
    def elect_leaders(
        self, candidates: Optional[Mapping[NodeId, bool]] = None
    ) -> Dict[int, NodeId]:
        """SLE: elect the smallest candidate (by string order) in every part."""
        out: Dict[int, NodeId] = {}
        for idx in range(len(self.collection)):
            part = self.collection.part(idx)
            eligible = [
                v for v in part if candidates is None or candidates.get(v, False)
            ]
            if not eligible:
                raise GraphError(f"part {idx} has no leader candidates")
            out[idx] = min(eligible, key=str)
        self._charge("sle", self._op_cost())
        return out

    # ------------------------------------------------------------------ #
    # CCD: connected component detection of a sub-subgraph
    # ------------------------------------------------------------------ #
    def connected_components(
        self, removed: Optional[Set[NodeId]] = None
    ) -> Dict[int, List[Set[NodeId]]]:
        """CCD: connected components of each part after removing ``removed`` vertices."""
        removed = removed or set()
        out: Dict[int, List[Set[NodeId]]] = {}
        for idx in range(len(self.collection)):
            part = set(self.collection.part(idx)) - removed
            if not part:
                out[idx] = []
                continue
            sub = self.collection.base.subgraph(part)
            out[idx] = sub.connected_components()
        self._charge("ccd", self._op_cost())
        return out

    # ------------------------------------------------------------------ #
    # BCT / BCT(h): broadcast within parts
    # ------------------------------------------------------------------ #
    def broadcast(self, messages: Mapping[int, Sequence[Any]]) -> Dict[int, List[Any]]:
        """BCT(h): every part broadcasts its list of messages to all its nodes.

        ``h`` is the maximum number of messages per part; the cost follows
        Corollary 3 (Õ(τD + hτ)).  The return value is what every node of the
        part ends up knowing (the full message list).
        """
        h = max((len(msgs) for msgs in messages.values()), default=1)
        out = {idx: list(msgs) for idx, msgs in messages.items()}
        if self.cost_model is not None:
            self._charge("bct", self.cost_model.broadcast_multi(self.width, h))
        return out

    # ------------------------------------------------------------------ #
    # MVC / MVC(h, t): minimum vertex cuts
    # ------------------------------------------------------------------ #
    def minimum_vertex_cuts(
        self,
        requests: Sequence[Tuple[int, Set[NodeId], Set[NodeId]]],
        limit: int,
    ) -> List[Optional[Set[NodeId]]]:
        """MVC(h, t): solve ``h`` vertex-cut instances, one per request.

        Each request is ``(part index, U1, U2)``; the cut is computed inside
        the part's induced subgraph.  Cuts larger than ``limit`` (or infinite
        by definition) yield ``None``, mirroring the "-1" output of Lemma 8.
        Cost follows Corollary 2 (Õ(tτD + htτ)).
        """
        results: List[Optional[Set[NodeId]]] = []
        for part_idx, side_a, side_b in requests:
            sub = self.collection.subgraph(part_idx)
            a = set(side_a) & set(sub.nodes())
            b = set(side_b) & set(sub.nodes())
            if not a or not b:
                results.append(None)
                continue
            results.append(minimum_vertex_cut(sub, a, b, limit=limit))
        if self.cost_model is not None:
            h = max(1, len(requests))
            self._charge(
                "mvc", self.cost_model.min_vertex_cut_multi(self.width, h, limit)
            )
        return results
