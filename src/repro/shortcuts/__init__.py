"""Part-wise aggregation and subgraph operations (paper §2.3, Appendix A).

The low-congestion shortcut framework provides, for bounded-treewidth
communication graphs, an Õ(τD)-round *part-wise aggregation* (PA) primitive
over any collection of vertex-disjoint connected subgraphs, with Õ(τ)
congestion per edge (Lemma 9).  On top of PA the paper uses a standard toolbox
of subgraph operations (Lemma 8): rooted spanning trees (RST), subtree
aggregation (STA), leader election (SLE), connected-component detection (CCD),
broadcast (BCT) and minimum vertex cuts (MVC), plus scheduled multi-instance
versions BCT(h) and MVC(h, t) (Corollaries 2–3).

This package implements the operations at the *logical* level (they compute
exactly what the distributed primitives would output) and charges their round
cost through :class:`~repro.core.rounds.CostModel`, as described in DESIGN.md.
"""

from repro.shortcuts.partition import SubgraphCollection
from repro.shortcuts.partwise import partwise_aggregate
from repro.shortcuts.operations import SubgraphOperations

__all__ = ["SubgraphCollection", "partwise_aggregate", "SubgraphOperations"]
