"""Part-wise aggregation (PA).

Given a collection H = {H_1, ..., H_N} of connected vertex-disjoint (or
near-disjoint, Appendix A.1) subgraphs of the communication graph, and a value
x_{v,i} at every node v of every part H_i, part-wise aggregation makes every
node of H_i learn ⨁_{v ∈ V(H_i)} x_{v,i} for an associative operator ⊕.

For bounded-treewidth graphs PA runs in Õ(τD) rounds with Õ(τ) congestion
(Lemma 9 / [HIZ16, HHW18]); for near-disjoint collections the one-round
pre/post-processing of Lemma 7 reduces to the disjoint case.  The functions
here perform the aggregation logically and charge rounds accordingly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Mapping, Optional, Tuple

from repro.core.rounds import CostModel, RoundLedger
from repro.errors import GraphError
from repro.shortcuts.partition import SubgraphCollection

NodeId = Hashable


def partwise_aggregate(
    collection: SubgraphCollection,
    values: Mapping[NodeId, Any],
    combine: Callable[[Any, Any], Any],
    *,
    identity: Any = None,
    width: int = 1,
    cost_model: Optional[CostModel] = None,
    ledger: Optional[RoundLedger] = None,
    phase: str = "partwise_aggregation",
) -> Dict[int, Any]:
    """Aggregate ``values`` within every part of ``collection``.

    Parameters
    ----------
    collection:
        The parts (must be a disjoint or near-disjoint collection; an
        ``overlapping`` collection raises :class:`GraphError`, because PA is
        not defined for it — the higher layers must fall back to the
        generalized broadcast of Appendix A.1).
    values:
        Per-node input values; nodes missing from the mapping contribute the
        ``identity`` element (or are skipped when ``identity`` is ``None``).
    combine:
        Associative binary operator ⊕.
    width:
        The treewidth/width parameter used for the round charge (Lemma 7/9:
        Õ(τD) rounds regardless of the number of parts).
    cost_model / ledger / phase:
        When both a cost model and a ledger are supplied, the PA round cost is
        charged to ``phase``.

    Returns
    -------
    dict
        ``part index -> aggregate value`` (parts with no contributing values
        map to ``identity``).
    """
    kind = collection.classification()
    if kind == "overlapping":
        raise GraphError(
            "part-wise aggregation requires a vertex-disjoint or near-disjoint collection"
        )
    result: Dict[int, Any] = {}
    for idx in range(len(collection)):
        acc = identity
        for v in collection.part(idx):
            if v not in values:
                continue
            acc = values[v] if acc is None else combine(acc, values[v])
        result[idx] = acc
    if cost_model is not None and ledger is not None:
        ledger.charge(phase, cost_model.partwise_aggregation(width))
        if kind == "near_disjoint":
            # Lemma 7 pre/post-processing: one extra SNC round each way.
            ledger.charge(phase + "/near_disjoint_overhead", 2 * cost_model.snc())
    return result


def partwise_minimum(
    collection: SubgraphCollection,
    values: Mapping[NodeId, float],
    **kwargs,
) -> Dict[int, Optional[float]]:
    """PA specialisation with ⊕ = min (used for leader election and size counts)."""
    return partwise_aggregate(collection, values, min, **kwargs)


def partwise_sum(
    collection: SubgraphCollection,
    values: Mapping[NodeId, float],
    **kwargs,
) -> Dict[int, Optional[float]]:
    """PA specialisation with ⊕ = + (used for μ-size counting in ``Sep``)."""
    return partwise_aggregate(collection, values, lambda a, b: a + b, **kwargs)
