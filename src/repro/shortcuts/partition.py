"""Collections of connected subgraphs (the parts of part-wise aggregation).

The paper distinguishes two notions:

* a **vertex-disjoint collection**: connected subgraphs sharing no vertices
  (the standard PA setting of §2.3);
* a **near-disjoint collection** (Appendix A.1): subgraphs that may share
  vertices, provided (i) every edge has at least one endpoint in at most one
  subgraph, and (ii) the private part of every subgraph (vertices belonging to
  it alone) is connected.  The split trees of ``Sep`` (which share only their
  roots) and the graphs {G_x} of one decomposition level are near-disjoint.

:class:`SubgraphCollection` stores the parts, classifies the collection and
verifies the definitions — the higher layers use it both to drive logical
computation and to decide which cost formula applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph

NodeId = Hashable


class SubgraphCollection:
    """A collection H = {H_1, ..., H_N} of connected subgraphs of a base graph.

    Parts are given as vertex sets; the subgraph H_i is the base graph's
    induced subgraph on the i-th set.
    """

    def __init__(self, base: Graph, parts: Sequence[Iterable[NodeId]]) -> None:
        self.base = base
        self.parts: List[FrozenSet[NodeId]] = []
        for part in parts:
            fs = frozenset(part)
            if not fs:
                raise GraphError("empty parts are not allowed in a subgraph collection")
            missing = fs - set(base.nodes())
            if missing:
                raise GraphError(f"part contains vertices outside the base graph: {sorted(map(str, missing))[:3]}")
            self.parts.append(fs)
        self._membership: Dict[NodeId, List[int]] = {}
        for idx, part in enumerate(self.parts):
            for v in part:
                self._membership.setdefault(v, []).append(idx)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.parts)

    def part(self, idx: int) -> FrozenSet[NodeId]:
        return self.parts[idx]

    def subgraph(self, idx: int) -> Graph:
        """The induced subgraph of part ``idx``."""
        return self.base.subgraph(self.parts[idx])

    def parts_of(self, v: NodeId) -> List[int]:
        """Indices of all parts containing ``v``."""
        return list(self._membership.get(v, ()))

    def shared_vertices(self) -> Set[NodeId]:
        """Vertices belonging to two or more parts."""
        return {v for v, idxs in self._membership.items() if len(idxs) > 1}

    def private_vertices(self, idx: int) -> Set[NodeId]:
        """V'(H_i): vertices of part ``idx`` belonging to no other part."""
        return {v for v in self.parts[idx] if len(self._membership[v]) == 1}

    # ------------------------------------------------------------------ #
    def is_vertex_disjoint(self) -> bool:
        """True iff no vertex belongs to two parts."""
        return not self.shared_vertices()

    def all_parts_connected(self) -> bool:
        """True iff every part induces a connected subgraph."""
        return all(self.subgraph(i).is_connected() for i in range(len(self.parts)))

    def is_near_disjoint(self) -> bool:
        """Check the near-disjoint collection definition of Appendix A.1.

        (1) For every edge of the base graph, at least one endpoint belongs to
            at most one part.
        (2) For every part, the subgraph induced by its private vertices is
            connected (empty private parts violate the definition, since PA
            could not be run on them).
        """
        if not self.all_parts_connected():
            return False
        shared = self.shared_vertices()
        for u, v in self.base.edges():
            if u in shared and v in shared:
                # Both endpoints belong to 2+ parts: allowed only if the edge
                # is internal to no pair of distinct parts simultaneously;
                # the paper's condition is simply that one endpoint is in at
                # most one subgraph, so this edge violates it.
                return False
        for idx in range(len(self.parts)):
            private = self.private_vertices(idx)
            if not private:
                return False
            if not self.base.subgraph(private).is_connected():
                return False
        return True

    def classification(self) -> str:
        """Return ``"disjoint"``, ``"near_disjoint"`` or ``"overlapping"``."""
        if self.is_vertex_disjoint():
            return "disjoint"
        if self.is_near_disjoint():
            return "near_disjoint"
        return "overlapping"

    def max_part_diameter(self) -> int:
        """Maximum unweighted diameter over all parts (used for dilation accounting)."""
        from repro.graphs.properties import diameter as _diam

        best = 0
        for idx in range(len(self.parts)):
            sub = self.subgraph(idx)
            if sub.num_nodes() <= 1:
                continue
            if sub.is_connected():
                best = max(best, _diam(sub, exact=sub.num_nodes() <= 300))
        return best
