"""Optional compiled backend for the numpy tiers' inner loops.

The vectorized/sharded tiers spend their time in a handful of small, shape-
stable array passes: the segmented min/argmin relaxation of
:class:`~repro.congest.bellman_ford.BellmanFordKernel`, the reverse-arc
delivery gather of :func:`~repro.congest.engine.run_vectorized`, and the
packed boundary-exchange scatter of :mod:`repro.congest.transport`.  Each of
those is exposed here as a named *op* with two interchangeable
implementations:

``"python"``
    The plain numpy reference path — the exact expressions the call sites
    used before this module existed, just moved behind a function boundary.

``"numba"``
    An ``@njit``-compiled single-pass twin, built lazily the first time a
    numba backend is active.  Bit-for-bit identical to the python path: the
    compiled loops perform the same comparisons and exact min/copy
    operations in the same order (no float reassociation), and the one sort
    involved permutes a duplicate-free key array, so its result is unique.

Backend selection (``select_backend`` / ``CongestNetwork.run(accel=...)``):

* ``"auto"`` (default) — numba when importable, else python, silently;
* ``"numba"`` — numba required; when it is not importable the run proceeds
  on the python path after a single
  :class:`~repro.congest.engine.EngineFallbackWarning` naming both the
  requested and the selected backend (the same one-shot discipline the
  engine's tier-fallback ladder follows, proven by the no-numba CI job);
* ``"python"`` — the reference path, unconditionally.

The module imports neither numpy nor numba at import time: numpy is pulled
in the first time an op is fetched (ops are only reachable from the numpy
tiers), numba only when a numba backend is actually active.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional

from repro.errors import SimulationError

#: Backend names accepted by :func:`select_backend`.
BACKENDS = ("auto", "python", "numba")

_requested: str = "auto"
_warned: set = set()
_numba_checked = False
_numba_ok = False
_python_ops: Optional[Dict[str, Callable]] = None
_numba_ops: Optional[Dict[str, Callable]] = None


def numba_available() -> bool:
    """Whether the numba JIT is importable in this process (cached)."""
    global _numba_checked, _numba_ok
    if not _numba_checked:
        try:
            import numba  # noqa: F401

            _numba_ok = True
        except Exception:
            _numba_ok = False
        _numba_checked = True
    return _numba_ok


def accel_fallback_message(requested: str, selected: str, reason: str) -> str:
    """The accel fallback warning text — both backends named, like the
    engine ladder's :func:`~repro.congest.engine.fallback_message`."""
    return (
        f"accel={requested!r} unavailable ({reason}); "
        f"falling back to accel={selected!r}"
    )


def select_backend(requested: Optional[str] = None) -> str:
    """Activate a backend request and return the backend that will serve it.

    ``None`` means ``"auto"``.  Requesting ``"numba"`` without numba
    installed emits the one-shot fallback warning and selects ``"python"``;
    an unknown name raises :class:`~repro.errors.SimulationError`.
    """
    global _requested
    name = "auto" if requested is None else requested
    if name not in BACKENDS:
        raise SimulationError(
            f"unknown accel backend {name!r}; expected one of {BACKENDS}"
        )
    _requested = name
    return active_backend()


def active_backend() -> str:
    """The backend currently serving ops: ``"numba"`` or ``"python"``."""
    if _requested == "python":
        return "python"
    if numba_available():
        return "numba"
    if _requested == "numba":
        _warn_once("numba is not importable")
    return "python"


def _warn_once(reason: str) -> None:
    key = ("numba", reason)
    if key in _warned:
        return
    _warned.add(key)
    from repro.congest.engine import EngineFallbackWarning

    warnings.warn(
        accel_fallback_message("numba", "python", reason),
        EngineFallbackWarning,
        stacklevel=4,
    )


def _reset_for_tests() -> None:
    """Restore the default request and re-arm the one-shot warning."""
    global _requested, _warned
    _requested = "auto"
    _warned = set()


def op(name: str) -> Callable:
    """Fetch the active implementation of a named op.

    Call sites fetch once per round (or once per run) and call the returned
    function directly; the lookup itself is a couple of dict probes.
    """
    global _python_ops, _numba_ops
    if active_backend() == "numba":
        if _numba_ops is None:
            _numba_ops = _build_numba_ops()
        return _numba_ops[name]
    if _python_ops is None:
        _python_ops = _build_python_ops()
    return _python_ops[name]


# --------------------------------------------------------------------------- #
# The ops.  Signatures are shared by both backends:
#
# bf_segmented_min_parent(vals, starts, senders, sentinel)
#     -> (seg_min, seg_parent): per-segment min of ``vals`` and, among the
#     positions attaining it, the smallest ``senders`` entry (``sentinel``
#     never wins — every segment is non-empty).
#
# deliver_order(rev, indices, pending_arcs)
#     -> (arcs, senders, perm): the pending reverse arcs sorted ascending,
#     their senders, and ``pending_arcs`` permuted into the same order.
#
# boundary_hits(mask, src_idx, slots_tab, val_idx_tab, hitbuf)
#     -> (slots, val_idx): for every position t with ``mask[src_idx[t]]``
#     set, collect ``slots_tab[t]`` / ``val_idx_tab[t]`` (in t order) and
#     mark ``hitbuf[slot] = True``.
#
# label_query_batch(offsets, hubs, to_hub, from_hub, u_idx, v_idx)
#     -> float64 out[len(u_idx)]: batched distance decode over a
#     CSR-packed labeling (see repro.labeling.packed).  Pair i's answer is
#     min over hubs s common to segments u_idx[i] and v_idx[i] of
#     ``to_hub[u entry of s] + from_hub[v entry of s]`` (inf when the
#     segments share no hub), with 0.0 forced for u_idx[i] == v_idx[i].
#     Segments are sorted by hub id; both twins take exact minima of the
#     same sums, so results are bit-for-bit identical.
# --------------------------------------------------------------------------- #
def _build_python_ops() -> Dict[str, Callable]:
    import numpy as np

    def bf_segmented_min_parent(vals, starts, senders, sentinel):
        seg_min = np.minimum.reduceat(vals, starts)
        counts = np.diff(np.r_[starts, vals.shape[0]])
        at_min = vals == np.repeat(seg_min, counts)
        sender_key = np.where(at_min, senders, sentinel)
        seg_parent = np.minimum.reduceat(sender_key, starts)
        return seg_min, seg_parent

    def deliver_order(rev, indices, pending_arcs):
        slots = rev[pending_arcs]
        order = np.argsort(slots)
        arcs = slots[order]
        return arcs, indices[arcs], pending_arcs[order]

    def boundary_hits(mask, src_idx, slots_tab, val_idx_tab, hitbuf):
        got = mask[src_idx]
        slots = slots_tab[got]
        hitbuf[slots] = True
        return slots, val_idx_tab[got]

    def label_query_batch(offsets, hubs, to_hub, from_hub, u_idx, v_idx):
        num_pairs = u_idx.shape[0]
        out = np.full(num_pairs, np.inf, dtype=np.float64)
        if num_pairs == 0:
            return out
        u_start = offsets[u_idx]
        u_cnt = offsets[u_idx + 1] - u_start
        v_start = offsets[v_idx]
        v_cnt = offsets[v_idx + 1] - v_start
        total_u = int(u_cnt.sum())
        total_v = int(v_cnt.sum())
        if total_u and total_v:
            # Flat CSR gather: position arrays into `hubs` for every entry
            # of every queried segment, pair-major.
            a_pair = np.repeat(np.arange(num_pairs, dtype=np.int64), u_cnt)
            a_pos = (
                np.arange(total_u, dtype=np.int64)
                - np.repeat(np.cumsum(u_cnt) - u_cnt, u_cnt)
                + np.repeat(u_start, u_cnt)
            )
            b_pos = (
                np.arange(total_v, dtype=np.int64)
                - np.repeat(np.cumsum(v_cnt) - v_cnt, v_cnt)
                + np.repeat(v_start, v_cnt)
            )
            a_hub = hubs[a_pos]
            b_hub = hubs[b_pos]
            # Composite keys: pair-major + hub-sorted segments make the
            # v-side key array globally sorted, so one searchsorted matches
            # every u-side entry against its pair's v-segment.
            stride = np.int64(max(int(a_hub.max()), int(b_hub.max())) + 1)
            a_key = a_pair * stride + a_hub
            b_key = np.repeat(
                np.arange(num_pairs, dtype=np.int64), v_cnt
            ) * stride + b_hub
            loc = np.searchsorted(b_key, a_key)
            loc_c = np.minimum(loc, total_v - 1)
            hit = b_key[loc_c] == a_key
            sums = to_hub[a_pos[hit]] + from_hub[b_pos[loc_c[hit]]]
            if sums.shape[0]:
                pairs_hit = a_pair[hit]
                run_starts = np.flatnonzero(
                    np.r_[True, pairs_hit[1:] != pairs_hit[:-1]]
                )
                out[pairs_hit[run_starts]] = np.minimum.reduceat(
                    sums, run_starts
                )
        out[u_idx == v_idx] = 0.0
        return out

    return {
        "bf_segmented_min_parent": bf_segmented_min_parent,
        "deliver_order": deliver_order,
        "boundary_hits": boundary_hits,
        "label_query_batch": label_query_batch,
    }


def _build_numba_ops() -> Dict[str, Callable]:  # pragma: no cover - needs numba
    import numba
    import numpy as np

    njit = numba.njit

    @njit(cache=True)
    def bf_segmented_min_parent(vals, starts, senders, sentinel):
        m = starts.shape[0]
        total = vals.shape[0]
        seg_min = np.empty(m, vals.dtype)
        seg_parent = np.empty(m, senders.dtype)
        for s in range(m):
            lo = starts[s]
            hi = starts[s + 1] if s + 1 < m else total
            best = vals[lo]
            bestp = senders[lo]
            for k in range(lo + 1, hi):
                v = vals[k]
                if v < best:
                    best = v
                    bestp = senders[k]
                elif v == best and senders[k] < bestp:
                    bestp = senders[k]
            seg_min[s] = best
            seg_parent[s] = bestp
        return seg_min, seg_parent

    @njit(cache=True)
    def deliver_order(rev, indices, pending_arcs):
        k = pending_arcs.shape[0]
        slots = np.empty(k, pending_arcs.dtype)
        for t in range(k):
            slots[t] = rev[pending_arcs[t]]
        order = np.argsort(slots)  # keys are distinct: order is unique
        arcs = np.empty(k, pending_arcs.dtype)
        senders = np.empty(k, pending_arcs.dtype)
        perm = np.empty(k, pending_arcs.dtype)
        for t in range(k):
            o = order[t]
            a = slots[o]
            arcs[t] = a
            senders[t] = indices[a]
            perm[t] = pending_arcs[o]
        return arcs, senders, perm

    @njit(cache=True)
    def boundary_hits(mask, src_idx, slots_tab, val_idx_tab, hitbuf):
        k = src_idx.shape[0]
        cnt = 0
        for t in range(k):
            if mask[src_idx[t]]:
                cnt += 1
        slots = np.empty(cnt, slots_tab.dtype)
        val_idx = np.empty(cnt, val_idx_tab.dtype)
        w = 0
        for t in range(k):
            if mask[src_idx[t]]:
                s = slots_tab[t]
                slots[w] = s
                val_idx[w] = val_idx_tab[t]
                hitbuf[s] = True
                w += 1
        return slots, val_idx

    @njit(cache=True)
    def label_query_batch(offsets, hubs, to_hub, from_hub, u_idx, v_idx):
        num_pairs = u_idx.shape[0]
        out = np.empty(num_pairs, np.float64)
        for i in range(num_pairs):
            ui = u_idx[i]
            vi = v_idx[i]
            if ui == vi:
                out[i] = 0.0
                continue
            a = offsets[ui]
            a_hi = offsets[ui + 1]
            b = offsets[vi]
            b_hi = offsets[vi + 1]
            best = np.inf
            while a < a_hi and b < b_hi:
                ha = hubs[a]
                hb = hubs[b]
                if ha == hb:
                    total = to_hub[a] + from_hub[b]
                    if total < best:
                        best = total
                    a += 1
                    b += 1
                elif ha < hb:
                    a += 1
                else:
                    b += 1
            out[i] = best
        return out

    return {
        "bf_segmented_min_parent": bf_segmented_min_parent,
        "deliver_order": deliver_order,
        "boundary_hits": boundary_hits,
        "label_query_batch": label_query_batch,
    }
