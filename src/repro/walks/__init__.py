"""Stateful walk constraints and constrained distance labeling (paper §5).

A *stateful walk constraint* C is a set of walks recognised by a per-edge
finite-state transition system (Q, M, δ): the state of a walk evolves edge by
edge, the special state ▽ marks the empty walk and ⊥ is an absorbing reject
state.  Shortest constrained walks reduce to ordinary shortest paths in the
product graph G_C on vertex set V(G) × Q (Lemma 5), so the distance labeling
machinery of §4 solves the constrained problem at an overhead polynomial in
|Q| and the edge multiplicity (Theorem 3).

* :mod:`~repro.walks.constraints` — the constraint interface plus the paper's
  two worked examples (c-colored walks and count-c walks) and the
  matching-specific alternating-walk constraint.
* :mod:`~repro.walks.product` — construction of the product graph G_C and the
  lifting of tree decompositions from G to G_C.
* :mod:`~repro.walks.cdl` — constrained distance labeling CDL(C) and shortest
  constrained walk queries (Theorem 3, Corollary 1).
"""

from repro.walks.constraints import (
    StatefulWalkConstraint,
    INITIAL_STATE,
    REJECT_STATE,
    ColoredWalkConstraint,
    CountWalkConstraint,
    AlternatingWalkConstraint,
    walk_state,
    is_walk_in_constraint,
)
from repro.walks.product import build_product_graph, ProductGraph
from repro.walks.cdl import (
    build_constrained_labeling,
    ConstrainedDistanceLabeling,
    ConstrainedLabelingResult,
    shortest_constrained_walk_length,
)

__all__ = [
    "StatefulWalkConstraint",
    "INITIAL_STATE",
    "REJECT_STATE",
    "ColoredWalkConstraint",
    "CountWalkConstraint",
    "AlternatingWalkConstraint",
    "walk_state",
    "is_walk_in_constraint",
    "build_product_graph",
    "ProductGraph",
    "build_constrained_labeling",
    "ConstrainedDistanceLabeling",
    "ConstrainedLabelingResult",
    "shortest_constrained_walk_length",
]
