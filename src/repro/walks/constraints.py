"""Stateful walk constraints (paper Definition 2) and the worked examples.

A constraint is described by

* a finite state set Q containing the two special states ▽ (the state of the
  empty walk) and ⊥ (the absorbing reject state);
* per-edge transition functions δ_e : Q → Q with δ_e(⊥) = ⊥;
* implicitly, the classifier M(w): the state reached by running the walk's
  edges through δ starting from ▽; a walk belongs to C iff its state is not ⊥.

Concrete constraints implement :class:`StatefulWalkConstraint` by providing
``states()`` and ``transition(state, edge)``; the module also provides the
paper's Example 1 (c-colored walks), Example 2 (count-c walks) and the
alternating-walk constraint used by the matching algorithm of §6 (a 2-colored
walk whose colours are "matched"/"unmatched" edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConstraintError
from repro.graphs.digraph import Edge, WeightedDiGraph

NodeId = Hashable
State = Hashable

#: The state ▽ of the empty walk φ.
INITIAL_STATE: State = "INIT"
#: The absorbing reject state ⊥.
REJECT_STATE: State = "REJECT"


class StatefulWalkConstraint:
    """Interface of a stateful walk constraint (Q, M, δ).

    Subclasses must implement :meth:`states` (the full state set Q, including
    the two special states) and :meth:`transition` (the function δ_e applied
    to a non-reject state).  The base class supplies the induced classifier
    M and the Definition-2 sanity checks used by the test suite.
    """

    #: Human-readable name used in reports.
    name: str = "stateful"

    def states(self) -> List[State]:
        """The full state set Q (must contain INITIAL_STATE and REJECT_STATE)."""
        raise NotImplementedError

    def transition(self, state: State, edge: Edge) -> State:
        """δ_e(state) for a non-reject ``state``; must return a member of Q."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def delta(self, state: State, edge: Edge) -> State:
        """δ_e including the absorbing-reject rule (Definition 2, condition 3)."""
        if state == REJECT_STATE:
            return REJECT_STATE
        nxt = self.transition(state, edge)
        return nxt

    def accepting_states(self) -> List[State]:
        """All states other than ⊥ (walks in C end in one of these)."""
        return [q for q in self.states() if q != REJECT_STATE]

    def validate(self, graph: WeightedDiGraph, sample_edges: int = 64) -> None:
        """Check the Definition-2 conditions on (a sample of) the graph's edges."""
        states = self.states()
        if INITIAL_STATE not in states or REJECT_STATE not in states:
            raise ConstraintError(
                "state set must contain the initial state ▽ and the reject state ⊥"
            )
        state_set = set(states)
        edges = graph.edges()[:sample_edges]
        for e in edges:
            for q in states:
                nxt = self.delta(q, e)
                if nxt not in state_set:
                    raise ConstraintError(
                        f"transition δ_e({q!r}) = {nxt!r} leaves the state set"
                    )
            if self.delta(REJECT_STATE, e) != REJECT_STATE:
                raise ConstraintError("the reject state must be absorbing (condition 3)")

    def state_count(self) -> int:
        return len(self.states())


def walk_state(constraint: StatefulWalkConstraint, walk: Sequence[Edge]) -> State:
    """M(w): the state of a walk (the empty walk has state ▽)."""
    state: State = INITIAL_STATE
    for edge in walk:
        state = constraint.delta(state, edge)
        if state == REJECT_STATE:
            return REJECT_STATE
    return state


def is_walk_in_constraint(constraint: StatefulWalkConstraint, walk: Sequence[Edge]) -> bool:
    """Whether the walk belongs to C (its state is not ⊥)."""
    return walk_state(constraint, walk) != REJECT_STATE


# --------------------------------------------------------------------------- #
# Example 1: c-colored walks
# --------------------------------------------------------------------------- #
class ColoredWalkConstraint(StatefulWalkConstraint):
    """c-colored walks: no two consecutive edges share a colour (paper Example 1).

    Edge colours are read from ``edge.label`` (any hashable value drawn from
    the supplied palette).  The walk state is the colour of its last edge.
    """

    name = "colored"

    def __init__(self, palette: Iterable[Any]) -> None:
        self.palette = list(dict.fromkeys(palette))
        if not self.palette:
            raise ConstraintError("the colour palette must be non-empty")

    def states(self) -> List[State]:
        return [INITIAL_STATE, REJECT_STATE] + [("color", c) for c in self.palette]

    def transition(self, state: State, edge: Edge) -> State:
        color = edge.label
        if color not in self.palette:
            raise ConstraintError(f"edge {edge.eid} has colour {color!r} outside the palette")
        if state == INITIAL_STATE:
            return ("color", color)
        assert isinstance(state, tuple) and state[0] == "color"
        if state[1] == color:
            return REJECT_STATE
        return ("color", color)


# --------------------------------------------------------------------------- #
# Example 2: count-c walks
# --------------------------------------------------------------------------- #
class CountWalkConstraint(StatefulWalkConstraint):
    """count-c walks: at most ``c`` edges of label 1 (paper Example 2).

    Edge labels are read from ``edge.label`` and interpreted as 0/1 (``None``
    counts as 0).  The walk state is the number of label-1 edges so far; walks
    exceeding ``c`` are rejected.  The subset C(c) of *exact* count-c walks is
    obtained by querying the constrained labeling at target state ``c``
    (see §5.1, "Subsets of stateful walk constraints").
    """

    name = "count"

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ConstraintError("the count budget must be non-negative")
        self.budget = budget

    def states(self) -> List[State]:
        return [INITIAL_STATE, REJECT_STATE] + [("count", i) for i in range(self.budget + 1)]

    @staticmethod
    def _edge_value(edge: Edge) -> int:
        value = edge.label
        if value in (None, 0, False):
            return 0
        if value in (1, True):
            return 1
        raise ConstraintError(f"edge {edge.eid} has non-binary label {value!r}")

    def transition(self, state: State, edge: Edge) -> State:
        value = self._edge_value(edge)
        if state == INITIAL_STATE:
            count = value
        else:
            assert isinstance(state, tuple) and state[0] == "count"
            count = state[1] + value
        if count > self.budget:
            return REJECT_STATE
        return ("count", count)

    def exact_target_state(self) -> State:
        """The state identifying *exact* count-c walks (the subset C(c))."""
        return ("count", self.budget)


# --------------------------------------------------------------------------- #
# Alternating walks (used by the matching algorithm, §6)
# --------------------------------------------------------------------------- #
class AlternatingWalkConstraint(StatefulWalkConstraint):
    """Alternating (matched / unmatched) walks for augmenting-path search.

    This is the 2-colored constraint of Example 1 with the palette
    {"matched", "unmatched"}, read from a set of matched edge keys rather than
    from edge labels, plus the convention that an augmenting walk must *start*
    with an unmatched edge (enforced by rejecting a matched first edge, since
    the walk starts at an unmatched vertex which has no incident matched edge
    anyway — keeping it in the automaton makes the constraint self-contained).
    """

    name = "alternating"

    MATCHED: State = ("color", "matched")
    UNMATCHED: State = ("color", "unmatched")

    def __init__(self, matched_pairs: Iterable[Tuple[NodeId, NodeId]]) -> None:
        self.matched: Set[frozenset] = {frozenset(p) for p in matched_pairs}

    def states(self) -> List[State]:
        return [INITIAL_STATE, REJECT_STATE, self.MATCHED, self.UNMATCHED]

    def _edge_color(self, edge: Edge) -> State:
        if frozenset((edge.tail, edge.head)) in self.matched:
            return self.MATCHED
        return self.UNMATCHED

    def transition(self, state: State, edge: Edge) -> State:
        color = self._edge_color(edge)
        if state == INITIAL_STATE:
            # Augmenting walks leave an unmatched vertex along an unmatched edge.
            return color if color == self.UNMATCHED else REJECT_STATE
        if state == color:
            return REJECT_STATE
        return color
