"""The product graph G_C of a graph and a stateful walk constraint (paper §5.2).

Vertices of G_C are pairs (v, q) ∈ V(G) × Q; an edge ((u, i), (v, j)) exists
when some input edge e = (u, v) satisfies δ_e(i) = j (carrying e's weight), or
when u = v, i ≠ ⊥ and j = ⊥ (the zero-weight "give up" edges that keep the
communication diameter of ⟦G_C⟧ within O(D)).  Lemma 5: walks of C with state
q from s to t correspond exactly to walks from (s, ▽) to (t, q) in G_C, with
the same weight.

The module also *lifts* a tree decomposition of ⟦G⟧ to one of ⟦G_C⟧ by
replacing every vertex v with the group U_Q(v) = {v} × Q — the decomposition
argument used in §5.2 to bound the treewidth of G_C by O(|Q|·τ) — so that the
constrained distance labeling never needs to decompose the (larger) product
graph from scratch.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.rounds import RoundLedger
from repro.decomposition.tree_decomposition import (
    DecompositionNode,
    DecompositionResult,
    TreeDecomposition,
)
from repro.errors import ConstraintError, GraphError
from repro.graphs.digraph import Edge, WeightedDiGraph
from repro.walks.constraints import (
    INITIAL_STATE,
    REJECT_STATE,
    State,
    StatefulWalkConstraint,
)

NodeId = Hashable
ProductNode = Tuple[NodeId, State]
INF = math.inf


@dataclass
class ProductGraph:
    """The product graph G_C together with bookkeeping for walk recovery.

    Attributes
    ----------
    graph:
        The weighted directed product graph on V(G) × Q.
    constraint:
        The stateful walk constraint used to build it.
    base:
        The original input instance G.
    edge_origin:
        Maps each product-graph edge id to the originating input edge id
        (``None`` for the structural (u, i) → (u, ⊥) edges).
    """

    graph: WeightedDiGraph
    constraint: StatefulWalkConstraint
    base: WeightedDiGraph
    edge_origin: Dict[int, Optional[int]]

    def node(self, v: NodeId, state: State) -> ProductNode:
        return (v, state)

    def num_states(self) -> int:
        return self.constraint.state_count()


def build_product_graph(
    instance: WeightedDiGraph, constraint: StatefulWalkConstraint
) -> ProductGraph:
    """Construct G_C for ``instance`` and ``constraint`` (Lemma 5)."""
    constraint.validate(instance)
    states = constraint.states()
    product = WeightedDiGraph()
    edge_origin: Dict[int, Optional[int]] = {}

    for v in instance.nodes():
        for q in states:
            product.add_node((v, q))

    # Condition (1): transitions along input edges.
    for e in instance.edges():
        for q in states:
            nxt = constraint.delta(q, e)
            eid = product.add_edge((e.tail, q), (e.head, nxt), weight=e.weight, label=e.label)
            edge_origin[eid] = e.eid

    # Condition (2): (u, i) → (u, ⊥) for i ≠ ⊥ (zero weight; keeps D(⟦G_C⟧) = O(D)).
    for v in instance.nodes():
        for q in states:
            if q == REJECT_STATE:
                continue
            eid = product.add_edge((v, q), (v, REJECT_STATE), weight=0.0)
            edge_origin[eid] = None

    return ProductGraph(
        graph=product, constraint=constraint, base=instance, edge_origin=edge_origin
    )


def lift_tree_decomposition(
    decomposition: DecompositionResult, constraint: StatefulWalkConstraint
) -> DecompositionResult:
    """Lift a decomposition of ⟦G⟧ to one of ⟦G_C⟧ (§5.2).

    Every vertex v of every bag / subgraph is replaced by the group
    U_Q(v) = {(v, q) : q ∈ Q}; the tree structure and the round accounting are
    unchanged (the lift is a local relabeling, costing no communication).
    """
    states = constraint.states()
    base_td = decomposition.decomposition
    lifted = TreeDecomposition()
    for label in sorted(base_td.labels(), key=len):
        node = base_td.nodes[label]
        lifted_node = DecompositionNode(
            label=node.label,
            bag=frozenset((v, q) for v in node.bag for q in states),
            graph_vertices=frozenset(
                (v, q) for v in node.graph_vertices for q in states
            ),
            free_vertices=frozenset(
                (v, q) for v in node.free_vertices for q in states
            ),
            separator=frozenset((v, q) for v in node.separator for q in states),
            parent=node.parent,
            is_leaf=node.is_leaf,
        )
        lifted._add_node(lifted_node)
    lifted._finalize()
    ledger = RoundLedger()
    ledger.merge(decomposition.ledger)
    return DecompositionResult(
        decomposition=lifted,
        rounds=decomposition.rounds,
        ledger=ledger,
        width_guess=decomposition.width_guess * max(1, len(states)),
        separator_calls=decomposition.separator_calls,
    )


def shortest_constrained_walk(
    product: ProductGraph,
    source: NodeId,
    target: NodeId,
    target_state: State,
) -> Optional[Tuple[float, List[Edge]]]:
    """Shortest walk in C(q) from ``source`` to ``target`` (Corollary 1).

    Runs Dijkstra on the product graph from (source, ▽) to (target, q) and
    maps the product edges back to input edges.  Returns ``(length, edges)``
    or ``None`` when no such walk exists.
    """
    if target_state == REJECT_STATE:
        raise ConstraintError("the reject state is not a valid walk target")
    start: ProductNode = (source, INITIAL_STATE)
    goal: ProductNode = (target, target_state)
    graph = product.graph
    if not graph.has_node(start) or not graph.has_node(goal):
        raise GraphError("source or target not present in the product graph")

    dist: Dict[ProductNode, float] = {start: 0.0}
    pred: Dict[ProductNode, Tuple[ProductNode, int]] = {}
    heap: List[Tuple[float, int, ProductNode]] = [(0.0, 0, start)]
    counter = 0
    settled: Set[ProductNode] = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == goal:
            break
        settled.add(u)
        for e in graph.out_edges(u):
            nd = d + e.weight
            if nd < dist.get(e.head, INF):
                dist[e.head] = nd
                pred[e.head] = (u, e.eid)
                counter += 1
                heapq.heappush(heap, (nd, counter, e.head))

    if goal not in dist:
        return None
    # Reconstruct the walk, skipping structural edges (they never appear on a
    # path to a non-reject state anyway).
    edges: List[Edge] = []
    node = goal
    while node != start:
        prev, eid = pred[node]
        origin = product.edge_origin.get(eid)
        if origin is not None:
            edges.append(product.base.edge(origin))
        node = prev
    edges.reverse()
    return dist[goal], edges
