"""Constrained distance labeling CDL(C) (paper §5.2, Theorem 3).

Given a stateful walk constraint C with state set Q, the constrained distance
labeling assigns every vertex u a label sla(u) such that for any target state
q and any pair (u, v), the C(q)-distance — the length of the shortest walk
from u to v whose state is q — can be decoded from sla(u) and sla(v).

The construction is the reduction of §5.2: build the product graph G_C, run
the (unconstrained) distance labeling of Theorem 2 on it, and let sla(u) be
the collection of product-graph labels of the group U_Q(u) = {u} × Q.  The
CONGEST simulation overhead of running on G_C instead of G is a factor
O(|Q| · p_max) in rounds (every physical edge simulates the ≤ |Q|·p_max
product edges between two groups), which Theorem 3 folds into the
Õ(|Q|·p_max·((|Q|τ)²D + (|Q|τ)⁴)) bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.config import FrameworkConfig
from repro.core.rounds import CostModel, RoundLedger
from repro.decomposition.tree_decomposition import (
    DecompositionResult,
    build_tree_decomposition,
)
from repro.errors import ConstraintError, LabelingError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.properties import diameter
from repro.labeling.construction import build_distance_labeling
from repro.labeling.labels import DistanceLabeling
from repro.walks.constraints import (
    INITIAL_STATE,
    REJECT_STATE,
    State,
    StatefulWalkConstraint,
)
from repro.walks.product import ProductGraph, build_product_graph, lift_tree_decomposition

NodeId = Hashable
INF = math.inf


class ConstrainedDistanceLabeling:
    """The decoder side of CDL(C): per-vertex labels over the product graph."""

    def __init__(
        self,
        constraint: StatefulWalkConstraint,
        product_labeling: DistanceLabeling,
    ) -> None:
        self.constraint = constraint
        self._labeling = product_labeling

    def distance(self, u: NodeId, v: NodeId, target_state: State) -> float:
        """d_{G,C(q)}(u, v): the shortest length of a walk in C with state q from u to v."""
        if target_state == REJECT_STATE:
            raise ConstraintError("the reject state is not a valid query target")
        try:
            return self._labeling.distance((u, INITIAL_STATE), (v, target_state))
        except LabelingError as exc:
            raise LabelingError(f"no constrained label for {u!r} or {v!r}") from exc

    def constrained_distance(self, u: NodeId, v: NodeId) -> float:
        """The C-distance: minimum over all accepting target states."""
        best = INF
        for q in self.constraint.accepting_states():
            if q == INITIAL_STATE and u != v:
                continue
            d = self.distance(u, v, q)
            if d < best:
                best = d
        return best

    def label_entries(self, u: NodeId) -> int:
        """Total hub entries stored at u (u simulates all of U_Q(u))."""
        total = 0
        for q in self.constraint.states():
            total += self._labeling.label((u, q)).num_entries()
        return total

    def max_label_entries(self) -> int:
        vertices = {v for (v, _q) in self._labeling.vertices()}
        return max((self.label_entries(v) for v in vertices), default=0)


@dataclass
class ConstrainedLabelingResult:
    """CDL(C) together with its construction cost."""

    labeling: ConstrainedDistanceLabeling
    product: ProductGraph
    rounds: int
    ledger: RoundLedger
    simulation_overhead: int
    product_label_rounds: int


def build_constrained_labeling(
    instance: WeightedDiGraph,
    constraint: StatefulWalkConstraint,
    config: Optional[FrameworkConfig] = None,
    cost_model: Optional[CostModel] = None,
    decomposition: Optional[DecompositionResult] = None,
) -> ConstrainedLabelingResult:
    """Build CDL(C) for ``instance`` under ``constraint`` (Theorem 3).

    Parameters
    ----------
    instance:
        The weighted directed multigraph G.
    constraint:
        A stateful walk constraint C.
    config / cost_model:
        Framework configuration and cost model for the *base* communication
        graph ⟦G⟧ (the simulation overhead on the product graph is applied on
        top, per Theorem 3).
    decomposition:
        Optional decomposition of ⟦G⟧; it is lifted to ⟦G_C⟧ rather than
        recomputed.
    """
    config = config or FrameworkConfig()
    comm = instance.underlying_graph()
    if cost_model is None:
        cost_model = CostModel(
            n=comm.num_nodes(),
            diameter=diameter(comm, exact=comm.num_nodes() <= 600),
            log_factor_exponent=config.cost_log_exponent,
            constant=config.cost_constant,
        )
    if decomposition is None:
        decomposition = build_tree_decomposition(comm, config=config, cost_model=cost_model)

    product = build_product_graph(instance, constraint)
    lifted = lift_tree_decomposition(decomposition, constraint)

    # Cost model for the product communication graph: same diameter (up to +2,
    # §5.2), |Q|·n nodes.
    num_states = constraint.state_count()
    product_cost_model = CostModel(
        n=comm.num_nodes() * num_states,
        diameter=cost_model.diameter + 2,
        log_factor_exponent=cost_model.log_factor_exponent,
        constant=cost_model.constant,
    )
    dl = build_distance_labeling(
        product.graph,
        decomposition=lifted,
        config=config,
        cost_model=product_cost_model,
    )

    # Theorem 3: each round on G_C costs O(|Q| · p_max) rounds on ⟦G⟧.
    p_max = max(1, instance.max_multiplicity())
    overhead = num_states * p_max
    ledger = RoundLedger()
    ledger.merge(decomposition.ledger, prefix="base_decomposition")
    ledger.charge("cdl/simulated_product_labeling", dl.rounds * overhead)

    labeling = ConstrainedDistanceLabeling(constraint, dl.labeling)
    return ConstrainedLabelingResult(
        labeling=labeling,
        product=product,
        rounds=ledger.total(),
        ledger=ledger,
        simulation_overhead=overhead,
        product_label_rounds=dl.rounds,
    )


def shortest_constrained_walk_length(
    instance: WeightedDiGraph,
    constraint: StatefulWalkConstraint,
    source: NodeId,
    target: NodeId,
    target_state: State,
    config: Optional[FrameworkConfig] = None,
) -> float:
    """One-shot convenience: the C(q)-distance from source to target."""
    result = build_constrained_labeling(instance, constraint, config=config)
    return result.labeling.distance(source, target, target_state)
