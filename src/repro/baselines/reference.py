"""Centralized reference solutions (exactness oracles).

Thin, well-named wrappers around the centralized algorithms scattered through
the library (and networkx where convenient), so that tests and benchmarks have
a single import point for "the correct answer".
"""

from __future__ import annotations

from typing import Dict, Hashable

import networkx as nx

from repro.girth.baselines import exact_girth_directed, exact_girth_undirected
from repro.graphs.convert import graph_to_networkx
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph
from repro.graphs.properties import all_pairs_shortest_paths, dijkstra
from repro.matching.hopcroft_karp import hopcroft_karp_matching

NodeId = Hashable


def reference_sssp(instance: WeightedDiGraph, source: NodeId) -> Dict[NodeId, float]:
    """Exact single-source distances (Dijkstra)."""
    return dijkstra(instance, source)


def reference_apsp(instance: WeightedDiGraph) -> Dict[NodeId, Dict[NodeId, float]]:
    """Exact all-pairs distances (n Dijkstra runs)."""
    return all_pairs_shortest_paths(instance)


def reference_matching_size(graph: Graph) -> int:
    """Maximum matching size of a bipartite graph.

    Cross-checked against networkx's Hopcroft–Karp implementation when the
    graph is connected (networkx requires an explicit bipartition otherwise).
    """
    own = len(hopcroft_karp_matching(graph))
    try:
        nxg = graph_to_networkx(graph)
        parts = graph.bipartition()
        if parts is not None and graph.num_nodes() > 0:
            nx_match = nx.bipartite.maximum_matching(nxg, top_nodes=parts[0])
            assert own == len(nx_match) // 2
    except Exception:
        # networkx cross-check is best-effort only (e.g. disconnected graphs).
        pass
    return own


def reference_girth_directed(instance: WeightedDiGraph) -> float:
    """Exact weighted directed girth."""
    return exact_girth_directed(instance)


def reference_girth_undirected(graph: Graph) -> float:
    """Exact weighted undirected girth."""
    return exact_girth_undirected(graph)
