"""Centralized and general-graph baselines shared by tests and benchmarks."""

from repro.baselines.reference import (
    reference_apsp,
    reference_sssp,
    reference_matching_size,
    reference_girth_directed,
    reference_girth_undirected,
)
from repro.baselines.congest_bounds import (
    bellman_ford_rounds_estimate,
    general_graph_sssp_rounds,
    general_graph_exact_sssp_rounds,
    matching_baseline_rounds,
    girth_baseline_rounds,
    diameter_lower_bound_rounds,
)

__all__ = [
    "reference_apsp",
    "reference_sssp",
    "reference_matching_size",
    "reference_girth_directed",
    "reference_girth_undirected",
    "bellman_ford_rounds_estimate",
    "general_graph_sssp_rounds",
    "general_graph_exact_sssp_rounds",
    "matching_baseline_rounds",
    "girth_baseline_rounds",
    "diameter_lower_bound_rounds",
]
