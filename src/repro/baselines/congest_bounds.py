"""Round-complexity curves of the general-graph CONGEST algorithms the paper compares against.

The paper's contribution is *fully polynomial* round complexity — polynomial
in τ, linear in D, polylogarithmic in n — versus general-graph algorithms
whose complexity grows polynomially in n.  These closed-form curves (taken
from the works cited in §1.2/§1.4) are used in the crossover experiment (E9)
and as reference series in several benchmark tables.  They are *not* run; the
distributed Bellman-Ford baseline in :mod:`repro.congest.bellman_ford` is
actually executed, and its measured rounds are reported next to these curves.
"""

from __future__ import annotations

import math


def _log(n: int) -> float:
    return math.log2(max(2, n))


def bellman_ford_rounds_estimate(n: int, hop_depth: int) -> float:
    """Distributed Bellman-Ford: rounds equal to the shortest-path-tree hop depth (≤ n)."""
    return float(min(n, max(1, hop_depth)))


def general_graph_sssp_rounds(n: int, diameter: int) -> float:
    """(1+ε)-approximate SSSP in general graphs: Õ(√n + D) [BKKL17]."""
    return (math.sqrt(n) + diameter) * _log(n)


def general_graph_exact_sssp_rounds(n: int, diameter: int) -> float:
    """Exact SSSP in general graphs: Õ(√n·D^{1/4} + D) [CM20]."""
    return (math.sqrt(n) * diameter ** 0.25 + diameter) * _log(n)


def matching_baseline_rounds(max_matching_size: int) -> float:
    """Exact bipartite maximum matching baseline: Õ(s_max) rounds [AKO18]."""
    return max(1.0, max_matching_size * _log(max(2, max_matching_size)))


def girth_baseline_rounds(n: int, girth: float) -> float:
    """General-graph girth: Õ(min(g·n^{1−Θ(1/g)}, n)) rounds [CHFG+20]."""
    if not math.isfinite(girth) or girth <= 0:
        return float(n)
    g = max(3.0, girth)
    return min(g * n ** (1.0 - 1.0 / g), float(n)) * _log(n)


def diameter_lower_bound_rounds(n: int) -> float:
    """Diameter computation lower bound Ω̃(n) on low-treewidth hard instances [ACK16].

    Used to illustrate the paper's exponential girth/diameter separation: the
    girth upper bound is polylogarithmic in n (for constant τ, D) while
    diameter requires Ω̃(n) rounds on graphs of logarithmic treewidth.
    """
    return n / _log(n)
