"""Exact bipartite maximum matching (paper §6, Theorem 4).

The algorithm is divide-and-conquer over balanced separators:

1. compute an O(1)-balanced separator S of the (bipartite) graph;
2. recursively compute maximum matchings of the connected components of
   G − S (all components in parallel);
3. re-insert the separator vertices one at a time; by Proposition 1 (Iwata et
   al.) the only augmenting path that can exist starts at the re-inserted
   vertex, and it is found as a shortest *alternating* (2-colored) walk using
   the stateful-walk framework of §5 — in bipartite graphs the shortest
   alternating walk between unmatched vertices is a simple augmenting path.

The total CONGEST cost is Õ(τ⁴D + τ⁷) rounds: O(τ²) augmenting-path searches
per recursion level, each a constrained distance labeling.

* :mod:`~repro.matching.hopcroft_karp` — centralized Hopcroft–Karp, used both
  as the local solver for constant-size components and as the exactness
  baseline in tests/benchmarks.
* :mod:`~repro.matching.augmenting` — alternating-walk augmenting-path search
  via the product-graph reduction.
* :mod:`~repro.matching.bipartite` — the divide-and-conquer driver.
"""

from repro.matching.bipartite import maximum_bipartite_matching, MatchingResult
from repro.matching.hopcroft_karp import hopcroft_karp_matching
from repro.matching.augmenting import find_augmenting_path, verify_matching

__all__ = [
    "maximum_bipartite_matching",
    "MatchingResult",
    "hopcroft_karp_matching",
    "find_augmenting_path",
    "verify_matching",
]
