"""Exact bipartite maximum matching by separator divide-and-conquer (paper §6).

The driver follows Theorem 4:

* the connected components of the graph minus a balanced separator S are
  matched recursively (all components in parallel — the recursion depth is
  O(log n) and the per-level CONGEST cost is the scheduled maximum over the
  vertex-disjoint parts);
* the separator vertices are then re-inserted one at a time; by Proposition 1
  the only possible augmenting path starts at the re-inserted vertex, and it
  is found as a shortest alternating stateful walk (one CDL query), after
  which the matching is flipped along the path;
* components of constant size are matched by local computation
  (Hopcroft–Karp), exactly as a CONGEST node would once it has collected the
  component.

Rounds charged per recursion level: the separator construction
(Õ(τ²D + τ³)), plus |S| = O(τ²) augmenting-path searches, each one
constrained-distance-labeling construction at Õ(τ²D + τ⁵) — giving the
Õ(τ⁴D + τ⁷) total of Theorem 4.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.config import FrameworkConfig
from repro.core.rounds import CostModel, RoundLedger
from repro.decomposition.separator import BalancedSeparator
from repro.errors import GraphError, NotBipartiteError
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter
from repro.matching.augmenting import (
    augment_along_path,
    find_augmenting_path,
    matched_vertices,
    verify_matching,
)
from repro.matching.hopcroft_karp import hopcroft_karp_matching

NodeId = Hashable
MatchingEdge = FrozenSet[NodeId]


@dataclass
class MatchingResult:
    """A maximum matching together with its construction statistics.

    Attributes
    ----------
    matching:
        The matching edges (as 2-element frozensets).
    size:
        Number of matched edges.
    rounds:
        Charged CONGEST rounds.
    ledger:
        Per-phase round breakdown.
    augmentations:
        Number of successful augmenting-path flips performed.
    separator_vertices:
        Total number of separator vertices processed across all levels.
    recursion_depth:
        Depth of the divide-and-conquer recursion.
    """

    matching: Set[MatchingEdge]
    size: int
    rounds: int
    ledger: RoundLedger
    augmentations: int
    separator_vertices: int
    recursion_depth: int


def maximum_bipartite_matching(
    graph: Graph,
    config: Optional[FrameworkConfig] = None,
    cost_model: Optional[CostModel] = None,
    leaf_size: Optional[int] = None,
) -> MatchingResult:
    """Compute an exact maximum matching of a bipartite graph (Theorem 4).

    Parameters
    ----------
    graph:
        An undirected, unweighted, bipartite graph.  It need not be connected.
    config:
        Framework configuration (separator constants, seed).
    cost_model:
        Round-cost model; built from the graph when omitted.
    leaf_size:
        Components of at most this many vertices are matched locally
        (defaults to ``max(8, 2 · config.initial_width_guess²)``).

    Raises
    ------
    NotBipartiteError
        If the graph is not bipartite (the stateful-walk reduction is only
        exact for bipartite graphs — see §6).
    """
    config = config or FrameworkConfig()
    config.validate()
    if graph.num_nodes() == 0:
        return MatchingResult(set(), 0, 0, RoundLedger(), 0, 0, 0)
    if graph.bipartition() is None:
        raise NotBipartiteError("maximum_bipartite_matching requires a bipartite graph")

    if cost_model is None and graph.num_nodes() > 1 and graph.is_connected():
        cost_model = CostModel(
            n=graph.num_nodes(),
            diameter=diameter(graph, exact=graph.num_nodes() <= 600),
            log_factor_exponent=config.cost_log_exponent,
            constant=config.cost_constant,
        )
    rng = config.rng()
    separator_engine = BalancedSeparator(
        params=config.separator, rng=rng, cost_model=cost_model
    )
    if leaf_size is None:
        leaf_size = max(8, 2 * config.initial_width_guess ** 2)

    ledger = RoundLedger()
    stats = {"augmentations": 0, "separator_vertices": 0, "depth": 0}
    # Components at the same recursion depth are processed in parallel in the
    # CONGEST algorithm, so the per-depth round charge is the *maximum* over
    # components (separator construction + |S| sequential augmenting searches),
    # not the sum.
    level_sep_rounds: Dict[int, int] = {}
    level_aug_rounds: Dict[int, int] = {}
    level_local: Set[int] = set()

    def solve(vertices: Set[NodeId], depth: int) -> Set[MatchingEdge]:
        stats["depth"] = max(stats["depth"], depth)
        sub = graph.subgraph(vertices)
        components = sub.connected_components()
        if len(components) > 1:
            matching: Set[MatchingEdge] = set()
            for comp in components:
                matching |= solve(set(comp), depth)
            return matching
        if len(vertices) <= leaf_size:
            # Local computation on a constant-size component.
            level_local.add(depth)
            return hopcroft_karp_matching(sub)

        sep_result = separator_engine.find(
            sub, initial_t=config.initial_width_guess, max_t=config.max_width
        )
        separator = set(sep_result.separator)
        if cost_model is not None:
            level_sep_rounds[depth] = max(level_sep_rounds.get(depth, 0), sep_result.rounds)
        stats["separator_vertices"] += len(separator)

        remaining = vertices - separator
        matching = solve(remaining, depth + 1) if remaining else set()

        # Re-insert separator vertices one at a time (Proposition 1).
        ordered = sorted(separator, key=str)
        width = max(1, sep_result.width_guess)
        component_aug_rounds = 0
        for idx, s in enumerate(ordered):
            active = remaining | set(ordered[: idx + 1])
            if s in matched_vertices(matching):
                # Cannot happen: s was absent from every previous subproblem.
                raise GraphError("separator vertex unexpectedly matched before insertion")
            path = find_augmenting_path(graph, matching, s, allowed=active)
            if cost_model is not None:
                # One CDL(C_col(2)) construction + decoding: |Q| = 4, p_max = 1.
                q = 4
                component_aug_rounds += q * (
                    cost_model.broadcast_multi(q * width, (q * width) ** 2)
                )
            if path is not None:
                matching = augment_along_path(matching, path)
                stats["augmentations"] += 1
        if cost_model is not None:
            level_aug_rounds[depth] = max(level_aug_rounds.get(depth, 0), component_aug_rounds)
        return matching

    matching = solve(set(graph.nodes()), 0)
    for depth in sorted(level_sep_rounds):
        ledger.charge(f"matching/depth_{depth}/separator", level_sep_rounds[depth])
    for depth in sorted(level_aug_rounds):
        ledger.charge(f"matching/depth_{depth}/augmenting_search", level_aug_rounds[depth])
    for depth in sorted(level_local):
        ledger.charge(f"matching/depth_{depth}/local", 1)
    if not verify_matching(graph, matching):
        raise GraphError("internal error: produced an invalid matching")
    return MatchingResult(
        matching=matching,
        size=len(matching),
        rounds=ledger.total(),
        ledger=ledger,
        augmentations=stats["augmentations"],
        separator_vertices=stats["separator_vertices"],
        recursion_depth=stats["depth"],
    )
