"""Centralized Hopcroft–Karp maximum bipartite matching.

Used in two roles:

* the *local solver* for constant-size components in the divide-and-conquer
  algorithm of §6 (a CONGEST node may perform arbitrary local computation, so
  once a small component has been collected at a single node this is exactly
  what the paper's algorithm does);
* the *exactness baseline* for tests and benchmarks (experiment E6).

The implementation is the standard O(m·√n) phase algorithm: repeated BFS
layering from all free left vertices followed by layered DFS augmentation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

from repro.errors import GraphError, NotBipartiteError
from repro.graphs.graph import Graph

NodeId = Hashable
INF = float("inf")


def hopcroft_karp_matching(
    graph: Graph, partition: Optional[Tuple[Set[NodeId], Set[NodeId]]] = None
) -> Set[FrozenSet[NodeId]]:
    """Return a maximum matching of a bipartite graph as a set of frozenset edges.

    Parameters
    ----------
    graph:
        An undirected bipartite graph.
    partition:
        Optional ``(left, right)`` bipartition; computed when omitted.

    Raises
    ------
    NotBipartiteError
        If the graph is not bipartite.
    """
    if graph.num_nodes() == 0:
        return set()
    if partition is None:
        partition = graph.bipartition()
        if partition is None:
            raise NotBipartiteError("hopcroft_karp_matching requires a bipartite graph")
    left, right = partition
    missing = set(graph.nodes()) - (set(left) | set(right))
    if missing:
        raise GraphError("partition does not cover all vertices")

    match_left: Dict[NodeId, Optional[NodeId]] = {u: None for u in left}
    match_right: Dict[NodeId, Optional[NodeId]] = {v: None for v in right}
    dist: Dict[Optional[NodeId], float] = {}

    def bfs() -> bool:
        queue = deque()
        for u in left:
            if match_left[u] is None:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = INF
        dist[None] = INF
        while queue:
            u = queue.popleft()
            if dist[u] < dist[None]:
                for v in graph.neighbors(u):
                    nxt = match_right.get(v)
                    if dist.get(nxt, INF) == INF:
                        dist[nxt] = dist[u] + 1
                        if nxt is not None:
                            queue.append(nxt)
        return dist[None] != INF

    def dfs(u: NodeId) -> bool:
        for v in graph.neighbors(u):
            nxt = match_right.get(v)
            if nxt is None or (dist.get(nxt, INF) == dist[u] + 1 and dfs(nxt)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in left:
            if match_left[u] is None:
                dfs(u)

    return {
        frozenset((u, v)) for u, v in match_left.items() if v is not None
    }


def maximum_matching_size(graph: Graph) -> int:
    """Size of a maximum matching of a bipartite graph (baseline helper)."""
    return len(hopcroft_karp_matching(graph))
