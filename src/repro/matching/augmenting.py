"""Augmenting-path search as a shortest alternating (2-colored) stateful walk.

An augmenting path with respect to a matching M is a simple path between two
unmatched vertices on which unmatched and matched edges alternate.  Viewed as
a walk it is exactly a 2-colored walk (paper Example 1) over the colour
palette {matched, unmatched} that starts and ends with an unmatched edge at
unmatched endpoints; in *bipartite* graphs the shortest such walk is
automatically simple, which is why the stateful-walk framework solves exact
bipartite matching (§6) but not the general case.

:func:`find_augmenting_path` performs the product-graph search of Corollary 1
from a single source (the re-inserted separator vertex of the divide-and-
conquer driver) and returns the augmenting path, if one exists.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph
from repro.walks.constraints import (
    INITIAL_STATE,
    AlternatingWalkConstraint,
)
from repro.walks.product import build_product_graph

NodeId = Hashable
MatchingEdge = FrozenSet[NodeId]
INF = math.inf


def matched_vertices(matching: Iterable[MatchingEdge]) -> Set[NodeId]:
    """The set of vertices covered by a matching."""
    out: Set[NodeId] = set()
    for edge in matching:
        out |= set(edge)
    return out


def verify_matching(graph: Graph, matching: Iterable[MatchingEdge]) -> bool:
    """Check that ``matching`` is a valid matching of ``graph`` (edges exist, disjoint)."""
    seen: Set[NodeId] = set()
    for edge in matching:
        pair = tuple(edge)
        if len(pair) != 2:
            return False
        u, v = pair
        if not graph.has_edge(u, v):
            return False
        if u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True


def find_augmenting_path(
    graph: Graph,
    matching: Set[MatchingEdge],
    source: NodeId,
    allowed: Optional[Set[NodeId]] = None,
) -> Optional[List[NodeId]]:
    """Find a shortest augmenting path starting at the unmatched vertex ``source``.

    The search runs on the product graph G_C for the alternating-walk
    constraint restricted to ``allowed`` vertices (defaults to all), exactly
    as the distributed algorithm would query CDL(C_col(2)) labels from the
    separator vertex.  Returns the path as a vertex list (length ≥ 2) or
    ``None`` when no augmenting path from ``source`` exists.

    Raises :class:`GraphError` if ``source`` is matched or not allowed.
    """
    allowed = set(graph.nodes()) if allowed is None else set(allowed)
    if source not in allowed:
        raise GraphError(f"source {source!r} is not among the allowed vertices")
    covered = matched_vertices(matching)
    if source in covered:
        raise GraphError(f"source {source!r} is already matched")

    sub = graph.subgraph(allowed)
    instance = WeightedDiGraph(sub.nodes())
    for u, v in sub.edges():
        instance.add_undirected_edge(u, v, weight=1.0)
    constraint = AlternatingWalkConstraint(
        {tuple(edge) for edge in matching if set(edge) <= allowed}
    )
    product = build_product_graph(instance, constraint)

    start = (source, INITIAL_STATE)
    target_state = AlternatingWalkConstraint.UNMATCHED
    graph_c = product.graph

    # Single-source Dijkstra (unit weights, so effectively BFS) over G_C.
    dist: Dict = {start: 0.0}
    pred: Dict = {}
    heap: List[Tuple[float, int, Tuple]] = [(0.0, 0, start)]
    counter = 0
    settled: Set = set()
    best_target = None
    best_dist = INF
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        vertex, state = node
        if (
            state == target_state
            and vertex != source
            and vertex not in covered
            and d < best_dist
        ):
            best_target = node
            best_dist = d
            # Dijkstra pops in non-decreasing order: first hit is the nearest.
            break
        for e in graph_c.out_edges(node):
            nd = d + e.weight
            if nd < dist.get(e.head, INF):
                dist[e.head] = nd
                pred[e.head] = (node, e.eid)
                counter += 1
                heapq.heappush(heap, (nd, counter, e.head))

    if best_target is None:
        return None

    # Reconstruct the vertex sequence of the walk.
    path_nodes: List[NodeId] = []
    node = best_target
    while node != start:
        path_nodes.append(node[0])
        node, _eid = pred[node]
    path_nodes.append(source)
    path_nodes.reverse()

    # In bipartite graphs the shortest alternating walk between unmatched
    # vertices is simple; defend against misuse on non-bipartite inputs.
    if len(set(path_nodes)) != len(path_nodes):
        raise GraphError(
            "shortest alternating walk is not simple — the input graph is not bipartite"
        )
    return path_nodes


def augment_along_path(
    matching: Set[MatchingEdge], path: List[NodeId]
) -> Set[MatchingEdge]:
    """Flip matched/unmatched edges along an augmenting path (returns a new matching)."""
    if len(path) < 2 or len(path) % 2 != 0:
        raise GraphError("an augmenting path must have an odd number of edges")
    new_matching = set(matching)
    for i in range(len(path) - 1):
        edge = frozenset((path[i], path[i + 1]))
        if i % 2 == 0:
            new_matching.add(edge)
        else:
            new_matching.discard(edge)
    return new_matching
