"""Distributed tree decomposition from balanced separators (paper §3.4, Theorem 1).

The construction recursively decomposes the graph: at decomposition-tree node
``x`` (identified, as in the paper, by a string — here a tuple of child
indices, with the root being the empty tuple ψ = ()):

* ``G_x`` is the subgraph handled at ``x`` and ``G'_x = G_x − B_{p(x)}`` is its
  "free" part, which is a connected component of ``G − B_{p(x)}``
  (Proposition 3);
* an (X, α)-balanced separator ``S'_x`` of ``G'_x`` is computed with ``Sep``
  (Lemma 1);
* the bag is ``B_x = (V(G_x) ∩ B_{p(x)}) ∪ S'_x
  = V(G_x) ∩ ⋃_{x'⊑x} S_{x'}``;
* every connected component ``G'_{x•i}`` of ``G_x − B_x`` becomes a child,
  with ``G_{x•i}`` additionally containing the bag vertices adjacent to the
  component (so that boundary edges are covered by descendant bags).

Recursion stops when the free part is small, in which case ``B_x = V(G_x)``.
The resulting width is O(τ² log n) and the depth O(log n); the CONGEST round
cost is dominated by the separator computations, Õ(τ²D + τ³), with the
separators of all parts at one level computed in parallel (the parts are
vertex-disjoint, so Lemma 9 / Theorem 6 apply).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import FrameworkConfig, SeparatorParams
from repro.core.rounds import CostModel, RoundLedger
from repro.decomposition.separator import BalancedSeparator, SeparatorResult
from repro.errors import DecompositionError, GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter

NodeId = Hashable
Label = Tuple[int, ...]


@dataclass
class DecompositionNode:
    """One node of the decomposition tree.

    Attributes
    ----------
    label:
        The identifying string of the node (tuple of child indices; the root
        is the empty tuple).
    bag:
        The bag B_x ⊆ V(G).
    graph_vertices:
        V(G_x): the vertices of the subgraph handled at this node.
    free_vertices:
        V(G'_x) = V(G_x) − B_{p(x)}: the vertices first "owned" here.
    separator:
        S'_x, the new separator vertices introduced at this node (empty for
        leaves, whose bag is all of V(G_x)).
    parent:
        Label of the parent (``None`` for the root).
    children:
        Labels of the children, in index order.
    is_leaf:
        Whether the recursion terminated at this node.
    """

    label: Label
    bag: FrozenSet[NodeId]
    graph_vertices: FrozenSet[NodeId]
    free_vertices: FrozenSet[NodeId]
    separator: FrozenSet[NodeId]
    parent: Optional[Label]
    children: List[Label] = field(default_factory=list)
    is_leaf: bool = False


class TreeDecomposition:
    """A rooted tree decomposition Φ = (T, {B_x}) with the paper's string labels.

    Provides the queries needed by the distance-labeling layer: canonical
    strings c*(v), ancestor bag unions B↑(v), and per-level node sets A_ℓ(T).
    """

    def __init__(self) -> None:
        self.nodes: Dict[Label, DecompositionNode] = {}
        self._canonical: Dict[NodeId, Label] = {}

    # -- construction (used by the builder) ------------------------------ #
    def _add_node(self, node: DecompositionNode) -> None:
        self.nodes[node.label] = node
        if node.parent is not None:
            self.nodes[node.parent].children.append(node.label)

    def _finalize(self) -> None:
        """Compute canonical labels after all nodes are present."""
        self._canonical = {}
        # BFS over the tree from the root so shorter labels are seen first.
        order = sorted(self.nodes.keys(), key=len)
        for label in order:
            for v in self.nodes[label].bag:
                if v not in self._canonical:
                    self._canonical[v] = label

    # -- basic queries ---------------------------------------------------- #
    @property
    def root(self) -> Label:
        return ()

    def bag(self, label: Label) -> FrozenSet[NodeId]:
        return self.nodes[label].bag

    def children(self, label: Label) -> List[Label]:
        return self.nodes[label].children

    def parent(self, label: Label) -> Optional[Label]:
        return self.nodes[label].parent

    def labels(self) -> List[Label]:
        return list(self.nodes.keys())

    def num_bags(self) -> int:
        return len(self.nodes)

    def width(self) -> int:
        """Width of the decomposition: max bag size − 1."""
        if not self.nodes:
            return -1
        return max(len(node.bag) for node in self.nodes.values()) - 1

    def depth(self) -> int:
        """Depth of the decomposition tree (root has depth 0)."""
        if not self.nodes:
            return 0
        return max(len(label) for label in self.nodes)

    def level(self, ell: int) -> List[Label]:
        """A_ℓ(T): all node labels of length ℓ."""
        return [label for label in self.nodes if len(label) == ell]

    # -- paper-specific queries ------------------------------------------- #
    def canonical_label(self, v: NodeId) -> Label:
        """c*(v): the shortest label whose bag contains v."""
        if v not in self._canonical:
            raise DecompositionError(f"vertex {v!r} not covered by the decomposition")
        return self._canonical[v]

    def ancestors(self, label: Label, include_self: bool = True) -> List[Label]:
        """Labels on the root path (prefixes of ``label``), shortest first."""
        out = [label[:i] for i in range(len(label) + 1)]
        if not include_self:
            out = out[:-1]
        return out

    def upward_bag_union(self, v: NodeId) -> Set[NodeId]:
        """B↑(v) = ⋃_{x' ⊑ c*(v)} B_{x'} (paper §4.1)."""
        union: Set[NodeId] = set()
        for label in self.ancestors(self.canonical_label(v)):
            union |= self.nodes[label].bag
        return union

    def bags_containing(self, v: NodeId) -> List[Label]:
        """All labels whose bag contains ``v``."""
        return [label for label, node in self.nodes.items() if v in node.bag]

    def covered_vertices(self) -> Set[NodeId]:
        out: Set[NodeId] = set()
        for node in self.nodes.values():
            out |= node.bag
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TreeDecomposition(bags={self.num_bags()}, width={self.width()}, "
            f"depth={self.depth()})"
        )


@dataclass
class DecompositionResult:
    """A tree decomposition together with its CONGEST round accounting."""

    decomposition: TreeDecomposition
    rounds: int
    ledger: RoundLedger
    width_guess: int
    separator_calls: int


def build_tree_decomposition(
    graph: Graph,
    config: Optional[FrameworkConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> DecompositionResult:
    """Build a tree decomposition of ``graph`` following §3.4 of the paper.

    Parameters
    ----------
    graph:
        A connected undirected graph (the communication network ⟦G⟧).
    config:
        Framework configuration (separator constants, seed, leaf size).
    cost_model:
        Optional round-cost model; when omitted a default model with the
        graph's measured diameter is created, so ``rounds`` is always
        populated.

    Returns
    -------
    DecompositionResult
        The decomposition, the total charged CONGEST rounds and the per-phase
        ledger.  The construction never fails for a valid connected input: in
        the worst case the doubling loop inside ``Sep`` reaches the trivial
        separator and the decomposition degenerates gracefully.
    """
    if graph.num_nodes() == 0:
        raise GraphError("cannot decompose an empty graph")
    if not graph.is_connected():
        raise GraphError("tree decomposition requires a connected graph")

    config = config or FrameworkConfig()
    config.validate()
    rng = config.rng()
    if cost_model is None:
        cost_model = CostModel(
            n=graph.num_nodes(),
            diameter=diameter(graph, exact=graph.num_nodes() <= 600),
            log_factor_exponent=config.cost_log_exponent,
            constant=config.cost_constant,
        )
    ledger = RoundLedger()
    separator_engine = BalancedSeparator(
        params=config.separator, rng=rng, cost_model=cost_model
    )

    td = TreeDecomposition()
    width_guess_seen = config.initial_width_guess
    separator_calls = 0

    # Work queue of (label, G_x vertex set, parent bag ∩ V(G_x)).
    # Each level of the tree is processed together so that the CONGEST cost of
    # a level is the *scheduled* cost of its (vertex-disjoint) separator
    # computations rather than their sum.
    current_level: List[Tuple[Label, Set[NodeId], Set[NodeId]]] = [
        ((), set(graph.nodes()), set())
    ]
    level_index = 0
    while current_level:
        next_level: List[Tuple[Label, Set[NodeId], Set[NodeId]]] = []
        level_sep_rounds = 0
        for label, gx_vertices, boundary in current_level:
            gx = graph.subgraph(gx_vertices)
            free = gx_vertices - boundary
            free_graph = gx.without_nodes(boundary) if boundary else gx

            leaf_threshold = max(config.leaf_size, 1)
            make_leaf = len(free) <= leaf_threshold or len(free) == 0
            sep_result: Optional[SeparatorResult] = None
            if not make_leaf:
                separator_calls += 1
                sep_result = separator_engine.find(
                    free_graph,
                    focus=None,
                    initial_t=config.initial_width_guess,
                    max_t=config.max_width,
                )
                width_guess_seen = max(width_guess_seen, sep_result.width_guess)
                level_sep_rounds = max(level_sep_rounds, sep_result.rounds)
                # Paper termination rule: if the graph is barely larger than
                # its separator, keep everything in one bag.
                if len(gx_vertices) <= 2 * max(1, len(sep_result.separator)):
                    make_leaf = True

            if make_leaf:
                node = DecompositionNode(
                    label=label,
                    bag=frozenset(gx_vertices),
                    graph_vertices=frozenset(gx_vertices),
                    free_vertices=frozenset(free),
                    separator=frozenset(),
                    parent=label[:-1] if label else None,
                    is_leaf=True,
                )
                td._add_node(node)
                continue

            assert sep_result is not None
            new_sep = set(sep_result.separator)
            bag = (boundary & gx_vertices) | new_sep
            node = DecompositionNode(
                label=label,
                bag=frozenset(bag),
                graph_vertices=frozenset(gx_vertices),
                free_vertices=frozenset(free),
                separator=frozenset(new_sep),
                parent=label[:-1] if label else None,
                is_leaf=False,
            )
            td._add_node(node)

            remaining = gx.without_nodes(bag)
            components = sorted(
                remaining.connected_components(), key=lambda c: min(str(v) for v in c)
            )
            for idx, comp in enumerate(components):
                # G_{x•i}: the component plus the adjacent bag vertices.
                adjacent_bag = {
                    b
                    for b in bag
                    if any(nb in comp for nb in graph.neighbors(b))
                }
                child_vertices = set(comp) | adjacent_bag
                next_level.append((label + (idx,), child_vertices, bag & child_vertices))

        if level_sep_rounds:
            ledger.charge(f"tree_decomposition/level_{level_index}/separators", level_sep_rounds)
            ledger.charge(
                f"tree_decomposition/level_{level_index}/ccd",
                cost_model.subgraph_operation(width_guess_seen),
            )
        current_level = next_level
        level_index += 1

    td._finalize()
    return DecompositionResult(
        decomposition=td,
        rounds=ledger.total(),
        ledger=ledger,
        width_guess=width_guess_seen,
        separator_calls=separator_calls,
    )
