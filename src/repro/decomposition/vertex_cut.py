"""Minimum U₁-U₂ vertex cuts.

The ``Sep`` algorithm (paper §3.2–3.3) repeatedly asks for a minimum
*vertex* cut separating the vertex sets of two split trees, rejecting the cut
if it exceeds the width guess ``t``.  The paper's definition (§3.2): a
U₁-U₂ vertex cut is a set ``Z ⊆ V(G) \\ (U₁ ∪ U₂)`` whose removal leaves U₁
and U₂ in different connected components; if U₁ and U₂ intersect or are
joined by an edge, the minimum cut size is defined to be ∞.

The implementation is the classical node-splitting reduction to edge
connectivity: every cuttable vertex ``v`` becomes an arc ``v_in → v_out`` of
capacity 1, original edges get infinite capacity, and a BFS-augmenting
(Edmonds–Karp) max-flow bounded by ``limit + 1`` augmentations decides whether
a cut of size ≤ ``limit`` exists and extracts it from the residual graph.
In the distributed algorithm this is the MVC(t) primitive of Lemma 8, costing
Õ(t) part-wise aggregations; the cost accounting lives in
:mod:`repro.shortcuts.operations`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph

NodeId = Hashable

#: Sentinel capacity for arcs that must never be saturated (graph edges and
#: terminal vertices).  Any value larger than |V| works for vertex cuts.
_INF_CAP = 1 << 30


class _FlowNetwork:
    """A tiny adjacency-list max-flow network with integer capacities."""

    def __init__(self) -> None:
        self.cap: Dict[Tuple[int, int], int] = {}
        self.adj: Dict[int, List[int]] = {}

    def add_arc(self, u: int, v: int, capacity: int) -> None:
        if (u, v) not in self.cap:
            self.adj.setdefault(u, []).append(v)
            self.adj.setdefault(v, []).append(u)
            self.cap[(u, v)] = 0
            self.cap.setdefault((v, u), 0)
        self.cap[(u, v)] += capacity

    def bfs_augment(self, source: int, sink: int) -> int:
        """Find one augmenting path (BFS) and push flow along it; return the amount."""
        parent: Dict[int, int] = {source: source}
        queue = deque([source])
        while queue and sink not in parent:
            u = queue.popleft()
            for v in self.adj.get(u, ()):
                if v not in parent and self.cap.get((u, v), 0) > 0:
                    parent[v] = u
                    queue.append(v)
        if sink not in parent:
            return 0
        # Bottleneck along the path.
        bottleneck = _INF_CAP
        v = sink
        while v != source:
            u = parent[v]
            bottleneck = min(bottleneck, self.cap[(u, v)])
            v = u
        v = sink
        while v != source:
            u = parent[v]
            self.cap[(u, v)] -= bottleneck
            self.cap[(v, u)] += bottleneck
            v = u
        return bottleneck

    def reachable_from(self, source: int) -> Set[int]:
        """Vertices reachable from ``source`` in the residual network."""
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in self.adj.get(u, ()):
                if v not in seen and self.cap.get((u, v), 0) > 0:
                    seen.add(v)
                    queue.append(v)
        return seen


def minimum_vertex_cut(
    graph: Graph,
    side_a: Iterable[NodeId],
    side_b: Iterable[NodeId],
    limit: Optional[int] = None,
) -> Optional[Set[NodeId]]:
    """Return a minimum U₁-U₂ vertex cut of size ≤ ``limit``, or ``None``.

    ``None`` is returned both when the minimum cut exceeds ``limit`` and when
    the cut size is ∞ by definition (U₁ ∩ U₂ ≠ ∅ or an edge joins U₁ and U₂),
    mirroring the "output −1" convention of the MVC task in Lemma 8.
    With ``limit=None`` the true minimum cut is returned whenever it is finite.

    The cut never contains vertices of U₁ or U₂.
    """
    a = set(side_a)
    b = set(side_b)
    if not a or not b:
        raise GraphError("both terminal sets must be non-empty")
    for u in a | b:
        if not graph.has_node(u):
            raise GraphError(f"terminal {u!r} not in graph")
    if a & b:
        return None
    for u in a:
        for v in graph.neighbors(u):
            if v in b:
                return None

    if limit is None:
        limit = graph.num_nodes()

    # Node splitting: index 2*i is v_in, 2*i+1 is v_out.
    nodes = sorted(graph.nodes(), key=str)
    index = {u: i for i, u in enumerate(nodes)}
    net = _FlowNetwork()
    SOURCE = 2 * len(nodes)
    SINK = SOURCE + 1

    for u in nodes:
        i = index[u]
        cap = _INF_CAP if (u in a or u in b) else 1
        net.add_arc(2 * i, 2 * i + 1, cap)
    for u, v in graph.edges():
        iu, iv = index[u], index[v]
        net.add_arc(2 * iu + 1, 2 * iv, _INF_CAP)
        net.add_arc(2 * iv + 1, 2 * iu, _INF_CAP)
    for u in a:
        net.add_arc(SOURCE, 2 * index[u], _INF_CAP)
    for v in b:
        net.add_arc(2 * index[v] + 1, SINK, _INF_CAP)

    flow = 0
    while flow <= limit:
        pushed = net.bfs_augment(SOURCE, SINK)
        if pushed == 0:
            break
        flow += pushed
    if flow > limit:
        return None

    reachable = net.reachable_from(SOURCE)
    cut: Set[NodeId] = set()
    for u in nodes:
        i = index[u]
        if u in a or u in b:
            continue
        if 2 * i in reachable and 2 * i + 1 not in reachable:
            cut.add(u)
    return cut


def is_vertex_cut(graph: Graph, side_a: Iterable[NodeId], side_b: Iterable[NodeId], cut: Iterable[NodeId]) -> bool:
    """Check that removing ``cut`` disconnects every vertex of U₁ from every vertex of U₂."""
    a = set(side_a)
    b = set(side_b)
    cut_set = set(cut)
    if cut_set & (a | b):
        return False
    remaining = graph.without_nodes(cut_set)
    for comp in remaining.connected_components():
        if comp & a and comp & b:
            return False
    return True
