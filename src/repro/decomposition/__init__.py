"""Balanced separators and fully polynomial-time tree decomposition (paper §3).

Contents:

* :mod:`~repro.decomposition.vertex_cut` — minimum U₁-U₂ vertex cuts (the MVC
  primitive of Lemma 8) via unit-capacity node-splitting max-flow.
* :mod:`~repro.decomposition.split` — the ``Split`` tree-splitting procedure
  of §3.3 (split a spanning tree into Θ(t) subtrees of size ≈ μ(G)/t sharing
  only their roots).
* :mod:`~repro.decomposition.separator` — the ``Sep`` algorithm (Lemma 1):
  an (X, α)-balanced separator of size O(t²) for any width guess t ≥ τ + 1,
  together with the doubling estimation of t.
* :mod:`~repro.decomposition.tree_decomposition` — the recursive distributed
  tree decomposition of §3.4 / Theorem 1 (width O(τ² log n), depth O(log n)).
* :mod:`~repro.decomposition.validation` — checks that decompositions and
  separators satisfy their definitions (used pervasively in tests).
* :mod:`~repro.decomposition.centralized` — centralized reference
  decompositions (elimination-order based) for comparison.
"""

from repro.decomposition.separator import BalancedSeparator, SeparatorResult, find_balanced_separator
from repro.decomposition.tree_decomposition import (
    TreeDecomposition,
    DecompositionNode,
    build_tree_decomposition,
)
from repro.decomposition.validation import (
    is_valid_tree_decomposition,
    is_balanced_separator,
    validate_tree_decomposition,
)

__all__ = [
    "BalancedSeparator",
    "SeparatorResult",
    "find_balanced_separator",
    "TreeDecomposition",
    "DecompositionNode",
    "build_tree_decomposition",
    "is_valid_tree_decomposition",
    "is_balanced_separator",
    "validate_tree_decomposition",
]
