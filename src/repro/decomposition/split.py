"""The ``Split`` tree-splitting procedure (paper §3.3, step 2).

Given a connected graph G, a weight function μ = μ_X (each vertex weighs 1 if
it belongs to the focus set X, else 0) and a width guess ``t``, ``Split``
decomposes a spanning tree T* of G into a collection of *split trees* such
that

* every split tree is a connected subtree of T*,
* split trees are vertex-disjoint **except for their root vertices**, which
  may be shared,
* the split trees cover V(T*), and
* each split tree has μ-size between ``μ(G)/(lower·t)`` and ``μ(G)/(upper·t)``
  (paper: lower = 12, upper = 4), except that when the whole graph is lighter
  than the lower bound a single tree containing everything is returned.

The paper describes an iterative centroid-based procedure whose point is an
efficient *parallel* CONGEST implementation (O(log t) invocations of subgraph
operations).  Logically the output is exactly a bottom-up carving of the
spanning tree; we implement the carving directly (single post-order pass) and
charge the CONGEST cost of the paper's procedure through the cost model in
:mod:`repro.shortcuts.operations`.  All output invariants listed above are the
ones the correctness proof of ``Sep`` relies on (Appendix B.1) and are checked
by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import DecompositionError, GraphError
from repro.graphs.graph import Graph
from repro.graphs.properties import tree_children

NodeId = Hashable


@dataclass(frozen=True)
class SplitTree:
    """A single split tree: a connected subtree of the spanning tree.

    Attributes
    ----------
    root:
        The root vertex — the only vertex this tree may share with others.
    vertices:
        All vertices of the split tree (including the root).
    mu_size:
        Total μ-weight of the vertices (i.e. |vertices ∩ X|).
    """

    root: NodeId
    vertices: FrozenSet[NodeId]
    mu_size: int

    def __len__(self) -> int:
        return len(self.vertices)


def split_spanning_tree(
    parent: Dict[NodeId, Optional[NodeId]],
    mu: Dict[NodeId, int],
    chunk_size: int,
) -> List[SplitTree]:
    """Carve the tree (child → parent map) into split trees of μ-size ≈ ``chunk_size``.

    Parameters
    ----------
    parent:
        A rooted spanning tree as a ``child -> parent`` map (root maps to ``None``).
    mu:
        Per-vertex μ-weight (0/1 in the paper; any non-negative ints accepted).
    chunk_size:
        Target lower bound ``s`` on the μ-size of each split tree.  The carving
        guarantees every split tree has μ-size < 2·s + max-vertex-weight, and
        ≥ s except possibly for a single residual tree that is merged into the
        last carved tree when one exists.

    Returns
    -------
    list of :class:`SplitTree`
        Covering all vertices of the tree, pairwise vertex-disjoint except for
        shared roots.
    """
    if not parent:
        return []
    if chunk_size < 1:
        raise DecompositionError("chunk_size must be >= 1")
    roots = [u for u, p in parent.items() if p is None]
    if len(roots) != 1:
        raise DecompositionError("split_spanning_tree expects exactly one root")
    root = roots[0]
    children = tree_children(parent)

    carved: List[Tuple[NodeId, Set[NodeId], int]] = []  # (root, vertices, mu)
    # residue[v] = (vertex set, mu weight) of the not-yet-carved part hanging at v.
    residue_vertices: Dict[NodeId, Set[NodeId]] = {}
    residue_mu: Dict[NodeId, int] = {}

    # Iterative post-order traversal.
    stack: List[Tuple[NodeId, bool]] = [(root, False)]
    while stack:
        v, processed = stack.pop()
        if not processed:
            stack.append((v, True))
            for c in children[v]:
                stack.append((c, False))
            continue
        acc_vertices: Set[NodeId] = {v}
        acc_mu = mu.get(v, 0)
        for c in children[v]:
            child_vertices = residue_vertices.pop(c)
            child_mu = residue_mu.pop(c)
            acc_vertices |= child_vertices
            acc_mu += child_mu
            if acc_mu - mu.get(v, 0) >= chunk_size or acc_mu >= 2 * chunk_size:
                # Carve the accumulated chunk, rooted at v; v stays behind as
                # the shared root of both this chunk and whatever follows.
                carved.append((v, set(acc_vertices), acc_mu))
                acc_vertices = {v}
                acc_mu = mu.get(v, 0)
        residue_vertices[v] = acc_vertices
        residue_mu[v] = acc_mu

    leftover_vertices = residue_vertices.pop(root)
    leftover_mu = residue_mu.pop(root)
    if carved and (leftover_mu < chunk_size):
        # Merge the light residue into the most recent carve rooted at the
        # tree root if one exists, else into the last carve (which shares the
        # root by construction of the final accumulation at `root`).
        target_idx = None
        for idx in range(len(carved) - 1, -1, -1):
            if carved[idx][0] == root:
                target_idx = idx
                break
        if target_idx is None:
            target_idx = len(carved) - 1
        r, verts, m = carved[target_idx]
        carved[target_idx] = (r, verts | leftover_vertices, m + leftover_mu)
    else:
        carved.append((root, leftover_vertices, leftover_mu))

    return [
        SplitTree(root=r, vertices=frozenset(verts), mu_size=m) for r, verts, m in carved
    ]


def split_graph(
    graph: Graph,
    focus: Optional[Set[NodeId]],
    t: int,
    lower_divisor: int = 12,
    root: Optional[NodeId] = None,
) -> List[SplitTree]:
    """Run ``Split`` on a connected graph: spanning tree + carving.

    Parameters
    ----------
    graph:
        A connected graph (the current residual graph G_i of ``Sep``).
    focus:
        The focus set X (``None`` means X = V(G)); μ(v) = 1 iff v ∈ X.
    t:
        The width guess; the chunk size is ``ceil(μ(G) / (lower_divisor · t))``.
    lower_divisor:
        The paper's 12 (practical preset uses 6).
    root:
        Optional spanning-tree root (deterministic tests); defaults to the
        smallest vertex by string order.
    """
    if graph.num_nodes() == 0:
        return []
    if not graph.is_connected():
        raise GraphError("split_graph requires a connected graph")
    if t < 1:
        raise DecompositionError("width guess t must be >= 1")
    nodes = graph.nodes()
    if root is None:
        root = min(nodes, key=str)
    mu = {u: (1 if focus is None or u in focus else 0) for u in nodes}
    total = sum(mu.values())
    chunk = max(1, math.ceil(total / (lower_divisor * t))) if total > 0 else 1
    parent = graph.spanning_tree(root=root)
    return split_spanning_tree(parent, mu, chunk)


def split_tree_roots(trees: Sequence[SplitTree]) -> Set[NodeId]:
    """Return the set R of root vertices of the split trees."""
    return {tree.root for tree in trees}


def verify_split_invariants(
    graph: Graph, trees: Sequence[SplitTree], chunk_size: Optional[int] = None
) -> List[str]:
    """Return a list of human-readable invariant violations (empty = all good).

    Checked invariants (used by the correctness proof of ``Sep``):
    coverage of V(G), pairwise disjointness except at roots, and connectivity
    of every split tree in G.
    """
    problems: List[str] = []
    all_vertices: Set[NodeId] = set()
    for tree in trees:
        all_vertices |= tree.vertices
        if tree.root not in tree.vertices:
            problems.append(f"root {tree.root!r} missing from its own tree")
        sub = graph.subgraph(tree.vertices)
        if not sub.is_connected():
            problems.append(f"split tree rooted at {tree.root!r} is not connected")
    if all_vertices != set(graph.nodes()):
        problems.append("split trees do not cover all vertices")
    roots = split_tree_roots(trees)
    for i, a in enumerate(trees):
        for b in trees[i + 1 :]:
            shared = a.vertices & b.vertices
            if shared - roots:
                problems.append(
                    f"trees rooted at {a.root!r} and {b.root!r} share non-root vertices"
                )
    if chunk_size is not None:
        for tree in trees:
            if tree.mu_size > 3 * chunk_size + 1 and len(trees) > 1:
                problems.append(
                    f"split tree rooted at {tree.root!r} has mu-size {tree.mu_size} "
                    f"exceeding 3·chunk+1 = {3 * chunk_size + 1}"
                )
    return problems
