"""Validation of tree decompositions and separators.

Every randomized construction in the library is checked against the
*definitions* (paper §2.2 for tree decompositions, §3.1 for balanced
separators) rather than trusted.  The functions here return detailed
violation lists so that tests and experiments can assert emptiness and report
useful diagnostics on failure.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.errors import DecompositionError
from repro.graphs.graph import Graph

NodeId = Hashable


def tree_decomposition_violations(graph: Graph, td: TreeDecomposition) -> List[str]:
    """Return all violations of the tree-decomposition definition (paper §2.2).

    Conditions checked:

    (a) every vertex of the graph appears in at least one bag;
    (b) every edge of the graph is covered by at least one bag;
    (c) for every vertex, the set of decomposition-tree nodes whose bags
        contain it induces a connected subtree.
    Additionally the label structure itself is checked (each non-root label's
    parent exists; children lists are consistent).
    """
    problems: List[str] = []
    if not td.nodes:
        return ["decomposition has no bags"]

    # Structural sanity of the label tree.
    for label, node in td.nodes.items():
        if label == ():
            if node.parent is not None:
                problems.append("root node has a parent")
        else:
            if label[:-1] not in td.nodes:
                problems.append(f"node {label} has no parent node {label[:-1]}")
            elif label not in td.nodes[label[:-1]].children:
                problems.append(f"node {label} missing from its parent's child list")

    # (a) vertex coverage.
    covered = td.covered_vertices()
    missing = set(graph.nodes()) - covered
    if missing:
        problems.append(f"{len(missing)} vertices not covered by any bag (e.g. {sorted(map(str, missing))[:3]})")

    # (b) edge coverage.
    uncovered_edges = 0
    example = None
    bags_by_vertex: Dict[NodeId, List] = {}
    for label, node in td.nodes.items():
        for v in node.bag:
            bags_by_vertex.setdefault(v, []).append(label)
    for u, v in graph.edges():
        labels_u = set(bags_by_vertex.get(u, ()))
        labels_v = set(bags_by_vertex.get(v, ()))
        if not labels_u & labels_v:
            uncovered_edges += 1
            if example is None:
                example = (u, v)
    if uncovered_edges:
        problems.append(f"{uncovered_edges} edges not covered by any bag (e.g. {example})")

    # (c) connectivity of the bags containing each vertex.
    for v, labels in bags_by_vertex.items():
        if len(labels) <= 1:
            continue
        label_set = set(labels)
        # The labels form a subtree iff every non-minimal label's parent is in the set
        # OR the set is connected through the tree; check via union-find over parent links.
        roots_in_set = 0
        for label in labels:
            if label == () or label[:-1] not in label_set:
                roots_in_set += 1
        if roots_in_set != 1:
            problems.append(
                f"bags containing vertex {v!r} do not induce a connected subtree "
                f"({roots_in_set} root labels)"
            )
    return problems


def is_valid_tree_decomposition(graph: Graph, td: TreeDecomposition) -> bool:
    """``True`` iff ``td`` satisfies the tree-decomposition definition for ``graph``."""
    return not tree_decomposition_violations(graph, td)


def validate_tree_decomposition(graph: Graph, td: TreeDecomposition) -> None:
    """Raise :class:`DecompositionError` listing all violations, if any."""
    problems = tree_decomposition_violations(graph, td)
    if problems:
        raise DecompositionError("; ".join(problems))


def is_balanced_separator(
    graph: Graph,
    separator: Iterable[NodeId],
    alpha: float,
    focus: Optional[Set[NodeId]] = None,
) -> bool:
    """Check the (X, α)-balanced-separator definition (paper §3.1).

    Every connected component of ``graph − separator`` must contain at most
    ``α · |X|`` vertices of the focus set X (X defaults to all vertices).
    """
    sep = set(separator)
    focus_set = set(graph.nodes()) if focus is None else set(focus)
    total = len(focus_set)
    if total == 0:
        return True
    remaining = graph.without_nodes(sep)
    for comp in remaining.connected_components():
        if len(comp & focus_set) > alpha * total:
            return False
    return True


def separator_quality(
    graph: Graph, separator: Iterable[NodeId], focus: Optional[Set[NodeId]] = None
) -> Dict[str, float]:
    """Return quality metrics of a separator: size, balance, number of parts.

    ``balance`` is the fraction of focus weight in the heaviest remaining
    component (lower is better; 0 means the separator swallowed all focus
    vertices).
    """
    sep = set(separator)
    focus_set = set(graph.nodes()) if focus is None else set(focus)
    total = max(1, len(focus_set))
    remaining = graph.without_nodes(sep)
    comps = remaining.connected_components()
    heaviest = max((len(c & focus_set) for c in comps), default=0)
    return {
        "size": float(len(sep)),
        "balance": heaviest / total,
        "components": float(len(comps)),
    }
