"""Centralized reference tree decompositions.

The paper's distributed decomposition produces width O(τ² log n); the natural
baseline it is compared against (experiment E2) is the quality achievable by
standard *centralized* heuristics — min-degree / min-fill elimination orders —
which typically achieve width close to τ.  This module wraps those heuristics
(implemented in :mod:`repro.graphs.treewidth`) in the same
:class:`~repro.decomposition.tree_decomposition.TreeDecomposition` interface so
that validation and comparison code can treat both uniformly.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.decomposition.tree_decomposition import DecompositionNode, TreeDecomposition
from repro.errors import DecompositionError, GraphError
from repro.graphs import treewidth as tw
from repro.graphs.graph import Graph

NodeId = Hashable


def _tree_from_bag_parent(
    bags: Dict[int, set], parent: Dict[int, Optional[int]], graph: Graph
) -> TreeDecomposition:
    """Convert an (integer-indexed) bag tree into a labeled TreeDecomposition."""
    children: Dict[int, List[int]] = {i: [] for i in bags}
    roots = []
    for i, p in parent.items():
        if p is None:
            roots.append(i)
        else:
            children[p].append(i)
    if len(roots) != 1:
        raise DecompositionError("expected a single root in the elimination-order tree")
    root = roots[0]

    td = TreeDecomposition()
    all_vertices = set(graph.nodes())

    # Iterative DFS to avoid recursion limits on path-like decompositions.
    stack: List[Tuple[int, Tuple[int, ...], Optional[Tuple[int, ...]]]] = [(root, (), None)]
    while stack:
        node_idx, label, parent_label = stack.pop()
        node = DecompositionNode(
            label=label,
            bag=frozenset(bags[node_idx]),
            graph_vertices=frozenset(all_vertices),
            free_vertices=frozenset(),
            separator=frozenset(),
            parent=parent_label,
            is_leaf=not children[node_idx],
        )
        td._add_node(node)
        for child_pos, child_idx in enumerate(sorted(children[node_idx])):
            stack.append((child_idx, label + (child_pos,), label))
    td._finalize()
    return td


def centralized_tree_decomposition(graph: Graph, heuristic: str = "min_fill") -> TreeDecomposition:
    """Build a tree decomposition with a centralized elimination-order heuristic.

    Parameters
    ----------
    graph:
        Any undirected graph.
    heuristic:
        ``"min_fill"`` (default) or ``"min_degree"``.

    Returns
    -------
    TreeDecomposition
        A valid decomposition whose width is the heuristic's upper bound on
        the treewidth.
    """
    if graph.num_nodes() == 0:
        raise GraphError("cannot decompose an empty graph")
    if heuristic == "min_fill":
        order = tw.min_fill_order(graph)
    elif heuristic == "min_degree":
        order = tw.min_degree_order(graph)
    else:
        raise GraphError(f"unknown heuristic {heuristic!r}")
    bags, parent = tw.decomposition_from_elimination_order(graph, order)
    # Note: the elimination-order tree is built child -> parent on bag indices.
    return _tree_from_bag_parent(bags, parent, graph)


def centralized_width(graph: Graph) -> int:
    """Width achieved by the best centralized heuristic (upper bound on τ)."""
    return tw.treewidth_upper_bound(graph)
