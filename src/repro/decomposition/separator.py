"""The ``Sep`` balanced-separator algorithm (paper §3.3, Lemma 1).

``Sep`` computes an (X, α)-balanced separator of size O(t²) of a connected
graph, given a width guess ``t ≥ τ + 1``; a doubling loop over ``t`` removes
the need to know τ.  The structure follows the paper exactly:

1. If μ(G) ≤ c·t², output X (trivial separator) and halt.
2. For î = ⌈iterations_factor·t⌉ iterations: split a spanning tree of the
   current residual graph G_i into split trees of μ-size ≈ μ(G)/t (the
   ``Split`` procedure); if the accumulated split-tree roots R* already form a
   balanced separator, output them.  Otherwise recurse into the heaviest
   component of G_i − R_i.
3. Otherwise, sample random ordered pairs of split trees from each iteration
   and compute minimum V(T₁)-V(T₂) vertex cuts of size ≤ t; the union Z of the
   small cuts found is output if it is a balanced separator.
4. If all retries fail, conclude t ≤ τ and double t.

The balancedness of every candidate output is *checked*, never assumed, so
the returned separator is always valid regardless of the randomization.

Round accounting follows Appendix B.2: steps 1–3 are Õ(1) subgraph operations
per iteration (Õ(t·τ·D) total) and step 4 is one BCT(O(t²)) plus one
MVC(O(t), t+1), for a total of Õ(τ²D + τ³) once the doubling loop finishes at
t = Θ(τ).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.config import SeparatorParams
from repro.core.rounds import CostModel, RoundLedger
from repro.decomposition.split import SplitTree, split_graph, split_tree_roots
from repro.decomposition.vertex_cut import minimum_vertex_cut
from repro.errors import DecompositionError, GraphError, SeparatorFailure
from repro.graphs.graph import Graph

NodeId = Hashable


def _mu(focus: Optional[Set[NodeId]], vertices: Iterable[NodeId]) -> int:
    """μ_X weight of a vertex collection (|collection ∩ X|, or |collection| if X is None)."""
    if focus is None:
        return sum(1 for _ in vertices)
    return sum(1 for v in vertices if v in focus)


def is_mu_balanced(
    graph: Graph,
    separator: Set[NodeId],
    focus: Optional[Set[NodeId]],
    alpha: float,
    total_mu: Optional[int] = None,
) -> bool:
    """Check that ``separator`` is an (X, α)-balanced separator of ``graph``.

    Every connected component of ``graph − separator`` must carry at most
    ``α · μ_X(graph)`` focus weight.
    """
    if total_mu is None:
        total_mu = _mu(focus, graph.nodes())
    if total_mu == 0:
        return True
    remaining = graph.without_nodes(separator)
    threshold = alpha * total_mu
    for comp in remaining.connected_components():
        if _mu(focus, comp) > threshold:
            return False
    return True


@dataclass
class SeparatorResult:
    """Outcome of one balanced-separator computation.

    Attributes
    ----------
    separator:
        The separator vertex set S.
    width_guess:
        The final value of the doubling parameter ``t`` that produced S.
    method:
        Which exit produced S: ``"trivial"`` (step 1), ``"roots"`` (step 3) or
        ``"cuts"`` (step 4).
    balance:
        The achieved balance: the largest component μ-fraction after removing S.
    attempts:
        Total number of Sep trials executed (over all values of t).
    rounds:
        Charged CONGEST rounds (0 if no cost model was supplied).
    ledger:
        Per-phase round breakdown.
    """

    separator: Set[NodeId]
    width_guess: int
    method: str
    balance: float
    attempts: int
    rounds: int
    ledger: RoundLedger = field(default_factory=RoundLedger)

    def size(self) -> int:
        return len(self.separator)


class BalancedSeparator:
    """Stateful wrapper around ``Sep`` with doubling width estimation.

    Parameters
    ----------
    params:
        Constants of the algorithm (see :class:`SeparatorParams`).
    rng:
        Source of randomness for pair sampling.
    cost_model:
        Optional :class:`CostModel` used to charge CONGEST rounds; when
        ``None`` the separator is still computed but ``rounds`` is 0.
    """

    def __init__(
        self,
        params: Optional[SeparatorParams] = None,
        rng: Optional[random.Random] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.params = params or SeparatorParams.practical()
        self.params.validate()
        self.rng = rng or random.Random(0)
        self.cost_model = cost_model

    # ------------------------------------------------------------------ #
    def find(
        self,
        graph: Graph,
        focus: Optional[Set[NodeId]] = None,
        initial_t: int = 2,
        max_t: Optional[int] = None,
        known_width: Optional[int] = None,
    ) -> SeparatorResult:
        """Compute an (X, α)-balanced separator with doubling width estimation.

        Parameters
        ----------
        graph:
            A connected graph.
        focus:
            The focus set X (``None`` = all vertices).
        initial_t:
            Starting width guess.
        max_t:
            Safety cap on the doubling loop (default: number of nodes).
        known_width:
            If provided, skip the doubling loop and start at this guess
            (used when an upper bound on τ is already known, e.g. in the
            recursive decomposition where the first level fixed t).
        """
        if graph.num_nodes() == 0:
            return SeparatorResult(set(), initial_t, "trivial", 0.0, 0, 0)
        if not graph.is_connected():
            raise GraphError("Sep requires a connected input graph")
        n = graph.num_nodes()
        cap = max_t if max_t is not None else max(2, n)
        t = max(1, known_width if known_width is not None else initial_t)
        attempts = 0
        ledger = RoundLedger()
        while True:
            for _ in range(self.params.max_retries):
                attempts += 1
                try:
                    sep, method = self._sep_once(graph, focus, t, ledger)
                except SeparatorFailure:
                    continue
                balance = self._achieved_balance(graph, sep, focus)
                rounds = ledger.total()
                return SeparatorResult(
                    separator=sep,
                    width_guess=t,
                    method=method,
                    balance=balance,
                    attempts=attempts,
                    rounds=rounds,
                    ledger=ledger,
                )
            if t >= cap:
                raise DecompositionError(
                    f"Sep failed to find a balanced separator up to width guess {t}"
                )
            t = min(cap, 2 * t)

    # ------------------------------------------------------------------ #
    def _achieved_balance(
        self, graph: Graph, separator: Set[NodeId], focus: Optional[Set[NodeId]]
    ) -> float:
        total = _mu(focus, graph.nodes())
        if total == 0:
            return 0.0
        remaining = graph.without_nodes(separator)
        worst = 0
        for comp in remaining.connected_components():
            worst = max(worst, _mu(focus, comp))
        return worst / total

    # ------------------------------------------------------------------ #
    def _charge(self, ledger: RoundLedger, phase: str, rounds: int) -> None:
        if self.cost_model is not None:
            ledger.charge(phase, rounds)

    def _sep_once(
        self,
        graph: Graph,
        focus: Optional[Set[NodeId]],
        t: int,
        ledger: RoundLedger,
    ) -> Tuple[Set[NodeId], str]:
        """One trial of Sep with width guess ``t``; raises SeparatorFailure on failure."""
        params = self.params
        cm = self.cost_model
        total_mu = _mu(focus, graph.nodes())
        alpha = params.balance_fraction

        # Step 1: trivial separator for small focus weight.
        self._charge(ledger, "sep/step1_count", cm.partwise_aggregation(t) if cm else 0)
        if total_mu <= params.size_threshold_factor * t * t:
            if focus is None:
                sep = set(graph.nodes())
            else:
                sep = {v for v in graph.nodes() if v in focus}
            return sep, "trivial"

        iterations = max(1, math.ceil(params.iterations_factor * t))
        all_tree_sets: List[List[SplitTree]] = []
        accumulated_roots: Set[NodeId] = set()
        current = graph

        # Steps 2-3: iterative splitting and root accumulation.
        for _ in range(iterations):
            if current.num_nodes() == 0 or _mu(focus, current.nodes()) == 0:
                break
            trees = split_graph(
                current,
                None if focus is None else (focus & set(current.nodes())),
                t,
                lower_divisor=params.split_lower_divisor,
            )
            all_tree_sets.append(trees)
            roots = split_tree_roots(trees)
            accumulated_roots |= roots
            if cm:
                # Split = O(log t) subgraph operations; CCD + PA for the balance check.
                split_cost = max(1, math.ceil(math.log2(t + 1))) * cm.subgraph_operation(t)
                self._charge(ledger, "sep/split", split_cost)
                self._charge(ledger, "sep/balance_check", cm.subgraph_operation(t))
            if is_mu_balanced(graph, accumulated_roots, focus, alpha, total_mu):
                return set(accumulated_roots), "roots"
            remaining = current.without_nodes(roots)
            comps = remaining.connected_components()
            if not comps:
                break
            heaviest = max(comps, key=lambda c: (_mu(focus, c), len(c)))
            current = remaining.subgraph(heaviest)

        # Step 4: sampled pairwise vertex cuts.
        cut_union: Set[NodeId] = set()
        num_pairs_total = 0
        for trees in all_tree_sets:
            if len(trees) < 2:
                continue
            for _ in range(params.num_sampled_pairs):
                t1, t2 = self.rng.sample(range(len(trees)), 2)
                a = set(trees[t1].vertices)
                b = set(trees[t2].vertices)
                shared = a & b
                a -= shared
                b -= shared
                if not a or not b:
                    continue
                num_pairs_total += 1
                cut = minimum_vertex_cut(graph, a, b, limit=t)
                if cut is not None:
                    cut_union |= cut
        if cm:
            h = max(1, num_pairs_total)
            self._charge(ledger, "sep/pair_broadcast", cm.broadcast_multi(t, h))
            self._charge(ledger, "sep/vertex_cuts", cm.min_vertex_cut_multi(t, h, t + 1))
        candidate = cut_union | accumulated_roots
        if cut_union and is_mu_balanced(graph, cut_union, focus, alpha, total_mu):
            return cut_union, "cuts"
        if candidate and is_mu_balanced(graph, candidate, focus, alpha, total_mu):
            # The union of roots and cuts is still O(t²) vertices and is how
            # the distributed implementation combines steps 3 and 4.
            return candidate, "cuts"
        raise SeparatorFailure(f"Sep trial failed for width guess t={t}")


def find_balanced_separator(
    graph: Graph,
    focus: Optional[Set[NodeId]] = None,
    params: Optional[SeparatorParams] = None,
    seed: Optional[int] = 0,
    cost_model: Optional[CostModel] = None,
    initial_t: int = 2,
    known_width: Optional[int] = None,
) -> SeparatorResult:
    """Convenience wrapper: compute an (X, α)-balanced separator of ``graph``.

    See :class:`BalancedSeparator` for parameter semantics.
    """
    sep = BalancedSeparator(
        params=params, rng=random.Random(seed), cost_model=cost_model
    )
    return sep.find(graph, focus=focus, initial_t=initial_t, known_width=known_width)
