"""`LabelStore`: a directory of packed labelings, memory-mapped for serving.

The store is the corpus half of the serving stack: :meth:`LabelStore.build`
precomputes labelings for a corpus of graphs and persists each as one
``<name>.rplb`` packed-labeling file (:mod:`repro.labeling.packed`), and
:class:`LabelStore` reopens that directory with ``np.memmap`` views.  The
zero-copy contract follows directly: every server worker process that opens
the same store directory maps the same files, so the kernel shares one set
of physical pages across all workers no matter how many processes serve —
``stats()`` accounts ``mapped_bytes`` per graph and asserts-ably reports
``copied_label_bytes == 0`` for the mapped configuration (the
``shard_stats`` accounting discipline, applied to labels).
"""

from __future__ import annotations

import os
import re
from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

from repro.errors import LabelingError
from repro.labeling.labels import DistanceLabeling
from repro.labeling.packed import PackedLabeling

#: Packed-labeling files use this suffix inside a store directory.
STORE_SUFFIX = ".rplb"

#: Graph names double as file stems, so they must be filesystem-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise LabelingError(
            f"invalid store graph name {name!r}: names must match "
            f"{_NAME_RE.pattern} (they become file stems)"
        )
    return name


def _pack_corpus_value(name: str, value) -> PackedLabeling:
    """Normalise one corpus entry to a :class:`PackedLabeling`.

    Accepts a ready :class:`PackedLabeling`, a dict-form
    :class:`DistanceLabeling`, a :class:`~repro.graphs.digraph.WeightedDiGraph`
    instance (labeled via the paper's construction), or an undirected
    :class:`~repro.graphs.graph.Graph` (directed symmetrically first).
    """
    if isinstance(value, PackedLabeling):
        return value
    if isinstance(value, DistanceLabeling):
        return PackedLabeling.from_labeling(value)

    from repro.graphs.digraph import WeightedDiGraph
    from repro.graphs.graph import Graph

    if isinstance(value, Graph):
        from repro.graphs.generators import to_directed_instance

        value = to_directed_instance(value, orientation="both")
    if isinstance(value, WeightedDiGraph):
        from repro.labeling.construction import build_distance_labeling

        labeling = build_distance_labeling(value).labeling
        return PackedLabeling.from_labeling(labeling)
    raise LabelingError(
        f"corpus entry {name!r} has unsupported type {type(value).__name__}; "
        "expected PackedLabeling, DistanceLabeling, WeightedDiGraph, or Graph"
    )


class LabelStore:
    """Open (and lazily memory-map) a directory of packed labelings.

    ``mmap=True`` (default, numpy) opens every labeling as read-only
    ``np.memmap`` views; ``mmap=False`` or ``backend="pure"`` reads heap
    copies — the configuration the no-numpy CI job serves with.
    """

    def __init__(self, directory, mmap: bool = True, backend: str = "auto") -> None:
        self.directory = os.fspath(directory)
        self.mmap = bool(mmap)
        self.backend = backend
        if not os.path.isdir(self.directory):
            raise LabelingError(f"label store directory {self.directory!r} not found")
        self._paths: Dict[str, str] = {}
        for entry in sorted(os.listdir(self.directory)):
            if entry.endswith(STORE_SUFFIX):
                self._paths[entry[: -len(STORE_SUFFIX)]] = os.path.join(
                    self.directory, entry
                )
        self._cache: Dict[str, PackedLabeling] = {}
        self._unpacked: Dict[str, DistanceLabeling] = {}

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, corpus: Mapping[str, object], directory,
        mmap: bool = True, backend: str = "auto",
    ) -> "LabelStore":
        """Precompute + persist a corpus, then open the resulting store.

        ``corpus`` maps filesystem-safe names to graphs or labelings (see
        :func:`_pack_corpus_value`).  The directory is created if missing;
        existing files for the same names are overwritten.
        """
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        for name, value in corpus.items():
            _check_name(name)
            packed = _pack_corpus_value(name, value)
            packed.save(os.path.join(directory, name + STORE_SUFFIX))
        return cls(directory, mmap=mmap, backend=backend)

    # ------------------------------------------------------------------ #
    def graphs(self) -> Tuple[str, ...]:
        """The corpus names, sorted."""
        return tuple(self._paths)

    def path(self, name: str) -> str:
        if name not in self._paths:
            raise LabelingError(
                f"unknown graph {name!r}; store holds {sorted(self._paths)}"
            )
        return self._paths[name]

    def get(self, name: str) -> PackedLabeling:
        """The packed labeling for ``name`` (opened once, then cached)."""
        packed = self._cache.get(name)
        if packed is None:
            packed = PackedLabeling.load(
                self.path(name), mmap=self.mmap, backend=self.backend
            )
            self._cache[name] = packed
        return packed

    def labeling(self, name: str) -> DistanceLabeling:
        """The dict-form labeling for ``name`` (unpacked once, then cached).

        This is the scalar reference path — the serving bench's baseline
        (``QueryServer(decode="scalar")``) decodes from these labels with
        :func:`~repro.labeling.labels.decode_distance` one pair at a time.
        """
        labeling = self._unpacked.get(name)
        if labeling is None:
            labeling = self.get(name).to_labeling()
            self._unpacked[name] = labeling
        return labeling

    def stats(self) -> Dict[str, object]:
        """Residency accounting across every *opened* labeling.

        ``copied_label_bytes`` counts heap bytes holding label entries —
        zero whenever every opened labeling is memory-mapped, which is the
        multi-worker zero-copy assertion the serving bench makes.
        """
        per_graph = {}
        mapped = copied = 0
        for name, packed in self._cache.items():
            s = packed.stats()
            s["file_bytes"] = os.path.getsize(self._paths[name])
            per_graph[name] = s
            mapped += s["mapped_bytes"]
            copied += s["copied_label_bytes"]
        return {
            "directory": self.directory,
            "graphs": len(self._paths),
            "opened": len(self._cache),
            "mapped_bytes": mapped,
            "copied_label_bytes": copied,
            "per_graph": per_graph,
        }


# --------------------------------------------------------------------------- #
# Seeded corpus helper (bench + example + CI smoke share it)
# --------------------------------------------------------------------------- #
def seeded_corpus(seed: int, n: int) -> Dict[str, object]:
    """A small deterministic corpus of low-treewidth directed instances.

    Three families at size ``n`` — the partial 3-tree workhorse, a grid,
    and a long-diameter caterpillar — directed with asymmetric integer
    weights, so forward and reverse distances genuinely differ.
    """
    from repro.graphs.generators import (
        caterpillar_graph,
        grid_graph,
        partial_k_tree,
        to_directed_instance,
    )

    rows = max(2, int(n ** 0.5))
    cols = max(2, (n + rows - 1) // rows)
    spine = max(2, n // 2)
    undirected = {
        f"ktree{n}": partial_k_tree(n, 3, 0.6, seed=seed + 1),
        f"grid{rows}x{cols}": grid_graph(rows, cols),
        f"caterpillar{spine}": caterpillar_graph(spine, legs_per_node=1),
    }
    return {
        name: to_directed_instance(
            g, weight_range=(1, 9), orientation="asymmetric", seed=seed + i
        )
        for i, (name, g) in enumerate(undirected.items())
    }
