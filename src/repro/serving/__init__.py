"""Distance-query serving: packed label store, query server, client.

The serving stack answers the paper's payoff workload — ``dist(u, v)``
from precomputed labels — at traffic scale:

* :class:`~repro.serving.store.LabelStore` precomputes and memory-maps a
  corpus of :class:`~repro.labeling.packed.PackedLabeling` files
  (zero-copy across server processes);
* :class:`~repro.serving.server.QueryServer` serves point and batched
  queries over localhost TCP with per-tick micro-batching;
* :class:`~repro.serving.server.ServerPool` runs N worker processes over
  one store; :class:`~repro.serving.client.QueryClient` talks to any of
  them.

See ``docs/serving.md`` for the file format, the micro-batching contract,
and the when-to-use table.
"""

from repro.serving.client import QueryClient, QueryRejectedError
from repro.serving.server import QueryServer, ServerPool
from repro.serving.store import LabelStore, seeded_corpus

__all__ = [
    "LabelStore",
    "QueryClient",
    "QueryRejectedError",
    "QueryServer",
    "ServerPool",
    "seeded_corpus",
]
