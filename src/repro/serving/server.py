"""`QueryServer`: a long-running distance-query server over a `LabelStore`.

The server speaks the transport layer's length-prefixed frame idiom
(:mod:`repro.congest.transport`: a ``!I`` byte-length prefix followed by a
pickled tuple) over localhost TCP.  Requests and responses are tuples:

==============================  ==============================================
request                         ``("ok", ...)`` payload
==============================  ==============================================
``("ping",)``                   ``"pong"``
``("graphs",)``                 list of corpus names
``("point", name, u, v)``       ``float`` distance
``("query", name, us, vs)``     list of floats (one batched kernel call)
``("stats",)``                  counters + store residency + RSS
``("shutdown",)``               ``"bye"``; the serve loop then exits
==============================  ==============================================

Application-level failures (unknown graph, unknown vertex, malformed
request object) answer ``("err", message)`` and the connection stays up.

Micro-batching contract
-----------------------
The serve loop is a tick loop.  Each tick reads **at most one frame from
every readable client**, then flushes: all ``point`` requests that arrived
in the tick are coalesced *per graph* into **one** vectorized
``label_query_batch`` kernel call, and every client still gets its own
individual reply frame.  Concurrent point traffic therefore costs one
kernel dispatch per graph per tick instead of one per query — the
``batch_calls`` / ``max_batch`` counters in ``stats()`` make the
coalescing observable.  ``query`` (client-side batches) and the control
verbs are answered inside the tick, before the flush.

Fault containment mirrors the socket transport's tests: a listener that
cannot bind raises :class:`~repro.congest.transport.TransportSetupError`
from the constructor; a client that disconnects mid-frame (or stalls past
``client_timeout``) is dropped and counted while the server keeps serving;
a frame whose declared length exceeds ``max_frame_bytes`` drops that
connection without reading the body; an undecodable or non-tuple payload
gets an ``("err", ...)`` reply.
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket as socket_mod
from typing import Dict, List, Optional, Tuple

from repro.congest.transport import (
    _LEN,
    TransportBrokenError,
    TransportSetupError,
    _recv_exact,
    _send_frame,
)
from repro.errors import LabelingError
from repro.serving.store import LabelStore

#: Default cap on a single request/response frame (8 MiB ≈ 500k pairs).
DEFAULT_MAX_FRAME_BYTES = 8 << 20


class _OversizedFrame(Exception):
    """A client announced a frame larger than ``max_frame_bytes``."""


def _rss_kb() -> int:
    """Current resident set size in KiB (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") // 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-linux
        return 0


class QueryServer:
    """Serve distance queries for a :class:`LabelStore` over localhost TCP.

    The constructor binds and listens (``port=0`` picks a free port;
    ``self.address`` is the bound ``(host, port)``).  Drive it either with
    :meth:`serve_forever` (a thread/process loop) or tick by tick with
    :meth:`tick` — the unit tests drive ticks directly to make the
    micro-batch flush deterministic.
    """

    def __init__(
        self,
        store: LabelStore,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        accel: Optional[str] = None,
        client_timeout: float = 5.0,
        decode: str = "packed",
    ) -> None:
        if decode not in ("packed", "scalar"):
            raise LabelingError(
                f"unknown decode mode {decode!r}; expected 'packed' or 'scalar'"
            )
        self.store = store
        self.max_frame_bytes = int(max_frame_bytes)
        self.client_timeout = float(client_timeout)
        self._accel = accel
        #: ``"packed"`` serves through the vectorized packed kernel with
        #: per-tick micro-batching; ``"scalar"`` is the benchmark baseline —
        #: dict-form ``decode_distance`` one pair at a time, no batching.
        self.decode = decode
        listener = socket_mod.socket(socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        try:
            listener.setsockopt(
                socket_mod.SOL_SOCKET, socket_mod.SO_REUSEADDR, 1
            )
            listener.bind((host, port))
            listener.listen(128)
        except OSError as exc:
            listener.close()
            raise TransportSetupError(
                f"query server cannot listen on {host}:{port}: {exc}"
            ) from None
        listener.setblocking(False)
        self._listener = listener
        self.address: Tuple[str, int] = listener.getsockname()[:2]
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ)
        self._shutdown = False
        self._closed = False
        self._counters: Dict[str, int] = {
            "ticks": 0,
            "requests": 0,
            "point_queries": 0,
            "batched_queries": 0,
            "batch_calls": 0,
            "max_batch": 0,
            "accepted_clients": 0,
            "dropped_clients": 0,
            "oversized_frames": 0,
            "malformed_requests": 0,
        }

    # ------------------------------------------------------------------ #
    # Frame plumbing
    # ------------------------------------------------------------------ #
    def _read_request(self, conn) -> bytes:
        header = _recv_exact(conn, _LEN.size)
        (length,) = _LEN.unpack(header)
        if length > self.max_frame_bytes:
            raise _OversizedFrame(
                f"frame of {length} bytes exceeds max_frame_bytes="
                f"{self.max_frame_bytes}"
            )
        return _recv_exact(conn, length)

    def _reply(self, conn, response) -> bool:
        """Send one response frame; drops the client on a broken pipe."""
        blob = pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            _send_frame(conn, blob)
            return True
        except TransportBrokenError:
            self._drop(conn)
            return False

    def _drop(self, conn) -> None:
        self._counters["dropped_clients"] += 1
        try:
            self._selector.unregister(conn)
        except (KeyError, ValueError):
            pass
        try:
            conn.close()
        except OSError:  # pragma: no cover - close best-effort
            pass

    # ------------------------------------------------------------------ #
    # The tick loop
    # ------------------------------------------------------------------ #
    def tick(self, timeout: float = 0.05) -> int:
        """One serve tick; returns the number of requests processed.

        Accepts ready clients, reads at most one frame per readable
        client, answers control/batched verbs inline, then flushes all
        pending point queries with one kernel call per graph.
        """
        self._counters["ticks"] += 1
        events = self._selector.select(timeout)
        # graph name -> ([(conn, u, v)], ...) collected this tick
        pending: Dict[str, List[Tuple[object, object, object]]] = {}
        served = 0
        for key, _mask in events:
            if key.fileobj is self._listener:
                self._accept()
                continue
            conn = key.fileobj
            try:
                payload = self._read_request(conn)
            except _OversizedFrame:
                self._counters["oversized_frames"] += 1
                self._drop(conn)
                continue
            except TransportBrokenError:
                self._drop(conn)
                continue
            served += 1
            self._counters["requests"] += 1
            self._dispatch(conn, payload, pending)
        self._flush_points(pending)
        return served

    def _accept(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:  # pragma: no cover - listener torn down
                return
            conn.settimeout(self.client_timeout)
            self._selector.register(conn, selectors.EVENT_READ)
            self._counters["accepted_clients"] += 1

    def _dispatch(self, conn, payload: bytes, pending) -> None:
        try:
            request = pickle.loads(payload)
        except Exception as exc:
            self._counters["malformed_requests"] += 1
            self._reply(conn, ("err", f"undecodable request frame: {exc}"))
            return
        if not isinstance(request, tuple) or not request:
            self._counters["malformed_requests"] += 1
            self._reply(conn, ("err", f"malformed request: {request!r}"))
            return
        verb = request[0]
        try:
            if verb == "point" and len(request) == 4:
                _, name, u, v = request
                self.store.path(name)  # unknown graph answers now, not at flush
                pending.setdefault(name, []).append((conn, u, v))
            elif verb == "query" and len(request) == 4:
                _, name, us, vs = request
                vals = self._decode_batch(name, us, vs)
                self._counters["batched_queries"] += len(vals)
                self._reply(conn, ("ok", vals))
            elif verb == "ping" and len(request) == 1:
                self._reply(conn, ("ok", "pong"))
            elif verb == "graphs" and len(request) == 1:
                self._reply(conn, ("ok", list(self.store.graphs())))
            elif verb == "stats" and len(request) == 1:
                self._reply(conn, ("ok", self.stats()))
            elif verb == "shutdown" and len(request) == 1:
                self._shutdown = True
                self._reply(conn, ("ok", "bye"))
            else:
                self._counters["malformed_requests"] += 1
                self._reply(conn, ("err", f"unknown request: {request!r}"))
        except LabelingError as exc:
            self._reply(conn, ("err", str(exc)))

    def _decode_batch(self, name: str, us, vs) -> List[float]:
        """One batch of distances in the active decode mode."""
        if len(us) != len(vs):
            raise LabelingError(
                f"query needs pairs: got {len(us)} sources, {len(vs)} targets"
            )
        if self.decode == "scalar":
            from repro.labeling.labels import decode_distance

            labeling = self.store.labeling(name)
            return [
                float(decode_distance(labeling.label(u), labeling.label(v)))
                for u, v in zip(us, vs)
            ]
        vals = self.store.get(name).query(us, vs, accel=self._accel)
        return [float(x) for x in vals]

    def _flush_points(self, pending) -> None:
        for name, items in pending.items():
            us = [u for _conn, u, _v in items]
            vs = [v for _conn, _u, v in items]
            try:
                vals = self._decode_batch(name, us, vs)
            except LabelingError:
                # e.g. an unknown vertex poisons the batch: answer each
                # pair individually so good queries still succeed.
                for conn, u, v in items:
                    try:
                        val = self.store.get(name).distance(u, v)
                    except LabelingError as exc:
                        self._reply(conn, ("err", str(exc)))
                    else:
                        self._counters["point_queries"] += 1
                        self._reply(conn, ("ok", float(val)))
                continue
            self._counters["point_queries"] += len(items)
            self._counters["batch_calls"] += 1
            if len(items) > self._counters["max_batch"]:
                self._counters["max_batch"] = len(items)
            for (conn, _u, _v), val in zip(items, vals):
                self._reply(conn, ("ok", float(val)))

    def serve_forever(self, stop=None, tick_timeout: float = 0.05) -> None:
        """Tick until a ``shutdown`` request arrives or ``stop`` is set."""
        while not self._shutdown and (stop is None or not stop.is_set()):
            self.tick(tick_timeout)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        return {
            "address": list(self.address),
            "decode": self.decode,
            "counters": dict(self._counters),
            "store": self.store.stats(),
            "rss_kb": _rss_kb(),
            "pid": os.getpid(),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for key in list(self._selector.get_map().values()):
            try:
                self._selector.unregister(key.fileobj)
            except (KeyError, ValueError):  # pragma: no cover
                pass
            try:
                key.fileobj.close()
            except OSError:  # pragma: no cover
                pass
        self._selector.close()
        self._listener = None

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# Multi-worker process serving
# --------------------------------------------------------------------------- #
def _worker_main(store_dir, conn, mmap, backend, accel, max_frame_bytes, decode):
    store = LabelStore(store_dir, mmap=mmap, backend=backend)
    try:
        server = QueryServer(
            store, accel=accel, max_frame_bytes=max_frame_bytes, decode=decode
        )
    except TransportSetupError as exc:  # pragma: no cover - port 0 binds
        conn.send(("err", str(exc)))
        conn.close()
        return
    conn.send(("ok", server.address))
    conn.close()
    try:
        server.serve_forever()
    finally:
        server.close()


class ServerPool:
    """N worker processes, each a :class:`QueryServer` over the same store.

    Every worker opens (and memory-maps) the same store directory — the
    zero-copy sharing the bench asserts via each worker's
    ``stats()["store"]["copied_label_bytes"] == 0``.  ``close()`` sends
    each worker a ``shutdown`` request and joins it.
    """

    def __init__(
        self,
        store_dir,
        num_workers: int = 2,
        mmap: bool = True,
        backend: str = "auto",
        accel: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        decode: str = "packed",
    ) -> None:
        from repro.congest.engine import _mp_context

        ctx = _mp_context()
        self.processes = []
        self.addresses: List[Tuple[str, int]] = []
        try:
            for _ in range(int(num_workers)):
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        os.fspath(store_dir), child_conn, mmap, backend,
                        accel, max_frame_bytes, decode,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                status, value = parent_conn.recv()
                parent_conn.close()
                if status != "ok":
                    raise TransportSetupError(value)
                self.processes.append(proc)
                self.addresses.append(tuple(value))
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        from repro.serving.client import QueryClient

        for address in self.addresses:
            try:
                with QueryClient(address, timeout=5.0) as client:
                    client.shutdown()
            except (OSError, TransportBrokenError):  # pragma: no cover
                pass
        self.addresses = []
        for proc in self.processes:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - shutdown is cooperative
                proc.terminate()
                proc.join(timeout=5.0)
        self.processes = []

    def __enter__(self) -> "ServerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
