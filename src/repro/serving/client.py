"""`QueryClient`: a blocking client for :class:`~repro.serving.server.QueryServer`.

One TCP connection, one pickled length-prefixed request frame per call,
one reply frame back.  ``("err", message)`` replies raise
:class:`QueryRejectedError`; transport failures surface as the transport
layer's :class:`~repro.congest.transport.TransportBrokenError`.
"""

from __future__ import annotations

import pickle
import socket as socket_mod
from typing import List, Sequence, Tuple

from repro.congest.transport import (
    TransportBrokenError,
    _recv_frame,
    _send_frame,
)


class QueryRejectedError(RuntimeError):
    """The server answered ``("err", message)`` — an application refusal
    (unknown graph/vertex, malformed request), not a transport failure."""


class QueryClient:
    """Blocking request/reply client for one server address."""

    def __init__(self, address: Tuple[str, int], timeout: float = 10.0) -> None:
        self.address = tuple(address)
        self._sock = socket_mod.create_connection(self.address, timeout=timeout)
        self._sock.settimeout(timeout)

    def _call(self, request):
        _send_frame(
            self._sock, pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
        )
        reply = pickle.loads(_recv_frame(self._sock))
        if not isinstance(reply, tuple) or len(reply) != 2:
            raise TransportBrokenError(f"malformed server reply: {reply!r}")
        status, value = reply
        if status == "ok":
            return value
        raise QueryRejectedError(str(value))

    # ------------------------------------------------------------------ #
    def ping(self) -> str:
        return self._call(("ping",))

    def graphs(self) -> List[str]:
        return self._call(("graphs",))

    def point(self, name: str, u, v) -> float:
        """One distance; coalesced server-side with concurrent points."""
        return self._call(("point", name, u, v))

    def query(self, name: str, us: Sequence, vs: Sequence) -> List[float]:
        """A client-side batch: one frame, one kernel call, one reply."""
        return self._call(("query", name, list(us), list(vs)))

    def server_stats(self) -> dict:
        return self._call(("stats",))

    def shutdown(self) -> str:
        return self._call(("shutdown",))

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
