"""Weighted girth computation (paper §7, Theorem 5).

* Directed graphs: the length of the shortest cycle through an edge (u, v) is
  c(u, v) + d_G(v, u); the girth is the minimum over all edges, computed from
  the distance labeling by exchanging labels across each edge.
* Undirected graphs: the edge-reuse problem ("the shortest closed walk may
  fold onto itself") is solved with the stateful-walk framework — exact
  count-1 closed walks under a random 0/1 edge labeling upper-bound the girth
  (Lemma 6) and hit it with constant probability when exactly one edge of some
  shortest cycle is labeled 1; a doubling guess of the number of shortest-
  cycle edges plus O(log n) trials amplify the success probability.

* :mod:`~repro.girth.girth` — both algorithms with round accounting.
* :mod:`~repro.girth.baselines` — exact centralized girth references.
"""

from repro.girth.girth import compute_girth, directed_girth, undirected_girth, GirthResult
from repro.girth.baselines import exact_girth_directed, exact_girth_undirected

__all__ = [
    "compute_girth",
    "directed_girth",
    "undirected_girth",
    "GirthResult",
    "exact_girth_directed",
    "exact_girth_undirected",
]
