"""Weighted girth in the CONGEST model (paper §7, Theorem 5).

Directed case
    The length of the shortest directed cycle through an edge (u, v) is
    c(u, v) + d_G(v, u).  After the distance labeling of Theorem 2 is built,
    the endpoints of every edge exchange their labels (Õ(τ²) rounds, all edges
    in parallel), each edge computes its candidate cycle length locally, and a
    global minimum aggregation (O(D) rounds) yields the girth.

Undirected case
    The shortest closed walk through an edge may "fold onto itself", so the
    directed reduction is invalid.  Instead, edges receive independent random
    0/1 labels; by Lemma 6 every *exact count-1* closed walk has weight at
    least the girth g, and if some shortest cycle carries exactly one label-1
    edge, the shortest exact count-1 closed walk through its vertices has
    weight exactly g.  Each node v obtains the shortest exact count-1 closed
    walk length through itself from the constrained distance labeling
    CDL(C_cnt(1)) (a purely local decode of its own label), and a global
    minimum aggregation finishes the trial.  A doubling guess of the number of
    shortest-cycle edges and O(log n) independent trials per guess make the
    estimate exact with high probability; it is an upper bound on g in every
    trial, so the final minimum never undershoots.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.config import FrameworkConfig
from repro.core.rounds import CostModel, RoundLedger
from repro.decomposition.tree_decomposition import (
    DecompositionResult,
    build_tree_decomposition,
)
from repro.errors import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter
from repro.labeling.construction import DistanceLabelingResult, build_distance_labeling
from repro.walks.cdl import build_constrained_labeling
from repro.walks.constraints import CountWalkConstraint

NodeId = Hashable
INF = math.inf


@dataclass
class GirthResult:
    """The computed girth together with provenance and round accounting.

    Attributes
    ----------
    girth:
        The weighted girth (``inf`` for acyclic inputs).
    method:
        ``"directed"`` or ``"undirected"``.
    rounds:
        Charged CONGEST rounds (including the labeling constructions).
    ledger:
        Per-phase breakdown.
    trials:
        Number of random-labeling trials executed (undirected case; 0 for the
        directed case).
    exact_whp:
        ``True`` when the output is exact with high probability under the
        algorithm's analysis (always an upper bound regardless).
    """

    girth: float
    method: str
    rounds: int
    ledger: RoundLedger
    trials: int = 0
    exact_whp: bool = True


def _is_symmetric(instance: WeightedDiGraph) -> bool:
    """Heuristic: does every directed edge have an equal-weight reverse twin?"""
    weights: Dict[Tuple[NodeId, NodeId], List[float]] = {}
    for e in instance.edges():
        weights.setdefault((e.tail, e.head), []).append(e.weight)
    for (u, v), ws in weights.items():
        back = weights.get((v, u))
        if back is None or sorted(ws) != sorted(back):
            return False
    return True


# --------------------------------------------------------------------------- #
# Directed girth
# --------------------------------------------------------------------------- #
def directed_girth(
    instance: WeightedDiGraph,
    labeling: Optional[DistanceLabelingResult] = None,
    config: Optional[FrameworkConfig] = None,
    cost_model: Optional[CostModel] = None,
) -> GirthResult:
    """Weighted girth of a directed multigraph via per-edge label exchange."""
    config = config or FrameworkConfig()
    comm = instance.underlying_graph()
    if cost_model is None:
        cost_model = CostModel(
            n=comm.num_nodes(),
            diameter=diameter(comm, exact=comm.num_nodes() <= 600),
            log_factor_exponent=config.cost_log_exponent,
            constant=config.cost_constant,
        )
    ledger = RoundLedger()
    if labeling is None:
        labeling = build_distance_labeling(instance, config=config, cost_model=cost_model)
    ledger.merge(labeling.ledger, prefix="girth/labeling")

    best = INF
    lab = labeling.labeling
    for e in instance.edges():
        if e.tail == e.head:
            best = min(best, e.weight)
            continue
        back = lab.distance(e.head, e.tail)
        if back != INF:
            best = min(best, e.weight + back)

    # Label exchange across every edge in parallel: Õ(label size) rounds; then
    # a global minimum aggregation: O(D) rounds.
    ledger.charge("girth/label_exchange", cost_model._c(3 * lab.max_entries()))
    ledger.charge("girth/aggregate_min", cost_model._c(cost_model.d))
    return GirthResult(
        girth=best,
        method="directed",
        rounds=ledger.total(),
        ledger=ledger,
        trials=0,
        exact_whp=True,
    )


# --------------------------------------------------------------------------- #
# Undirected girth
# --------------------------------------------------------------------------- #
def undirected_girth(
    graph: Graph,
    config: Optional[FrameworkConfig] = None,
    cost_model: Optional[CostModel] = None,
    trials_per_scale: int = 6,
    scales: Optional[List[int]] = None,
    decomposition: Optional[DecompositionResult] = None,
) -> GirthResult:
    """Weighted girth of an undirected graph via exact count-1 closed walks.

    Parameters
    ----------
    graph:
        A connected, weighted, undirected simple graph.
    trials_per_scale:
        Independent random labelings per doubling guess ĉ (paper: O(log n)).
    scales:
        The doubling guesses ĉ of |F| (the number of edges on shortest
        cycles); defaults to powers of two up to the edge count.
    decomposition:
        Optional pre-built decomposition of the graph, reused by every trial.
    """
    config = config or FrameworkConfig()
    if graph.num_nodes() == 0:
        raise GraphError("cannot compute the girth of an empty graph")
    if not graph.is_connected():
        raise GraphError("undirected_girth requires a connected graph")

    if cost_model is None:
        cost_model = CostModel(
            n=graph.num_nodes(),
            diameter=diameter(graph, exact=graph.num_nodes() <= 600),
            log_factor_exponent=config.cost_log_exponent,
            constant=config.cost_constant,
        )
    rng = config.rng()
    ledger = RoundLedger()
    if decomposition is None:
        decomposition = build_tree_decomposition(graph, config=config, cost_model=cost_model)
    ledger.merge(decomposition.ledger, prefix="girth/decomposition")

    m = graph.num_edges()
    if m == 0:
        return GirthResult(INF, "undirected", ledger.total(), ledger, 0, True)
    if scales is None:
        scales = []
        c = 1
        while c <= 2 * m:
            scales.append(c)
            c *= 2

    undirected_edges = graph.edges()
    constraint = CountWalkConstraint(1)
    target_state = constraint.exact_target_state()
    best = INF
    trials = 0

    for scale in scales:
        p = 1.0 / (3.0 * scale)
        for _ in range(max(1, trials_per_scale)):
            trials += 1
            labels = {edge: (1 if rng.random() < p else 0) for edge in undirected_edges}
            instance = WeightedDiGraph(graph.nodes())
            for (u, v) in undirected_edges:
                w = graph.weight(u, v)
                instance.add_undirected_edge(u, v, weight=w, label=labels[(u, v)])
            cdl = build_constrained_labeling(
                instance,
                constraint,
                config=config,
                cost_model=cost_model,
                decomposition=decomposition,
            )
            # Each node decodes the shortest exact count-1 closed walk through
            # itself from its own label (purely local), then one global min.
            for v in graph.nodes():
                g_v = cdl.labeling.distance(v, v, target_state)
                if g_v < best:
                    best = g_v
            ledger.charge("girth/trial_labeling", cdl.product_label_rounds * cdl.simulation_overhead)
            ledger.charge("girth/trial_aggregate", cost_model._c(cost_model.d))

    return GirthResult(
        girth=best,
        method="undirected",
        rounds=ledger.total(),
        ledger=ledger,
        trials=trials,
        exact_whp=True,
    )


# --------------------------------------------------------------------------- #
# Dispatcher
# --------------------------------------------------------------------------- #
def compute_girth(
    instance: WeightedDiGraph,
    config: Optional[FrameworkConfig] = None,
    cost_model: Optional[CostModel] = None,
    directed: Optional[bool] = None,
    **undirected_kwargs,
) -> GirthResult:
    """Compute the weighted girth, dispatching on the instance's symmetry.

    ``directed=None`` (default) treats a symmetric instance (every edge has an
    equal-weight reverse twin) as an undirected graph — in that case directed
    2-cycles are artefacts of the encoding, not real cycles — and everything
    else as directed.
    """
    if directed is None:
        directed = not _is_symmetric(instance)
    if directed:
        return directed_girth(instance, config=config, cost_model=cost_model)
    return undirected_girth(
        instance.underlying_weighted_graph(),
        config=config,
        cost_model=cost_model,
        **undirected_kwargs,
    )
