"""Exact centralized girth baselines.

Used by tests and benchmarks to validate the distributed algorithms of §7.

* Directed weighted girth: for every edge (u, v), the shortest cycle through
  it has weight c(u, v) + d(v, u); minimise over edges (one Dijkstra per
  vertex suffices).
* Undirected weighted girth: for every edge {u, v}, the shortest cycle using
  it has weight c(u, v) + d_{G−e}(u, v); minimise over edges.  This is the
  textbook O(m · SSSP) algorithm; it is exact for positive weights.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Hashable, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph
from repro.graphs.properties import dijkstra

NodeId = Hashable
INF = math.inf


def exact_girth_directed(instance: WeightedDiGraph) -> float:
    """Exact weighted girth of a directed multigraph (``inf`` if acyclic).

    Self-loops count as cycles of their own weight.
    """
    best = INF
    # Self-loops are length-1 cycles.
    for e in instance.edges():
        if e.tail == e.head:
            best = min(best, e.weight)
    # For every vertex v, distances d(v, ·); then for every edge (u, v),
    # candidate cycle c(u, v) + d(v, u).
    dist_from: Dict[NodeId, Dict[NodeId, float]] = {
        v: dijkstra(instance, v) for v in instance.nodes()
    }
    for e in instance.edges():
        if e.tail == e.head:
            continue
        back = dist_from[e.head].get(e.tail, INF)
        if back != INF:
            best = min(best, e.weight + back)
    return best


def _dijkstra_excluding_edge(
    graph: Graph, source: NodeId, excluded: Tuple[NodeId, NodeId]
) -> Dict[NodeId, float]:
    """Weighted single-source distances avoiding one specific undirected edge."""
    ex = frozenset(excluded)
    dist: Dict[NodeId, float] = {source: 0.0}
    heap = [(0.0, 0, source)]
    counter = 0
    settled: Set[NodeId] = set()
    while heap:
        d, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v in graph.neighbors(u):
            if frozenset((u, v)) == ex:
                continue
            nd = d + graph.weight(u, v)
            if nd < dist.get(v, INF):
                dist[v] = nd
                counter += 1
                heapq.heappush(heap, (nd, counter, v))
    return dist


def exact_girth_undirected(graph: Graph) -> float:
    """Exact weighted girth of a simple undirected graph (``inf`` if a forest)."""
    if graph.num_nodes() == 0:
        return INF
    best = INF
    for u, v in graph.edges():
        w = graph.weight(u, v)
        if w >= best:
            continue
        detour = _dijkstra_excluding_edge(graph, u, (u, v)).get(v, INF)
        if detour != INF:
            best = min(best, w + detour)
    return best


def unweighted_girth_undirected(graph: Graph) -> float:
    """Exact unweighted girth (number of edges of the shortest cycle)."""
    unit = Graph(nodes=graph.nodes())
    for u, v in graph.edges():
        unit.add_edge(u, v, weight=1.0)
    return exact_girth_undirected(unit)
