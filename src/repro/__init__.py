"""repro — Fully Polynomial-Time Distributed Computation in Low-Treewidth Graphs.

A reproduction of Izumi, Kitamura, Naruse & Schwartzman (SPAA 2022,
arXiv:2205.14897) as a self-contained Python library.  The package provides:

* a CONGEST-model simulator (:mod:`repro.congest`),
* low-treewidth graph substrates and generators (:mod:`repro.graphs`),
* part-wise aggregation / low-congestion-shortcut primitives
  (:mod:`repro.shortcuts`),
* the paper's fully polynomial-time balanced separator and tree
  decomposition algorithms (:mod:`repro.decomposition`),
* exact distance labeling and single-source shortest paths
  (:mod:`repro.labeling`),
* the stateful-walk constraint framework (:mod:`repro.walks`),
* exact bipartite maximum matching (:mod:`repro.matching`),
* weighted girth computation (:mod:`repro.girth`),
* centralized baselines (:mod:`repro.baselines`) and experiment tooling
  (:mod:`repro.analysis`).

The high-level facade lives in :mod:`repro.core.api`:

>>> from repro import LowTreewidthSolver
>>> from repro.graphs import generators
>>> g = generators.partial_k_tree(60, 3, seed=1)
>>> solver = LowTreewidthSolver.from_undirected(g, seed=1)
>>> dist = solver.single_source_shortest_paths(source=0)
"""

from repro._version import __version__
from repro.core.api import LowTreewidthSolver

__all__ = ["__version__", "LowTreewidthSolver"]
