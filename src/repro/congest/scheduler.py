"""Event-driven asynchronous execution tier for the CONGEST simulator.

This module implements ``engine="async"`` — the fifth execution tier of
:meth:`CongestNetwork.run`.  Instead of the lockstep round loop of the
synchronous tiers, a discrete-event scheduler drives the network from an
event queue: every (arc, message) pair is assigned an integer *delivery
time* by a pluggable :class:`DelayModel`, and nodes advance through their
protocol whenever the messages they are waiting for have arrived.

**Two interchangeable event queues** (``run_async(..., scheduler=...)``):

``"bucketed"`` (default)
    A calendar queue: events are appended to per-instant *buckets* (a dict
    keyed by delivery time plus a small heap of the distinct bucket times),
    and the loop pops whole buckets instead of individual heap entries.
    Because delays are ``>= 1``, every push targets a strictly future
    instant, so a draining bucket never grows and append order within a
    bucket equals the heap's sequence order.  Events are compact per-kind
    tuples, and a quiet node's run of same-delay empty pulse markers — the
    dominant traffic of a converging protocol — collapses into a single
    range event covering its consecutive CSR arc positions.  This is the
    fast path: it removes the per-envelope ``heappush``/``heappop`` pair
    (an O(log queue) tuple comparison each) from the hot loop.

``"heap"``
    The reference implementation: one binary-heap entry per envelope,
    ordered by ``(time, seq)``.  Kept verbatim as the semantic oracle; the
    schedule-fuzz sweep cross-checks the two queues event-for-event.

Both queues process the same events in the same order, so results, message
ledger, round trace, ``virtual_time``, fault semantics (``_EV_FAULT`` fires
before any same-instant envelope) and the deterministic ``async_stats``
fields are bit-for-bit identical — asserted across the equivalence families
in ``tests/test_async_scheduler.py``.  The only permitted divergence is the
interleaving of ``EventRecord`` entries *within* one virtual-time instant
(range events deliver their markers back-to-back), which no accounting
observes, and the wall-clock ``events_per_sec`` figure.

**The α-synchronizer adapter.**  The protocols of this repository are written
against synchronous rounds (one :meth:`NodeAlgorithm.on_round` call per
round, all round-``r`` messages delivered together).  The async tier runs
them *unmodified* by layering an α-synchronizer on top of the event queue:

* each node proceeds through local *pulses* ``0, 1, 2, ...`` (pulse 0 is
  :meth:`NodeAlgorithm.initialize`; pulse ``p ≥ 1`` is the node's execution
  of synchronous round ``p``);
* when a node completes pulse ``p`` it puts one *envelope* on every incident
  arc — the protocol message for that neighbour if the round's outbox
  contains one, otherwise an empty pulse marker (the synchronizer's "safe"
  signal rides the same wire).  The envelope's travel time is
  ``DelayModel.delay(arc, p)``; a node also pays one local time unit per
  pulse (its self-clock), so virtual time advances even on isolated nodes;
* a node may execute pulse ``p + 1`` once the pulse-``p`` envelope of
  *every* neighbour has arrived (plus its own self-clock tick).  Its inbox
  is exactly the protocol messages its neighbours sent in round ``p``,
  delivered in ascending sender-index order — the delivery order of the
  synchronous tiers.

Because a pulse-``p + 1`` inbox is independent of *when* its envelopes
arrived, the protocol execution (outputs, halting, message traffic) is a
pure function of the protocol and the graph — **schedule-invariant** by
construction.  Under the :class:`UnitDelay` model every envelope takes one
time unit, node pulses coincide with global rounds, and the whole run —
results, message/word/bandwidth ledger, round trace — is bit-for-bit
identical to the four synchronous tiers (asserted across the randomized
equivalence families in ``tests/test_async_scheduler.py``).  Under any other
seeded model, protocol *outputs* are identical while the *timing* changes:
``SimulationResult.virtual_time`` reports the event-queue time of the last
executed pulse, and ``SimulationResult.async_stats`` reports per-arc
in-flight high-water marks (how many payload-carrying envelopes overlapped
on one directed link — > 1 shows pipelining across a slow link).

**Accounting contract.**  Only protocol messages are accounted: empty pulse
markers model the synchronizer's control traffic and are free, so
``messages_sent`` / ``words_sent`` / ``max_words_per_edge_round`` /
``max_message_words`` equal the synchronous tiers under *every* delay model
(the same messages cross the same edges in the same logical rounds).  A
:class:`~repro.congest.engine.SimulationTrace` receives the same per-round
:class:`~repro.congest.engine.RoundStats` records as the synchronous tiers;
constructing it with ``record_events=True`` additionally captures one
:class:`EventRecord` per send / delivery / node execution with virtual
timestamps.

**Termination.**  The scheduler is omniscient: it applies the synchronous
stop rules (global quiescence / all nodes halted / ``max_rounds``) to each
globally completed pulse.  A node that is ready to enter pulse ``p + 1``
while no round-``p`` message has been generated anywhere yet is held until
either some node sends one (the run certainly continues) or every node has
completed pulse ``p`` and the run is known to continue — so no protocol
callback ever runs that the synchronous tiers would not have run.

**Fault injection.**  ``run_async(..., fault_schedule=...)`` accepts a
:class:`~repro.congest.faults.FaultSchedule` (or seeded
:class:`~repro.congest.faults.FaultModel` generator) whose node/edge
crash+recover transitions enter the same event queue as ``_EV_FAULT``
events.  The synchronizer's control plane is modelled as reliable: a
crashed node's pulses keep ticking as scheduler-driven *ghost* pulses that
run no protocol code, so pulse structure, round accounting and the
fault-free fast path are untouched — only protocol payloads (dropped on
crashed links / to-from crashed nodes, but still charged to the ledger at
send) and protocol state (lost on crash, rebuilt from ``initialize`` plus
:meth:`~repro.congest.node.NodeAlgorithm.on_link_recovery` re-announcements
on restart) fail.  See :mod:`repro.congest.faults` for the model,
determinism and reconvergence contracts; the run's fault accounting is
returned as ``SimulationResult.fault_verdict``.

**Delay models** (all deterministic: a delay is a pure seeded function of
``(arc, pulse)``, so a run is reproducible from the model alone):

=====================  =====================================================
:class:`UnitDelay`     every envelope takes 1 time unit (≡ synchronous)
:class:`UniformDelay`  i.i.d. integers from ``[low, high]``, seeded per
                       (arc, pulse)
:class:`PerArcDelay`   fixed per-directed-arc delays given as
                       ``{(u, v): delay}``, default elsewhere
:class:`SlowLinkDelay` adversarial: a seeded random subset of directed arcs
                       is slowed to ``slow_delay``, the rest run at
                       ``fast_delay``
=====================  =====================================================
"""

from __future__ import annotations

import pickle
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from operator import index
from time import perf_counter
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.congest.engine import RoundStats, SimulationTrace
from repro.congest.faults import FaultVerdict, resolve_fault_schedule
from repro.congest.message import Message, payload_size_words
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import (
    BandwidthExceededError,
    ConvergenceError,
    GraphError,
    SimulationError,
)

NodeId = Hashable

_M64 = (1 << 64) - 1

#: Event kinds on the scheduler heap.
_EV_ENVELOPE = 0  # an envelope (empty or payload-carrying) reaches its arc head
_EV_TICK = 1  # a node's per-pulse self-clock fires
_EV_FAULT = 2  # a scheduled fault transition fires (see repro.congest.faults)
_EV_RANGE = 3  # bucketed queue only: a run of empty pulse markers on the
#               consecutive arc positions [lo, hi) of one sender's CSR slice
_EV_RANGE_TICK = 4  # bucketed queue only: a silent unit-delay execute in one
#               event — the node's whole marker run fused with its self-tick
#               (always adjacent in the bucket, so fusing preserves order)

#: Event-queue implementations accepted by ``run_async(..., scheduler=...)``.
SCHEDULERS = ("heap", "bucketed")


def _mix(*parts: int) -> int:
    """A SplitMix64-style integer hash, order-sensitive and seed-stable.

    Delay models use this instead of :class:`random.Random` state so a delay
    is a *pure function* of (seed, arc, pulse): the schedule is independent
    of event processing order and of how many delays were drawn before.
    """
    x = 0x9E3779B97F4A7C15
    for v in parts:
        x = (x ^ (v & _M64)) * 0xBF58476D1CE4E5B9 & _M64
        x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 29
    return x


# --------------------------------------------------------------------------- #
# Delay models
# --------------------------------------------------------------------------- #
class DelayModel:
    """Assigns every (arc, pulse) envelope an integer travel time ``≥ 1``.

    Subclasses override :meth:`delay` (and optionally :meth:`bind`, called
    once per run with the network's
    :class:`~repro.graphs.indexed.IndexedGraph` snapshot to resolve node-id
    keyed configuration into dense arc positions).  Delays must be a
    deterministic function of the model's construction parameters and
    ``(arc, pulse)`` — never of call order — so that any observed schedule
    is reproducible from the model alone.  Models must also be picklable
    (:meth:`CongestNetwork.run` falls back to the fast tier, with an
    :class:`~repro.congest.engine.EngineFallbackWarning`, for models that are
    not: a schedule that cannot be snapshotted cannot be replayed).
    """

    def bind(self, indexed) -> None:
        """Resolve per-run structure; called once before the event loop.

        Subclasses may precompute dense per-arc tables here.  Keep only what
        :meth:`delay` needs — models stay pickle-small and reusable across
        runs (do not retain the graph snapshot itself).
        """

    def delay(self, arc: int, pulse: int) -> int:
        """Travel time of the pulse-``pulse`` envelope on arc position ``arc``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class UnitDelay(DelayModel):
    """Every envelope takes exactly one time unit.

    The calibration model: with it the asynchronous execution is bit-for-bit
    identical — results, ledger, trace, and ``virtual_time == rounds`` — to
    the synchronous tiers.
    """

    def delay(self, arc: int, pulse: int) -> int:
        return 1

    def __repr__(self) -> str:
        return "UnitDelay()"


class UniformDelay(DelayModel):
    """Independent uniform integer delays from ``[low, high]``, seeded.

    Each (arc, pulse) pair draws its own delay via a stateless hash of
    ``(seed, arc, pulse)``, so two runs with the same seed see the same
    schedule regardless of execution order.
    """

    def __init__(self, low: int = 1, high: int = 4, seed: int = 0) -> None:
        if not 1 <= int(low) <= int(high):
            raise ValueError(
                f"UniformDelay requires 1 <= low <= high, got [{low}, {high}]"
            )
        self.low = int(low)
        self.high = int(high)
        self.seed = int(seed)

    def delay(self, arc: int, pulse: int) -> int:
        span = self.high - self.low + 1
        return self.low + _mix(self.seed, arc, pulse) % span

    def __repr__(self) -> str:
        return f"UniformDelay({self.low}, {self.high}, seed={self.seed})"


class PerArcDelay(DelayModel):
    """Fixed per-directed-arc delays, keyed by ``(tail, head)`` node ids.

    ``delays`` maps directed arcs — ``(u, v)`` meaning messages *from* ``u``
    *to* ``v`` — to integer delays; every unlisted arc uses ``default``.
    The two directions of an edge are independent keys.  Unknown arcs raise
    :class:`~repro.errors.GraphError` at bind time.
    """

    def __init__(
        self,
        delays: Optional[Mapping[Tuple[NodeId, NodeId], int]] = None,
        default: int = 1,
    ) -> None:
        if int(default) < 1:
            raise ValueError(f"PerArcDelay default must be >= 1, got {default}")
        self.delays = dict(delays or {})
        self.default = int(default)
        for key, d in self.delays.items():
            if not isinstance(key, tuple) or len(key) != 2:
                raise ValueError(
                    f"PerArcDelay keys are (tail, head) node-id pairs, got {key!r}"
                )
            if int(d) < 1:
                raise ValueError(f"PerArcDelay delay for {key!r} must be >= 1, got {d}")
        self._table: Optional[List[int]] = None

    def bind(self, indexed) -> None:
        table = [self.default] * len(indexed.indices)
        pos_of: Dict[Tuple[NodeId, NodeId], int] = {}
        node_ids = indexed.node_ids
        for i in range(indexed.num_nodes):
            lo, hi = indexed.indptr[i], indexed.indptr[i + 1]
            for pos in range(lo, hi):
                pos_of[(node_ids[i], node_ids[indexed.indices[pos]])] = pos
        for key, d in self.delays.items():
            pos = pos_of.get(key)
            if pos is None:
                raise GraphError(
                    f"PerArcDelay key {key!r} is not a directed arc of the network"
                )
            table[pos] = int(d)
        self._table = table

    def delay(self, arc: int, pulse: int) -> int:
        return self._table[arc]

    def __repr__(self) -> str:
        return f"PerArcDelay({len(self.delays)} keyed arcs, default={self.default})"


class SlowLinkDelay(DelayModel):
    """Adversarial model: a seeded random subset of directed arcs is slow.

    Each directed arc is independently slowed with probability
    ``slow_fraction`` (decided by a stateless hash of ``(seed, arc)``, so
    the slow set is fixed for the whole run); slow arcs take ``slow_delay``
    time units per envelope, the rest ``fast_delay``.  Asymmetric by design:
    the two directions of an edge are slowed independently, which is what
    lets messages pile up on a slow link while its reverse direction keeps
    the synchronizer running (visible as per-arc in-flight high-water marks
    ``> 1`` in ``SimulationResult.async_stats``).
    """

    def __init__(
        self,
        slow_fraction: float = 0.25,
        slow_delay: int = 8,
        fast_delay: int = 1,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= slow_fraction <= 1.0:
            raise ValueError(f"slow_fraction must be in [0, 1], got {slow_fraction}")
        if int(fast_delay) < 1 or int(slow_delay) < int(fast_delay):
            raise ValueError(
                f"need 1 <= fast_delay <= slow_delay, got {fast_delay}, {slow_delay}"
            )
        self.slow_fraction = float(slow_fraction)
        self.slow_delay = int(slow_delay)
        self.fast_delay = int(fast_delay)
        self.seed = int(seed)
        self._slow: Optional[List[bool]] = None

    def bind(self, indexed) -> None:
        threshold = int(self.slow_fraction * (1 << 32))
        self._slow = [
            (_mix(self.seed, arc) & 0xFFFFFFFF) < threshold
            for arc in range(len(indexed.indices))
        ]

    def delay(self, arc: int, pulse: int) -> int:
        return self.slow_delay if self._slow[arc] else self.fast_delay

    def slow_arcs(self) -> List[int]:
        """The arc positions slowed in the currently bound network."""
        if self._slow is None:
            raise SimulationError("SlowLinkDelay is not bound to a network yet")
        return [a for a, s in enumerate(self._slow) if s]

    def __repr__(self) -> str:
        return (
            f"SlowLinkDelay(fraction={self.slow_fraction}, "
            f"slow={self.slow_delay}, fast={self.fast_delay}, seed={self.seed})"
        )


# --------------------------------------------------------------------------- #
# Event records (SimulationTrace(record_events=True))
# --------------------------------------------------------------------------- #
@dataclass
class EventRecord:
    """One scheduler event, captured when the trace records events.

    ``kind`` is ``"execute"`` (a node runs a pulse), ``"send"`` (a protocol
    message departs on an arc) or ``"deliver"`` (a protocol message reaches
    its receiver); ``peer`` is the other endpoint for send/deliver events.
    Runs with a fault schedule additionally record one event per fault
    transition (``kind`` is the fault kind — ``"node_down"``, ``"node_up"``,
    ``"edge_down"``, ``"edge_up"``, with ``peer`` the far endpoint for edge
    faults) and a ``"drop"`` event per lost protocol payload (at the send
    instant when the link/receiver is already down, at the scheduled arrival
    instant when the message was voided mid-flight).
    Times are virtual (event-queue) times, pulses are logical round numbers.
    """

    time: int
    kind: str
    node: NodeId
    pulse: int
    peer: Optional[NodeId] = None
    words: int = 0


# --------------------------------------------------------------------------- #
# Dispatch support
# --------------------------------------------------------------------------- #
def async_incompatibility(network, algorithm_factory, delay_model):
    """Why ``engine="async"`` cannot serve this request — ``(reason, probe)``.

    Mirrors the capability checks of the other tiers' fallback ladder: the
    ``reason`` string (or ``None`` when the tier can run) becomes the single
    :class:`~repro.congest.engine.EngineFallbackWarning`.  Checking
    ``supports_async`` requires instantiating the first node's algorithm;
    that ``probe`` instance is returned so :func:`run_async` can adopt it as
    node 0's algorithm — the factory is called exactly once per node, like
    on every other tier.  A ``delay_model`` of the wrong type is a caller
    error and raises instead of falling back.
    """
    if delay_model is not None:
        if not isinstance(delay_model, DelayModel):
            raise SimulationError(
                f"delay_model must be a DelayModel instance, got {type(delay_model)!r}"
            )
        try:
            pickle.dumps(delay_model)
        except Exception:
            return (
                f"delay model {type(delay_model).__name__} is not picklable, so "
                "its schedule cannot be snapshotted for reproduction"
            ), None
    probe = algorithm_factory(network.indexed.node_ids[0])
    if isinstance(probe, NodeAlgorithm) and not probe.supports_async:
        return (
            f"protocol {type(probe).__name__} declares supports_async=False "
            "(synchronous rounds only)"
        ), None
    return None, probe


# --------------------------------------------------------------------------- #
# The scheduler
# --------------------------------------------------------------------------- #
def run_async(
    network,
    algorithm_factory: Callable[[NodeId], NodeAlgorithm],
    delay_model: Optional[DelayModel] = None,
    max_rounds: int = 10_000,
    local_inputs: Optional[Mapping[NodeId, Any]] = None,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
    fault_schedule=None,
    scheduler: str = "bucketed",
    _probe: Optional[NodeAlgorithm] = None,
):
    """Execute one protocol on ``network`` through the event-driven tier.

    See the module docstring for the semantics.  Returns a
    :class:`~repro.congest.network.SimulationResult` whose ``rounds`` /
    ``outputs`` / message ledger equal the synchronous tiers (bit-for-bit
    under :class:`UnitDelay`, output-identical under every model) and whose
    ``virtual_time`` / ``async_stats`` report the asynchronous timing.
    ``scheduler`` selects the event-queue implementation — ``"bucketed"``
    (the calendar-queue fast path, default) or ``"heap"`` (the reference
    binary heap); both produce identical runs (see the module docstring).
    ``fault_schedule`` — a :class:`~repro.congest.faults.FaultSchedule` or
    :class:`~repro.congest.faults.FaultModel` — injects seeded node/edge
    crash+recover transitions; the run then reports its fault accounting as
    ``SimulationResult.fault_verdict`` and crashed nodes that never recover
    report ``None`` outputs.  ``_probe`` is the first node's
    already-constructed algorithm from :func:`async_incompatibility`,
    adopted so the factory is called exactly once per node.
    """
    from repro.congest.network import SimulationResult

    if scheduler not in SCHEDULERS:
        raise SimulationError(
            f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
        )
    use_buckets = scheduler == "bucketed"

    idx = network.indexed
    n = idx.num_nodes
    node_ids = idx.node_ids
    neighbor_ids = idx.neighbor_ids
    indptr = idx.indptr
    indices = idx.indices
    out_maps = network._out_maps  # per node: original neighbour id -> (idx, edge id)
    budget = network.words_per_message
    strict = network.strict_bandwidth

    model = delay_model if delay_model is not None else UnitDelay()
    model.bind(idx)
    unit = type(model) is UnitDelay

    algos: List[NodeAlgorithm] = [None] * n  # type: ignore[list-item]
    ctxs: List[NodeContext] = [None] * n  # type: ignore[list-item]
    for i in range(n):
        u = node_ids[i]
        algo = _probe if i == 0 and _probe is not None else algorithm_factory(u)
        if not isinstance(algo, NodeAlgorithm):
            raise SimulationError(
                f"algorithm_factory must return NodeAlgorithm instances, got {type(algo)!r}"
            )
        algos[i] = algo
        ctxs[i] = NodeContext(
            node=u,
            neighbors=neighbor_ids[i],
            n=n,
            round_number=0,
            local_edges=None if local_inputs is None else local_inputs.get(u),
        )
    event_flags = [a.event_driven for a in algos]

    num_arcs = len(indices)
    deg = [indptr[i + 1] - indptr[i] for i in range(n)]
    arc_sender = [0] * num_arcs
    arc_pos_of: List[Dict[NodeId, int]] = []
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        arc_pos_of.append({neighbor_ids[i][k]: lo + k for k in range(hi - lo)})
        for pos in range(lo, hi):
            arc_sender[pos] = i

    record_events = trace is not None and getattr(trace, "record_events", False)
    _no_payload = object()  # sentinel: empty envelope / no payload sized yet
    _empty_payloads: Dict[int, Tuple[Any, int]] = {}  # silent node's (read-only) outbox

    # -- ledger (mirrors run_fast's collect()) ---------------------------- #
    messages_sent = 0
    words_sent = 0
    max_message_words = 0
    max_edge_round_words = 0
    sent_msgs: Dict[int, int] = {}  # pulse -> protocol messages sent in it
    sent_words: Dict[int, int] = {}
    edge_batches: Dict[int, Dict[int, int]] = {}  # round -> edge id -> words
    batch_edge_max: Dict[int, int] = {}  # sealed per-round busiest edge
    invoked: Dict[int, int] = {}  # pulse -> on_round/initialize census
    halted_in_pulse: Dict[int, int] = {}
    halted_recorded = 0  # prefix over globally completed pulses (uncontaminated
    #                      by nodes that already ran ahead into the next pulse)
    completed_in_pulse: Dict[int, int] = {}
    release: Dict[int, bool] = {}  # pulse p -> run certainly continues past p
    held: Dict[int, List[int]] = {}  # pulse -> ready nodes awaiting release

    # Per-arc min-heaps of outstanding payload arrival times: the in-flight
    # high-water mark is the maximum [send, arrival) interval overlap, which
    # can only increase at a send instant — arrivals at or before it are
    # popped lazily first, so simultaneous arrive/depart does not overlap.
    arc_outstanding: Dict[int, List[int]] = {}
    arc_high_water: Dict[int, int] = {}

    events_processed = 0
    virtual_time = 0
    rounds = 0
    stopped = False

    heard: List[Dict[int, int]] = [dict() for _ in range(n)]
    # inbuf[i][p]: protocol messages of sender-pulse p awaiting i's pulse p+1,
    # as (sender index, payload, words, sent time, arrival time).
    inbuf: List[Dict[int, List[Tuple[int, Any, int, int, int]]]] = [
        dict() for _ in range(n)
    ]

    heap: List[Tuple] = []
    seq = 0
    todo = deque()  # pending (node, pulse, time) executions
    # Calendar queue (scheduler="bucketed"): per-instant event buckets plus a
    # small heap of the distinct bucket times.  A time enters ``times`` once,
    # when its bucket is created; every push targets a strictly future
    # instant (delays are >= 1), so a draining bucket never grows and append
    # order within a bucket is exactly the heap's (time, seq) order.
    buckets: Dict[int, List[Tuple]] = {}
    times: List[int] = []
    buckets_get = buckets.get

    # -- fault-injection state (inert when no schedule is given) ---------- #
    bound_faults: List = []
    if fault_schedule is not None:
        bound_faults = resolve_fault_schedule(fault_schedule, idx).bind(network)
    faults_on = bool(bound_faults)
    faults_fired = 0
    last_fault_round = 0
    payloads_dropped = 0
    node_up_ = [True] * n
    node_last_down = [-1] * n  # virtual time of each node's last crash
    restart_pending = [False] * n  # recovered, fresh instance not yet built
    edge_down: set = set()  # edge ids currently crashed
    edge_last_down: Dict[int, int] = {}  # edge id -> time of last crash
    link_notices: List[set] = [set() for _ in range(n)]  # pending recoveries
    arc_eid = [0] * num_arcs
    edge_ends: Dict[int, Tuple[NodeId, NodeId]] = {}
    if faults_on:
        for i in range(n):
            omap = out_maps[i]
            lo = indptr[i]
            for k, nbr in enumerate(neighbor_ids[i]):
                arc_eid[lo + k] = omap[nbr][1]
        for bev in bound_faults:
            if bev.eid >= 0:
                edge_ends.setdefault(bev.eid, (node_ids[bev.u], node_ids[bev.v]))
        # Fault transitions enter the queue first: their sequence numbers are
        # the smallest (equivalently, they sit at the front of their bucket),
        # so at any instant every fault applies before that instant's
        # envelope arrivals (and hence before the executions those arrivals
        # trigger) — faults take effect at the *start* of their time.
        if use_buckets:
            for k, bev in enumerate(bound_faults):
                t = bev.time
                b = buckets_get(t)
                if b is None:
                    buckets[t] = b = []
                    heappush(times, t)
                b.append((_EV_FAULT, k))
        else:
            fault_tail = (0, _no_payload, 0, 0)  # hoisted sentinel packing
            for k, bev in enumerate(bound_faults):
                seq += 1
                heappush(heap, (bev.time, seq, _EV_FAULT, k) + fault_tail)

    def _apply_fault(bev, now: int) -> None:
        nonlocal faults_fired, last_fault_round
        faults_fired += 1
        last_fault_round = rounds
        if bev.kind == "node_down":
            i = bev.node
            node_up_[i] = False
            node_last_down[i] = now
            algos[i] = None  # fail-stop: all volatile protocol state is lost
            restart_pending[i] = False
            inbuf[i].clear()
            link_notices[i].clear()
            if record_events:
                trace.record_event(EventRecord(now, "node_down", node_ids[i], rounds))
        elif bev.kind == "node_up":
            i = bev.node
            node_up_[i] = True
            restart_pending[i] = True
            # Re-announce both ways across every currently-live link: the
            # restarted node learns its live neighbours, and they learn it.
            for pos in range(indptr[i], indptr[i + 1]):
                jn = indices[pos]
                if node_up_[jn] and arc_eid[pos] not in edge_down:
                    link_notices[i].add(jn)
                    link_notices[jn].add(i)
            if record_events:
                trace.record_event(EventRecord(now, "node_up", node_ids[i], rounds))
        elif bev.kind == "edge_down":
            edge_down.add(bev.eid)
            edge_last_down[bev.eid] = now
            if record_events:
                trace.record_event(
                    EventRecord(now, "edge_down", node_ids[bev.u], rounds,
                                peer=node_ids[bev.v])
                )
        else:  # edge_up
            edge_down.discard(bev.eid)
            if node_up_[bev.u] and node_up_[bev.v]:
                link_notices[bev.u].add(bev.v)
                link_notices[bev.v].add(bev.u)
            if record_events:
                trace.record_event(
                    EventRecord(now, "edge_up", node_ids[bev.u], rounds,
                                peer=node_ids[bev.v])
                )

    def _delay(pos: int, pulse: int) -> int:
        d = model.delay(pos, pulse)
        try:
            if isinstance(d, bool):
                raise TypeError
            d = index(d)  # any integral type (numpy ints included), not floats
        except TypeError:
            d = 0
        if d < 1:
            raise SimulationError(
                f"delay model {model!r} returned {model.delay(pos, pulse)!r} for "
                f"arc {pos}; delays must be integers >= 1"
            )
        return d

    def _seal_batch(r: int) -> None:
        """Fix round ``r``'s per-edge words once all its sends are known."""
        nonlocal max_edge_round_words
        words = edge_batches.pop(r, None)
        m = max(words.values()) if words else 0
        batch_edge_max[r] = m
        if m > max_edge_round_words:
            max_edge_round_words = m

    def _release(p: int, now: int) -> None:
        """The run certainly continues past pulse ``p``: free the held nodes."""
        release[p] = True
        for j in held.pop(p + 1, ()):
            todo.append((j, p + 1, now))

    def _verdict(p: int, now: int) -> None:
        """All ``n`` nodes completed pulse ``p``: apply the synchronous
        stop rules (the exact check order of the round loops, including the
        convergence check preceding the quiescence breaks)."""
        nonlocal stopped, rounds, halted_recorded
        if faults_on:
            # Crashes and recovery re-announcements can un-halt nodes, so the
            # fault-free prefix accounting does not apply: recount the live
            # halted population (down nodes are crashed, not halted).
            halted_count = sum(
                1 for i2 in range(n)
                if node_up_[i2] and algos[i2] is not None and algos[i2].halted
            )
        else:
            halted_recorded += halted_in_pulse.pop(p, 0)
            halted_count = halted_recorded
        if p >= 1 and trace is not None:
            trace.record(
                RoundStats(
                    round_number=p,
                    active_nodes=invoked.pop(p, 0),
                    messages_delivered=sent_msgs.get(p - 1, 0),
                    words_delivered=sent_words.get(p - 1, 0),
                    max_edge_words=batch_edge_max.pop(p, 0),
                    halted_nodes=halted_count,
                )
            )
        staged = sent_msgs.get(p, 0)
        if p >= max_rounds:
            raise ConvergenceError(
                f"simulation did not terminate within {max_rounds} rounds"
            )
        # Under faults, quiescence may only stop the run once every scheduled
        # transition has fired and every restart / recovery re-announcement
        # has been consumed — otherwise the protocol would be declared done
        # while reconvergence work is still pending.  Pulses keep ticking in
        # the meantime (every node self-clocks >= 1 time unit per pulse), so
        # virtual time always reaches the fault horizon.
        can_stop = not faults_on or (
            faults_fired == len(bound_faults)
            and not any(restart_pending)
            and not any(link_notices)
        )
        if can_stop and (
            (halted_count == n and staged == 0)
            or (stop_when_quiet and staged == 0 and p > 0)
        ):
            stopped = True
            rounds = p
            return
        rounds = p + 1  # round p+1 will run (its executions may already have)
        _seal_batch(p + 1)
        if not release.get(p):
            _release(p, now)

    def _execute(i: int, p: int, now: int) -> None:
        nonlocal messages_sent, words_sent, max_message_words, virtual_time, seq
        nonlocal payloads_dropped
        algo = algos[i]
        if now > virtual_time:
            virtual_time = now
        outbox: Optional[Mapping[NodeId, Any]] = None
        if faults_on and not node_up_[i]:
            # Ghost pulse: the node is crashed, so no protocol code runs and
            # nothing it would have sent exists — but the synchronizer's
            # control plane is reliable, so the scheduler still emits the
            # pulse markers / self-tick below and counts the completion.
            # Pulse structure is therefore identical to a fault-free run.
            pass
        elif p == 0:
            if record_events:
                trace.record_event(EventRecord(now, "execute", node_ids[i], 0))
            outbox = algo.initialize(ctxs[i])
            if algo.halted:
                halted_in_pulse[0] = halted_in_pulse.get(0, 0) + 1
        elif faults_on and restart_pending[i]:
            # Recovery restart: build a fresh instance (volatile state was
            # lost at crash time) and re-run its init at the current pulse;
            # pending link-recovery notices then let it and its neighbours
            # re-announce, which is what drives reconvergence.
            restart_pending[i] = False
            algo = algorithm_factory(node_ids[i])
            if not isinstance(algo, NodeAlgorithm):
                raise SimulationError(
                    f"algorithm_factory must return NodeAlgorithm instances, "
                    f"got {type(algo)!r}"
                )
            algos[i] = algo
            event_flags[i] = algo.event_driven
            ctx = ctxs[i]
            ctx.round_number = p
            if record_events:
                trace.record_event(EventRecord(now, "execute", node_ids[i], p))
            outbox = algo.initialize(ctx)
            invoked[p] = invoked.get(p, 0) + 1
            notices = link_notices[i]
            if notices:
                link_notices[i] = set()
                recovery_out: Dict[NodeId, Any] = {}
                for jn in sorted(notices):
                    ret = algo.on_link_recovery(ctx, node_ids[jn])
                    if ret:
                        recovery_out.update(ret)
                if recovery_out:
                    if outbox:
                        recovery_out.update(outbox)  # init's sends win
                    outbox = recovery_out
            # Everything buffered here is post-recovery mail — the crash
            # cleared the inbox and the in-flight void checks stop anything
            # sent before the restart — so the fresh instance must consume
            # it (neighbours' recovery re-announcements arrive this way).
            entries = inbuf[i].pop(p - 1, None)
            if entries:
                entries.sort(key=lambda e: e[0])  # ascending sender index
                msgs = [
                    Message(node_ids[s], node_ids[i], payload,
                            sent_time=st, delivery_time=at)
                    for s, payload, _w, st, at in entries
                ]
                round_out = algo.on_round(ctx, msgs)
                if round_out:
                    if outbox:
                        outbox = dict(outbox)
                        outbox.update(round_out)  # the round's sends win
                    else:
                        outbox = round_out
        else:
            entries = inbuf[i].pop(p - 1, None)
            notices = None
            if faults_on and link_notices[i]:
                notices = link_notices[i]
                link_notices[i] = set()
            # The synchronous worklist rule: every running non-event-driven
            # node runs each round, plus any node (running or halted) that
            # received protocol mail — plus, under faults, any node with a
            # pending link-recovery notice (which may itself un-halt it).
            if entries is not None or notices or not (algo.halted or event_flags[i]):
                was_halted = algo.halted
                ctx = ctxs[i]
                ctx.round_number = p
                recovery_out = None
                if notices:
                    recovery_out = {}
                    for jn in sorted(notices):
                        ret = algo.on_link_recovery(ctx, node_ids[jn])
                        if ret:
                            recovery_out.update(ret)
                if entries is not None or not (algo.halted or event_flags[i]):
                    if entries:
                        entries.sort(key=lambda e: e[0])  # ascending sender index
                        msgs = [
                            Message(node_ids[s], node_ids[i], payload,
                                    sent_time=st, delivery_time=at)
                            for s, payload, _w, st, at in entries
                        ]
                    else:
                        msgs = []
                    if record_events:
                        trace.record_event(EventRecord(now, "execute", node_ids[i], p))
                    outbox = algo.on_round(ctx, msgs)
                    if algo.halted and not was_halted:
                        halted_in_pulse[p] = halted_in_pulse.get(p, 0) + 1
                invoked[p] = invoked.get(p, 0) + 1
                if recovery_out:
                    if outbox:
                        recovery_out.update(outbox)  # the round's sends win
                    outbox = recovery_out

        # -- protocol sends (the collect() analogue) ---------------------- #
        if outbox:
            payload_by_arc: Dict[int, Tuple[Any, int]] = {}
            omap = out_maps[i]
            pos_of = arc_pos_of[i]
            sender_id = node_ids[i]
            sized_payload: Any = _no_payload
            sized_words = 0
            batch = edge_batches.setdefault(p + 1, {})
            count = 0
            wsum = 0
            for receiver, payload in outbox.items():
                target = omap.get(receiver)
                if target is None:
                    raise SimulationError(
                        f"node {sender_id!r} attempted to message non-neighbour {receiver!r}"
                    )
                if payload is sized_payload:
                    size = sized_words
                else:
                    size = payload_size_words(payload)
                    sized_payload = payload
                    sized_words = size
                if size > budget and strict:
                    raise BandwidthExceededError(
                        f"message from {sender_id!r} to {receiver!r} is {size} words "
                        f"(budget {budget})"
                    )
                eid = target[1]
                count += 1
                wsum += size
                if size > max_message_words:
                    max_message_words = size
                batch[eid] = batch.get(eid, 0) + size
                payload_by_arc[pos_of[receiver]] = (payload, size)
            messages_sent += count
            words_sent += wsum
            if count:
                sent_msgs[p] = sent_msgs.get(p, 0) + count
                sent_words[p] = sent_words.get(p, 0) + wsum
                # A round-p message exists, so the run continues past p: any
                # node held at pulse p+1 may go (never past max_rounds — the
                # verdict's ConvergenceError must fire first).
                if not release.get(p) and p < max_rounds:
                    _release(p, now)
        else:
            payload_by_arc = _empty_payloads  # shared, never mutated

        # -- envelopes: one per incident arc, payload or pulse marker ----- #
        lo = indptr[i]
        hi = indptr[i + 1]
        if use_buckets:
            # Calendar-queue emission: compact per-kind tuples, appended in
            # seq order.  A run of consecutive equal-delay empty markers —
            # the whole arc slice, for a node with nothing to say — becomes
            # one _EV_RANGE event instead of ``deg`` queue entries.  Under
            # unit delay everything this execute emits (markers, payloads,
            # the self-tick) lands in the one now+1 bucket, fetched once.
            if unit:
                t = now + 1
                b = buckets_get(t)
                if b is None:
                    buckets[t] = b = []
                    heappush(times, t)
                if not payload_by_arc:
                    b.append((_EV_RANGE_TICK, lo, hi, p, i))
                else:
                    for pos in range(lo, hi):
                        entry = payload_by_arc.get(pos)
                        if faults_on and entry is not None and (
                            arc_eid[pos] in edge_down or not node_up_[indices[pos]]
                        ):
                            # Dead at send: charged to the ledger above, the
                            # payload lost — the envelope degrades to a
                            # pulse marker.
                            payloads_dropped += 1
                            if record_events:
                                trace.record_event(
                                    EventRecord(now, "drop", node_ids[i], p,
                                                peer=node_ids[indices[pos]],
                                                words=entry[1])
                                )
                            entry = None
                        if entry is None:
                            b.append((_EV_RANGE, pos, pos + 1, p))
                        else:
                            payload, size = entry
                            outstanding = arc_outstanding.setdefault(pos, [])
                            while outstanding and outstanding[0] <= now:
                                heappop(outstanding)
                            heappush(outstanding, t)
                            depth = len(outstanding)
                            if depth > arc_high_water.get(pos, 0):
                                arc_high_water[pos] = depth
                            if record_events:
                                trace.record_event(
                                    EventRecord(now, "send", node_ids[i], p,
                                                peer=node_ids[indices[pos]],
                                                words=size)
                                )
                            b.append((_EV_ENVELOPE, pos, p, payload, size, now))
                    b.append((_EV_TICK, i, p))
            else:
                if not payload_by_arc:
                    if lo < hi:
                        run_lo = lo
                        run_d = 0
                        for pos in range(lo, hi):
                            d = _delay(pos, p)
                            if d != run_d:
                                if run_d:
                                    t = now + run_d
                                    b = buckets_get(t)
                                    if b is None:
                                        buckets[t] = b = []
                                        heappush(times, t)
                                    b.append((_EV_RANGE, run_lo, pos, p))
                                run_lo = pos
                                run_d = d
                        t = now + run_d
                        b = buckets_get(t)
                        if b is None:
                            buckets[t] = b = []
                            heappush(times, t)
                        b.append((_EV_RANGE, run_lo, hi, p))
                else:
                    for pos in range(lo, hi):
                        d = _delay(pos, p)
                        entry = payload_by_arc.get(pos)
                        if faults_on and entry is not None and (
                            arc_eid[pos] in edge_down or not node_up_[indices[pos]]
                        ):
                            # Dead at send: charged to the ledger above, the
                            # payload lost — the envelope degrades to a
                            # pulse marker.
                            payloads_dropped += 1
                            if record_events:
                                trace.record_event(
                                    EventRecord(now, "drop", node_ids[i], p,
                                                peer=node_ids[indices[pos]],
                                                words=entry[1])
                                )
                            entry = None
                        t = now + d
                        b = buckets_get(t)
                        if b is None:
                            buckets[t] = b = []
                            heappush(times, t)
                        if entry is None:
                            b.append((_EV_RANGE, pos, pos + 1, p))
                        else:
                            payload, size = entry
                            outstanding = arc_outstanding.setdefault(pos, [])
                            while outstanding and outstanding[0] <= now:
                                heappop(outstanding)
                            heappush(outstanding, t)
                            depth = len(outstanding)
                            if depth > arc_high_water.get(pos, 0):
                                arc_high_water[pos] = depth
                            if record_events:
                                trace.record_event(
                                    EventRecord(now, "send", node_ids[i], p,
                                                peer=node_ids[indices[pos]],
                                                words=size)
                                )
                            b.append((_EV_ENVELOPE, pos, p, payload, size, now))
                t = now + 1
                b = buckets_get(t)
                if b is None:
                    buckets[t] = b = []
                    heappush(times, t)
                b.append((_EV_TICK, i, p))
        else:
            for pos in range(lo, hi):
                d = 1 if unit else _delay(pos, p)
                entry = payload_by_arc.get(pos)
                if faults_on and entry is not None and (
                    arc_eid[pos] in edge_down or not node_up_[indices[pos]]
                ):
                    # Dead at send: the link or the receiver is down right
                    # now.  The message was charged to the ledger above (the
                    # node paid for the send) but the payload is lost — the
                    # envelope goes out as an empty pulse marker.
                    payloads_dropped += 1
                    if record_events:
                        trace.record_event(
                            EventRecord(now, "drop", node_ids[i], p,
                                        peer=node_ids[indices[pos]], words=entry[1])
                        )
                    entry = None
                if entry is None:
                    seq += 1
                    heappush(
                        heap, (now + d, seq, _EV_ENVELOPE, pos, p, _no_payload, 0, now)
                    )
                else:
                    payload, size = entry
                    outstanding = arc_outstanding.setdefault(pos, [])
                    while outstanding and outstanding[0] <= now:
                        heappop(outstanding)
                    heappush(outstanding, now + d)
                    depth = len(outstanding)
                    if depth > arc_high_water.get(pos, 0):
                        arc_high_water[pos] = depth
                    if record_events:
                        trace.record_event(
                            EventRecord(now, "send", node_ids[i], p,
                                        peer=node_ids[indices[pos]], words=size)
                        )
                    seq += 1
                    heappush(
                        heap, (now + d, seq, _EV_ENVELOPE, pos, p, payload, size, now)
                    )
            seq += 1
            heappush(heap, (now + 1, seq, _EV_TICK, i, p, _no_payload, 0, now))

        c = completed_in_pulse.get(p, 0) + 1
        completed_in_pulse[p] = c
        if c == n:
            _verdict(p, now)

    def _heard(j: int, p: int, now: int) -> None:
        """One pulse-``p`` item (envelope or self-tick) reached node ``j``."""
        cnt = heard[j].get(p, 0) + 1
        if cnt < deg[j] + 1:
            heard[j][p] = cnt
            return
        heard[j].pop(p, None)
        # All of round p's inputs are in — and the counted self-tick implies
        # j itself already completed pulse p, so pulse p+1 is next: run it,
        # or hold it until the run is known to continue past pulse p.
        if release.get(p):
            todo.append((j, p + 1, now))
        else:
            held.setdefault(p + 1, []).append(j)

    # Pulse 0 (initialize) for every node at virtual time 0, in node order.
    for i in range(n):
        todo.append((i, 0, 0))

    wall_start = perf_counter()
    if use_buckets:
        # Calendar-queue drain.  The structure mirrors the heap loop exactly:
        # the pending-execution queue is drained (and the stop flag checked)
        # between individual events, so ``events_processed`` and the verdict
        # points are identical — a bucket is just the run of heap pops that
        # share one delivery time.  The pulse-marker bookkeeping of `_heard`
        # is inlined here (it is the single hottest call site).  The hot
        # names are re-bound to plain locals: the closures above capture
        # them as cells, which would make every access here a (slower)
        # LOAD_DEREF.
        release_get = release.get
        todo_append = todo.append
        todo_popleft = todo.popleft
        held_sd = held.setdefault
        indices_l = indices
        heard_l = heard
        deg_l = deg
        inbuf_l = inbuf
        arc_sender_l = arc_sender
        bucket: List[Tuple] = []
        bpos = 0
        blen = 0
        now = 0
        while True:
            while todo:
                i, p, t = todo_popleft()
                _execute(i, p, t)
            if stopped:
                break
            if bpos == blen:
                if not times:
                    break
                now = heappop(times)
                bucket = buckets.pop(now)
                bpos = 0
                blen = len(bucket)
            while bpos < blen:
                ev = bucket[bpos]
                bpos += 1
                kind = ev[0]
                if kind == _EV_RANGE_TICK:
                    # A silent unit-delay execute: the sender's whole marker
                    # run plus its self-tick, fused.  The two tuples were
                    # always adjacent in the bucket, and the executions a
                    # mid-run todo drain could interleave are all pulse
                    # >= p+1 at this instant — they cannot touch heard[.][p],
                    # release[p] or the stop flag — so fusing is
                    # order-equivalent and merely skips one queue entry.
                    rlo = ev[1]
                    rhi = ev[2]
                    p = ev[3]
                    events_processed += rhi - rlo + 1
                    for pos in range(rlo, rhi):
                        j = indices_l[pos]
                        h = heard_l[j]
                        cnt = h.get(p, 0) + 1
                        if cnt <= deg_l[j]:
                            h[p] = cnt
                        else:
                            h.pop(p, None)
                            if release_get(p):
                                todo_append((j, p + 1, now))
                            else:
                                held_sd(p + 1, []).append(j)
                    j = ev[4]
                    h = heard_l[j]
                    cnt = h.get(p, 0) + 1
                    if cnt <= deg_l[j]:
                        h[p] = cnt
                    else:
                        h.pop(p, None)
                        if release_get(p):
                            todo_append((j, p + 1, now))
                        else:
                            held_sd(p + 1, []).append(j)
                    if todo:
                        break
                elif kind == _EV_RANGE:
                    # A sender's run of empty pulse markers on consecutive
                    # arcs: pure synchronizer traffic, no records to emit,
                    # so the whole run is counted and delivered in one go.
                    rlo = ev[1]
                    rhi = ev[2]
                    p = ev[3]
                    events_processed += rhi - rlo
                    for pos in range(rlo, rhi):
                        j = indices_l[pos]
                        h = heard_l[j]
                        cnt = h.get(p, 0) + 1
                        if cnt <= deg_l[j]:
                            h[p] = cnt
                        else:
                            h.pop(p, None)
                            if release_get(p):
                                todo_append((j, p + 1, now))
                            else:
                                held_sd(p + 1, []).append(j)
                    if todo:
                        break
                elif kind == _EV_ENVELOPE:
                    # Payload-carrying envelope: (kind, pos, p, payload,
                    # size, sent_at).
                    events_processed += 1
                    pos = ev[1]
                    p = ev[2]
                    payload = ev[3]
                    j = indices_l[pos]
                    if faults_on and (
                        arc_eid[pos] in edge_down
                        or edge_last_down.get(arc_eid[pos], -1) > ev[5]
                        or not node_up_[j]
                        or node_last_down[j] > ev[5]
                        or node_last_down[arc_sender_l[pos]] > ev[5]
                    ):
                        # Voided mid-flight: the link or either endpoint
                        # crashed after the send or is still down now.  The
                        # envelope degrades to an empty pulse marker.
                        payloads_dropped += 1
                        if record_events:
                            trace.record_event(
                                EventRecord(now, "drop", node_ids[j], p,
                                            peer=node_ids[arc_sender_l[pos]],
                                            words=ev[4])
                            )
                    else:
                        inbuf_l[j].setdefault(p, []).append(
                            (arc_sender_l[pos], payload, ev[4], ev[5], now)
                        )
                        if record_events:
                            trace.record_event(
                                EventRecord(now, "deliver", node_ids[j], p,
                                            peer=node_ids[arc_sender_l[pos]],
                                            words=ev[4])
                            )
                    h = heard_l[j]
                    cnt = h.get(p, 0) + 1
                    if cnt <= deg_l[j]:
                        h[p] = cnt
                    else:
                        h.pop(p, None)
                        if release_get(p):
                            todo_append((j, p + 1, now))
                        else:
                            held_sd(p + 1, []).append(j)
                    if todo:
                        break
                elif kind == _EV_TICK:  # node's pulse self-clock: (kind, i, p)
                    events_processed += 1
                    j = ev[1]
                    p = ev[2]
                    h = heard_l[j]
                    cnt = h.get(p, 0) + 1
                    if cnt <= deg_l[j]:
                        h[p] = cnt
                    else:
                        h.pop(p, None)
                        if release_get(p):
                            todo_append((j, p + 1, now))
                        else:
                            held_sd(p + 1, []).append(j)
                    if todo:
                        break
                else:  # _EV_FAULT: (kind, index into the bound fault list)
                    events_processed += 1
                    _apply_fault(bound_faults[ev[1]], now)
    else:
        while True:
            while todo:
                i, p, t = todo.popleft()
                _execute(i, p, t)
            if stopped or not heap:
                break
            now, _s, kind, a, p, payload, size, sent_at = heappop(heap)
            events_processed += 1
            if kind == _EV_ENVELOPE:
                j = indices[a]
                if payload is not _no_payload:
                    if faults_on and (
                        arc_eid[a] in edge_down
                        or edge_last_down.get(arc_eid[a], -1) > sent_at
                        or not node_up_[j]
                        or node_last_down[j] > sent_at
                        or node_last_down[arc_sender[a]] > sent_at
                    ):
                        # Voided mid-flight: the link or either endpoint
                        # crashed after the send (strictly — a transition at
                        # time t precedes every send at time t) or is still
                        # down now.  The envelope degrades to an empty pulse
                        # marker.
                        payloads_dropped += 1
                        if record_events:
                            trace.record_event(
                                EventRecord(now, "drop", node_ids[j], p,
                                            peer=node_ids[arc_sender[a]], words=size)
                            )
                        payload = _no_payload
                if payload is not _no_payload:
                    inbuf[j].setdefault(p, []).append(
                        (arc_sender[a], payload, size, sent_at, now)
                    )
                    if record_events:
                        trace.record_event(
                            EventRecord(now, "deliver", node_ids[j], p,
                                        peer=node_ids[arc_sender[a]], words=size)
                        )
                _heard(j, p, now)
            elif kind == _EV_TICK:  # node a's pulse-p self-clock
                _heard(a, p, now)
            else:  # _EV_FAULT: scheduled transition a of the bound fault list
                _apply_fault(bound_faults[a], now)
    wall_seconds = perf_counter() - wall_start

    if not stopped:  # pragma: no cover - the verdict always decides first
        raise SimulationError("async scheduler ran out of events before a verdict")

    outputs = {
        node_ids[i]: (None if algos[i] is None else algos[i].output)
        for i in range(n)
    }
    fault_verdict = None
    if fault_schedule is not None:
        down_nodes = tuple(node_ids[i] for i in range(n) if not node_up_[i])
        down_edges = tuple(edge_ends[eid] for eid in sorted(edge_down))
        fault_verdict = FaultVerdict(
            faults_injected=faults_fired,
            reconverged=not down_nodes and not down_edges,
            last_fault_round=last_fault_round,
            rounds_to_reconverge=(
                max(0, rounds - last_fault_round) if faults_fired else 0
            ),
            payloads_dropped=payloads_dropped,
            down_nodes_at_end=down_nodes,
            down_edges_at_end=down_edges,
        )
    if faults_on:
        all_halted = all(
            node_up_[i] and algos[i] is not None and algos[i].halted
            for i in range(n)
        )
    else:
        all_halted = halted_recorded == n
    async_stats = {
        "delay_model": repr(model),
        "events_processed": events_processed,
        # Wall-clock event throughput of this run's main loop.  The single
        # non-deterministic entry (everything else is bit-for-bit
        # reproducible): comparisons of async_stats across runs or across
        # schedulers must exclude it.
        "events_per_sec": (
            events_processed / wall_seconds if wall_seconds > 0.0
            else float(events_processed)
        ),
        "virtual_time": virtual_time,
        "max_arc_in_flight": max(arc_high_water.values(), default=0),
        "congested_arcs": {
            (node_ids[arc_sender[a]], node_ids[indices[a]]): hw
            for a, hw in sorted(arc_high_water.items())
            if hw >= 2
        },
    }
    return SimulationResult(
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
        words_sent=words_sent,
        max_words_per_edge_round=max_edge_round_words,
        halted=all_halted,
        max_message_words=max_message_words,
        engine="async",
        trace=trace,
        virtual_time=virtual_time,
        async_stats=async_stats,
        fault_verdict=fault_verdict,
    )
