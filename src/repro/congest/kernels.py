"""Whole-round protocol kernels for the vectorized and sharded CONGEST tiers.

The scalar engines (``legacy``, ``fast``) call one Python method per node per
round.  The kernel tiers replace that inner loop entirely: a protocol is
expressed as a :class:`RoundKernel` whose state is a dict of per-node/per-arc
numpy vectors and whose ``round`` function transforms a whole round's
delivered traffic — packed arrays keyed by dense CSR arc slot — with
segmented reductions (min/sum over each node's inbox slice).  No Python loop
runs over nodes or messages inside a round.

Data flow of one round (driven by :func:`repro.congest.engine.run_vectorized`
in-process, or by :func:`repro.congest.engine.run_sharded` across worker
processes):

1. the previous round's :class:`PackedSends` (an arc-slot send mask plus one
   value array per :class:`~repro.congest.message.PayloadSchema` field) is
   *delivered* by gathering through ``csr.rev`` — the message sent on arc
   ``p`` (``i -> j``) lands in receiver-side slot ``rev[p]``;
2. the kernel's ``round(state, inbox, senders, csr, shard)`` is called with
   the delivered slots grouped by receiver (ascending arc slot order, i.e.
   CSR segment order) and returns the next :class:`PackedSends`;
3. the engine accounts messages/words/per-edge bandwidth from the send mask
   with ``bincount`` over ``csr.arc_edge_ids`` — O(#messages) array work,
   with ``payload_size_words`` O(1) per message via the schema.

The ``state`` dict / arc-slot boundary *is* the shard interface: a
:class:`StateSchema` declares which state entries are per-node or per-arc
vectors, so the sharded tier can mechanically split them by the contiguous
node/arc-slot ranges of a :class:`~repro.graphs.sharding.ShardPlan`, place
them in shared memory, and merge them back bit-for-bit.  The ``shard``
argument of :meth:`RoundKernel.round` restricts every full-range sweep (send
drains, halt scans) to the slots the calling worker owns; single-process
tiers pass the degenerate whole-graph shard, making the vectorized execution
literally the one-shard special case of the sharded one.

Kernels must be *bit-for-bit* equivalent to the scalar protocol they
accelerate: identical rounds, outputs, ``messages_sent``, ``words_sent``,
``max_words_per_edge_round`` and ``max_message_words`` on every instance —
and identical for every shard count (enforced by
``tests/test_engine_equivalence.py`` across all four tiers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.congest.message import PayloadSchema, payload_size_words
from repro.graphs.sharding import Shard

NodeId = Hashable

#: Valid :class:`StateVector` domains and the CSR length attribute they map to.
STATE_DOMAINS = ("node", "arc")


def vectorized_available() -> bool:
    """Return ``True`` when numpy is importable (vectorized tier usable)."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is baked into the CI image
        return False
    return True


@dataclass(frozen=True)
class StateVector:
    """Declaration of one shared per-node or per-arc kernel state vector.

    Attributes
    ----------
    name:
        The key of the vector in the kernel's ``state`` dict.
    domain:
        ``"node"`` (length ``num_nodes``) or ``"arc"`` (length ``num_arcs``).
        The domain determines the contiguous row range a shard owns.
    dtype:
        numpy dtype string (``"f8"``, ``"i8"``, ``"?"``, ...).
    cols:
        ``None`` for a 1-D vector; an integer makes the vector 2-D with shape
        ``(length, cols)`` (e.g. a per-arc chunk queue).  ``cols=0`` is legal
        and declares an empty matrix.
    """

    name: str
    domain: str
    dtype: str
    cols: Optional[int] = None

    def __post_init__(self) -> None:
        if self.domain not in STATE_DOMAINS:
            raise ValueError(
                f"state vector {self.name!r} has domain {self.domain!r}; "
                f"expected one of {STATE_DOMAINS}"
            )

    def length(self, csr) -> int:
        return csr.num_nodes if self.domain == "node" else csr.num_arcs

    def shape(self, csr) -> Tuple[int, ...]:
        n = self.length(csr)
        return (n,) if self.cols is None else (n, self.cols)

    def row_slice(self, shard: Shard) -> slice:
        """The rows of this vector owned by ``shard``."""
        return shard.node_slice if self.domain == "node" else shard.arc_slice


class StateSchema:
    """The declared shared state of a :class:`RoundKernel`.

    Lists every ``state`` entry that is a per-node or per-arc vector carrying
    round-to-round information.  The sharded engine allocates exactly these
    vectors in shared memory, seeds each worker's row range from the worker's
    own deterministic ``init``, and reads them back for ``outputs`` — so a
    kernel's ``outputs`` (and its ``halted`` termination vector, if any) must
    depend only on declared vectors and init-time instance attributes.
    Undeclared ``state`` entries (send buffers, scalar counters) stay private
    to each worker.
    """

    __slots__ = ("vectors",)

    def __init__(self, *vectors: StateVector) -> None:
        names = [v.name for v in vectors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate state vector names in {names}")
        self.vectors: Tuple[StateVector, ...] = tuple(vectors)

    def __iter__(self):
        return iter(self.vectors)

    def __len__(self) -> int:
        return len(self.vectors)

    def names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.vectors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateSchema({', '.join(f'{v.name}:{v.domain}' for v in self.vectors)})"


class PackedSends:
    """One round's outgoing traffic as preallocated arc-slot arrays.

    Attributes
    ----------
    mask:
        Boolean array over arc slots: ``mask[p]`` means the owner of arc ``p``
        sends one message to the neighbour at ``p`` this round.  A kernel
        invoked for one shard only writes (and only guarantees) the slots of
        that shard's arc range.
    values:
        ``field name -> array`` (full arc-slot length, schema dtype); only
        masked slots are meaningful.  Kernels hand back the same
        preallocated buffers (:meth:`PayloadSchema.alloc`) every round: the
        engine gathers the delivered slots before the next ``round`` call,
        so in-place reuse is safe and no per-round allocation happens.
    words:
        Optional per-arc-slot word sizes for schemas whose payloads reference
        a finite set of precomputed objects of varying size (e.g. label
        chunks).  ``None`` means every message costs ``schema.size_words``.
    """

    __slots__ = ("mask", "values", "words")

    def __init__(self, mask, values: Mapping[str, Any], words=None) -> None:
        self.mask = mask
        self.values = dict(values)
        self.words = words

    def shard_view(self, shard: Shard) -> Tuple[Any, Dict[str, Any], Any]:
        """Return ``(mask, values, words)`` sliced to ``shard``'s arc range.

        The slices are views into the kernel's reusable buffers and define
        the portion of a round's sends one shard owns (the sharded engine
        publishes exactly these mask/word slices, plus the boundary subset
        of the value slices, into shared memory each round).
        """
        sl = shard.arc_slice
        return (
            self.mask[sl],
            {f: v[sl] for f, v in self.values.items()},
            None if self.words is None else self.words[sl],
        )


class PackedInbox:
    """One round's delivered traffic, grouped by receiver in CSR slot order.

    ``arcs`` are the receiver-side arc slots that hold mail, ascending —
    because CSR slots of one node are contiguous, ascending order *is*
    receiver-grouped order, so segmented reductions need no sort.  Each value
    array is parallel to ``arcs``, as is the ``inbox_senders`` array the
    engine passes alongside (sender node indices, ``csr.indices[arcs]``).
    Mapping-style access (``inbox["dist"]``) returns the value array of one
    schema field.

    Arc slots are always *global* ids, also in shard-local inboxes — a
    sharded worker receives exactly :meth:`shard_view` of the global round's
    inbox, so kernels never need to translate indices.
    """

    __slots__ = ("arcs", "values")

    def __init__(self, arcs, values: Mapping[str, Any]) -> None:
        self.arcs = arcs
        self.values = dict(values)

    def __getitem__(self, field: str):
        return self.values[field]

    def __len__(self) -> int:
        return int(self.arcs.shape[0])

    def shard_view(self, shard: Shard) -> "PackedInbox":
        """Restrict to the slots owned by ``shard`` (ids stay global).

        Because ``arcs`` is ascending and a shard's slots are contiguous,
        the restriction is one ``searchsorted`` slice.  This is the sharded
        delivery *contract* — a worker's inbox equals this view of the
        global round's inbox (asserted in ``tests/test_sharding.py``); the
        engine itself assembles each worker's inbox directly from the
        shared arena through the plan's ``rev``-gather tables.
        """
        import numpy as np

        lo = int(np.searchsorted(self.arcs, shard.arc_lo, side="left"))
        hi = int(np.searchsorted(self.arcs, shard.arc_hi, side="left"))
        return PackedInbox(self.arcs[lo:hi], {f: v[lo:hi] for f, v in self.values.items()})

    def segment_starts(self, csr) -> Tuple[Any, Any]:
        """Return ``(starts, receivers)`` for per-receiver reductions.

        ``starts`` indexes the first entry of each receiver's run inside the
        parallel arrays (usable with ``np.minimum.reduceat`` etc.);
        ``receivers`` holds the corresponding node indices.
        """
        import numpy as np

        recv = csr.arc_owner[self.arcs]
        if recv.shape[0] == 0:
            return np.empty(0, dtype=np.int64), recv
        starts = np.flatnonzero(np.r_[True, recv[1:] != recv[:-1]])
        return starts, recv[starts]


class RoundKernel:
    """Base class for whole-round vectorized protocol kernels.

    Subclasses define:

    * ``schema`` — the :class:`PayloadSchema` of every message they send;
    * ``event_driven`` — same contract as
      :attr:`~repro.congest.node.NodeAlgorithm.event_driven` (only used for
      trace statistics; the kernel itself is invoked every round);
    * :meth:`init` — allocate the state vectors for the *whole* graph and
      return the round-0 sends (init is deterministic, so every shard worker
      can run it privately and keep only its own rows);
    * :meth:`round` — consume one round's inbox arrays, update state, return
      the next sends.  The ``shard`` argument bounds every full-range sweep:
      a kernel must only read/write state rows and arc slots inside
      ``shard`` (inbox slots are guaranteed to lie inside it);
    * :meth:`outputs` — per-node outputs after termination, keyed by original
      node id (must equal the scalar protocol's outputs exactly, and must
      depend only on schema-declared state plus init-time attributes);
    * :meth:`state_schema` — optionally, the :class:`StateSchema` declaring
      the shared per-node/per-arc vectors.  Kernels that return ``None``
      (the default) still run on the in-process vectorized tier but cannot
      be sharded.

    The engine reads ``state["halted"]`` (boolean per-node vector, optional —
    absent means no node ever halts) for its termination condition; sharded
    kernels must declare it in the schema.
    """

    schema: PayloadSchema
    event_driven = False

    def state_schema(self, csr) -> Optional[StateSchema]:
        """Declare the shared state vectors (``None`` → not shardable)."""
        return None

    def init(self, state: Dict[str, Any], csr) -> Optional[PackedSends]:
        """Fill ``state`` with per-node vectors; return the round-0 sends."""
        raise NotImplementedError

    def round(self, state: Dict[str, Any], inbox: PackedInbox,
              inbox_senders, csr, shard: Shard) -> Optional[PackedSends]:
        """Execute one synchronous round as array operations over ``shard``."""
        raise NotImplementedError

    def outputs(self, state: Dict[str, Any], csr) -> Dict[NodeId, Any]:
        """Collect per-node outputs (same values as the scalar protocol)."""
        raise NotImplementedError


class FloodingKernel(RoundKernel):
    """Whole-round pipelined chunk flooding — the kernel of
    :class:`~repro.congest.primitives.ChunkFloodNode` / ``flood_chunks``.

    Bit-for-bit equivalent to the scalar transport.  The ``C`` chunks are a
    finite table precomputed at ``init``, so a message is packed as one int64
    *chunk index* per arc slot and ``payload_size_words`` is an O(1) table
    lookup (``chunk_words``).  The scalar protocol's per-neighbour FIFO
    queues become one ``(arc, chunk) -> enqueue sequence number`` matrix:

    * *learning* chunk ``k`` at round ``r`` from sender ``s`` stamps the
      sequence ``r * (C + n + 2) + C + s`` on every out-arc except the one
      back to ``s`` — strictly increasing in ``(r, s)``, which is exactly the
      scalar learn order (inbox scans run in ascending sender index), and the
      root's round-0 chunks get sequences ``0..C-1`` below all of them;
    * *draining* pops the minimum-sequence pending chunk per arc per round —
      the FIFO ``popleft``;
    * a node halts once it has seen a chunk, knows all ``C``, and has no
      pending arc slot — the scalar ``_finish_if_complete`` after a drain.

    Duplicate deliveries of one chunk to one node in the same round resolve
    to the minimum-index sender (the first inbox hit), so the excluded
    back-arc matches the scalar run exactly.

    Every operation is row-local in the (node, arc) ranges of a shard —
    state is declared via :meth:`state_schema`, so the kernel runs unchanged
    on the sharded tier.  Subclasses override :meth:`_chunk_table` (the wire
    chunks, each starting with ``(k, total)``) and :meth:`outputs` — see
    :class:`~repro.labeling.sssp.LabelBroadcastKernel`, mirroring how the
    scalar ``LabelBroadcastNode`` subclasses ``ChunkFloodNode``.
    """

    schema = PayloadSchema(fields=(("chunk", "i8"),))
    event_driven = False

    def __init__(self, root: NodeId, chunks: Sequence[Any] = ()) -> None:
        self.root = root
        self.source_chunks = tuple(chunks)
        self.chunks: List[Any] = []
        self.chunk_words = None
        self._sentinel = None
        self._wire_table: Optional[List[Any]] = None

    # -- subclass hooks -------------------------------------------------- #
    def _chunk_table(self) -> List[Any]:
        """Return the root's wire chunks, each starting with ``(k, total)``."""
        total = len(self.source_chunks)
        return [(k, total, payload) for k, payload in enumerate(self.source_chunks)]

    def _wire_chunks(self) -> List[Any]:
        """The cached wire-chunk table (``state_schema`` and ``init`` share it)."""
        if self._wire_table is None:
            self._wire_table = self._chunk_table()
        return self._wire_table

    def outputs(self, state: Dict[str, Any], csr) -> Dict[NodeId, Any]:
        halted = state["halted"]
        payload = tuple(chunk[2] for chunk in self.chunks)
        return {
            u: (payload if halted[i] else None) for i, u in enumerate(csr.node_ids)
        }

    # -- shared transport mechanics -------------------------------------- #
    def state_schema(self, csr) -> StateSchema:
        c = len(self._wire_chunks())
        return StateSchema(
            StateVector("halted", "node", "?"),
            StateVector("seen", "node", "?"),
            StateVector("known", "node", "?", cols=c),
            StateVector("pending", "arc", "i8", cols=c),
        )

    def init(self, state: Dict[str, Any], csr) -> Optional[PackedSends]:
        import numpy as np

        n = csr.num_nodes
        table = self._wire_chunks()
        c = len(table)
        chunk_words = np.zeros(max(c, 1), dtype=np.int64)
        self.chunks = []
        for chunk in table:
            self.chunks.append(chunk)
            chunk_words[chunk[0]] = payload_size_words(chunk)
        self.chunk_words = chunk_words
        self._sentinel = np.iinfo(np.int64).max

        state["halted"] = np.zeros(n, dtype=bool)
        state["seen"] = np.zeros(n, dtype=bool)
        state["known"] = np.zeros((n, c), dtype=bool)
        state["pending"] = np.full((csr.num_arcs, c), self._sentinel, dtype=np.int64)
        state["round"] = 0
        # Preallocated round buffers (worker-local, not schema-declared): the
        # chunk-index payload array, the send mask and the per-arc word
        # sizes, all reused every round.
        state["send"] = self.schema.alloc(csr.num_arcs)
        state["send_mask"] = np.zeros(csr.num_arcs, dtype=bool)
        state["send_words"] = np.zeros(csr.num_arcs, dtype=np.int64)

        src = csr.index_of.get(self.root)
        if src is not None:
            state["seen"][src] = True
            if c:
                state["known"][src, :] = True
                lo, hi = int(csr.indptr[src]), int(csr.indptr[src + 1])
                state["pending"][lo:hi, :] = np.arange(c, dtype=np.int64)
        full = Shard.full(csr)
        sends = self._pop(state, csr, full)
        self._update_halts(state, csr, full)
        return sends

    def _pop(self, state, csr, shard: Shard) -> Optional[PackedSends]:
        """Drain one chunk per owned arc: the minimum-sequence pending entry."""
        import numpy as np

        pending = state["pending"]
        if pending.shape[1] == 0:
            return None
        lo, hi = shard.arc_lo, shard.arc_hi
        if hi == lo:
            return None
        pslice = pending[lo:hi]
        kmin = pslice.argmin(axis=1)
        rows = np.arange(hi - lo)
        got = pslice[rows, kmin] != self._sentinel
        mask = state["send_mask"]
        mask[lo:hi] = got
        if not got.any():
            return None
        pslice[rows[got], kmin[got]] = self._sentinel
        buffers = state["send"]
        buffers["chunk"][lo:hi] = kmin
        np.take(self.chunk_words, kmin, out=state["send_words"][lo:hi])
        return PackedSends(mask, buffers, words=state["send_words"])

    def _update_halts(self, state, csr, shard: Shard) -> None:
        import numpy as np

        lo, hi = shard.node_lo, shard.node_hi
        alo, ahi = shard.arc_lo, shard.arc_hi
        known = state["known"]
        halted = state["halted"]
        hslice = halted[lo:hi]
        complete = state["seen"][lo:hi] & ~hslice
        if known.shape[1]:
            arc_pending = (state["pending"][alo:ahi] != self._sentinel).any(axis=1)
            node_pending = (
                np.bincount(
                    csr.arc_owner[alo:ahi] - lo, weights=arc_pending, minlength=hi - lo
                )
                > 0
            )
            complete &= known[lo:hi].all(axis=1) & ~node_pending
        hslice[complete] = True

    def round(self, state: Dict[str, Any], inbox: PackedInbox,
              inbox_senders, csr, shard: Shard) -> Optional[PackedSends]:
        import numpy as np

        state["round"] += 1
        known = state["known"]
        c = known.shape[1]
        if c and len(inbox):
            ks = inbox["chunk"]
            recv = csr.arc_owner[inbox.arcs]
            cand = ~state["halted"][recv] & ~known[recv, ks]
            if cand.any():
                rc, kc, sc = recv[cand], ks[cand], inbox_senders[cand]
                # First inbox hit per (receiver, chunk): minimum sender index.
                keys = rc * c + kc
                order = np.lexsort((sc, keys))
                keys_sorted = keys[order]
                win = order[np.r_[True, keys_sorted[1:] != keys_sorted[:-1]]]
                rw, kw, sw = rc[win], kc[win], sc[win]
                known[rw, kw] = True
                state["seen"][rw] = True
                # Enqueue on every out-arc of each learner except the one
                # pointing back at the teaching sender.
                deg = csr.indptr[rw + 1] - csr.indptr[rw]
                arc_pos = ragged_slices(csr.indptr[rw], deg)
                kk = np.repeat(kw, deg)
                ss = np.repeat(sw, deg)
                seqv = np.repeat(
                    state["round"] * (c + csr.num_nodes + 2) + c + sw, deg
                )
                keep = csr.indices[arc_pos] != ss
                state["pending"][arc_pos[keep], kk[keep]] = seqv[keep]
        sends = self._pop(state, csr, shard)
        self._update_halts(state, csr, shard)
        return sends


def ragged_slices(starts, counts):
    """Concatenate ``range(starts[i], starts[i] + counts[i])`` as one array.

    The standard trick for expanding CSR slices of many nodes at once (used
    by kernels to touch all arc slots of a set of nodes without a Python
    loop).
    """
    import numpy as np

    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(starts, counts) + offsets
